(* The dbspinner server binary: serve a shared database over a
   Unix-domain socket until SIGINT/SIGTERM (or a client SHUTDOWN
   request), then drain gracefully.

   A --gen dataset preloads the shared catalog with a synthetic graph
   (edges / vertexStatus), so clients can run the paper's iterative
   workloads immediately. With --data-dir, the preload only happens on
   the first boot — afterwards the recovered state wins (and the
   preload itself is durable, captured by the boot checkpoint). *)

module Server = Dbspinner_server.Server
module Options = Dbspinner_rewrite.Options
module Engine = Dbspinner.Engine
module Durable = Dbspinner_durable.Durable

let preload_catalog gen scale =
  match gen with
  | None -> None
  | Some name ->
    let spec =
      match Dbspinner_graph.Datasets.find name with
      | Some spec -> spec
      | None ->
        Printf.eprintf "unknown dataset %s (try dblp-like, pokec-like)\n" name;
        exit 2
    in
    let graph = Dbspinner_graph.Datasets.generate ~scale spec in
    let engine = Engine.create () in
    Dbspinner_workload.Loader.load_graph engine graph;
    Printf.printf "preloaded %s (scale %g): %d nodes, %d edges\n%!" name scale
      (Dbspinner_graph.Graph_gen.num_nodes graph)
      (Dbspinner_graph.Graph_gen.num_edges graph);
    Some (Engine.catalog engine)

let serve socket_path max_sessions max_inflight workers deadline
    statement_timeout budget max_iterations gen scale data_dir fsync
    checkpoint_every no_mvcc no_plan_cache =
  let fsync =
    match Durable.policy_of_string fsync with
    | Some p -> p
    | None ->
      Printf.eprintf "invalid --fsync %s (always|batch|off)\n" fsync;
      exit 2
  in
  let options =
    {
      Options.default with
      Options.deadline_seconds = deadline;
      statement_timeout_seconds = statement_timeout;
      row_budget = budget;
      max_iterations_guard = max_iterations;
    }
  in
  let config =
    {
      Server.socket_path;
      max_sessions;
      max_inflight;
      workers;
      options;
      data_dir;
      fsync;
      checkpoint_every;
      mvcc = not no_mvcc;
      plan_cache = not no_plan_cache;
    }
  in
  (* A preload would clash with (and be overwritten by) recovered
     state; only the first boot of a data dir gets to seed it. *)
  let catalog =
    match data_dir with
    | Some dir when Durable.has_state ~dir ->
      if gen <> None then
        Printf.printf "skipping --gen preload: %s already holds state\n%!" dir;
      None
    | _ -> preload_catalog gen scale
  in
  let server =
    try Server.start ~config ?catalog ()
    with Durable.Durability_error msg ->
      Printf.eprintf "durability error: %s\n" msg;
      exit 1
  in
  (match Server.recovery server with
  | Some r -> Printf.printf "%s\n%!" (Durable.render_recovery r)
  | None -> ());
  let stop _ = Server.request_shutdown server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf
    "dbspinner server listening on %s (max %d sessions, %d in-flight, %d \
     workers%s)\n\
     %!"
    socket_path max_sessions max_inflight workers
    (match data_dir with
    | Some dir ->
      Printf.sprintf ", durable at %s fsync=%s" dir
        (Durable.policy_to_string fsync)
    | None -> "");
  Server.wait server;
  print_endline "server drained, bye";
  0

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.socket_path
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let max_sessions_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_sessions
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Maximum concurrent client connections.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_inflight
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Maximum queries executing at once; queries beyond this are \
           rejected with BUSY, never queued.")

let workers_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.workers
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:"Domain-pool size query work is submitted to.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Default per-statement wall-clock budget for every session.")

let statement_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "statement-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-script statement timeout ceiling for every session; sessions \
           may tighten it with SET statement_timeout but never exceed it. \
           Keeps a wedged query from stalling the checkpointer or shutdown \
           drain.")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"ROWS"
        ~doc:"Default per-statement rows-materialized budget.")

let max_iterations_arg =
  Arg.(
    value
    & opt int Options.default.Options.max_iterations_guard
    & info [ "max-iterations" ] ~docv:"N"
        ~doc:"Safety bound on loop iterations per iterative CTE.")

let gen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "gen" ] ~docv:"DATASET"
        ~doc:
          "Preload the shared database with a synthetic graph dataset \
           (e.g. dblp-like).")

let scale_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "scale" ] ~docv:"FACTOR" ~doc:"Scale factor for --gen.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durability directory (snapshot + write-ahead log). The server \
           recovers from it at start, logs every committed write before \
           acknowledging it, and checkpoints periodically. Omit for pure \
           in-memory operation.")

let fsync_arg =
  Arg.(
    value
    & opt string "batch"
    & info [ "fsync" ] ~docv:"MODE"
        ~doc:
          "WAL fsync policy: $(b,always) fsyncs before every \
           acknowledgement (survives OS crash), $(b,batch) writes to the \
           kernel before acknowledging and fsyncs in the background \
           (survives process death; an OS crash may lose the un-synced \
           suffix), $(b,off) buffers in user space ($(b,the only mode that \
           may lose acknowledged writes on process death)).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt float Server.default_config.Server.checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"SECONDS"
        ~doc:
          "Seconds between background checkpoints (taken only when the WAL \
           has pending records); 0 checkpoints as often as possible.")

let no_mvcc_arg =
  Arg.(
    value & flag
    & info [ "no-mvcc" ]
        ~doc:
          "Disable MVCC snapshot reads: read statements take the shared side \
           of the statement RW lock instead of pinning a catalog snapshot. \
           Baseline / escape hatch; also disables the plan cache.")

let no_plan_cache_arg =
  Arg.(
    value & flag
    & info [ "no-plan-cache" ]
        ~doc:
          "Disable the cross-session plan cache (compiled plans keyed by \
           normalized SQL and catalog snapshot version). Sessions can also \
           opt out individually with SET plan_cache off.")

let cmd =
  Cmd.v
    (Cmd.info "dbspinner-server" ~version:"1.0.0"
       ~doc:
         "Serve DBSpinner over a Unix-domain socket with per-session \
          isolation, admission control, graceful drain and optional \
          crash-safe durability")
    Term.(
      const serve $ socket_arg $ max_sessions_arg $ max_inflight_arg
      $ workers_arg $ deadline_arg $ statement_timeout_arg $ budget_arg
      $ max_iterations_arg $ gen_arg $ scale_arg $ data_dir_arg $ fsync_arg
      $ checkpoint_every_arg $ no_mvcc_arg $ no_plan_cache_arg)

let () = exit (Cmd.eval' cmd)

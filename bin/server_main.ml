(* The dbspinner server binary: serve a shared database over a
   Unix-domain socket until SIGINT/SIGTERM (or a client SHUTDOWN
   request), then drain gracefully.

   A --gen dataset preloads the shared catalog with a synthetic graph
   (edges / vertexStatus), so clients can run the paper's iterative
   workloads immediately. *)

module Server = Dbspinner_server.Server
module Options = Dbspinner_rewrite.Options
module Engine = Dbspinner.Engine

let preload_catalog gen scale =
  match gen with
  | None -> None
  | Some name ->
    let spec =
      match Dbspinner_graph.Datasets.find name with
      | Some spec -> spec
      | None ->
        Printf.eprintf "unknown dataset %s (try dblp-like, pokec-like)\n" name;
        exit 2
    in
    let graph = Dbspinner_graph.Datasets.generate ~scale spec in
    let engine = Engine.create () in
    Dbspinner_workload.Loader.load_graph engine graph;
    Printf.printf "preloaded %s (scale %g): %d nodes, %d edges\n%!" name scale
      (Dbspinner_graph.Graph_gen.num_nodes graph)
      (Dbspinner_graph.Graph_gen.num_edges graph);
    Some (Engine.catalog engine)

let serve socket_path max_sessions max_inflight workers deadline budget
    max_iterations gen scale =
  let options =
    {
      Options.default with
      Options.deadline_seconds = deadline;
      row_budget = budget;
      max_iterations_guard = max_iterations;
    }
  in
  let config =
    {
      Server.socket_path;
      max_sessions;
      max_inflight;
      workers;
      options;
    }
  in
  let catalog = preload_catalog gen scale in
  let server = Server.start ~config ?catalog () in
  let stop _ = Server.request_shutdown server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf
    "dbspinner server listening on %s (max %d sessions, %d in-flight, %d \
     workers)\n\
     %!"
    socket_path max_sessions max_inflight workers;
  Server.wait server;
  print_endline "server drained, bye";
  0

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string Server.default_config.Server.socket_path
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let max_sessions_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_sessions
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Maximum concurrent client connections.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_inflight
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Maximum queries executing at once; queries beyond this are \
           rejected with BUSY, never queued.")

let workers_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.workers
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:"Domain-pool size query work is submitted to.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Default per-statement wall-clock budget for every session.")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"ROWS"
        ~doc:"Default per-statement rows-materialized budget.")

let max_iterations_arg =
  Arg.(
    value
    & opt int Options.default.Options.max_iterations_guard
    & info [ "max-iterations" ] ~docv:"N"
        ~doc:"Safety bound on loop iterations per iterative CTE.")

let gen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "gen" ] ~docv:"DATASET"
        ~doc:
          "Preload the shared database with a synthetic graph dataset \
           (e.g. dblp-like).")

let scale_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "scale" ] ~docv:"FACTOR" ~doc:"Scale factor for --gen.")

let cmd =
  Cmd.v
    (Cmd.info "dbspinner-server" ~version:"1.0.0"
       ~doc:
         "Serve DBSpinner over a Unix-domain socket with per-session \
          isolation, admission control and graceful drain")
    Term.(
      const serve $ socket_arg $ max_sessions_arg $ max_inflight_arg
      $ workers_arg $ deadline_arg $ budget_arg $ max_iterations_arg $ gen_arg
      $ scale_arg)

let () = exit (Cmd.eval' cmd)

(* The dbspinner command-line interface.

   Subcommands:
     repl              interactive SQL shell (default)
     run FILE          execute a ;-separated SQL script
     demo              load a synthetic graph and run the paper's queries
     trace-check FILE  validate an NDJSON trace (or bench JSON) file

   The shell supports meta-commands:
     \dt                      list tables
     \load TABLE FILE         load a CSV file into a new table
     \gen NAME [SCALE]        generate a synthetic dataset (dblp-like,
                              pokec-like, webgoogle-like) into edges /
                              vertexStatus
     \set OPTION on|off       toggle rename | common | pushdown | fold |
                              exec_cache | delta
     \set trace on|off        emit NDJSON trace events to stdout
     \set deadline SECS|off   wall-clock budget per statement
     \set budget ROWS|off     rows-materialized budget per statement
     \set retries N           transient-fault retries before fallback
     \set workers N           Domain-pool size for parallel operators
     \set chunk N             min rows before an operator chunks its input
     \options                 show optimizer switches
     \q                       quit *)

module Engine = Dbspinner.Engine
module Options = Dbspinner_rewrite.Options
module Relation = Dbspinner_storage.Relation
module Schema = Dbspinner_storage.Schema
module Column_type = Dbspinner_storage.Column_type
module Catalog = Dbspinner_storage.Catalog
module Trace = Dbspinner_obs.Trace
module Json = Dbspinner_obs.Json

(* ------------------------------------------------------------------ *)
(* Trace sink: NDJSON events to stdout ("-") or a file                  *)

type trace_sink = {
  sink_trace : Trace.t;
  sink_dest : string;  (** "-" = stdout *)
  mutable sink_last_seq : int;  (** first span seq not yet flushed *)
}

(** Install a fresh session trace on [engine] writing to [dest]
    ("-" = stdout). A file destination is truncated now and appended to
    at each flush. *)
let make_trace_sink engine dest =
  let tr = Engine.enable_trace engine in
  if dest <> "-" then Out_channel.with_open_text dest (fun _ -> ());
  { sink_trace = tr; sink_dest = dest; sink_last_seq = Trace.next_seq tr }

(** Write the spans recorded since the last flush as NDJSON lines. *)
let flush_trace = function
  | None -> ()
  | Some sink ->
    let text = Trace.to_ndjson ~min_seq:sink.sink_last_seq sink.sink_trace in
    sink.sink_last_seq <- Trace.next_seq sink.sink_trace;
    if text <> "" then
      if sink.sink_dest = "-" then print_string text
      else
        Out_channel.with_open_gen
          [ Open_wronly; Open_append; Open_creat ]
          0o644 sink.sink_dest
          (fun oc -> Out_channel.output_string oc text)

let print_result = function
  | Engine.Rows rel -> print_string (Relation.to_table_string rel)
  | Engine.Affected n -> Printf.printf "%d row(s) affected\n" n
  | Engine.Executed -> print_endline "ok"
  | Engine.Explained text -> print_endline text

let safe_exec engine sql =
  match Engine.execute_script engine sql with
  | results -> List.iter print_result results
  | exception Dbspinner.Errors.Error (stage, msg) ->
    Printf.printf "error (%s): %s\n" (Dbspinner.Errors.stage_name stage) msg

let list_tables engine =
  let catalog = Engine.catalog engine in
  match Catalog.table_names catalog with
  | [] -> print_endline "(no tables)"
  | names ->
    List.iter
      (fun name ->
        let table = Catalog.find_table catalog name in
        Printf.printf "%-24s %8d rows  %s\n" name
          (Dbspinner_storage.Table.cardinality table)
          (Format.asprintf "%a" Schema.pp (Dbspinner_storage.Table.schema table)))
      names

let load_csv engine table path =
  (* Infer column types from the first data line: ints, floats,
     otherwise strings. *)
  let ic = open_in path in
  let first = try input_line ic with End_of_file -> "" in
  close_in ic;
  let fields = String.split_on_char ',' first in
  let schema =
    Schema.make
      (List.mapi
         (fun i field ->
           let ty =
             if int_of_string_opt field <> None then Column_type.T_int
             else if float_of_string_opt field <> None then Column_type.T_float
             else Column_type.T_string
           in
           Schema.column ~ty (Printf.sprintf "c%d" i))
         fields)
  in
  let rel = Dbspinner_storage.Csv.load ~schema path in
  Engine.load_table engine ~name:table rel;
  Printf.printf "loaded %d rows into %s\n" (Relation.cardinality rel) table

let generate engine name scale =
  match Dbspinner_graph.Datasets.find name with
  | None ->
    Printf.printf "unknown dataset %s (try dblp-like, pokec-like, webgoogle-like)\n"
      name
  | Some spec ->
    let graph = Dbspinner_graph.Datasets.generate ~scale spec in
    Dbspinner_workload.Loader.load_graph engine graph;
    Printf.printf "generated %s: %d nodes, %d edges -> tables edges, vertexStatus\n"
      name
      (Dbspinner_graph.Graph_gen.num_nodes graph)
      (Dbspinner_graph.Graph_gen.num_edges graph)

let set_option engine key enabled =
  let options = Engine.options engine in
  let options =
    match key with
    | "rename" -> Some { options with Options.use_rename = enabled }
    | "common" -> Some { options with Options.use_common_result = enabled }
    | "pushdown" -> Some { options with Options.use_pushdown = enabled }
    | "fold" -> Some { options with Options.use_constant_folding = enabled }
    | "exec_cache" | "cache" ->
      Some { options with Options.use_exec_cache = enabled }
    | "delta" -> Some { options with Options.use_delta = enabled }
    | "columnar" -> Some { options with Options.use_columnar = enabled }
    | "rule_engine" -> Some { options with Options.use_rule_engine = enabled }
    | "cost_rewrites" ->
      Some { options with Options.cost_based_rewrites = enabled }
    | _ -> None
  in
  match options with
  | Some options ->
    Engine.set_options engine options;
    Printf.printf "set %s = %b\n" key enabled
  | None ->
    Printf.printf
      "unknown option %s \
       (rename|common|pushdown|fold|exec_cache|delta|columnar|rule_engine|cost_rewrites)\n"
      key

(** Resource-guard and recovery knobs: [\set deadline SECS|off],
    [\set budget ROWS|off], [\set retries N]. *)
let set_guard engine key value =
  let options = Engine.options engine in
  let off = value = "off" || value = "none" in
  match key with
  | "deadline" -> (
    match (off, float_of_string_opt value) with
    | true, _ ->
      Engine.set_options engine { options with Options.deadline_seconds = None };
      print_endline "deadline off"
    | false, Some s when s > 0.0 ->
      Engine.set_options engine
        { options with Options.deadline_seconds = Some s };
      Printf.printf "set deadline = %gs\n" s
    | false, _ -> print_endline "usage: \\set deadline SECONDS|off")
  | "budget" -> (
    match (off, int_of_string_opt value) with
    | true, _ ->
      Engine.set_options engine { options with Options.row_budget = None };
      print_endline "row budget off"
    | false, Some n when n > 0 ->
      Engine.set_options engine { options with Options.row_budget = Some n };
      Printf.printf "set row budget = %d rows\n" n
    | false, _ -> print_endline "usage: \\set budget ROWS|off")
  | "retries" -> (
    match int_of_string_opt value with
    | Some n when n >= 0 ->
      Engine.set_options engine { options with Options.mpp_max_retries = n };
      Printf.printf "set mpp retries = %d\n" n
    | _ -> print_endline "usage: \\set retries N")
  | "workers" -> (
    match int_of_string_opt value with
    | Some n when n >= 1 ->
      Engine.set_options engine { options with Options.parallel_workers = n };
      Printf.printf "set workers = %d%s\n" n
        (if n = 1 then " (sequential)" else "")
    | _ -> print_endline "usage: \\set workers N (N >= 1)")
  | "chunk" -> (
    match int_of_string_opt value with
    | Some n when n >= 1 ->
      Engine.set_options engine { options with Options.parallel_chunk_rows = n };
      Printf.printf "set chunk threshold = %d rows\n" n
    | _ -> print_endline "usage: \\set chunk ROWS (>= 1)")
  | _ -> assert false

(** [\set trace on|off]: install / remove a stdout NDJSON trace sink. *)
let set_trace engine sink value =
  match value with
  | "on" | "true" | "1" ->
    sink := Some (make_trace_sink engine "-");
    print_endline "trace on (NDJSON events to stdout)"
  | "off" | "false" | "0" ->
    flush_trace !sink;
    sink := None;
    Engine.set_trace engine None;
    print_endline "trace off"
  | _ -> print_endline "usage: \\set trace on|off"

let handle_meta engine sink line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ "\\q" ] -> `Quit
  | [ "\\dt" ] ->
    list_tables engine;
    `Continue
  | [ "\\load"; table; path ] ->
    (try load_csv engine table path
     with e -> Printf.printf "load failed: %s\n" (Printexc.to_string e));
    `Continue
  | "\\gen" :: name :: rest ->
    let scale =
      match rest with
      | [ s ] -> Option.value (float_of_string_opt s) ~default:1.0
      | _ -> 1.0
    in
    generate engine name scale;
    `Continue
  | [ "\\set"; (("deadline" | "budget" | "retries" | "workers" | "chunk") as key); value ] ->
    set_guard engine key value;
    `Continue
  | [ "\\set"; "trace"; value ] ->
    set_trace engine sink value;
    `Continue
  | [ "\\set"; key; flag ] ->
    set_option engine key (flag = "on" || flag = "true" || flag = "1");
    `Continue
  | [ "\\options" ] ->
    print_endline (Options.to_string (Engine.options engine));
    `Continue
  | _ ->
    print_endline
      "meta-commands: \\dt  \\load TABLE FILE  \\gen NAME [SCALE]  \\set OPT \
       on|off \
       (rename|common|pushdown|fold|exec_cache|delta|columnar|rule_engine|cost_rewrites)  \
       \\set trace \
       on|off  \\set deadline SECS|off  \\set budget ROWS|off  \\set retries \
       N  \\set workers N  \\set chunk ROWS  \\options  \\q";
    `Continue

(** Session options for a CLI invocation: [--workers N] sets the
    Domain-pool size for chunk-parallel operators; [--no-exec-cache]
    disables the iteration-aware executor cache; [--no-delta] disables
    semi-naive (delta-driven) iterative evaluation; [--no-columnar]
    falls back to row-at-a-time operators; [--no-cost-rewrites] keeps
    the §V rewrites always-on instead of cost-arbitrated. *)
let options_of_workers workers no_cache no_delta no_columnar no_cost_rewrites =
  {
    Options.default with
    Options.parallel_workers = max 1 workers;
    use_exec_cache = not no_cache;
    use_delta = not no_delta;
    use_columnar = not no_columnar;
    cost_based_rewrites = not no_cost_rewrites;
  }

let repl workers no_cache no_delta no_columnar no_cost_rewrites trace_dest =
  let engine =
    Engine.create
      ~options:
        (options_of_workers workers no_cache no_delta no_columnar
           no_cost_rewrites)
      ()
  in
  let sink = ref (Option.map (make_trace_sink engine) trace_dest) in
  print_endline "dbspinner shell — SQL with WITH ITERATIVE support.";
  print_endline "Type \\gen dblp-like 0.2 to load a sample graph; \\q to quit.";
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "dbspinner> " else "      ...> ");
    match read_line () with
    | exception End_of_file -> flush_trace !sink
    | line when Buffer.length buffer = 0 && String.length line > 0 && line.[0] = '\\'
      -> (
      match handle_meta engine sink (String.trim line) with
      | `Quit -> flush_trace !sink
      | `Continue -> loop ())
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      let text = Buffer.contents buffer in
      (* Execute once the statement is ';'-terminated. *)
      if String.contains line ';' then begin
        Buffer.clear buffer;
        safe_exec engine text;
        flush_trace !sink
      end;
      loop ()
  in
  loop ();
  0

let run_file workers no_cache no_delta no_columnar no_cost_rewrites trace_dest
    path =
  match In_channel.with_open_text path In_channel.input_all with
  | sql ->
    let engine =
      Engine.create
        ~options:
          (options_of_workers workers no_cache no_delta no_columnar
             no_cost_rewrites)
        ()
    in
    let sink = Option.map (make_trace_sink engine) trace_dest in
    (match Engine.execute_script engine sql with
    | results ->
      List.iter print_result results;
      flush_trace sink;
      0
    | exception Dbspinner.Errors.Error (stage, msg) ->
      flush_trace sink;
      Printf.eprintf "error (%s): %s\n" (Dbspinner.Errors.stage_name stage) msg;
      1)
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    1

let demo workers no_cache no_delta no_columnar no_cost_rewrites trace_dest =
  let engine =
    Engine.create
      ~options:
        (options_of_workers workers no_cache no_delta no_columnar
           no_cost_rewrites)
      ()
  in
  let sink = Option.map (make_trace_sink engine) trace_dest in
  generate engine "dblp-like" 0.25;
  print_endline "\n== PageRank (10 iterations), top 5 ==";
  print_string
    (Relation.to_table_string
       (Engine.query engine
          (Dbspinner_workload.Queries.pr ~iterations:10
             ~final:"SELECT Node, Rank FROM PageRank ORDER BY Rank DESC LIMIT 5"
             ())));
  print_endline "\n== SSSP from node 0 (15 iterations), 5 nearest ==";
  print_string
    (Relation.to_table_string
       (Engine.query engine
          (Dbspinner_workload.Queries.sssp ~source:0 ~iterations:15
             ~final:
               "SELECT Node, LEAST(Distance, Delta) AS dist FROM sssp WHERE \
                LEAST(Distance, Delta) < 9999999 ORDER BY dist LIMIT 5"
             ())));
  print_endline "\n== Friends forecast (10 periods), 1% sample ==";
  print_string
    (Relation.to_table_string
       (Engine.query engine
          (Dbspinner_workload.Queries.ff ~modulus:100 ~iterations:10 ())));
  flush_trace sink;
  0

(* ------------------------------------------------------------------ *)
(* trace-check: validate NDJSON trace / bench JSON files               *)

(** Validate [path] as either an NDJSON trace (one event per line,
    checked against the span schema) or a dbspinner bench JSON file
    (an object with a "schema" string and a "records" array of flat
    objects). Returns a process exit code. *)
let trace_check path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | contents -> (
    let bench =
      match Json.parse contents with
      | Ok (Json.Obj _ as o) -> (
        match (Json.member "schema" o, Json.member "records" o) with
        | Some (Json.Str schema), Some (Json.Arr records) ->
          Some (schema, records)
        | _ -> None)
      | Ok _ | Error _ -> None
    in
    match bench with
    | Some (schema, records) ->
      let bad =
        List.filteri
          (fun _ r -> match r with Json.Obj _ -> false | _ -> true)
          records
      in
      if bad = [] then begin
        Printf.printf "%s: ok (bench file, schema %s, %d records)\n" path
          schema (List.length records);
        0
      end
      else begin
        Printf.eprintf "%s: %d records are not JSON objects\n" path
          (List.length bad);
        1
      end
    | None ->
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      if lines = [] then begin
        Printf.eprintf "%s: empty trace\n" path;
        1
      end
      else begin
        let errors = ref 0 in
        List.iteri
          (fun i line ->
            match Trace.validate_event line with
            | Ok () -> ()
            | Error msg ->
              incr errors;
              if !errors <= 5 then
                Printf.eprintf "%s:%d: invalid trace event: %s\n" path (i + 1)
                  msg)
          lines;
        if !errors = 0 then begin
          Printf.printf "%s: ok (%d trace events)\n" path (List.length lines);
          0
        end
        else begin
          Printf.eprintf "%s: %d invalid events\n" path !errors;
          1
        end
      end)

(* ------------------------------------------------------------------ *)
(* client: talk to a running dbspinner server                          *)

module Client = Dbspinner_server.Client

(** [SET name value] is a protocol command, not SQL — recognize bare
    [-e "SET budget 100000"] strings and route them through the
    session-option request instead of the query path. *)
let as_set_command sql =
  let s = String.trim sql in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = ';' then
      String.trim (String.sub s 0 (String.length s - 1))
    else s
  in
  let words =
    String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s
    |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ kw; name; value ] when String.lowercase_ascii kw = "set" ->
    Some (name, value)
  | _ -> None

(** Run against a server: execute [-e SQL] strings and/or a script
    file, or print server STATS, or request a graceful SHUTDOWN.
    [pipelined] streams all scripts in one tagged batch (one
    round-trip) instead of request/response per script. *)
let client_mode socket_path commands file show_stats do_shutdown pipelined =
  let scripts =
    commands
    @
    match file with
    | None -> []
    | Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | sql -> [ sql ]
      | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1)
  in
  if scripts = [] && not (show_stats || do_shutdown) then begin
    Printf.eprintf
      "nothing to do: pass -e SQL, a script FILE, --stats or --shutdown\n";
    exit 2
  end;
  match Client.connect ~socket_path () with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cannot connect to %s: %s\n" socket_path
      (Unix.error_message e);
    1
  | client ->
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let failed = ref false in
        if pipelined then begin
          (* SET commands change session state the later scripts depend
             on, so they stay synchronous even in pipelined mode; runs
             of plain scripts between them go out as one batch. *)
          let flush_batch batch =
            match List.rev batch with
            | [] -> ()
            | sqls ->
              List.iter
                (function
                  | Ok body -> print_string body
                  | Error (status, msg) ->
                    failed := true;
                    Printf.eprintf "%s: %s\n" status msg)
                (Client.pipeline_queries client sqls)
          in
          let batch =
            List.fold_left
              (fun batch sql ->
                match as_set_command sql with
                | Some (name, value) ->
                  flush_batch batch;
                  (match Client.set client name value with
                  | Ok body -> print_string body
                  | Error msg ->
                    failed := true;
                    Printf.eprintf "SET %s: %s\n" name msg);
                  []
                | None -> sql :: batch)
              [] scripts
          in
          flush_batch batch
        end
        else
          List.iter
            (fun sql ->
              match as_set_command sql with
              | Some (name, value) -> (
                match Client.set client name value with
                | Ok body -> print_string body
                | Error msg ->
                  failed := true;
                  Printf.eprintf "SET %s: %s\n" name msg)
              | None -> (
                match Client.query client sql with
                | Ok body -> print_string body
                | Error (status, msg) ->
                  failed := true;
                  Printf.eprintf "%s: %s\n" status msg))
            scripts;
        if show_stats then
          List.iter
            (fun (k, v) -> Printf.printf "%s %s\n" k v)
            (Client.stats client);
        if do_shutdown then Client.shutdown_server client
        else Client.quit client;
        if !failed then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)

open Cmdliner

let workers_arg =
  Arg.(
    value
    & opt int 1
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:
          "Domain-pool size for chunk-parallel operators (1 = sequential; \
           results are identical either way).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-exec-cache" ]
        ~doc:
          "Disable the iteration-aware executor cache (loop-invariant \
           join-build reuse and compiled expressions). Results are \
           identical either way; use for perf comparisons.")

let no_delta_arg =
  Arg.(
    value & flag
    & info [ "no-delta" ]
        ~doc:
          "Disable semi-naive (delta-driven) iterative evaluation: every \
           loop iteration re-evaluates its body over the whole CTE instead \
           of only the keys affected by the last iteration's changes. \
           Results are identical either way; use for perf comparisons.")

let no_columnar_arg =
  Arg.(
    value & flag
    & info [ "no-columnar" ]
        ~doc:
          "Disable vectorized columnar execution: filter, project, join \
           probe and aggregate fall back to row-at-a-time evaluation. \
           Results are identical either way; use for perf comparisons.")

let no_cost_rewrites_arg =
  Arg.(
    value & flag
    & info [ "no-cost-rewrites" ]
        ~doc:
          "Disable cost-based rewrite selection: the predicate-push and \
           common-result rewrites stay always-on (the paper's behavior) \
           instead of being arbitrated by the cost model against catalog \
           cardinalities. Results are identical either way; use for plan \
           comparisons.")

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record iteration-aware trace spans (steps, loop iterations with \
           convergence gauges, operator families) and emit them as NDJSON \
           events after each statement — to $(docv), or to stdout when no \
           file is given.")

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL shell")
    Term.(
      const repl $ workers_arg $ no_cache_arg $ no_delta_arg $ no_columnar_arg
      $ no_cost_rewrites_arg $ trace_arg)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script")
    Term.(
      const run_file $ workers_arg $ no_cache_arg $ no_delta_arg
      $ no_columnar_arg $ no_cost_rewrites_arg $ trace_arg $ file)

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's queries on a synthetic graph")
    Term.(
      const demo $ workers_arg $ no_cache_arg $ no_delta_arg $ no_columnar_arg
      $ no_cost_rewrites_arg $ trace_arg)

let client_cmd =
  let socket =
    Arg.(
      value
      & opt string
          Dbspinner_server.Server.default_config
            .Dbspinner_server.Server.socket_path
      & info [ "s"; "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the server.")
  in
  let execute =
    Arg.(
      value & opt_all string []
      & info [ "e"; "execute" ] ~docv:"SQL"
          ~doc:"SQL script to run (repeatable; runs before FILE).")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print server counters after the scripts.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the server to shut down gracefully afterwards.")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Stream all scripts to the server as one tagged batch (one \
             round-trip) instead of request/response per script; responses \
             come back in order.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Run SQL against a running dbspinner server")
    Term.(
      const client_mode $ socket $ execute $ file $ stats $ shutdown
      $ pipeline)

let trace_check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate an NDJSON trace file against the trace event schema (or a \
          dbspinner bench JSON file for well-formedness)")
    Term.(const trace_check $ file)

let main_cmd =
  let doc = "An analytical SQL engine with native iterative CTEs (DBSpinner)" in
  Cmd.group
    ~default:
      Term.(
        const repl $ workers_arg $ no_cache_arg $ no_delta_arg
        $ no_columnar_arg $ no_cost_rewrites_arg $ trace_arg)
    (Cmd.info "dbspinner" ~version:"1.0.0" ~doc)
    [ repl_cmd; run_cmd; demo_cmd; client_cmd; trace_check_cmd ]

let () = exit (Cmd.eval' main_cmd)

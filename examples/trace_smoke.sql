-- Small iterative workload for the trace smoke test:
--
--   dune exec bin/dbspinner_cli.exe -- run --trace=trace_smoke.ndjson \
--     examples/trace_smoke.sql
--   dune exec bin/dbspinner_cli.exe -- trace-check trace_smoke.ndjson
--
-- SSSP on a small weighted graph, converging via UNTIL DELTA = 0, so
-- the emitted trace contains a multi-iteration convergence timeline
-- with shrinking deltas.

CREATE TABLE edges (src INT, dst INT, weight FLOAT);

INSERT INTO edges VALUES
  (0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 1.0),
  (3, 4, 3.0), (1, 4, 7.0), (4, 5, 1.0), (2, 5, 8.0),
  (5, 6, 2.0), (6, 7, 1.0), (3, 7, 9.0);

WITH ITERATIVE sssp (Node, Distance) AS (
  SELECT src, CASE WHEN src = 0 THEN 0.0 ELSE 9999999.0 END FROM
    (SELECT src FROM edges UNION SELECT dst FROM edges)
ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, COALESCE(MIN(prev.Distance + e.weight), 9999999.0))
  FROM sssp
    LEFT JOIN edges AS e ON sssp.Node = e.dst
    LEFT JOIN sssp AS prev ON prev.Node = e.src
  GROUP BY sssp.Node, sssp.Distance
UNTIL DELTA = 0)
SELECT Node, Distance FROM sssp WHERE Distance < 9999999.0 ORDER BY Node;

-- The convergence timeline rendered inline.
EXPLAIN ANALYZE
WITH ITERATIVE sssp (Node, Distance) AS (
  SELECT src, CASE WHEN src = 0 THEN 0.0 ELSE 9999999.0 END FROM
    (SELECT src FROM edges UNION SELECT dst FROM edges)
ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, COALESCE(MIN(prev.Distance + e.weight), 9999999.0))
  FROM sssp
    LEFT JOIN edges AS e ON sssp.Node = e.dst
    LEFT JOIN sssp AS prev ON prev.Node = e.src
  GROUP BY sssp.Node, sssp.Distance
UNTIL DELTA = 0)
SELECT COUNT(*) FROM sssp;

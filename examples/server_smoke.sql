-- Server smoke workload: exercises iterative CTEs, DDL/DML on the
-- shared base catalog, and plain aggregation through one client
-- session. Run with:
--   dbspinner client --socket PATH examples/server_smoke.sql
-- against a server started with --gen dblp-like (provides edges).

SELECT COUNT(*) AS edge_count FROM edges;

WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
   SELECT PageRank.node,
     PageRank.rank + PageRank.delta,
     COALESCE(0.85 * SUM(IncomingRank.delta * IncomingEdges.weight), 0)
   FROM PageRank
     LEFT JOIN edges AS IncomingEdges
       ON PageRank.node = IncomingEdges.dst
     LEFT JOIN PageRank AS IncomingRank
       ON IncomingRank.node = IncomingEdges.src
   GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 5 ITERATIONS )
SELECT COUNT(*) AS ranked_nodes FROM PageRank;

CREATE TABLE smoke_scratch (k INT, v VARCHAR);
INSERT INTO smoke_scratch VALUES (1, 'alpha'), (2, 'beta'), (3, 'gamma');
SELECT COUNT(*) AS scratch_rows FROM smoke_scratch;
DROP TABLE smoke_scratch;

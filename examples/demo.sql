-- A self-contained script for the dbspinner CLI:
--
--   dune exec bin/dbspinner_cli.exe -- run examples/demo.sql
--
-- It builds a small flight network and runs a plain CTE, a recursive
-- CTE and two iterative CTEs (one converging via DELTA, one with a
-- fixed iteration budget), finishing with a transaction demo.

CREATE TABLE flights (origin VARCHAR, destination VARCHAR, price FLOAT);

INSERT INTO flights VALUES
  ('AMS', 'JFK', 420.0),
  ('JFK', 'SFO', 180.0),
  ('AMS', 'CDG', 90.0),
  ('CDG', 'JFK', 380.0),
  ('SFO', 'HNL', 250.0),
  ('HNL', 'SFO', 240.0);

-- Plain CTE: departure counts.
WITH departures AS (SELECT origin, COUNT(*) AS n FROM flights GROUP BY origin)
SELECT origin, n FROM departures ORDER BY n DESC, origin;

-- Recursive CTE: everywhere reachable from AMS.
WITH RECURSIVE reach (airport) AS (
  SELECT 'AMS'
  UNION
  SELECT f.destination FROM reach JOIN flights AS f ON reach.airport = f.origin)
SELECT airport FROM reach ORDER BY airport;

-- Iterative CTE with aggregation (impossible in ANSI recursion):
-- cheapest fare from AMS, relaxed to a fixed point.
WITH ITERATIVE fares (airport, cost) AS (
  SELECT destination, 9999999.0 FROM flights
  UNION SELECT 'AMS', 0.0
ITERATE
  SELECT fares.airport,
         LEAST(fares.cost, COALESCE(MIN(src.cost + f.price), 9999999.0))
  FROM fares
    LEFT JOIN flights AS f ON fares.airport = f.destination
    LEFT JOIN fares AS src ON src.airport = f.origin
  GROUP BY fares.airport, fares.cost
UNTIL DELTA = 0)
SELECT airport, cost FROM fares WHERE cost < 9999999.0 ORDER BY cost;

-- Iterative CTE with a metadata termination: compound interest.
WITH ITERATIVE savings (account, balance) AS (
  SELECT 1, 1000.0
ITERATE
  SELECT account, ROUND(balance * 1.05, 2) FROM savings
UNTIL 10 ITERATIONS)
SELECT account, balance AS after_ten_years FROM savings;

-- The compiled single-plan program behind an iterative query.
EXPLAIN
WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, n + 1 FROM c
UNTIL 3 ITERATIONS)
SELECT n FROM c;

-- Transactions wrap any statements, including iterative queries.
BEGIN;
DELETE FROM flights WHERE price > 400;
SELECT COUNT(*) AS remaining_flights FROM flights;
ROLLBACK;
SELECT COUNT(*) AS all_flights_restored FROM flights;

(** Named rewrite rules with combinators and a per-rule log.

    A rule is a partial transformation over any plan representation
    ([Ast.full_query], {!Dbspinner_plan.Logical.t},
    {!Dbspinner_plan.Program} steps, or whole compile candidates):
    [apply] returns [Some y] when the rule matched and constructed a
    replacement, [None] when it declined. Every application records
    into a {!log}, which the compiler surfaces through
    [Iterative_rewrite.report] and the EXPLAIN header.

    Combinators compose rules in the DSH Rewrite/Match style: [>>>]
    sequences, [alt] takes the first match, [fixpoint] iterates to
    exhaustion, [bottom_up] lifts a node-local rule to a full traversal
    (given a one-layer child map such as
    {!Dbspinner_plan.Logical.map_children}), and [cost_guard] keeps a
    rewrite only when an estimate says it pays. *)

(* ------------------------------------------------------------------ *)
(* Per-rule log                                                        *)

type entry = {
  rule : string;
  mutable fired : int;  (** times the rule matched and was kept *)
  mutable notes : string list;  (** reversed detail lines *)
}

type log = { mutable entries : entry list  (** reversed first-use order *) }

let create_log () = { entries = [] }

let entry_for log rule =
  match List.find_opt (fun e -> e.rule = rule) log.entries with
  | Some e -> e
  | None ->
    let e = { rule; fired = 0; notes = [] } in
    log.entries <- e :: log.entries;
    e

let record ?detail log rule =
  let e = entry_for log rule in
  e.fired <- e.fired + 1;
  match detail with
  | None -> ()
  | Some d -> e.notes <- d :: e.notes

(** Attach a detail line without counting a firing (e.g. a guard's
    rejection, with the costs that justified it). *)
let note log rule fmt =
  Printf.ksprintf
    (fun d ->
      let e = entry_for log rule in
      e.notes <- d :: e.notes)
    fmt

let entries log = List.rev log.entries
let fired_count log rule = (entry_for log rule).fired
let total_fired log = List.fold_left (fun n e -> n + e.fired) 0 log.entries

(** Copy every entry of [src] into [into] (appended in [src]'s
    first-use order), merging counts and notes for same-named rules. *)
let merge ~into src =
  List.iter
    (fun e ->
      let dst = entry_for into e.rule in
      dst.fired <- dst.fired + e.fired;
      dst.notes <- e.notes @ dst.notes)
    (entries src)

(** One line per rule in first-use order — ["rule <name>: fired <n>"]
    followed by its detail lines indented two spaces. Rules that never
    fired and carry no notes are omitted. *)
let to_lines log =
  List.concat_map
    (fun e ->
      if e.fired = 0 && e.notes = [] then []
      else
        Printf.sprintf "rule %s: fired %d" e.rule e.fired
        :: List.rev_map (fun n -> "  " ^ n) e.notes)
    (entries log)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

type 'a t = {
  name : string;
  apply : log -> 'a -> 'a option;
}

let name r = r.name

(** [make ~name f] — a rule from a partial function; a [Some] result
    counts one firing (with [detail] of the match when given). *)
let make ?detail ~name f =
  {
    name;
    apply =
      (fun log x ->
        match f x with
        | None -> None
        | Some y ->
          record ?detail:(Option.map (fun d -> d x y) detail) log name;
          Some y);
  }

(** A rule whose body logs for itself (per-match details, partial
    progress); the body is responsible for calling {!record}. *)
let make_logged ~name apply = { name; apply }

let apply r log x = r.apply log x

(** Total application: the input unchanged when the rule declines. *)
let run r log x = Option.value (r.apply log x) ~default:x

(* --- combinators --------------------------------------------------- *)

(** [seq a b] — run [a] then [b] on the intermediate result; matches
    when either matched. *)
let seq a b =
  {
    name = Printf.sprintf "%s >>> %s" a.name b.name;
    apply =
      (fun log x ->
        match a.apply log x with
        | None -> b.apply log x
        | Some y -> Some (run b log y));
  }

let ( >>> ) = seq

(** First rule that matches wins; later rules are not tried. *)
let alt a b =
  {
    name = Printf.sprintf "%s | %s" a.name b.name;
    apply =
      (fun log x ->
        match a.apply log x with
        | Some _ as r -> r
        | None -> b.apply log x);
  }

(** Sequence a whole pipeline; the identity rule when empty. *)
let all = function
  | [] -> { name = "id"; apply = (fun _ _ -> None) }
  | r :: rest -> List.fold_left seq r rest

(** Repeat until the rule declines (or [max_passes], a safety bound
    against non-terminating rule sets, is hit); matches when the first
    pass matched. *)
let fixpoint ?(max_passes = 8) r =
  {
    name = Printf.sprintf "fixpoint(%s)" r.name;
    apply =
      (fun log x ->
        let rec go passes x =
          if passes >= max_passes then x
          else
            match r.apply log x with
            | None -> x
            | Some y -> go (passes + 1) y
        in
        match r.apply log x with
        | None -> None
        | Some y -> Some (go 1 y));
  }

(** Lift a node-local rule to a full bottom-up traversal:
    [map_children] maps a function over a node's immediate children
    (e.g. {!Dbspinner_plan.Logical.map_children}); children rewrite
    first, then the rule tries the rebuilt node. Matches when any node
    matched. *)
let bottom_up ~map_children r =
  {
    name = Printf.sprintf "bottom-up(%s)" r.name;
    apply =
      (fun log x ->
        let changed = ref false in
        let rec go x =
          let x = map_children go x in
          match r.apply log x with
          | None -> x
          | Some y ->
            changed := true;
            y
        in
        let y = go x in
        if !changed then Some y else None);
  }

(** Keep the underlying rule's rewrite only when [cost] says it is
    strictly cheaper; otherwise decline (reverting to the input) and
    log why. Both outcomes leave a note with the two estimates, so
    EXPLAIN shows every cost decision. *)
let cost_guard ~cost r =
  {
    name = r.name;
    apply =
      (fun log x ->
        (* Trial run on a scratch log: a reverted rewrite must not
           leave its firing in the surfaced log. *)
        let scratch = create_log () in
        match r.apply scratch x with
        | None -> None
        | Some y ->
          let before = cost x and after = cost y in
          if after < before then begin
            merge ~into:log scratch;
            note log r.name "kept by cost guard (%.0f -> %.0f)" before after;
            Some y
          end
          else begin
            note log r.name
              "rejected by cost guard (%.0f, would be %.0f)" before after;
            None
          end);
  }

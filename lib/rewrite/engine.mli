(** The rewrite engine: the optimizer passes re-expressed as named
    {!Rule}s over the AST, bound logical plans and emitted program
    steps. The rules wrap the same pass functions the legacy pipeline
    calls directly, so engine-on and engine-off compilations are
    bit-identical by construction. *)

module Ast = Dbspinner_sql.Ast
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Schema = Dbspinner_storage.Schema

(** {2 AST-phase rules (whole [full_query])} *)

val fold_rule : Ast.full_query Rule.t
val outer_to_inner_rule : Ast.full_query Rule.t

(** Fires once per materialized common CTE (§V-A). *)
val common_result_rule :
  lookup:(string -> Schema.t option) -> Ast.full_query Rule.t

(** The standard AST pipeline under the options' switches, in the
    legacy pass order. [allow_common] is the cost-arbitration
    override. *)
val ast_pipeline :
  options:Options.t ->
  allow_common:bool ->
  lookup:(string -> Schema.t option) ->
  Ast.full_query Rule.t

(** {2 Per-CTE rules} *)

(** Predicate push-into-R0 (§V-B) over the bound non-iterative plan;
    [schema] is the CTE's schema (for binding the pushed conjunct). *)
val pushdown_rule :
  cte_name:string ->
  columns:string list ->
  step:Ast.query ->
  final:Ast.query ->
  schema:Schema.t ->
  Logical.t Rule.t

(** Semi-naive eligibility as a pattern-match/construct rule: a
    working-table [Materialize] whose plan passes [Delta.analyze]
    becomes a [Delta_materialize]. *)
val delta_rule :
  loop_id:int ->
  cte:string ->
  key_idx:int ->
  work_name:string ->
  Program.step Rule.t

(** {2 Step-plan phase} *)

(** Rewrite every logical plan inside one step. *)
val map_step_plans : (Logical.t -> Logical.t) -> Program.step -> Program.step

(** Generic plan-level filter push down over one step's plans. *)
val step_pushdown_rule : Program.step Rule.t

(** Every rule name the engine can fire, in pipeline order. *)
val rule_names : string list

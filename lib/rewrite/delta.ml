(** Semi-naive (delta-driven) eligibility analysis for iterative loop
    bodies (ROADMAP: semi-naive iteration; SciDB's incremental
    iterative processing is the precedent).

    Full re-evaluation recomputes [Ri] over the whole CTE every
    iteration even when a handful of rows changed. When the loop body
    has the right shape we can instead recompute only the {e affected}
    driver keys — those whose own row changed, or that some changed row
    can reach through the body's joins — and stitch every other key's
    working-table row from the previous iteration.

    A body is eligible when it unwraps as

    {v project / distinct / filter / IN-subquery / aggregate wrappers
      over a left-deep join tree whose leftmost leaf scans the CTE v}

    with the following conditions, each of which the soundness argument
    below depends on:

    - the output column at [key_idx] is a verbatim copy of the driver's
      key column (through projections, and through aggregates only as a
      grouping column), so every output row belongs to exactly one
      driver key;
    - every join on the driver's spine is Inner, Left_outer or Cross —
      a Right/Full outer join could null-pad {e new} driver keys into
      existence when the driver side shrinks;
    - every other CTE occurrence is a plain leaf scan on the spine, and
      no opaque subtree (non-leaf join input, IN-subquery) references
      the CTE — anything else is loop-variant in a way we don't model;
    - joins distribute over the per-key decomposition because each join
      row carries exactly one driver row; aggregates qualify regardless
      of monotonicity (the MIN of SSSP included) because affected keys
      recompute their {e whole} group over the full current CTE, never
      an increment.

    For an eligible body the analysis derives:

    - [restricted_plan]: [Ri] with the driver scan wrapped in an IN
      semijoin against the affected-key temp;
    - [affected_plans]: for each non-driver CTE occurrence, the join
      tree with the driver leaf removed, that occurrence replaced by
      the delta temp, every join demoted to Inner and every conjunct
      referencing the driver dropped, projecting the expression the
      driver key is equated to. Dropping filters and demoting joins
      only ever {e enlarges} the affected set, which is sound: affected
      keys are recomputed exactly, unaffected keys are provably
      unchanged. *)

module Schema = Dbspinner_storage.Schema
module Ast = Dbspinner_sql.Ast
module Logical = Dbspinner_plan.Logical
module Bound_expr = Dbspinner_plan.Bound_expr

type analysis = {
  restricted_plan : Logical.t;
  affected_plans : Logical.t list;
}

(** Schema of the affected-key temp: one column holding driver keys. *)
let affected_key_schema = Schema.of_names [ "key" ]

let is_cte ~cte name = String.lowercase_ascii name = String.lowercase_ascii cte

let references_cte ~cte plan =
  List.exists (is_cte ~cte) (Logical.referenced_tables plan)

(** Walk the wrapper chain above the join tree, tracking which input
    column position must be a verbatim copy of the driver key so that
    the output carries it at [key_idx]. Returns the core join tree (or
    bare driver scan) once reached, or [None] if any wrapper breaks
    per-key locality (sort/limit/offset/set operations, aggregates not
    grouped by the key, projections that compute the key). *)
let rec core_of ~cte ~key_idx pos (plan : Logical.t) : Logical.t option =
  match plan with
  | Logical.L_project { exprs; input } -> (
    match List.nth_opt exprs pos with
    | Some (Bound_expr.B_col j, _) -> core_of ~cte ~key_idx j input
    | _ -> None)
  | Logical.L_aggregate { keys; input; _ } -> (
    (* agg_schema lists grouping columns first, so [pos] must name a
       grouping column that is itself a column copy. *)
    match List.nth_opt keys pos with
    | Some (Bound_expr.B_col j) -> core_of ~cte ~key_idx j input
    | _ -> None)
  | Logical.L_filter { input; _ } -> core_of ~cte ~key_idx pos input
  | Logical.L_distinct input -> core_of ~cte ~key_idx pos input
  | Logical.L_subquery_filter { sub; input; _ } ->
    if references_cte ~cte sub then None
    else core_of ~cte ~key_idx pos input
  | Logical.L_join _ | Logical.L_scan _ ->
    (* Driver columns lead the join row, so the driver's key column sits
       at absolute position [key_idx]. *)
    if pos = key_idx then Some plan else None
  | _ -> None

type leg = {
  kind : Logical.join_kind;
  cond : Bound_expr.t option;
  right : Logical.t;
  right_is_cte : bool;
}

(** Decompose the left spine: driver scan at the far left, one [leg]
    per join. Right inputs may be leaf CTE scans or opaque subtrees
    that never mention the CTE. *)
let rec spine ~cte (plan : Logical.t) : (Logical.t * leg list) option =
  match plan with
  | Logical.L_scan { name; _ } when is_cte ~cte name -> Some (plan, [])
  | Logical.L_join { kind; cond; left; right; _ } -> (
    match kind with
    | Logical.Right_outer | Logical.Full_outer -> None
    | Logical.Inner | Logical.Left_outer | Logical.Cross -> (
      match spine ~cte left with
      | None -> None
      | Some (driver, legs) ->
        let right_is_cte =
          match right with
          | Logical.L_scan { name; _ } -> is_cte ~cte name
          | _ -> false
        in
        if (not right_is_cte) && references_cte ~cte right then None
        else Some (driver, legs @ [ { kind; cond; right; right_is_cte } ])))
  | _ -> None

(** Replace the driver scan (the leftmost leaf, reached through the
    validated wrapper chain and spine) with an IN semijoin against the
    affected-key temp. Schemas are untouched. *)
let rec restrict_driver ~key_idx ~affected_name (plan : Logical.t) : Logical.t =
  let recurse = restrict_driver ~key_idx ~affected_name in
  match plan with
  | Logical.L_scan _ ->
    Logical.subquery_filter ~anti:false
      ~key:(Some (Bound_expr.B_col key_idx))
      plan
      (Logical.scan ~name:affected_name ~schema:affected_key_schema)
  | Logical.L_join { kind; cond; left; right; join_schema } ->
    Logical.L_join { kind; cond; left = recurse left; right; join_schema }
  | Logical.L_project { exprs; input } ->
    Logical.L_project { exprs; input = recurse input }
  | Logical.L_aggregate { keys; aggs; input; agg_schema } ->
    Logical.L_aggregate { keys; aggs; input = recurse input; agg_schema }
  | Logical.L_filter { pred; input } ->
    Logical.L_filter { pred; input = recurse input }
  | Logical.L_distinct input -> Logical.L_distinct (recurse input)
  | Logical.L_subquery_filter { anti; key; input; sub } ->
    Logical.L_subquery_filter { anti; key; input = recurse input; sub }
  | other -> other

let analyze ~cte ~key_idx ~delta_name ~affected_name (plan : Logical.t) :
    analysis option =
  match core_of ~cte ~key_idx key_idx plan with
  | None -> None
  | Some core -> (
    match spine ~cte core with
    | None -> None
    | Some (driver, legs) ->
      let d = Schema.arity (Logical.schema driver) in
      if key_idx >= d then None
      else if
        (* Belt and braces: every CTE occurrence must be the driver or a
           validated spine leaf — nothing hiding elsewhere. *)
        List.length
          (List.filter (is_cte ~cte) (Logical.scan_names [] plan))
        <> 1 + List.length (List.filter (fun l -> l.right_is_cte) legs)
      then None
      else
        (* The expression the driver key is equated to, over non-driver
           columns only (shifted to the driver-less affected tree) —
           how affected plans name the keys a delta row reaches. *)
        let non_driver e =
          List.for_all (fun i -> i >= d) (Bound_expr.columns_of e)
        in
        let key_expr =
          List.fold_left
            (fun acc (l : leg) ->
              match (acc, l.cond) with
              | Some _, _ | _, None -> acc
              | None, Some c ->
                List.fold_left
                  (fun acc conj ->
                    match (acc, conj) with
                    | Some _, _ -> acc
                    | None, Bound_expr.B_binop (Ast.Eq, a, b) ->
                      if a = Bound_expr.B_col key_idx && non_driver b then
                        Some (Bound_expr.shift (-d) b)
                      else if b = Bound_expr.B_col key_idx && non_driver a
                      then Some (Bound_expr.shift (-d) a)
                      else None
                    | None, _ -> None)
                  None (Bound_expr.conjuncts c))
            None legs
        in
        let cte_occurrences = List.exists (fun l -> l.right_is_cte) legs in
        if cte_occurrences && key_expr = None then None
        else
          (* Join conditions for the driver-less tree: conjuncts that
             mention the driver are dropped (conservative — the
             affected set only grows), the rest shift down by the
             driver's arity. *)
          let shifted_cond cond =
            match cond with
            | None -> None
            | Some c -> (
              match
                List.filter
                  (fun conj -> non_driver conj)
                  (Bound_expr.conjuncts c)
              with
              | [] -> None
              | kept -> Some (Bound_expr.shift (-d) (Bound_expr.conjoin kept)))
          in
          let build_affected replace_idx =
            match legs with
            | [] -> None
            | _ ->
              (* The delta leaf leads the join chain so it sits on the
                 probe (left) side of every join; the loop-invariant
                 legs become right-side builds the executor's
                 generation-keyed join cache can reuse across
                 iterations. Without the reorder the affected plan
                 probes the biggest leg (e.g. the whole edge table)
                 once per iteration, which caps the semi-naive win. *)
              let arr = Array.of_list legs in
              let n = Array.length arr in
              let ar =
                Array.map
                  (fun (l : leg) -> Schema.arity (Logical.schema l.right))
                  arr
              in
              (* Column offsets of each leg in the original (driver-
                 less) layout, and in the reordered layout. *)
              let off = Array.make n 0 in
              for i = 1 to n - 1 do
                off.(i) <- off.(i - 1) + ar.(i - 1)
              done;
              let order =
                replace_idx
                :: List.filter
                     (fun i -> i <> replace_idx)
                     (List.init n (fun i -> i))
              in
              let noff = Array.make n 0 in
              let pos = ref 0 in
              List.iter
                (fun j ->
                  noff.(j) <- !pos;
                  pos := !pos + ar.(j))
                order;
              let leg_of_col c =
                let rec go i =
                  if i + 1 < n && c >= off.(i + 1) then go (i + 1) else i
                in
                go 0
              in
              let remap c =
                let j = leg_of_col c in
                noff.(j) + (c - off.(j))
              in
              let remap_expr =
                Bound_expr.substitute (fun c -> Bound_expr.B_col (remap c))
              in
              let leaf j =
                let l = arr.(j) in
                if j = replace_idx then
                  Logical.scan ~name:delta_name
                    ~schema:(Logical.schema l.right)
                else l.right
              in
              (* Each conjunct attaches at the earliest join where all
                 the legs it references are present; any left over (a
                 single-leg tree has no joins) is dropped, which only
                 enlarges the affected set — sound. *)
              let conjs =
                ref
                  (List.concat_map
                     (fun (l : leg) ->
                       match shifted_cond l.cond with
                       | None -> []
                       | Some c -> Bound_expr.conjuncts c)
                     legs)
              in
              let tree =
                List.fold_left
                  (fun acc j ->
                    let avail = noff.(j) + ar.(j) in
                    let here, later =
                      List.partition
                        (fun conj ->
                          List.for_all
                            (fun c -> remap c < avail)
                            (Bound_expr.columns_of conj))
                        !conjs
                    in
                    conjs := later;
                    let cond =
                      match here with
                      | [] -> None
                      | kept -> Some (remap_expr (Bound_expr.conjoin kept))
                    in
                    Logical.join Logical.Inner ?cond acc (leaf j))
                  (leaf replace_idx) (List.tl order)
              in
              Option.map
                (fun ke ->
                  Logical.distinct
                    (Logical.project [ (remap_expr ke, "key") ] tree))
                key_expr
          in
          let affected_plans =
            List.concat
              (List.mapi
                 (fun i (l : leg) ->
                   if not l.right_is_cte then []
                   else match build_affected i with
                     | Some p -> [ p ]
                     | None -> [])
                 legs)
          in
          Some
            {
              restricted_plan = restrict_driver ~key_idx ~affected_name plan;
              affected_plans;
            })

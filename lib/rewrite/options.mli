(** Optimizer switches — one per paper optimization so benchmarks can
    measure each independently (Figures 8–10). *)

type t = {
  use_rename : bool;
      (** §IV / §VII-B: swap the working table in with the O(1) rename
          instead of copying back and diffing *)
  use_common_result : bool;
      (** §V-A: materialize loop-invariant joins once, before the loop
          (includes the inner-join reordering future work) *)
  use_pushdown : bool;
      (** §V-B: push final-part predicates over update-invariant
          columns into the non-iterative part, plus generic plan-level
          filter push down *)
  use_constant_folding : bool;
  use_outer_to_inner : bool;
      (** demote outer joins under null-rejecting WHERE conjuncts
          (stock rewrite listed in §V; unlocks common-result
          hoisting) *)
  max_recursion : int;  (** safety bound for recursive CTEs *)
  max_iterations_guard : int;
      (** hard cap for Data/Delta terminations that never converge *)
  deadline_seconds : float option;
      (** wall-clock budget per statement; crossing it raises a
          Resource-stage error at the next materialize or loop boundary *)
  statement_timeout_seconds : float option;
      (** per-script statement timeout, reported distinctly from the
          deadline ("statement timeout"); the server uses it to keep a
          wedged query from stalling its checkpointer or drain *)
  row_budget : int option;
      (** cap on total rows materialized per statement *)
  mpp_max_retries : int;
      (** consecutive transient-fault retries before distributed
          execution falls back to single-node *)
  parallel_workers : int;
      (** Domain-pool size for chunk-parallel single-node operators;
          1 = sequential execution (results are identical either way) *)
  parallel_chunk_rows : int;
      (** minimum relation cardinality before an operator splits its
          input across the pool *)
  use_exec_cache : bool;
      (** iteration-aware executor cache (loop-invariant join-build
          reuse + compiled expressions); an executor concern, not a
          paper rewrite, so [unoptimized] keeps it on *)
  trace_buffer : int;
      (** ring-buffer capacity (spans) for the iteration-aware trace
          collector; only consulted when tracing is enabled *)
  use_delta : bool;
      (** semi-naive (delta-driven) iterative evaluation; eligible loop
          bodies re-evaluate [Ri] only over rows whose inputs changed,
          ineligible bodies fall back to full re-evaluation *)
  use_columnar : bool;
      (** vectorized columnar execution for filter/project/join/
          aggregate; bit-identical results and logical stats vs the
          row engine. An executor concern, so [unoptimized] keeps it
          on *)
  use_rule_engine : bool;
      (** route optimizer passes through the rule-combinator engine
          with per-rule logging; compiled programs are bit-identical
          either way, so [unoptimized] keeps it on *)
  cost_based_rewrites : bool;
      (** arbitrate predicate-push vs common-result-hoist by estimated
          cost when a statistics source is available *)
}

(** Everything on. *)
val default : t

(** All paper optimizations off — the naive rewrite used as the
    experimental baseline. *)
val unoptimized : t

val to_string : t -> string

(** Optimizer switches. Each flag corresponds to one of the paper's
    optimizations so that benchmarks can measure them independently
    (Figures 8, 9, 10). *)

type t = {
  use_rename : bool;
      (** §IV / §VII-B: swap the working table into the CTE table with
          the O(1) [rename] operator instead of copying data back and
          diffing updated rows *)
  use_common_result : bool;
      (** §V-A: materialize loop-invariant joins of the iterative part
          once, before the loop *)
  use_pushdown : bool;
      (** §V-B: push final-part predicates over update-invariant
          columns into the non-iterative part *)
  use_constant_folding : bool;  (** fold constant scalar expressions *)
  use_outer_to_inner : bool;
      (** demote outer joins whose padded side is rejected by a
          null-rejecting WHERE conjunct (stock rewrite listed in §V;
          also unlocks filter hoisting for the common-result rule) *)
  max_recursion : int;  (** safety bound for recursive CTEs *)
  max_iterations_guard : int;
      (** safety bound for iterative CTEs with Data/Delta termination
          that never converge *)
  deadline_seconds : float option;
      (** wall-clock budget per statement; crossing it raises a
          Resource-stage error at the next materialize or loop boundary *)
  statement_timeout_seconds : float option;
      (** per-script statement timeout, reported distinctly from the
          deadline; the server uses it to keep a wedged query from
          stalling its checkpointer or shutdown drain *)
  row_budget : int option;
      (** cap on total rows materialized per statement; same Resource
          surfacing as the deadline *)
  mpp_max_retries : int;
      (** consecutive transient-fault retries before distributed
          execution falls back to single-node *)
  parallel_workers : int;
      (** Domain-pool size for chunk-parallel single-node operators;
          1 = sequential execution (results are identical either way) *)
  parallel_chunk_rows : int;
      (** minimum relation cardinality before an operator splits its
          input across the pool *)
  use_exec_cache : bool;
      (** iteration-aware executor cache: memoize loop-invariant join
          builds / subquery digests under source generations and
          closure-compile expressions once per program run. An executor
          concern, not a paper rewrite, so [unoptimized] keeps it on. *)
  trace_buffer : int;
      (** ring-buffer capacity (spans) for the iteration-aware trace
          collector; only consulted when tracing is enabled *)
  use_delta : bool;
      (** semi-naive (delta-driven) iterative evaluation: when the loop
          body is structurally eligible, re-evaluate [Ri] only for rows
          whose inputs changed since the previous iteration and stitch
          the rest from the previous working table. Results are
          bag-identical to full re-evaluation; ineligible bodies fall
          back to full re-evaluation per iteration. *)
  use_columnar : bool;
      (** vectorized columnar execution: filter, project, equi-join
          probe and aggregate run batch-at-a-time over typed column
          arrays ({!Dbspinner_exec.Vec_eval}) instead of row-at-a-time.
          Results and logical stats are bit-identical with the row
          engine. An executor concern, not a paper rewrite, so
          [unoptimized] keeps it on. *)
  use_rule_engine : bool;
      (** route the optimizer passes through the rule-combinator
          engine ({!Rule}/{!Engine}) with per-rule logging, instead of
          the legacy direct-call pipeline. Compiled programs are
          bit-identical either way — the toggle is an equivalence
          oracle, so [unoptimized] keeps it on. *)
  cost_based_rewrites : bool;
      (** arbitrate the predicate-push-into-loop vs common-result-hoist
          decision by estimated cost ({!Dbspinner_plan.Cost.program}
          before/after each candidate rewrite) whenever the compiler is
          given a statistics source; off = the rewrites stay always-on
          as in the paper. *)
}

let default =
  {
    use_rename = true;
    use_common_result = true;
    use_pushdown = true;
    use_constant_folding = true;
    use_outer_to_inner = true;
    max_recursion = 10_000;
    max_iterations_guard = 100_000;
    deadline_seconds = None;
    statement_timeout_seconds = None;
    row_budget = None;
    mpp_max_retries = 3;
    parallel_workers = 1;
    parallel_chunk_rows = 4096;
    use_exec_cache = true;
    trace_buffer = 8192;
    use_delta = true;
    use_columnar = true;
    use_rule_engine = true;
    cost_based_rewrites = true;
  }

(** All paper optimizations off: the naive rewrite the paper's
    baselines use. *)
let unoptimized =
  {
    default with
    use_rename = false;
    use_common_result = false;
    use_pushdown = false;
    use_constant_folding = false;
    use_outer_to_inner = false;
    use_delta = false;
  }

let to_string t =
  let guards =
    let deadline =
      match t.deadline_seconds with
      | None -> ""
      | Some s -> Printf.sprintf " deadline=%gs" s
    in
    let timeout =
      match t.statement_timeout_seconds with
      | None -> ""
      | Some s -> Printf.sprintf " statement_timeout=%gs" s
    in
    let budget =
      match t.row_budget with
      | None -> ""
      | Some n -> Printf.sprintf " row_budget=%d" n
    in
    deadline ^ timeout ^ budget
  in
  let parallel =
    if t.parallel_workers > 1 then
      Printf.sprintf " workers=%d chunk=%d" t.parallel_workers
        t.parallel_chunk_rows
    else ""
  in
  (* Only shown when disabled, keeping the default rendering stable. *)
  let cache = if t.use_exec_cache then "" else " exec_cache=off" in
  let delta = if t.use_delta then "" else " delta=off" in
  let columnar = if t.use_columnar then "" else " columnar=off" in
  let rule_engine = if t.use_rule_engine then "" else " rule_engine=off" in
  let cost = if t.cost_based_rewrites then "" else " cost_rewrites=off" in
  Printf.sprintf
    "rename=%b common_result=%b pushdown=%b fold=%b outer_to_inner=%b%s%s%s%s%s%s%s"
    t.use_rename t.use_common_result t.use_pushdown t.use_constant_folding
    t.use_outer_to_inner guards parallel cache delta columnar rule_engine cost

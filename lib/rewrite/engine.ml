(** The rewrite engine: every optimizer pass re-expressed as a named
    {!Rule} and composed with combinators, so one registry drives the
    whole pipeline and every firing lands in the per-rule log that
    EXPLAIN and [Iterative_rewrite.report] surface.

    The rules wrap the same pass functions the legacy pipeline calls
    directly ({!Fold}, {!Outer_to_inner}, {!Common_result},
    {!Pushdown}, {!Plan_pushdown}, {!Delta}), so engine-on and
    engine-off compilations are bit-identical by construction — the
    toggle exists as an equivalence oracle, not a behavior switch. *)

module Ast = Dbspinner_sql.Ast
module Sql_pretty = Dbspinner_sql.Sql_pretty
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Binder = Dbspinner_plan.Binder
module Schema = Dbspinner_storage.Schema

(* ------------------------------------------------------------------ *)
(* AST-phase rules (whole full_query)                                  *)

(** Constant folding as a rule: fires when folding changed the tree. *)
let fold_rule : Ast.full_query Rule.t =
  Rule.make ~name:"constant-fold" (fun q ->
      let q' = Fold.fold_full_query q in
      if q' = q then None else Some q')

(** Outer-to-inner demotion as a rule. *)
let outer_to_inner_rule : Ast.full_query Rule.t =
  Rule.make ~name:"outer-to-inner" (fun q ->
      let q' = Outer_to_inner.simplify_full_query q in
      if q' = q then None else Some q')

(** Common-result extraction (§V-A) as a rule: fires once per
    materialized common CTE, noting the generated names. *)
let common_result_rule ~lookup : Ast.full_query Rule.t =
  Rule.make_logged ~name:"common-result" (fun log q ->
      let cte_names q =
        List.map
          (function
            | Ast.Cte_plain { name; _ }
            | Ast.Cte_recursive { name; _ }
            | Ast.Cte_iterative { name; _ } ->
              name)
          q.Ast.ctes
      in
      let before = cte_names q in
      let q' = Common_result.rewrite_full_query ~lookup q in
      let added =
        List.filter (fun n -> not (List.mem n before)) (cte_names q')
      in
      if added = [] then None
      else begin
        List.iter
          (fun n -> Rule.record ~detail:("materialized " ^ n) log "common-result")
          added;
        Some q'
      end)

(** The standard AST pipeline under the options' switches, in the
    legacy pass order. [allow_common] is the cost-arbitration override
    for the common-result rewrite. *)
let ast_pipeline ~(options : Options.t) ~allow_common ~lookup :
    Ast.full_query Rule.t =
  Rule.all
    (List.concat
       [
         (if options.Options.use_constant_folding then [ fold_rule ] else []);
         (if options.Options.use_outer_to_inner then [ outer_to_inner_rule ]
          else []);
         (if options.Options.use_common_result && allow_common then
            [ common_result_rule ~lookup ]
          else []);
       ])

(* ------------------------------------------------------------------ *)
(* Per-CTE rules                                                       *)

(** Predicate push-into-R0 (§V-B) as a rule over the bound
    non-iterative plan: matches when the final part has a sound
    pushable conjunct, constructs the filtered base plan. *)
let pushdown_rule ~cte_name ~columns ~step ~final ~schema : Logical.t Rule.t =
  Rule.make_logged ~name:"predicate-pushdown" (fun log base_plan ->
      match Pushdown.pushable_predicate ~cte_name ~columns ~step ~final with
      | None -> None
      | Some pred ->
        Rule.record
          ~detail:
            (Printf.sprintf "%s: R0 filtered by %s" cte_name
               (Sql_pretty.expr pred))
          log "predicate-pushdown";
        let scope = Binder.scope_of_schema schema in
        Some (Logical.filter (Binder.bind_scalar scope pred) base_plan))

(** Semi-naive eligibility as a pattern-match/construct rule over the
    emitted step: a working-table [Materialize] whose plan passes
    {!Delta.analyze} becomes a [Delta_materialize]. *)
let delta_rule ~loop_id ~cte ~key_idx ~work_name : Program.step Rule.t =
  let delta_name = cte ^ "#delta" and affected_name = cte ^ "#affected" in
  Rule.make_logged ~name:"semi-naive-delta" (fun log step ->
      match step with
      | Program.Materialize { target; plan }
        when String.lowercase_ascii target = String.lowercase_ascii work_name
        -> (
        match Delta.analyze ~cte ~key_idx ~delta_name ~affected_name plan with
        | None -> None
        | Some { Delta.restricted_plan; affected_plans } ->
          Rule.record
            ~detail:
              (Printf.sprintf "%s: delta-driven loop (%d affected-key plans)"
                 cte (List.length affected_plans))
            log "semi-naive-delta";
          Some
            (Program.Delta_materialize
               {
                 loop_id;
                 target = work_name;
                 cte;
                 key_idx;
                 full_plan = plan;
                 restricted_plan;
                 affected_plans;
                 delta_name;
                 affected_name;
               }))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Step-plan phase                                                     *)

(** Rewrite every logical plan inside one step with [f]. *)
let map_step_plans f (step : Program.step) : Program.step =
  match step with
  | Program.Materialize { target; plan } ->
    Program.Materialize { target; plan = f plan }
  | Program.Delta_materialize d ->
    (* The affected plans are filter-free by construction; rewrite the
       two Ri variants only. *)
    Program.Delta_materialize
      {
        d with
        full_plan = f d.full_plan;
        restricted_plan = f d.restricted_plan;
      }
  | Program.Return plan -> Program.Return (f plan)
  | Program.Recursive_cte r ->
    Program.Recursive_cte
      { r with base = f r.base; step_plan = f r.step_plan }
  | Program.Rename _ | Program.Drop_temp _ | Program.Assert_unique_key _
  | Program.Init_loop _ | Program.Loop_end _ | Program.Snapshot _ ->
    step

(** Generic plan-level filter push down as a rule over one step: fires
    when {!Plan_pushdown.push_filters} moved anything in any of the
    step's plans. *)
let step_pushdown_rule : Program.step Rule.t =
  Rule.make ~name:"plan-filter-pushdown" (fun step ->
      let step' = map_step_plans Plan_pushdown.push_filters step in
      if step' = step then None else Some step')

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

(** Every rule the engine can fire, in pipeline order — the cost-guard
    arbitration rules of [Iterative_rewrite] are listed by their guard
    names. *)
let rule_names =
  [
    "constant-fold";
    "outer-to-inner";
    "common-result";
    "predicate-pushdown";
    "semi-naive-delta";
    "plan-filter-pushdown";
    "cost:no-predicate-pushdown";
    "cost:no-common-result";
  ]

(** Semi-naive (delta-driven) eligibility analysis for iterative loop
    bodies. A body is eligible when it is a stack of per-key-local
    wrappers (project / filter / distinct / IN-subquery / aggregate
    grouped by the driver key) over a left-deep join tree whose
    leftmost leaf scans the CTE, with every other CTE occurrence a
    plain leaf scan on the spine. Joins then distribute over the
    per-key decomposition, and any aggregate qualifies — affected keys
    recompute their whole group — so the monotone MIN of SSSP is
    covered as a special case. Ineligible bodies simply keep full
    re-evaluation. *)

module Schema = Dbspinner_storage.Schema
module Logical = Dbspinner_plan.Logical

type analysis = {
  restricted_plan : Logical.t;
      (** [Ri] with the driver scan semijoined against the affected-key
          temp; bag-identical to the full plan on affected keys *)
  affected_plans : Logical.t list;
      (** one single-column plan per non-driver CTE occurrence, mapping
          delta rows to the driver keys they can reach; conservative
          (may name keys whose rows end up unchanged) but never misses
          an affected key *)
}

(** Schema of the affected-key temp (a single [key] column). *)
val affected_key_schema : Schema.t

(** [analyze ~cte ~key_idx ~delta_name ~affected_name plan] — [Some]
    when [plan] (the bound loop body, scanning the CTE as [cte]) is
    eligible for delta-driven evaluation; [None] means the executor
    must fall back to full re-evaluation. *)
val analyze :
  cte:string ->
  key_idx:int ->
  delta_name:string ->
  affected_name:string ->
  Logical.t ->
  analysis option

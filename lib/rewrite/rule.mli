(** Named rewrite rules with combinators and a per-rule log (the DSH
    Rewrite/Match style). A rule is a partial transformation: [Some]
    when it matched and constructed a replacement, [None] when it
    declined. Applications record into a {!log} that the compiler
    surfaces through [Iterative_rewrite.report] and EXPLAIN. *)

(** {2 Per-rule log} *)

type entry = {
  rule : string;
  mutable fired : int;  (** times the rule matched and was kept *)
  mutable notes : string list;  (** reversed detail lines *)
}

type log

val create_log : unit -> log

(** Count one firing of the named rule, with an optional detail line. *)
val record : ?detail:string -> log -> string -> unit

(** Attach a detail line without counting a firing. *)
val note : log -> string -> ('a, unit, string, unit) format4 -> 'a

(** Entries in first-use order. *)
val entries : log -> entry list

val fired_count : log -> string -> int
val total_fired : log -> int

(** Merge [src]'s counts and notes into [into]. *)
val merge : into:log -> log -> unit

(** Render: one ["rule <name>: fired <n>"] line per rule plus indented
    detail lines; silent rules are omitted. *)
val to_lines : log -> string list

(** {2 Rules} *)

type 'a t

val name : 'a t -> string

(** A rule from a partial function; a [Some] result counts one firing.
    [detail] renders a per-match note from the (input, output) pair. *)
val make : ?detail:('a -> 'a -> string) -> name:string -> ('a -> 'a option) -> 'a t

(** A rule whose body does its own logging via {!record}/{!note}. *)
val make_logged : name:string -> (log -> 'a -> 'a option) -> 'a t

val apply : 'a t -> log -> 'a -> 'a option

(** Total application: input unchanged when the rule declines. *)
val run : 'a t -> log -> 'a -> 'a

(** {2 Combinators} *)

(** Run both in order; matches when either matched. *)
val seq : 'a t -> 'a t -> 'a t

val ( >>> ) : 'a t -> 'a t -> 'a t

(** First match wins. *)
val alt : 'a t -> 'a t -> 'a t

(** Sequence a pipeline; the identity rule when empty. *)
val all : 'a t list -> 'a t

(** Repeat until the rule declines, bounded by [max_passes]. *)
val fixpoint : ?max_passes:int -> 'a t -> 'a t

(** Lift a node-local rule to a bottom-up traversal, given a one-layer
    child map such as {!Dbspinner_plan.Logical.map_children}. *)
val bottom_up : map_children:(('a -> 'a) -> 'a -> 'a) -> 'a t -> 'a t

(** Keep the rewrite only when [cost] says it is strictly cheaper;
    both outcomes leave a note with the two estimates. *)
val cost_guard : cost:('a -> float) -> 'a t -> 'a t

(** The functional rewrite (paper §IV, Algorithm 1): compiles a full
    query — including plain, recursive and iterative CTEs — into a
    single step {!Program} of existing operators plus [rename] and
    [loop].

    For an iterative CTE [R as (R0 ITERATE Ri UNTIL Tc)]:

    {ol
    {- materialize [R0] into the CTE table (step 1 of Table I);}
    {- initialize the loop operator (step 2);}
    {- each iteration: materialize [Ri] into the working table
       (step 3), check the unique-row-key requirement of §II, then
       either {e rename} the working table over the CTE table (full
       update, step 4) or materialize the merge of old and new rows
       keyed by the row identifier (partial update, Algorithm 1
       lines 8–10);}
    {- update the loop and jump back while [Tc] is unmet (steps 5–6);}
    {- finally bind the main query [Qf] over the CTE table.}}

    The optimizer hooks of §V are applied here as well: the
    common-result rewrite runs first (it only reshapes the AST), and
    predicate push down filters the bound non-iterative plan. *)

module Schema = Dbspinner_storage.Schema
module Value = Dbspinner_storage.Value
module Ast = Dbspinner_sql.Ast
module Binder = Dbspinner_plan.Binder
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Bound_expr = Dbspinner_plan.Bound_expr

exception Rewrite_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Rewrite_error s)) fmt

(** What the optimizer actually did to a query — used by tests, debug
    logging and the CLI's EXPLAIN header. *)
type report = {
  mutable common_results_extracted : int;
  mutable predicates_pushed : int;  (** §V-B pushes into R0 *)
  mutable rename_paths : int;  (** full-update loops using rename *)
  mutable merge_paths : int;  (** partial-update loops using the merge *)
  mutable delta_paths : int;
      (** loops whose working table is built semi-naively (delta-driven
          restricted re-evaluation instead of a full [Ri] pass) *)
}

let empty_report () =
  {
    common_results_extracted = 0;
    predicates_pushed = 0;
    rename_paths = 0;
    merge_paths = 0;
    delta_paths = 0;
  }

let report_to_string r =
  Printf.sprintf
    "common-results=%d predicates-pushed=%d rename-loops=%d merge-loops=%d \
     delta-loops=%d"
    r.common_results_extracted r.predicates_pushed r.rename_paths r.merge_paths
    r.delta_paths

(* ------------------------------------------------------------------ *)
(* Merge plan for partial updates (Algorithm 1, line 8)                *)

(** [SELECT CASE WHEN w.key IS NOT NULL THEN w.c ELSE cte.c END, ...
    FROM cte LEFT JOIN w ON cte.key = w.key] — rows updated by the
    iteration take the working table's values, all others keep the
    previous version's. *)
let merge_plan ~schema ~key_idx ~cte_name ~work_name =
  let n = Schema.arity schema in
  let left = Logical.scan ~name:cte_name ~schema in
  let right = Logical.scan ~name:work_name ~schema in
  let cond =
    Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col key_idx, Bound_expr.B_col (n + key_idx))
  in
  let joined = Logical.join Logical.Left_outer ~cond left right in
  let exprs =
    List.init n (fun i ->
        let take_new =
          ( Bound_expr.B_is_null (Bound_expr.B_col (n + key_idx), false),
            Bound_expr.B_col (n + i) )
        in
        ( Bound_expr.B_case ([ take_new ], Some (Bound_expr.B_col i)),
          (schema.(i) : Schema.column).name ))
  in
  Logical.project exprs joined

(* ------------------------------------------------------------------ *)
(* Per-CTE compilation                                                 *)

type ctx = {
  options : Options.t;
  report : report;
  mutable env : Binder.env;
  mutable steps : Program.step list;  (** reversed *)
  mutable next_loop : int;
}

let emit ctx step = ctx.steps <- step :: ctx.steps
let position ctx = List.length ctx.steps

let bind_cte_body ctx ~name columns (body : Ast.query) =
  let plan = Binder.bind_query ctx.env body in
  match columns with
  | None -> plan
  | Some names -> (
    match Binder.rename_output plan names with
    | plan -> plan
    | exception Binder.Bind_error m -> error "CTE %s: %s" name m)

let compile_plain ctx ~name ~columns body =
  let plan = bind_cte_body ctx ~name columns body in
  emit ctx (Program.Materialize { target = name; plan });
  ctx.env <- Binder.with_temp ctx.env name (Logical.schema plan)

let compile_recursive ctx ~name ~columns ~base ~step ~union_all =
  let base_plan = bind_cte_body ctx ~name columns base in
  let schema = Logical.schema base_plan in
  let work_name = name ^ "#rwork" in
  let step_env = Binder.with_temp ctx.env name schema in
  let step_plan = Binder.bind_query step_env step in
  if Schema.arity (Logical.schema step_plan) <> Schema.arity schema then
    error
      "recursive CTE %s: the recursive part returns %d columns but the base \
       returns %d"
      name
      (Schema.arity (Logical.schema step_plan))
      (Schema.arity schema);
  let step_plan = Logical.rename_scans [ (name, work_name) ] step_plan in
  let step_plan = Binder.rename_output step_plan (Schema.column_names schema) in
  emit ctx
    (Program.Recursive_cte
       {
         name;
         work_name;
         base = base_plan;
         step_plan;
         union_all;
         max_recursion = ctx.options.Options.max_recursion;
       });
  ctx.env <- Binder.with_temp ctx.env name schema

(** Does the iterative part update the entire dataset? Algorithm 1
    branches on the presence of a WHERE clause; in addition the FROM
    clause must preserve every CTE row — the CTE driving a chain of
    LEFT JOINs does, while an inner join (possibly introduced by the
    outer-to-inner rewrite) can drop rows and therefore requires the
    merge path. *)
let rec cte_preserving_from cte_name = function
  | Ast.From_table { table; _ } ->
    String.lowercase_ascii table = String.lowercase_ascii cte_name
  | Ast.From_subquery _ -> false
  | Ast.From_join { left; kind = Ast.Left_outer; _ } ->
    cte_preserving_from cte_name left
  | Ast.From_join _ -> false

let updates_entire_dataset ~cte_name (step : Ast.query) =
  match step with
  | Ast.Q_select s -> (
    s.Ast.where = None
    && s.Ast.having = None
    &&
    match s.Ast.from with
    | Some from -> cte_preserving_from cte_name from
    | None -> false)
  | Ast.Q_union _ | Ast.Q_intersect _ | Ast.Q_except _ -> true

let bind_termination ~schema ~cte_name (t : Ast.termination) :
    Program.termination =
  match t with
  | Ast.T_iterations n ->
    if n <= 0 then error "UNTIL %d ITERATIONS: count must be positive" n;
    Program.Max_iterations n
  | Ast.T_updates n ->
    if n <= 0 then error "UNTIL %d UPDATES: count must be positive" n;
    Program.Max_updates n
  | Ast.T_delta n -> Program.Delta_at_most n
  | Ast.T_data { any; cond } ->
    let scope = Binder.scope_of_schema ~qualifier:cte_name schema in
    Program.Data { any; pred = Binder.bind_scalar scope cond }

let compile_iterative ctx ~name ~columns ~key ~base ~step ~until
    ~(final : Ast.query) =
  let options = ctx.options in
  (* --- non-iterative part R0 --------------------------------------- *)
  let base_plan = bind_cte_body ctx ~name columns base in
  let schema = Logical.schema base_plan in
  let column_names = Schema.column_names schema in
  (* Predicate push down (§V-B): filter R0 with the sound part of the
     final query's WHERE clause. *)
  let base_plan =
    if not options.Options.use_pushdown then base_plan
    else
      match
        Pushdown.pushable_predicate ~cte_name:name ~columns:column_names ~step
          ~final
      with
      | None -> base_plan
      | Some pred ->
        ctx.report.predicates_pushed <- ctx.report.predicates_pushed + 1;
        let scope = Binder.scope_of_schema schema in
        Logical.filter (Binder.bind_scalar scope pred) base_plan
  in
  (* --- row identifier ----------------------------------------------- *)
  let key_idx =
    match key with
    | Some k -> (
      match Schema.index_of schema k with
      | Some i -> i
      | None -> error "iterative CTE %s: KEY column %s not in its schema" name k)
    | None -> 0
  in
  (* --- iterative part Ri -------------------------------------------- *)
  let step_env = Binder.with_temp ctx.env name schema in
  let step_plan = Binder.bind_query step_env step in
  if Schema.arity (Logical.schema step_plan) <> Schema.arity schema then
    error
      "iterative CTE %s: the iterative part returns %d columns but the \
       non-iterative part returns %d"
      name
      (Schema.arity (Logical.schema step_plan))
      (Schema.arity schema);
  let step_plan = Binder.rename_output step_plan column_names in
  let work_name = name ^ "#work" in
  let merge_name = name ^ "#merge" in
  let termination = bind_termination ~schema ~cte_name:name until in
  (* --- emit Table-I steps ------------------------------------------- *)
  let loop_id = ctx.next_loop in
  ctx.next_loop <- ctx.next_loop + 1;
  emit ctx (Program.Materialize { target = name; plan = base_plan });
  emit ctx
    (Program.Init_loop
       {
         loop_id;
         termination;
         cte = name;
         key_idx;
         guard = options.Options.max_iterations_guard;
       });
  let body_start = position ctx in
  emit ctx (Program.Snapshot { loop_id });
  (let delta_analysis =
     if not options.Options.use_delta then None
     else
       Delta.analyze ~cte:name ~key_idx ~delta_name:(name ^ "#delta")
         ~affected_name:(name ^ "#affected") step_plan
   in
   match delta_analysis with
   | Some { Delta.restricted_plan; affected_plans } ->
     ctx.report.delta_paths <- ctx.report.delta_paths + 1;
     emit ctx
       (Program.Delta_materialize
          {
            loop_id;
            target = work_name;
            cte = name;
            key_idx;
            full_plan = step_plan;
            restricted_plan;
            affected_plans;
            delta_name = name ^ "#delta";
            affected_name = name ^ "#affected";
          })
   | None -> emit ctx (Program.Materialize { target = work_name; plan = step_plan }));
  emit ctx (Program.Assert_unique_key { temp = work_name; key_idx });
  let full_update = updates_entire_dataset ~cte_name:name step in
  if full_update && options.Options.use_rename then begin
    ctx.report.rename_paths <- ctx.report.rename_paths + 1;
    (* Minimal data movement: the working table becomes the CTE table. *)
    emit ctx (Program.Rename { from_ = work_name; into = name })
  end
  else begin
    ctx.report.merge_paths <- ctx.report.merge_paths + 1;
    let plan = merge_plan ~schema ~key_idx ~cte_name:name ~work_name in
    emit ctx (Program.Materialize { target = merge_name; plan });
    if options.Options.use_rename then begin
      emit ctx (Program.Rename { from_ = merge_name; into = name });
      emit ctx (Program.Drop_temp work_name)
    end
    else begin
      (* Baseline of §VII-B: copy the merged data back into the main
         table instead of swapping pointers. *)
      emit ctx
        (Program.Materialize
           { target = name; plan = Logical.scan ~name:merge_name ~schema });
      emit ctx (Program.Drop_temp merge_name);
      emit ctx (Program.Drop_temp work_name)
    end
  end;
  emit ctx (Program.Loop_end { loop_id; body_start });
  ctx.env <- Binder.with_temp ctx.env name schema

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

(** Compile a full query into a single executable step program.
    [lookup] resolves base-table schemas. *)
let optimize_step_plans options (steps : Program.step list) : Program.step list =
  if not options.Options.use_pushdown then steps
  else
    List.map
      (fun step ->
        match step with
        | Program.Materialize { target; plan } ->
          Program.Materialize { target; plan = Plan_pushdown.push_filters plan }
        | Program.Delta_materialize d ->
          (* The affected plans are filter-free by construction; push
             into the two Ri variants only. *)
          Program.Delta_materialize
            {
              d with
              full_plan = Plan_pushdown.push_filters d.full_plan;
              restricted_plan = Plan_pushdown.push_filters d.restricted_plan;
            }
        | Program.Return plan -> Program.Return (Plan_pushdown.push_filters plan)
        | Program.Recursive_cte r ->
          Program.Recursive_cte
            {
              r with
              base = Plan_pushdown.push_filters r.base;
              step_plan = Plan_pushdown.push_filters r.step_plan;
            }
        | Program.Rename _ | Program.Drop_temp _ | Program.Assert_unique_key _
        | Program.Init_loop _ | Program.Loop_end _ | Program.Snapshot _ ->
          step)
      steps

let compile_with_report ?(options = Options.default) ~lookup
    (q : Ast.full_query) : Program.t * report =
  let report = empty_report () in
  let q =
    if options.Options.use_constant_folding then Fold.fold_full_query q else q
  in
  let q =
    if options.Options.use_outer_to_inner then
      Outer_to_inner.simplify_full_query q
    else q
  in
  let ctes_before = List.length q.ctes in
  let q =
    if options.Options.use_common_result then
      Common_result.rewrite_full_query ~lookup q
    else q
  in
  report.common_results_extracted <- List.length q.ctes - ctes_before;
  let ctx =
    {
      options;
      report;
      env = Binder.env_of_lookup lookup;
      steps = [];
      next_loop = 0;
    }
  in
  List.iter
    (fun cte ->
      match cte with
      | Ast.Cte_plain { name; columns; body } -> compile_plain ctx ~name ~columns body
      | Ast.Cte_recursive { name; columns; base; step; union_all } ->
        compile_recursive ctx ~name ~columns ~base ~step ~union_all
      | Ast.Cte_iterative { name; columns; key; base; step; until } ->
        compile_iterative ctx ~name ~columns ~key ~base ~step ~until
          ~final:q.body)
    q.ctes;
  let result_plan =
    Binder.bind_ordered ~offset:q.offset ctx.env q.body q.order_by q.limit
  in
  emit ctx (Program.Return result_plan);
  let steps = optimize_step_plans options (List.rev ctx.steps) in
  (Program.make steps ~result_schema:(Logical.schema result_plan), ctx.report)

let compile ?options ~lookup (q : Ast.full_query) : Program.t =
  fst (compile_with_report ?options ~lookup q)

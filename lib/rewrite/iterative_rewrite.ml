(** The functional rewrite (paper §IV, Algorithm 1): compiles a full
    query — including plain, recursive and iterative CTEs — into a
    single step {!Program} of existing operators plus [rename] and
    [loop].

    For an iterative CTE [R as (R0 ITERATE Ri UNTIL Tc)]:

    {ol
    {- materialize [R0] into the CTE table (step 1 of Table I);}
    {- initialize the loop operator (step 2);}
    {- each iteration: materialize [Ri] into the working table
       (step 3), check the unique-row-key requirement of §II, then
       either {e rename} the working table over the CTE table (full
       update, step 4) or materialize the merge of old and new rows
       keyed by the row identifier (partial update, Algorithm 1
       lines 8–10);}
    {- update the loop and jump back while [Tc] is unmet (steps 5–6);}
    {- finally bind the main query [Qf] over the CTE table.}}

    The optimizer hooks of §V are applied here as well: the
    common-result rewrite runs first (it only reshapes the AST), and
    predicate push down filters the bound non-iterative plan. *)

module Schema = Dbspinner_storage.Schema
module Value = Dbspinner_storage.Value
module Ast = Dbspinner_sql.Ast
module Binder = Dbspinner_plan.Binder
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Bound_expr = Dbspinner_plan.Bound_expr
module Cost = Dbspinner_plan.Cost

exception Rewrite_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Rewrite_error s)) fmt

(** What the optimizer actually did to a query — used by tests, debug
    logging and the CLI's EXPLAIN header. *)
type report = {
  mutable common_results_extracted : int;
  mutable predicates_pushed : int;  (** §V-B pushes into R0 *)
  mutable rename_paths : int;  (** full-update loops using rename *)
  mutable merge_paths : int;  (** partial-update loops using the merge *)
  mutable delta_paths : int;
      (** loops whose working table is built semi-naively (delta-driven
          restricted re-evaluation instead of a full [Ri] pass) *)
  rewrite_log : Rule.log;
      (** per-rule firing log from the rule engine, including cost-guard
          decisions; empty when [Options.use_rule_engine] is off *)
}

let empty_report () =
  {
    common_results_extracted = 0;
    predicates_pushed = 0;
    rename_paths = 0;
    merge_paths = 0;
    delta_paths = 0;
    rewrite_log = Rule.create_log ();
  }

let report_to_string r =
  Printf.sprintf
    "common-results=%d predicates-pushed=%d rename-loops=%d merge-loops=%d \
     delta-loops=%d"
    r.common_results_extracted r.predicates_pushed r.rename_paths r.merge_paths
    r.delta_paths

(* ------------------------------------------------------------------ *)
(* Merge plan for partial updates (Algorithm 1, line 8)                *)

(** [SELECT CASE WHEN w.key IS NOT NULL THEN w.c ELSE cte.c END, ...
    FROM cte LEFT JOIN w ON cte.key = w.key] — rows updated by the
    iteration take the working table's values, all others keep the
    previous version's. *)
let merge_plan ~schema ~key_idx ~cte_name ~work_name =
  let n = Schema.arity schema in
  let left = Logical.scan ~name:cte_name ~schema in
  let right = Logical.scan ~name:work_name ~schema in
  let cond =
    Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col key_idx, Bound_expr.B_col (n + key_idx))
  in
  let joined = Logical.join Logical.Left_outer ~cond left right in
  let exprs =
    List.init n (fun i ->
        let take_new =
          ( Bound_expr.B_is_null (Bound_expr.B_col (n + key_idx), false),
            Bound_expr.B_col (n + i) )
        in
        ( Bound_expr.B_case ([ take_new ], Some (Bound_expr.B_col i)),
          (schema.(i) : Schema.column).name ))
  in
  Logical.project exprs joined

(* ------------------------------------------------------------------ *)
(* Per-CTE compilation                                                 *)

type ctx = {
  options : Options.t;
  allow_push : bool;
      (** cost-arbitration override for the §V-B push into R0; [false]
          means the push is suppressed even though [use_pushdown] is on *)
  report : report;
  mutable env : Binder.env;
  mutable steps : Program.step list;  (** reversed *)
  mutable next_loop : int;
}

let emit ctx step = ctx.steps <- step :: ctx.steps
let position ctx = List.length ctx.steps

let bind_cte_body ctx ~name columns (body : Ast.query) =
  let plan = Binder.bind_query ctx.env body in
  match columns with
  | None -> plan
  | Some names -> (
    match Binder.rename_output plan names with
    | plan -> plan
    | exception Binder.Bind_error m -> error "CTE %s: %s" name m)

let compile_plain ctx ~name ~columns body =
  let plan = bind_cte_body ctx ~name columns body in
  emit ctx (Program.Materialize { target = name; plan });
  ctx.env <- Binder.with_temp ctx.env name (Logical.schema plan)

let compile_recursive ctx ~name ~columns ~base ~step ~union_all =
  let base_plan = bind_cte_body ctx ~name columns base in
  let schema = Logical.schema base_plan in
  let work_name = name ^ "#rwork" in
  let step_env = Binder.with_temp ctx.env name schema in
  let step_plan = Binder.bind_query step_env step in
  if Schema.arity (Logical.schema step_plan) <> Schema.arity schema then
    error
      "recursive CTE %s: the recursive part returns %d columns but the base \
       returns %d"
      name
      (Schema.arity (Logical.schema step_plan))
      (Schema.arity schema);
  let step_plan = Logical.rename_scans [ (name, work_name) ] step_plan in
  let step_plan = Binder.rename_output step_plan (Schema.column_names schema) in
  emit ctx
    (Program.Recursive_cte
       {
         name;
         work_name;
         base = base_plan;
         step_plan;
         union_all;
         max_recursion = ctx.options.Options.max_recursion;
       });
  ctx.env <- Binder.with_temp ctx.env name schema

(** Does the iterative part update the entire dataset? Algorithm 1
    branches on the presence of a WHERE clause; in addition the FROM
    clause must preserve every CTE row — the CTE driving a chain of
    LEFT JOINs does, while an inner join (possibly introduced by the
    outer-to-inner rewrite) can drop rows and therefore requires the
    merge path. *)
let rec cte_preserving_from cte_name = function
  | Ast.From_table { table; _ } ->
    String.lowercase_ascii table = String.lowercase_ascii cte_name
  | Ast.From_subquery _ -> false
  | Ast.From_join { left; kind = Ast.Left_outer; _ } ->
    cte_preserving_from cte_name left
  | Ast.From_join _ -> false

let updates_entire_dataset ~cte_name (step : Ast.query) =
  match step with
  | Ast.Q_select s -> (
    s.Ast.where = None
    && s.Ast.having = None
    &&
    match s.Ast.from with
    | Some from -> cte_preserving_from cte_name from
    | None -> false)
  | Ast.Q_union _ | Ast.Q_intersect _ | Ast.Q_except _ -> true

let bind_termination ~schema ~cte_name (t : Ast.termination) :
    Program.termination =
  match t with
  | Ast.T_iterations n ->
    if n <= 0 then error "UNTIL %d ITERATIONS: count must be positive" n;
    Program.Max_iterations n
  | Ast.T_updates n ->
    if n <= 0 then error "UNTIL %d UPDATES: count must be positive" n;
    Program.Max_updates n
  | Ast.T_delta n -> Program.Delta_at_most n
  | Ast.T_data { any; cond } ->
    let scope = Binder.scope_of_schema ~qualifier:cte_name schema in
    Program.Data { any; pred = Binder.bind_scalar scope cond }

let compile_iterative ctx ~name ~columns ~key ~base ~step ~until
    ~(final : Ast.query) =
  let options = ctx.options in
  (* --- non-iterative part R0 --------------------------------------- *)
  let base_plan = bind_cte_body ctx ~name columns base in
  let schema = Logical.schema base_plan in
  let column_names = Schema.column_names schema in
  (* Predicate push down (§V-B): filter R0 with the sound part of the
     final query's WHERE clause. The rule-engine path and the legacy
     path call the same [Pushdown.pushable_predicate]; the engine path
     additionally logs the firing (counters are derived from the log
     after compilation). *)
  let base_plan =
    if not (options.Options.use_pushdown && ctx.allow_push) then base_plan
    else if options.Options.use_rule_engine then
      Rule.run
        (Engine.pushdown_rule ~cte_name:name ~columns:column_names ~step
           ~final ~schema)
        ctx.report.rewrite_log base_plan
    else
      match
        Pushdown.pushable_predicate ~cte_name:name ~columns:column_names ~step
          ~final
      with
      | None -> base_plan
      | Some pred ->
        ctx.report.predicates_pushed <- ctx.report.predicates_pushed + 1;
        let scope = Binder.scope_of_schema schema in
        Logical.filter (Binder.bind_scalar scope pred) base_plan
  in
  (* --- row identifier ----------------------------------------------- *)
  let key_idx =
    match key with
    | Some k -> (
      match Schema.index_of schema k with
      | Some i -> i
      | None -> error "iterative CTE %s: KEY column %s not in its schema" name k)
    | None -> 0
  in
  (* --- iterative part Ri -------------------------------------------- *)
  let step_env = Binder.with_temp ctx.env name schema in
  let step_plan = Binder.bind_query step_env step in
  if Schema.arity (Logical.schema step_plan) <> Schema.arity schema then
    error
      "iterative CTE %s: the iterative part returns %d columns but the \
       non-iterative part returns %d"
      name
      (Schema.arity (Logical.schema step_plan))
      (Schema.arity schema);
  let step_plan = Binder.rename_output step_plan column_names in
  let work_name = name ^ "#work" in
  let merge_name = name ^ "#merge" in
  let termination = bind_termination ~schema ~cte_name:name until in
  (* --- emit Table-I steps ------------------------------------------- *)
  let loop_id = ctx.next_loop in
  ctx.next_loop <- ctx.next_loop + 1;
  emit ctx (Program.Materialize { target = name; plan = base_plan });
  emit ctx
    (Program.Init_loop
       {
         loop_id;
         termination;
         cte = name;
         key_idx;
         guard = options.Options.max_iterations_guard;
       });
  let body_start = position ctx in
  emit ctx (Program.Snapshot { loop_id });
  (* Semi-naive eligibility: with the rule engine the working-table
     Materialize is pattern-matched and reconstructed as a
     Delta_materialize by the registered rule; the legacy path calls
     the analyzer directly. Same [Delta.analyze], same step. *)
  (let work_materialize =
     Program.Materialize { target = work_name; plan = step_plan }
   in
   if not options.Options.use_delta then emit ctx work_materialize
   else if options.Options.use_rule_engine then
     emit ctx
       (Rule.run
          (Engine.delta_rule ~loop_id ~cte:name ~key_idx ~work_name)
          ctx.report.rewrite_log work_materialize)
   else
     let delta_analysis =
       Delta.analyze ~cte:name ~key_idx ~delta_name:(name ^ "#delta")
         ~affected_name:(name ^ "#affected") step_plan
     in
     match delta_analysis with
     | Some { Delta.restricted_plan; affected_plans } ->
       ctx.report.delta_paths <- ctx.report.delta_paths + 1;
       emit ctx
         (Program.Delta_materialize
            {
              loop_id;
              target = work_name;
              cte = name;
              key_idx;
              full_plan = step_plan;
              restricted_plan;
              affected_plans;
              delta_name = name ^ "#delta";
              affected_name = name ^ "#affected";
            })
     | None -> emit ctx work_materialize);
  emit ctx (Program.Assert_unique_key { temp = work_name; key_idx });
  let full_update = updates_entire_dataset ~cte_name:name step in
  if full_update && options.Options.use_rename then begin
    ctx.report.rename_paths <- ctx.report.rename_paths + 1;
    (* Minimal data movement: the working table becomes the CTE table. *)
    emit ctx (Program.Rename { from_ = work_name; into = name })
  end
  else begin
    ctx.report.merge_paths <- ctx.report.merge_paths + 1;
    let plan = merge_plan ~schema ~key_idx ~cte_name:name ~work_name in
    emit ctx (Program.Materialize { target = merge_name; plan });
    if options.Options.use_rename then begin
      emit ctx (Program.Rename { from_ = merge_name; into = name });
      emit ctx (Program.Drop_temp work_name)
    end
    else begin
      (* Baseline of §VII-B: copy the merged data back into the main
         table instead of swapping pointers. *)
      emit ctx
        (Program.Materialize
           { target = name; plan = Logical.scan ~name:merge_name ~schema });
      emit ctx (Program.Drop_temp merge_name);
      emit ctx (Program.Drop_temp work_name)
    end
  end;
  emit ctx (Program.Loop_end { loop_id; body_start });
  ctx.env <- Binder.with_temp ctx.env name schema

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

(** Sink filters through every emitted plan. Under the rule engine
    this is the per-step [plan-filter-pushdown] rule (logging each
    step it moved a filter in); the legacy path maps the same
    [Plan_pushdown.push_filters] unconditionally. *)
let optimize_step_plans options log (steps : Program.step list) :
    Program.step list =
  if not options.Options.use_pushdown then steps
  else if options.Options.use_rule_engine then
    List.map (Rule.run Engine.step_pushdown_rule log) steps
  else List.map (Engine.map_step_plans Plan_pushdown.push_filters) steps

(** One full compilation under explicit cost-arbitration overrides
    ([allow_push], [allow_common]); the cost-based selection below
    recompiles with a rewrite disabled to price the alternative. *)
let compile_once ~options ~allow_push ~allow_common ~lookup
    (q : Ast.full_query) : Program.t * report =
  let report = empty_report () in
  let q =
    if options.Options.use_rule_engine then
      Rule.run
        (Engine.ast_pipeline ~options ~allow_common ~lookup)
        report.rewrite_log q
    else begin
      let q =
        if options.Options.use_constant_folding then Fold.fold_full_query q
        else q
      in
      let q =
        if options.Options.use_outer_to_inner then
          Outer_to_inner.simplify_full_query q
        else q
      in
      let ctes_before = List.length q.ctes in
      let q =
        if options.Options.use_common_result && allow_common then
          Common_result.rewrite_full_query ~lookup q
        else q
      in
      report.common_results_extracted <- List.length q.ctes - ctes_before;
      q
    end
  in
  let ctx =
    {
      options;
      allow_push;
      report;
      env = Binder.env_of_lookup lookup;
      steps = [];
      next_loop = 0;
    }
  in
  List.iter
    (fun cte ->
      match cte with
      | Ast.Cte_plain { name; columns; body } -> compile_plain ctx ~name ~columns body
      | Ast.Cte_recursive { name; columns; base; step; union_all } ->
        compile_recursive ctx ~name ~columns ~base ~step ~union_all
      | Ast.Cte_iterative { name; columns; key; base; step; until } ->
        compile_iterative ctx ~name ~columns ~key ~base ~step ~until
          ~final:q.body)
    q.ctes;
  let result_plan =
    Binder.bind_ordered ~offset:q.offset ctx.env q.body q.order_by q.limit
  in
  emit ctx (Program.Return result_plan);
  let steps = optimize_step_plans options report.rewrite_log (List.rev ctx.steps) in
  (* Engine path: the firing counters fall out of the rule log. *)
  if options.Options.use_rule_engine then begin
    report.common_results_extracted <-
      Rule.fired_count report.rewrite_log "common-result";
    report.predicates_pushed <-
      Rule.fired_count report.rewrite_log "predicate-pushdown";
    report.delta_paths <- Rule.fired_count report.rewrite_log "semi-naive-delta"
  end;
  (Program.make steps ~result_schema:(Logical.schema result_plan), ctx.report)

(* ------------------------------------------------------------------ *)
(* Cost-based rewrite selection                                        *)

(** A compile candidate during arbitration: the overrides it was built
    with plus the result. *)
type candidate = {
  c_allow_push : bool;
  c_allow_common : bool;
  c_program : Program.t;
  c_report : report;
}

(** Choose between the §V-B predicate push and the §V-A common-result
    hoist by estimated cost: starting from the everything-on candidate,
    a cost-guarded rule per rewrite recompiles with that rewrite
    disabled and keeps the drop only when {!Cost.program} prices it
    strictly cheaper (e.g. a hoist is pure overhead when the loop is
    expected to run once). Guard decisions land in the winning
    candidate's rewrite log. *)
let arbitrate ~options ~lookup ~statistics q (first : candidate) :
    Program.t * report =
  let cost c = (Cost.program statistics c.c_program).total_cost in
  let recompile ~allow_push ~allow_common =
    let program, report =
      compile_once ~options ~allow_push ~allow_common ~lookup q
    in
    {
      c_allow_push = allow_push;
      c_allow_common = allow_common;
      c_program = program;
      c_report = report;
    }
  in
  let drop_push =
    Rule.make ~name:"cost:no-predicate-pushdown" (fun c ->
        if not (c.c_allow_push && c.c_report.predicates_pushed > 0) then None
        else
          Some (recompile ~allow_push:false ~allow_common:c.c_allow_common))
  in
  let drop_common =
    Rule.make ~name:"cost:no-common-result" (fun c ->
        if not (c.c_allow_common && c.c_report.common_results_extracted > 0)
        then None
        else Some (recompile ~allow_push:c.c_allow_push ~allow_common:false))
  in
  let pipeline =
    Rule.(cost_guard ~cost drop_push >>> cost_guard ~cost drop_common)
  in
  let decisions = Rule.create_log () in
  let winner = Rule.run pipeline decisions first in
  Rule.merge ~into:winner.c_report.rewrite_log decisions;
  (winner.c_program, winner.c_report)

let compile_with_report ?(options = Options.default) ?statistics ~lookup
    (q : Ast.full_query) : Program.t * report =
  let program, report =
    compile_once ~options ~allow_push:true ~allow_common:true ~lookup q
  in
  match statistics with
  | Some statistics
    when options.Options.cost_based_rewrites
         && (report.predicates_pushed > 0
            || report.common_results_extracted > 0) ->
    arbitrate ~options ~lookup ~statistics q
      {
        c_allow_push = true;
        c_allow_common = true;
        c_program = program;
        c_report = report;
      }
  | _ -> (program, report)

let compile ?options ?statistics ~lookup (q : Ast.full_query) : Program.t =
  fst (compile_with_report ?options ?statistics ~lookup q)

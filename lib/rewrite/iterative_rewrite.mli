(** The functional rewrite (paper §IV, Algorithm 1): compiles a full
    query — plain, recursive and iterative CTEs included — into a
    single executable step {!Program} built from ordinary operators
    plus [rename] and [loop]. The §V optimizer rules are applied here
    under their {!Options} switches: outer-to-inner simplification and
    the common-result rewrite reshape the AST first; predicate push
    down filters the bound non-iterative plan and then sinks filters
    through every emitted plan. *)

module Schema = Dbspinner_storage.Schema
module Ast = Dbspinner_sql.Ast
module Program = Dbspinner_plan.Program

exception Rewrite_error of string

(** [compile ~options ~lookup q] — [lookup] resolves base-table
    schemas. [statistics] supplies base-table cardinalities; when given
    (and [Options.cost_based_rewrites] is on) the predicate-push vs
    common-result-hoist decision is arbitrated by
    {!Dbspinner_plan.Cost.program} instead of staying always-on.
    @raise Rewrite_error on invalid iterative CTEs (arity mismatch
    between the parts, unknown KEY column, non-positive counts)
    @raise Dbspinner_plan.Binder.Bind_error on name-resolution
    failures. *)
val compile :
  ?options:Options.t ->
  ?statistics:Dbspinner_plan.Cost.statistics ->
  lookup:(string -> Schema.t option) ->
  Ast.full_query ->
  Program.t

(** What the optimizer did: counts of extracted common results, pushed
    predicates, rename vs merge loop paths, loops compiled for
    semi-naive (delta-driven) evaluation, and the per-rule firing log
    (populated when [Options.use_rule_engine] is on, including
    cost-guard decisions). *)
type report = {
  mutable common_results_extracted : int;
  mutable predicates_pushed : int;
  mutable rename_paths : int;
  mutable merge_paths : int;
  mutable delta_paths : int;
  rewrite_log : Rule.log;
}

val report_to_string : report -> string

val compile_with_report :
  ?options:Options.t ->
  ?statistics:Dbspinner_plan.Cost.statistics ->
  lookup:(string -> Schema.t option) ->
  Ast.full_query ->
  Program.t * report

(** Exposed for tests: the Algorithm-1 full-update criterion — true
    when [Ri] has no WHERE/HAVING and its FROM preserves every CTE row
    (the CTE driving a chain of LEFT JOINs). *)
val updates_entire_dataset : cte_name:string -> Ast.query -> bool

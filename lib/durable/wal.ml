type policy =
  | Always
  | Batch
  | Off

let policy_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "off" -> Some Off
  | _ -> None

let policy_to_string = function
  | Always -> "always"
  | Batch -> "batch"
  | Off -> "off"

type record = { seq : int; digest : int; sql : string }

type t = {
  wal_path : string;
  policy : policy;
  fd : Unix.file_descr;
  buf : Buffer.t;  (** user-space staging for [Off]; drained per append otherwise *)
  mutable unsynced : bool;  (** kernel-buffered bytes not yet fsynced *)
  mutable records_written : int;
  mutable bytes_written : int;
  mutable fsyncs : int;
}

let rec eintr_safe f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_safe f

let create ~path ~policy =
  let fd =
    eintr_safe (fun () ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644)
  in
  {
    wal_path = path;
    policy;
    fd;
    buf = Buffer.create 4096;
    unsynced = false;
    records_written = 0;
    bytes_written = 0;
    fsyncs = 0;
  }

let path t = t.wal_path

let record_payload r =
  let buf = Buffer.create (String.length r.sql + 32) in
  Codec.add_string buf "STMT";
  Codec.add_int buf r.seq;
  Codec.add_int buf r.digest;
  Codec.add_string buf r.sql;
  Buffer.contents buf

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = eintr_safe (fun () -> Unix.write fd b !off (len - !off)) in
    off := !off + n
  done

let flush t =
  if Buffer.length t.buf > 0 then begin
    write_all t.fd (Buffer.contents t.buf);
    Buffer.clear t.buf;
    t.unsynced <- true
  end

let do_fsync t =
  eintr_safe (fun () -> Unix.fsync t.fd);
  t.fsyncs <- t.fsyncs + 1;
  t.unsynced <- false

let sync t =
  flush t;
  if t.unsynced then do_fsync t

let append t r =
  let framed = Frame.encode (record_payload r) in
  t.records_written <- t.records_written + 1;
  t.bytes_written <- t.bytes_written + String.length framed;
  match t.policy with
  | Off ->
    Buffer.add_string t.buf framed;
    (* Keep the user-space buffer bounded even in Off mode. *)
    if Buffer.length t.buf >= 1 lsl 20 then flush t
  | Batch ->
    Buffer.add_string t.buf framed;
    flush t
  | Always ->
    Buffer.add_string t.buf framed;
    flush t;
    do_fsync t

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let records_written t = t.records_written
let bytes_written t = t.bytes_written
let fsyncs t = t.fsyncs

type scan = {
  records : record list;
  valid_bytes : int;
  total_bytes : int;
  tail : Frame.tail;
}

exception Bad_record of string

let decode_record payload =
  let cur = Codec.cursor payload in
  let tag = Codec.read_string cur in
  if tag <> "STMT" then raise (Bad_record (Printf.sprintf "unknown wal record %S" tag));
  let seq = Codec.read_int cur in
  let digest = Codec.read_int cur in
  let sql = Codec.read_string cur in
  if Codec.remaining cur <> 0 then raise (Bad_record "trailing bytes in wal record");
  { seq; digest; sql }

let scan ~path =
  let fscan = Frame.scan_file path in
  (* Decode payloads in order; a frame that passes its checksum but does
     not parse as a record still poisons everything after it. *)
  let rec decode acc = function
    | [] -> (List.rev acc, None)
    | p :: rest -> (
      match decode_record p with
      | r -> decode (r :: acc) rest
      | exception (Bad_record m | Codec.Decode_error m) -> (List.rev acc, Some m))
  in
  let records, decode_err = decode [] fscan.Frame.payloads in
  let tail =
    match (fscan.Frame.tail, decode_err) with
    | Frame.Clean, Some m -> Frame.Corrupt (Printf.sprintf "undecodable wal record: %s" m)
    | t, Some m ->
      (* Frame damage after an undecodable record: report the earlier problem. *)
      ignore t;
      Frame.Corrupt (Printf.sprintf "undecodable wal record: %s" m)
    | t, None -> t
  in
  {
    records;
    valid_bytes = fscan.Frame.valid_bytes;
    total_bytes = fscan.Frame.total_bytes;
    tail;
  }

(** On-disk record framing shared by the write-ahead log and snapshot
    files: [magic(4) | payload-length(4, LE) | crc32(payload)(4, LE) |
    payload]. A reader can always decide whether a file ends in a
    complete record, a torn (partially written) record, or outright
    corruption — the distinction recovery needs to make between "the
    process died mid-append" and "the log is damaged". *)

val magic : string
val header_bytes : int

(** Upper bound on a single frame payload (a malformed length field
    must not make recovery allocate unbounded memory). *)
val max_payload_bytes : int

(** Serialize one payload as a framed record. *)
val encode : string -> string

(** How a scan ended. [Torn] means the file ends mid-record (expected
    after a crash during an append — the prefix is intact). [Corrupt]
    means bytes that can never be a record prefix: bad magic, an
    implausible length, or a checksum mismatch. Either way nothing at
    or after [valid_bytes] was returned as a payload. *)
type tail =
  | Clean
  | Torn of string
  | Corrupt of string

type scan = {
  payloads : string list;  (** complete, checksum-valid records, in order *)
  valid_bytes : int;  (** prefix length covered by [payloads] *)
  total_bytes : int;
  tail : tail;
}

val scan_string : string -> scan

(** Scan a whole file. Missing file = empty clean scan. *)
val scan_file : string -> scan

val tail_to_string : tail -> string

(** Catalog snapshots: a full serialization of the shared base tables
    (schema, primary key, mutation version, rows in storage order)
    written atomically (tmp + fsync + rename), so a crash mid-checkpoint
    can never damage the previous snapshot. Row order and table
    versions are preserved exactly — recovery must reproduce a catalog
    bit-identical to the one that was checkpointed. *)

module Catalog = Dbspinner_storage.Catalog

type table_data = {
  name : string;
  primary_key : string option;  (** column name *)
  version : int;  (** mutation version at snapshot time *)
  schema : (string * Dbspinner_storage.Column_type.t) list;
  rows : Dbspinner_storage.Row.t list;  (** in storage order *)
}

(** Serialize every base table of [catalog] to [path], atomically.
    [seq] is the checkpoint sequence number recorded in the header. *)
val write : path:string -> seq:int -> Catalog.t -> unit

(** Load and fully validate a snapshot file: every frame checksummed,
    header/footer consistent. [Error reason] on any damage. *)
val load : path:string -> (int * table_data list, string) result

(** Recreate the loaded tables inside [catalog] (expected empty of
    conflicting names), restoring rows, primary-key indexes and
    mutation versions exactly. *)
val restore : Catalog.t -> table_data list -> unit

(** Snapshot files: a framed sequence of records —
    [DBSNAP <format> <seq> <ntables>] header, then per table a [TBL]
    record (name, primary key, version, schema, row count) followed by
    [ROWS] chunks, then an [END <ntables>] footer. Every frame is
    CRC-checksummed by {!Frame}; a snapshot missing its footer (or
    failing any checksum) is rejected as a whole — snapshots are
    written atomically, so a damaged one means external corruption,
    never a crash artifact. *)

module Catalog = Dbspinner_storage.Catalog
module Table = Dbspinner_storage.Table
module Schema = Dbspinner_storage.Schema
module Row = Dbspinner_storage.Row

type table_data = {
  name : string;
  primary_key : string option;
  version : int;
  schema : (string * Dbspinner_storage.Column_type.t) list;
  rows : Row.t list;
}

let format_version = 1
let rows_per_chunk = 4096

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let header_payload ~seq ~ntables =
  let buf = Buffer.create 32 in
  Codec.add_string buf "DBSNAP";
  Codec.add_int buf format_version;
  Codec.add_int buf seq;
  Codec.add_int buf ntables;
  Buffer.contents buf

let table_payload (tbl : Table.t) =
  let schema = Table.schema tbl in
  let buf = Buffer.create 256 in
  Codec.add_string buf "TBL";
  Codec.add_string buf (Table.name tbl);
  (match Table.primary_key tbl with
  | None -> Codec.add_int buf 0
  | Some i ->
    Codec.add_int buf 1;
    Codec.add_string buf (List.nth (Schema.column_names schema) i));
  Codec.add_int buf (Table.version tbl);
  Codec.add_int buf (Schema.arity schema);
  Array.iter
    (fun (c : Schema.column) ->
      Codec.add_string buf c.Schema.name;
      Codec.add_column_type buf c.Schema.ty)
    schema;
  Codec.add_int buf (Table.cardinality tbl);
  Buffer.contents buf

let rows_payload rows =
  let buf = Buffer.create 4096 in
  Codec.add_string buf "ROWS";
  Codec.add_int buf (List.length rows);
  List.iter (fun (row : Row.t) -> Array.iter (Codec.add_value buf) row) rows;
  Buffer.contents buf

let footer_payload ~ntables =
  let buf = Buffer.create 16 in
  Codec.add_string buf "END";
  Codec.add_int buf ntables;
  Buffer.contents buf

let rec chunks n = function
  | [] -> []
  | rows ->
    let rec take k acc rest =
      match k, rest with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | k, r :: rest -> take (k - 1) (r :: acc) rest
    in
    let chunk, rest = take n [] rows in
    chunk :: chunks n rest

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write ~path ~seq catalog =
  let bindings =
    Catalog.base_bindings catalog
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Frame.encode (header_payload ~seq ~ntables:(List.length bindings)));
     List.iter
       (fun (_, tbl) ->
         output_string oc (Frame.encode (table_payload tbl));
         List.iter
           (fun chunk -> output_string oc (Frame.encode (rows_payload chunk)))
           (chunks rows_per_chunk (Table.snapshot_rows tbl)))
       bindings;
     output_string oc (Frame.encode (footer_payload ~ntables:(List.length bindings)));
     flush oc;
     (* Data must be on disk before the rename publishes the file. *)
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

exception Bad of string

let load ~path : (int * table_data list, string) result =
  let scan = Frame.scan_file path in
  match scan.Frame.tail with
  | Frame.Torn m | Frame.Corrupt m ->
    Error (Printf.sprintf "%s: %s" path m)
  | Frame.Clean -> (
    try
      let frames = scan.Frame.payloads in
      let expect_tag cur tag =
        let got = Codec.read_string cur in
        if got <> tag then raise (Bad (Printf.sprintf "expected %s record, got %s" tag got))
      in
      match frames with
      | [] -> Error (Printf.sprintf "%s: empty snapshot" path)
      | header :: rest ->
        let cur = Codec.cursor header in
        expect_tag cur "DBSNAP";
        let fmt = Codec.read_int cur in
        if fmt <> format_version then
          raise (Bad (Printf.sprintf "unsupported snapshot format %d" fmt));
        let seq = Codec.read_int cur in
        let ntables = Codec.read_int cur in
        let rec read_tables acc n frames =
          if n = 0 then (List.rev acc, frames)
          else
            match frames with
            | [] -> raise (Bad "snapshot ends before all tables were read")
            | thdr :: frames ->
              let cur = Codec.cursor thdr in
              expect_tag cur "TBL";
              let name = Codec.read_string cur in
              let primary_key =
                if Codec.read_int cur = 1 then Some (Codec.read_string cur)
                else None
              in
              let version = Codec.read_int cur in
              let ncols = Codec.read_int cur in
              (* Explicit loops: Array.init/List.init do not guarantee
                 the evaluation order a sequential reader needs. *)
              let schema = ref [] in
              for _ = 1 to ncols do
                let cname = Codec.read_string cur in
                let ty = Codec.read_column_type cur in
                schema := (cname, ty) :: !schema
              done;
              let schema = List.rev !schema in
              let nrows = Codec.read_int cur in
              let rec read_rows acc remaining frames =
                if remaining = 0 then (List.rev acc, frames)
                else
                  match frames with
                  | [] -> raise (Bad "snapshot ends inside a table's rows")
                  | chunk :: frames ->
                    let cur = Codec.cursor chunk in
                    expect_tag cur "ROWS";
                    let count = Codec.read_int cur in
                    if count > remaining then
                      raise (Bad "row chunk exceeds declared cardinality");
                    let acc = ref acc in
                    for _ = 1 to count do
                      let row =
                        Array.make ncols Dbspinner_storage.Value.Null
                      in
                      for i = 0 to ncols - 1 do
                        row.(i) <- Codec.read_value cur
                      done;
                      acc := row :: !acc
                    done;
                    read_rows !acc (remaining - count) frames
              in
              let rows, frames = read_rows [] nrows frames in
              read_tables
                ({ name; primary_key; version; schema; rows } :: acc)
                (n - 1) frames
        in
        let tables, frames = read_tables [] ntables rest in
        (match frames with
        | [ footer ] ->
          let cur = Codec.cursor footer in
          expect_tag cur "END";
          if Codec.read_int cur <> ntables then
            raise (Bad "footer table count disagrees with header")
        | [] -> raise (Bad "snapshot footer missing")
        | _ -> raise (Bad "trailing frames after snapshot footer"));
        Ok (seq, tables)
    with
    | Bad m -> Error (Printf.sprintf "%s: %s" path m)
    | Codec.Decode_error m -> Error (Printf.sprintf "%s: %s" path m))

let restore catalog tables =
  List.iter
    (fun t ->
      let schema =
        Dbspinner_storage.Schema.make
          (List.map
             (fun (name, ty) -> Dbspinner_storage.Schema.column ~ty name)
             t.schema)
      in
      let tbl =
        Catalog.create_table ?primary_key:t.primary_key catalog ~name:t.name
          schema
      in
      Table.restore_rows tbl t.rows;
      Table.set_version tbl t.version)
    tables

(** Exact, human-inspectable serialization of values, rows and schemas
    for snapshot and WAL payloads. Floats round-trip bit-exactly (hex
    float literals), strings are length-prefixed so arbitrary bytes —
    embedded newlines, quotes, NULs — survive. *)

exception Decode_error of string

type cursor

val cursor : string -> cursor

(** Bytes remaining after the cursor position. *)
val remaining : cursor -> int

val add_value : Buffer.t -> Dbspinner_storage.Value.t -> unit

(** @raise Decode_error on malformed input. *)
val read_value : cursor -> Dbspinner_storage.Value.t

(** Length-prefixed string (safe for arbitrary bytes). *)
val add_string : Buffer.t -> string -> unit

val read_string : cursor -> string
val add_int : Buffer.t -> int -> unit
val read_int : cursor -> int
val add_column_type : Buffer.t -> Dbspinner_storage.Column_type.t -> unit
val read_column_type : cursor -> Dbspinner_storage.Column_type.t

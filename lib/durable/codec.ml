(** Serialization for durable payloads. Space-terminated tagged tokens;
    strings are netstring-style ([S<len>:<bytes> ]) so any byte
    sequence round-trips; floats use hex literals ([%h]) for bit-exact
    round-trips (with [nan]/[inf]/[-inf] spelled out). *)

module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type

exception Decode_error of string

type cursor = { s : string; mutable pos : int }

let cursor s = { s; pos = 0 }
let remaining c = String.length c.s - c.pos

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let expect_char c ch =
  if c.pos >= String.length c.s then fail "unexpected end of payload";
  let got = c.s.[c.pos] in
  if got <> ch then fail "expected %C at offset %d, got %C" ch c.pos got;
  c.pos <- c.pos + 1

(** Read up to (and consume) the next space. *)
let read_token c =
  match String.index_from_opt c.s c.pos ' ' with
  | None -> fail "unterminated token at offset %d" c.pos
  | Some i ->
    let tok = String.sub c.s c.pos (i - c.pos) in
    c.pos <- i + 1;
    tok

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ' '

let read_int c =
  let tok = read_token c in
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail "expected integer, got %S" tok

let add_string buf s =
  Buffer.add_char buf 'S';
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s;
  Buffer.add_char buf ' '

let read_string c =
  expect_char c 'S';
  let colon =
    match String.index_from_opt c.s c.pos ':' with
    | Some i when i - c.pos <= 10 -> i
    | _ -> fail "malformed string length at offset %d" c.pos
  in
  let len =
    match int_of_string_opt (String.sub c.s c.pos (colon - c.pos)) with
    | Some n when n >= 0 -> n
    | _ -> fail "malformed string length at offset %d" c.pos
  in
  if colon + 1 + len > String.length c.s then
    fail "string of %d bytes truncated at offset %d" len c.pos;
  let s = String.sub c.s (colon + 1) len in
  c.pos <- colon + 1 + len;
  expect_char c ' ';
  s

let encode_float f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let decode_float tok =
  match tok with
  | "nan" -> Float.nan
  | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | _ -> (
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail "malformed float %S" tok)

let add_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "N "
  | Value.Int i ->
    Buffer.add_char buf 'I';
    add_int buf i
  | Value.Float f ->
    Buffer.add_char buf 'F';
    Buffer.add_string buf (encode_float f);
    Buffer.add_char buf ' '
  | Value.Bool b -> Buffer.add_string buf (if b then "B1 " else "B0 ")
  | Value.Str s ->
    Buffer.add_char buf 'V';
    add_string buf s

let read_value c : Value.t =
  if c.pos >= String.length c.s then fail "unexpected end of payload";
  let tag = c.s.[c.pos] in
  match tag with
  | 'N' ->
    c.pos <- c.pos + 1;
    expect_char c ' ';
    Value.Null
  | 'I' ->
    c.pos <- c.pos + 1;
    Value.Int (read_int c)
  | 'F' ->
    c.pos <- c.pos + 1;
    Value.Float (decode_float (read_token c))
  | 'B' ->
    c.pos <- c.pos + 1;
    let tok = read_token c in
    if tok = "1" then Value.Bool true
    else if tok = "0" then Value.Bool false
    else fail "malformed bool %S" tok
  | 'V' ->
    c.pos <- c.pos + 1;
    Value.Str (read_string c)
  | _ -> fail "unknown value tag %C at offset %d" tag c.pos

let add_column_type buf (ty : Column_type.t) =
  Buffer.add_string buf
    (match ty with
    | Column_type.T_int -> "i "
    | Column_type.T_float -> "f "
    | Column_type.T_string -> "s "
    | Column_type.T_bool -> "b "
    | Column_type.T_any -> "a ")

let read_column_type c : Column_type.t =
  match read_token c with
  | "i" -> Column_type.T_int
  | "f" -> Column_type.T_float
  | "s" -> Column_type.T_string
  | "b" -> Column_type.T_bool
  | "a" -> Column_type.T_any
  | tok -> fail "unknown column type %S" tok

(** The write-ahead log: an append-only file of framed, CRC-checksummed
    logical statement records. Each record carries the committed SQL
    script plus the base-catalog mutation digest observed after it ran,
    so replay can verify — statement by statement — that it reproduced
    the exact pre-crash state.

    Fsync policy decides what an acknowledged write survives:
    - [Always]: fsync per record — survives OS/power crash.
    - [Batch]: write(2) per record (the kernel has the bytes before the
      client sees OK, so SIGKILL loses nothing), fsync on a background
      tick — an OS crash may lose the last un-synced records.
    - [Off]: records buffer in user space and flush opportunistically —
      even a plain process kill may lose the buffered suffix. *)

type policy =
  | Always
  | Batch
  | Off

val policy_of_string : string -> policy option
val policy_to_string : policy -> string

type record = {
  seq : int;  (** monotonically increasing record number *)
  digest : int;  (** {!Dbspinner_storage.Catalog.base_digest} after the script ran *)
  sql : string;  (** the committed script, verbatim *)
}

type t

(** Open (create or append to) a log file. *)
val create : path:string -> policy:policy -> t

val path : t -> string

(** Append one record and apply the policy's per-record durability
    step. Thread-compatible with {!tick} under the caller's lock. *)
val append : t -> record -> unit

(** Push user-space buffered bytes to the kernel (no fsync). *)
val flush : t -> unit

(** Flush, then fsync if any bytes were written since the last sync. *)
val sync : t -> unit

val close : t -> unit

(** {2 Counters} *)

val records_written : t -> int
val bytes_written : t -> int
val fsyncs : t -> int

(** {2 Reading} *)

type scan = {
  records : record list;  (** valid, decodable prefix *)
  valid_bytes : int;
  total_bytes : int;
  tail : Frame.tail;  (** [Clean], or why the rest was discarded *)
}

(** Scan a log file; never raises on damaged input — damage is
    reported in [tail] and everything from the first bad byte on is
    excluded from [records]. A checksum-valid frame whose payload does
    not decode as a record also stops the scan (reported as corrupt). *)
val scan : path:string -> scan

(** Record framing for durable files: [magic | length | crc | payload].
    See the interface for the torn-vs-corrupt distinction the scanner
    draws. *)

let magic = "DBF1"
let header_bytes = 12
let max_payload_bytes = 256 * 1024 * 1024

let encode payload =
  let len = String.length payload in
  if len > max_payload_bytes then
    invalid_arg (Printf.sprintf "Frame.encode: %d-byte payload" len);
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int len);
  Bytes.set_int32_le b 8 (Int32.of_int (Crc32.string payload));
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

type tail =
  | Clean
  | Torn of string
  | Corrupt of string

type scan = {
  payloads : string list;
  valid_bytes : int;
  total_bytes : int;
  tail : tail;
}

let tail_to_string = function
  | Clean -> "clean"
  | Torn m -> "torn record: " ^ m
  | Corrupt m -> "corrupt record: " ^ m

let scan_string data =
  let total = String.length data in
  let rec loop pos acc =
    if pos = total then
      { payloads = List.rev acc; valid_bytes = pos; total_bytes = total;
        tail = Clean }
    else if total - pos < header_bytes then
      {
        payloads = List.rev acc;
        valid_bytes = pos;
        total_bytes = total;
        tail =
          Torn
            (Printf.sprintf "partial %d-byte header at offset %d"
               (total - pos) pos);
      }
    else if String.sub data pos 4 <> magic then
      {
        payloads = List.rev acc;
        valid_bytes = pos;
        total_bytes = total;
        tail = Corrupt (Printf.sprintf "bad frame magic at offset %d" pos);
      }
    else
      let len =
        Int32.to_int
          (Bytes.get_int32_le (Bytes.unsafe_of_string data) (pos + 4))
      in
      if len < 0 || len > max_payload_bytes then
        {
          payloads = List.rev acc;
          valid_bytes = pos;
          total_bytes = total;
          tail =
            Corrupt
              (Printf.sprintf "implausible frame length %d at offset %d" len
                 pos);
        }
      else if pos + header_bytes + len > total then
        {
          payloads = List.rev acc;
          valid_bytes = pos;
          total_bytes = total;
          tail =
            Torn
              (Printf.sprintf
                 "frame at offset %d needs %d payload bytes, file has %d" pos
                 len
                 (total - pos - header_bytes));
        }
      else
        let crc =
          Int32.to_int
            (Bytes.get_int32_le (Bytes.unsafe_of_string data) (pos + 8))
          land 0xffffffff
        in
        let payload = String.sub data (pos + header_bytes) len in
        if Crc32.string payload <> crc then
          {
            payloads = List.rev acc;
            valid_bytes = pos;
            total_bytes = total;
            tail =
              Corrupt (Printf.sprintf "CRC mismatch at offset %d" pos);
          }
        else loop (pos + header_bytes + len) (payload :: acc)
  in
  loop 0 []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path =
  if not (Sys.file_exists path) then
    { payloads = []; valid_bytes = 0; total_bytes = 0; tail = Clean }
  else scan_string (read_file path)

(** The durability manager: owns a data directory containing at most a
    handful of files — [snapshot-%06d.snap] (atomic full-catalog
    checkpoints) and [wal-%06d.wal] (the statement log since that
    checkpoint) — and orchestrates recovery, logging and rotation.

    Invariants:
    - The snapshot with the highest sequence number is the recovery
      root. It must load validly; a damaged newest snapshot is a hard
      {!Durability_error}, never a silent fallback.
    - Only the WAL whose sequence number {e equals} the chosen
      snapshot's is replayed. A WAL {e newer} than the newest snapshot
      is impossible in any crash schedule and is rejected as
      corruption. Older leftovers are ignored and cleaned up.
    - Replay re-executes each logged script and validates the
      base-catalog digest after every record; a mismatch is a hard
      error (the log no longer describes this snapshot).
    - A torn WAL tail (partial final record — the signature of a crash
      mid-append) is discarded and reported. Any other damage
      (checksum/magic failure) is a hard error.
    - Attach ends with a fresh checkpoint + log rotation, so every
      boot starts from [snapshot-k] + empty [wal-k]. *)

module Catalog = Dbspinner_storage.Catalog

exception Durability_error of string

type policy = Wal.policy =
  | Always
  | Batch
  | Off

val policy_of_string : string -> policy option
val policy_to_string : policy -> string

(** What recovery found and did, for operator-facing boot output. *)
type recovery = {
  fresh : bool;  (** no prior state existed *)
  snapshot_seq : int;
  snapshot_tables : int;
  wal_records_applied : int;
  wal_bytes_total : int;
  wal_bytes_discarded : int;  (** torn-tail bytes dropped *)
  torn_tail : string option;  (** why the tail was discarded, if it was *)
}

val render_recovery : recovery -> string

type counters = {
  wal_records : int;
  wal_bytes : int;
  wal_fsyncs : int;
  checkpoints : int;
  ddl_events : int;  (** base-table creates/drops seen via catalog hook *)
}

type t

(** [true] iff [dir] already holds durable state (snapshot or WAL). *)
val has_state : dir:string -> bool

(** Recover [catalog] from [dir] (creating it if needed), then
    checkpoint and rotate. [replay] must execute one logged script
    against the catalog exactly as live execution would, swallowing
    statement-level errors (they are deterministic and were already
    reflected in the logged digest).
    @raise Durability_error on unrecoverable damage. *)
val attach :
  dir:string -> policy:policy -> catalog:Catalog.t -> replay:(string -> unit) -> t

val recovery : t -> recovery
val policy : t -> policy

(** Append one committed script to the WAL. [digest] is the
    base-catalog digest observed after the script ran. Thread-safe. *)
val log_script : t -> digest:int -> sql:string -> unit

(** Records logged since the last checkpoint. *)
val pending_records : t -> int

(** Serialize the catalog, rotate the WAL, delete superseded files.
    Caller must hold whatever lock makes the catalog quiescent. *)
val checkpoint : t -> unit

(** Background maintenance: push buffered WAL bytes toward disk
    ([Batch]: fsync; [Off]: flush to kernel). Thread-safe. *)
val tick : t -> unit

val counters : t -> counters

(** Final sync + close of the WAL. The data directory remains valid. *)
val close : t -> unit

(** CRC-32 (IEEE 802.3 / zlib). Table-driven, one table computed on
    first use. All intermediate values stay within 32 bits, so native
    63-bit ints hold them exactly. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc bytes ofs len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  for i = ofs to ofs + len - 1 do
    crc :=
      table.((!crc lxor Char.code (Bytes.unsafe_get bytes i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xffffffff

let string s = update 0 (Bytes.unsafe_of_string s) 0 (String.length s)

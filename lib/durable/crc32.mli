(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant): the
    per-record checksum of the write-ahead log and snapshot files.
    Pure OCaml, table-driven; values fit the 32-bit range of a native
    int. *)

(** [update crc bytes ofs len] folds a byte range into a running
    checksum (start from [0]). *)
val update : int -> Bytes.t -> int -> int -> int

(** Checksum of a whole string. [string "123456789" = 0xCBF43926]. *)
val string : string -> int

module Catalog = Dbspinner_storage.Catalog

exception Durability_error of string

type policy = Wal.policy =
  | Always
  | Batch
  | Off

let policy_of_string = Wal.policy_of_string
let policy_to_string = Wal.policy_to_string

type recovery = {
  fresh : bool;
  snapshot_seq : int;
  snapshot_tables : int;
  wal_records_applied : int;
  wal_bytes_total : int;
  wal_bytes_discarded : int;
  torn_tail : string option;
}

let render_recovery r =
  if r.fresh then "recovery: fresh data directory, no state to recover"
  else
    Printf.sprintf
      "recovery: snapshot seq=%d tables=%d; wal replayed=%d records \
       (%d bytes)%s"
      r.snapshot_seq r.snapshot_tables r.wal_records_applied
      (r.wal_bytes_total - r.wal_bytes_discarded)
      (match r.torn_tail with
      | None -> ""
      | Some m ->
        Printf.sprintf "; discarded %d-byte torn tail (%s)" r.wal_bytes_discarded m)

type counters = {
  wal_records : int;
  wal_bytes : int;
  wal_fsyncs : int;
  checkpoints : int;
  ddl_events : int;
}

type t = {
  dir : string;
  pol : policy;
  catalog : Catalog.t;
  mutex : Mutex.t;
  mutable wal : Wal.t;
  mutable checkpoint_seq : int;
  mutable next_stmt_seq : int;
  mutable pending : int;  (** records since last checkpoint *)
  mutable checkpoints : int;
  mutable ddl_events : int;
  (* totals carried over from rotated-out WALs *)
  mutable records_base : int;
  mutable bytes_base : int;
  mutable fsyncs_base : int;
  recovered : recovery;
}

(* ------------------------------------------------------------------ *)
(* Directory layout                                                    *)

let snap_path dir seq = Filename.concat dir (Printf.sprintf "snapshot-%06d.snap" seq)
let wal_path dir seq = Filename.concat dir (Printf.sprintf "wal-%06d.wal" seq)

(** Parse [<prefix><digits><suffix>] into the digits. *)
let parse_seq ~prefix ~suffix name =
  let plen = String.length prefix and slen = String.length suffix in
  let n = String.length name in
  if
    n > plen + slen
    && String.sub name 0 plen = prefix
    && String.sub name (n - slen) slen = suffix
  then int_of_string_opt (String.sub name plen (n - plen - slen))
  else None

let list_seqs ~prefix ~suffix dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (parse_seq ~prefix ~suffix)
    |> List.sort compare
  | exception Sys_error _ -> []

let snapshot_seqs = list_seqs ~prefix:"snapshot-" ~suffix:".snap"
let wal_seqs = list_seqs ~prefix:"wal-" ~suffix:".wal"

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let has_state ~dir =
  Sys.file_exists dir && (snapshot_seqs dir <> [] || wal_seqs dir <> [])

(** Delete snapshots/WALs older than [keep] plus any stale [.tmp]. *)
let cleanup dir ~keep =
  let rm p = try Sys.remove p with Sys_error _ -> () in
  List.iter (fun s -> if s < keep then rm (snap_path dir s)) (snapshot_seqs dir);
  List.iter (fun s -> if s < keep then rm (wal_path dir s)) (wal_seqs dir);
  (match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun e ->
        if Filename.check_suffix e ".tmp" then rm (Filename.concat dir e))
      entries
  | exception Sys_error _ -> ());
  fsync_dir dir

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let recover ~dir ~catalog ~replay =
  match List.rev (snapshot_seqs dir) with
  | [] ->
    (match List.rev (wal_seqs dir) with
    | w :: _ ->
      raise
        (Durability_error
           (Printf.sprintf "%s: wal-%06d.wal present but no snapshot — refusing \
                            to guess a base state"
              dir w))
    | [] ->
      ( {
          fresh = true;
          snapshot_seq = -1;
          snapshot_tables = 0;
          wal_records_applied = 0;
          wal_bytes_total = 0;
          wal_bytes_discarded = 0;
          torn_tail = None;
        },
        -1 ))
  | k :: _ ->
    let tables =
      match Snapshot.load ~path:(snap_path dir k) with
      | Ok (seq, tables) ->
        if seq <> k then
          raise
            (Durability_error
               (Printf.sprintf "%s: header seq %d disagrees with filename"
                  (snap_path dir k) seq));
        tables
      | Error m -> raise (Durability_error ("snapshot damaged: " ^ m))
    in
    (* A WAL newer than the newest snapshot cannot arise from a crash
       (the log is only ever created after its snapshot is published). *)
    (match List.filter (fun s -> s > k) (wal_seqs dir) with
    | s :: _ ->
      raise
        (Durability_error
           (Printf.sprintf "wal-%06d.wal is newer than the newest snapshot \
                            (seq %d) — data directory is inconsistent"
              s k))
    | [] -> ());
    Snapshot.restore catalog tables;
    let wscan = Wal.scan ~path:(wal_path dir k) in
    (match wscan.Wal.tail with
    | Frame.Corrupt m ->
      raise (Durability_error (Printf.sprintf "wal-%06d.wal: %s" k m))
    | Frame.Clean | Frame.Torn _ -> ());
    let expected = ref 1 in
    List.iter
      (fun (r : Wal.record) ->
        if r.Wal.seq <> !expected then
          raise
            (Durability_error
               (Printf.sprintf "wal-%06d.wal: record seq %d where %d expected"
                  k r.Wal.seq !expected));
        incr expected;
        replay r.Wal.sql;
        let d = Catalog.base_digest catalog in
        if d <> r.Wal.digest then
          raise
            (Durability_error
               (Printf.sprintf
                  "wal-%06d.wal: digest mismatch after replaying record %d — \
                   replay did not reproduce the logged state"
                  k r.Wal.seq)))
      wscan.Wal.records;
    ( {
        fresh = false;
        snapshot_seq = k;
        snapshot_tables = List.length tables;
        wal_records_applied = List.length wscan.Wal.records;
        wal_bytes_total = wscan.Wal.total_bytes;
        wal_bytes_discarded = wscan.Wal.total_bytes - wscan.Wal.valid_bytes;
        torn_tail =
          (match wscan.Wal.tail with
          | Frame.Torn m -> Some m
          | Frame.Clean | Frame.Corrupt _ -> None);
      },
      k )

(* ------------------------------------------------------------------ *)
(* Checkpoint / rotation                                               *)

(** Publish snapshot-[seq], open wal-[seq], delete everything older.
    Crash-safe at every point: the old snapshot+WAL pair stays intact
    until the new snapshot has been fsynced and renamed into place. *)
let rotate_locked t =
  let seq = t.checkpoint_seq + 1 in
  Snapshot.write ~path:(snap_path t.dir seq) ~seq t.catalog;
  let nw = Wal.create ~path:(wal_path t.dir seq) ~policy:t.pol in
  t.records_base <- t.records_base + Wal.records_written t.wal;
  t.bytes_base <- t.bytes_base + Wal.bytes_written t.wal;
  t.fsyncs_base <- t.fsyncs_base + Wal.fsyncs t.wal;
  Wal.close t.wal;
  t.wal <- nw;
  t.checkpoint_seq <- seq;
  t.next_stmt_seq <- 1;
  t.pending <- 0;
  t.checkpoints <- t.checkpoints + 1;
  cleanup t.dir ~keep:seq

let attach ~dir ~policy ~catalog ~replay =
  mkdir_p dir;
  let recovered, k = recover ~dir ~catalog ~replay in
  (* Boot checkpoint: collapse snapshot+WAL into a fresh pair so every
     run starts from an empty log (also captures pre-attach preloads). *)
  let seq = k + 1 in
  Snapshot.write ~path:(snap_path dir seq) ~seq catalog;
  let wal = Wal.create ~path:(wal_path dir seq) ~policy in
  cleanup dir ~keep:seq;
  let t =
    {
      dir;
      pol = policy;
      catalog;
      mutex = Mutex.create ();
      wal;
      checkpoint_seq = seq;
      next_stmt_seq = 1;
      pending = 0;
      checkpoints = 1;
      ddl_events = 0;
      records_base = 0;
      bytes_base = 0;
      fsyncs_base = 0;
      recovered;
    }
  in
  Catalog.set_base_hook catalog
    (Some
       (fun _event ->
         Mutex.protect t.mutex (fun () -> t.ddl_events <- t.ddl_events + 1)));
  t

let recovery t = t.recovered
let policy t = t.pol

let log_script t ~digest ~sql =
  Mutex.protect t.mutex (fun () ->
      let seq = t.next_stmt_seq in
      t.next_stmt_seq <- seq + 1;
      Wal.append t.wal { Wal.seq; digest; sql };
      t.pending <- t.pending + 1)

let pending_records t = Mutex.protect t.mutex (fun () -> t.pending)
let checkpoint t = Mutex.protect t.mutex (fun () -> rotate_locked t)

let tick t =
  Mutex.protect t.mutex (fun () ->
      match t.pol with
      | Always -> ()
      | Batch -> Wal.sync t.wal
      | Off -> Wal.flush t.wal)

let counters t =
  Mutex.protect t.mutex (fun () ->
      {
        wal_records = t.records_base + Wal.records_written t.wal;
        wal_bytes = t.bytes_base + Wal.bytes_written t.wal;
        wal_fsyncs = t.fsyncs_base + Wal.fsyncs t.wal;
        checkpoints = t.checkpoints;
        ddl_events = t.ddl_events;
      })

let close t =
  Mutex.protect t.mutex (fun () -> Wal.close t.wal);
  Catalog.set_base_hook t.catalog None

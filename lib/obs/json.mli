(** Minimal JSON reader for validating the engine's own machine-readable
    output (NDJSON trace events, bench record files). Numbers are floats;
    non-ASCII [\uXXXX] escapes decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)

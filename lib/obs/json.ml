(** A minimal JSON reader used to validate the engine's own
    machine-readable output (NDJSON trace events, BENCH_*.json record
    files) without an external dependency. It accepts standard JSON;
    numbers are parsed as OCaml floats, and [\uXXXX] escapes outside
    ASCII decode to ['?'] — good enough for schema validation, not a
    general-purpose codec. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected '%c' at offset %d, got '%c'" c st.pos d
  | None -> fail "expected '%c' at offset %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at offset %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "invalid \\u escape \\u%s" hex
          in
          st.pos <- st.pos + 4;
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | c -> fail "invalid escape \\%c" c);
        loop ())
    | Some c when Char.code c < 0x20 -> fail "raw control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail "invalid number %S at offset %d" text start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail "unexpected character '%c' at offset %d" c st.pos

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
    advance st;
    Obj []
  | _ ->
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, v) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((key, v) :: acc))
      | _ -> fail "expected ',' or '}' at offset %d" st.pos
    in
    members []

and parse_arr st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
    advance st;
    Arr []
  | _ ->
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (v :: acc)
      | Some ']' ->
        advance st;
        Arr (List.rev (v :: acc))
      | _ -> fail "expected ',' or ']' at offset %d" st.pos
    in
    elements []

let parse (src : string) : (t, string) result =
  let st = { src; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then
      fail "trailing garbage at offset %d" st.pos;
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

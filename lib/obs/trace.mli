(** Iteration-aware trace collector.

    A trace is a bounded ring buffer of {!span}s describing one or more
    program executions: one [Step] span per executed program step, one
    [Iteration] span per loop-body pass (carrying the convergence gauges
    — CTE cardinality, delta, cumulative updates), one [Operator] span
    per operator family that accumulated wall time, and one [Program]
    span wrapping the whole run.

    Overhead contract: when no trace is installed the executors take a
    [None] fast path and allocate nothing; when tracing is on, spans are
    built only from pure reads (counter snapshots, [Relation.cardinality],
    [Relation.delta_count]) so traced and untraced runs remain
    [Stats.logical_equal]. *)

type counters = {
  c_rows_scanned : int;
  c_rows_joined : int;
  c_rows_materialized : int;
  c_cache_hits : int;
  c_cache_misses : int;
  c_faults : int;
  c_retries : int;
  c_recoveries : int;
}
(** Stats deltas attributed to one span. *)

val zero_counters : counters

type kind =
  | Program  (** one whole program execution *)
  | Step  (** one program step (materialize, rename, ...) *)
  | Iteration  (** one pass over a loop body *)
  | Operator  (** wall time accumulated by one operator family *)

val kind_to_string : kind -> string

type span = {
  seq : int;  (** global emission order, monotonically increasing *)
  kind : kind;
  label : string;
  loop_id : int;  (** program counter of the loop's [Loop_end]; -1 if n/a *)
  iteration : int;  (** 1-based iteration number; 0 if n/a *)
  rows : int;  (** CTE/result cardinality; -1 if n/a *)
  delta : int;  (** changed rows this iteration; -1 if unknown *)
  cum_updates : int;  (** running update total for [Max_updates]; -1 if n/a *)
  wall_ms : float;
  counters : counters;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer holding the last [capacity] spans (default 8192). *)

val emit :
  t ->
  kind:kind ->
  label:string ->
  ?loop_id:int ->
  ?iteration:int ->
  ?rows:int ->
  ?delta:int ->
  ?cum_updates:int ->
  wall_ms:float ->
  counters:counters ->
  unit ->
  unit

val next_seq : t -> int
(** Sequence number the next emitted span will receive. Record this
    before a run to slice that run's spans out afterwards. *)

val dropped : t -> int
(** Number of spans evicted by ring-buffer wraparound. *)

val spans : ?min_seq:int -> t -> span list
(** Retained spans in emission order, optionally from [min_seq] on. *)

val iteration_spans : ?min_seq:int -> t -> span list

val span_to_json : span -> string
(** One-line JSON object (an NDJSON trace event). *)

val to_ndjson : ?min_seq:int -> t -> string
(** Newline-terminated NDJSON of the retained spans. *)

val render_timeline : ?min_seq:int -> t -> string
(** Human-readable per-loop convergence table:
    iteration x (rows, delta, cumulative updates, wall ms, cache,
    faults/retries/recoveries). Empty string when there are no
    iteration spans. *)

val validate_event : string -> (unit, string) result
(** Check one NDJSON line against the trace event schema. *)

type counters = {
  c_rows_scanned : int;
  c_rows_joined : int;
  c_rows_materialized : int;
  c_cache_hits : int;
  c_cache_misses : int;
  c_faults : int;
  c_retries : int;
  c_recoveries : int;
}

let zero_counters =
  {
    c_rows_scanned = 0;
    c_rows_joined = 0;
    c_rows_materialized = 0;
    c_cache_hits = 0;
    c_cache_misses = 0;
    c_faults = 0;
    c_retries = 0;
    c_recoveries = 0;
  }

type kind = Program | Step | Iteration | Operator

let kind_to_string = function
  | Program -> "program"
  | Step -> "step"
  | Iteration -> "iteration"
  | Operator -> "op"

let kind_of_string = function
  | "program" -> Some Program
  | "step" -> Some Step
  | "iteration" -> Some Iteration
  | "op" -> Some Operator
  | _ -> None

type span = {
  seq : int;
  kind : kind;
  label : string;
  loop_id : int;
  iteration : int;
  rows : int;
  delta : int;
  cum_updates : int;
  wall_ms : float;
  counters : counters;
}

let dummy_span =
  {
    seq = -1;
    kind = Program;
    label = "";
    loop_id = -1;
    iteration = 0;
    rows = -1;
    delta = -1;
    cum_updates = -1;
    wall_ms = 0.;
    counters = zero_counters;
  }

type t = {
  capacity : int;
  buf : span array;
  mutable len : int;  (* number of live spans, <= capacity *)
  mutable head : int;  (* index of the oldest live span *)
  mutable next_seq : int;
  mutable dropped : int;
}

let create ?(capacity = 8192) () =
  let capacity = max 1 capacity in
  {
    capacity;
    buf = Array.make capacity dummy_span;
    len = 0;
    head = 0;
    next_seq = 0;
    dropped = 0;
  }

let emit t ~kind ~label ?(loop_id = -1) ?(iteration = 0) ?(rows = -1)
    ?(delta = -1) ?(cum_updates = -1) ~wall_ms ~counters () =
  let span =
    {
      seq = t.next_seq;
      kind;
      label;
      loop_id;
      iteration;
      rows;
      delta;
      cum_updates;
      wall_ms;
      counters;
    }
  in
  t.next_seq <- t.next_seq + 1;
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- span;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest span *)
    t.buf.(t.head) <- span;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let next_seq t = t.next_seq

let dropped t = t.dropped

let spans ?(min_seq = 0) t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let s = t.buf.((t.head + i) mod t.capacity) in
    if s.seq >= min_seq then out := s :: !out
  done;
  !out

let iteration_spans ?min_seq t =
  List.filter (fun s -> s.kind = Iteration) (spans ?min_seq t)

(* NDJSON export ------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json s =
  let c = s.counters in
  (* Every string field goes through [escape_string]: OCaml's [%S]
     emits decimal escapes like [\123] that are not valid JSON, so it
     must never be used here. *)
  Printf.sprintf
    "{\"seq\": %d, \"kind\": \"%s\", \"label\": \"%s\", \"loop\": %d, \
     \"iter\": %d, \"rows\": %d, \"delta\": %d, \"cum_updates\": %d, \
     \"wall_ms\": %.4f, \"scanned\": %d, \"joined\": %d, \"materialized\": \
     %d, \"cache_hits\": %d, \"cache_misses\": %d, \"faults\": %d, \
     \"retries\": %d, \"recoveries\": %d}"
    s.seq
    (escape_string (kind_to_string s.kind))
    (escape_string s.label) s.loop_id s.iteration
    s.rows s.delta s.cum_updates s.wall_ms c.c_rows_scanned c.c_rows_joined
    c.c_rows_materialized c.c_cache_hits c.c_cache_misses c.c_faults
    c.c_retries c.c_recoveries

let to_ndjson ?min_seq t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (span_to_json s);
      Buffer.add_char buf '\n')
    (spans ?min_seq t);
  Buffer.contents buf

(* EXPLAIN ANALYZE timeline ------------------------------------------- *)

let render_timeline ?min_seq t =
  let iters = iteration_spans ?min_seq t in
  if iters = [] then ""
  else begin
    let loops =
      List.sort_uniq compare (List.map (fun s -> s.loop_id) iters)
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun loop_id ->
        let rows_of =
          List.filter (fun s -> s.loop_id = loop_id) iters
        in
        Buffer.add_string buf
          (Printf.sprintf "Convergence timeline (loop @%d):\n" loop_id);
        Buffer.add_string buf
          "  iter |     rows |    delta |  cum_upd |  wall_ms | cache h/m | \
           flt/rty/rec\n";
        List.iter
          (fun s ->
            let c = s.counters in
            let int_cell n = if n < 0 then "       ?" else Printf.sprintf "%8d" n in
            Buffer.add_string buf
              (Printf.sprintf "  %4d | %s | %s | %s | %8.2f | %4d/%-4d | %d/%d/%d\n"
                 s.iteration (int_cell s.rows) (int_cell s.delta)
                 (int_cell s.cum_updates) s.wall_ms c.c_cache_hits
                 c.c_cache_misses c.c_faults c.c_retries c.c_recoveries))
          rows_of)
      loops;
    Buffer.contents buf
  end

(* Event schema validation --------------------------------------------- *)

let validate_event line =
  match Json.parse line with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok json -> (
    match json with
    | Json.Obj _ ->
      let check_int key k =
        match Json.member key json with
        | Some (Json.Num f) when Float.is_integer f -> k ()
        | Some _ -> Error (Printf.sprintf "field %S is not an integer" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let rec check_ints keys k =
        match keys with
        | [] -> k ()
        | key :: rest -> check_int key (fun () -> check_ints rest k)
      in
      let check_kind k =
        match Json.member "kind" json with
        | Some (Json.Str s) -> (
          match kind_of_string s with
          | Some _ -> k ()
          | None -> Error (Printf.sprintf "unknown span kind %S" s))
        | Some _ -> Error "field \"kind\" is not a string"
        | None -> Error "missing field \"kind\""
      in
      let check_label k =
        match Json.member "label" json with
        | Some (Json.Str _) -> k ()
        | Some _ -> Error "field \"label\" is not a string"
        | None -> Error "missing field \"label\""
      in
      let check_wall k =
        match Json.member "wall_ms" json with
        | Some (Json.Num f) when f >= 0. -> k ()
        | Some _ -> Error "field \"wall_ms\" is not a non-negative number"
        | None -> Error "missing field \"wall_ms\""
      in
      check_kind (fun () ->
          check_label (fun () ->
              check_wall (fun () ->
                  check_ints
                    [
                      "seq";
                      "loop";
                      "iter";
                      "rows";
                      "delta";
                      "cum_updates";
                      "scanned";
                      "joined";
                      "materialized";
                      "cache_hits";
                      "cache_misses";
                      "faults";
                      "retries";
                      "recoveries";
                    ]
                    (fun () -> Ok ()))))
    | _ -> Error "trace event is not a JSON object")

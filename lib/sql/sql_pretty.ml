(** Render AST nodes back to SQL text. The output re-parses to the same
    AST (checked by property tests), which also makes it usable for
    logging and for shipping rewritten statements to the baselines. *)

module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"
  | Ast.Concat -> "||"

let agg_name = function
  | Ast.Count | Ast.Count_star -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

let quote_ident name =
  let plain =
    name <> ""
    && (not (Token.is_keyword name))
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
           || (c >= '0' && c <= '9'))
         name
    && not (name.[0] >= '0' && name.[0] <= '9')
  in
  if plain then name else "\"" ^ name ^ "\""

let join_kind = function
  | Ast.Inner -> "JOIN"
  | Ast.Left_outer -> "LEFT JOIN"
  | Ast.Right_outer -> "RIGHT JOIN"
  | Ast.Full_outer -> "FULL JOIN"
  | Ast.Cross -> "CROSS JOIN"

(* The signed numeric literal a [Neg] chain folds to, if it is one.
   The parser folds "-5" into [Lit (Int (-5))] at parse time, so the
   printer must fold too or the output would not be print-idempotent;
   folding the whole chain (not just one level) keeps [Neg (Neg ...)]
   from printing as "--5", which lexes as a SQL comment. *)
let rec neg_literal = function
  | Ast.Lit ((Value.Int _ | Value.Float _) as v) -> Some v
  | Ast.Unop (Ast.Neg, a) -> Option.map Value.neg (neg_literal a)
  | _ -> None

let rec expr e =
  match e with
  | Ast.Lit v -> Value.to_string v
  | Ast.Col (None, c) -> quote_ident c
  | Ast.Col (Some q, c) -> quote_ident q ^ "." ^ quote_ident c
  | Ast.Star -> "*"
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_symbol op) (expr b)
  | Ast.Unop (Ast.Neg, a) -> (
    match neg_literal e with
    | Some v -> Value.to_string v
    | None -> Printf.sprintf "(-%s)" (expr a))
  | Ast.Unop (Ast.Not, a) -> Printf.sprintf "(NOT %s)" (expr a)
  | Ast.Func (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr args))
  | Ast.Agg (Ast.Count_star, _, _) -> "COUNT(*)"
  | Ast.Agg (kind, distinct, a) ->
    Printf.sprintf "%s(%s%s)" (agg_name kind)
      (if distinct then "DISTINCT " else "")
      (expr a)
  | Ast.Case (branches, else_) ->
    let b =
      List.map
        (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (expr c) (expr v))
        branches
    in
    let e_part =
      match else_ with Some e -> " ELSE " ^ expr e | None -> ""
    in
    Printf.sprintf "CASE %s%s END" (String.concat " " b) e_part
  | Ast.Cast (a, ty) ->
    Printf.sprintf "CAST(%s AS %s)" (expr a) (Column_type.to_string ty)
  | Ast.Is_null (a, true) -> Printf.sprintf "(%s IS NULL)" (expr a)
  | Ast.Is_null (a, false) -> Printf.sprintf "(%s IS NOT NULL)" (expr a)
  | Ast.In_list (a, items, neg) ->
    Printf.sprintf "(%s %sIN (%s))" (expr a)
      (if neg then "NOT " else "")
      (String.concat ", " (List.map expr items))
  | Ast.Between (a, lo, hi) ->
    Printf.sprintf "(%s BETWEEN %s AND %s)" (expr a) (expr lo) (expr hi)
  | Ast.Like (a, pat, neg) ->
    Printf.sprintf "(%s %sLIKE %s)" (expr a)
      (if neg then "NOT " else "")
      (Value.to_string (Value.Str pat))
  | Ast.In_subquery (a, q, neg) ->
    Printf.sprintf "(%s %sIN (%s))" (expr a)
      (if neg then "NOT " else "")
      (query q)
  | Ast.Exists_subquery (q, neg) ->
    Printf.sprintf "(%sEXISTS (%s))" (if neg then "NOT " else "") (query q)
  | Ast.Scalar_subquery q -> Printf.sprintf "(%s)" (query q)

and select_item (it : Ast.select_item) =
  match it.alias with
  | None -> expr it.expr
  | Some a -> Printf.sprintf "%s AS %s" (expr it.expr) (quote_ident a)

and from_item = function
  | Ast.From_table { table; alias } -> (
    match alias with
    | None -> quote_ident table
    | Some a -> Printf.sprintf "%s AS %s" (quote_ident table) (quote_ident a))
  | Ast.From_subquery { query = q; alias } ->
    Printf.sprintf "(%s) AS %s" (query q) (quote_ident alias)
  | Ast.From_join { left; kind; right; condition } -> (
    let base =
      Printf.sprintf "%s %s %s" (from_item left) (join_kind kind)
        (from_item right)
    in
    match condition with
    | None -> base
    | Some c -> Printf.sprintf "%s ON %s" base (expr c))

and select (s : Ast.select) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item s.items));
  Option.iter
    (fun f -> Buffer.add_string buf (" FROM " ^ from_item f))
    s.from;
  Option.iter (fun w -> Buffer.add_string buf (" WHERE " ^ expr w)) s.where;
  if s.group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map expr s.group_by));
  Option.iter (fun h -> Buffer.add_string buf (" HAVING " ^ expr h)) s.having;
  Buffer.contents buf

and query = function
  | Ast.Q_select s -> select s
  | Ast.Q_union { all; left; right } -> set_op "UNION" all left right
  | Ast.Q_intersect { all; left; right } -> set_op "INTERSECT" all left right
  | Ast.Q_except { all; left; right } -> set_op "EXCEPT" all left right

and set_op name all left right =
  Printf.sprintf "%s %s %s%s" (query left) name
    (if all then "ALL " else "")
    (match right with
    | Ast.Q_select s -> select s
    | (Ast.Q_union _ | Ast.Q_intersect _ | Ast.Q_except _) as q ->
      "(" ^ query q ^ ")")

let termination = function
  | Ast.T_iterations n -> Printf.sprintf "%d ITERATIONS" n
  | Ast.T_updates n -> Printf.sprintf "%d UPDATES" n
  | Ast.T_delta n -> Printf.sprintf "DELTA <= %d" n
  | Ast.T_data { any; cond } ->
    Printf.sprintf "%s %s" (if any then "ANY" else "ALL") (expr cond)

let cte = function
  | Ast.Cte_plain { name; columns; body } ->
    Printf.sprintf "%s%s AS (%s)" (quote_ident name)
      (match columns with
      | None -> ""
      | Some cs ->
        " (" ^ String.concat ", " (List.map quote_ident cs) ^ ")")
      (query body)
  | Ast.Cte_recursive { name; columns; base; step; union_all } ->
    Printf.sprintf "RECURSIVE %s%s AS (%s UNION %s%s)" (quote_ident name)
      (match columns with
      | None -> ""
      | Some cs ->
        " (" ^ String.concat ", " (List.map quote_ident cs) ^ ")")
      (query base)
      (if union_all then "ALL " else "")
      (query step)
  | Ast.Cte_iterative { name; columns; key; base; step; until } ->
    Printf.sprintf "ITERATIVE %s%s%s AS (%s ITERATE %s UNTIL %s)"
      (quote_ident name)
      (match columns with
      | None -> ""
      | Some cs ->
        " (" ^ String.concat ", " (List.map quote_ident cs) ^ ")")
      (match key with None -> "" | Some k -> " KEY " ^ quote_ident k)
      (query base) (query step) (termination until)

let full_query (q : Ast.full_query) =
  let buf = Buffer.create 128 in
  if q.ctes <> [] then begin
    Buffer.add_string buf "WITH ";
    Buffer.add_string buf (String.concat ", " (List.map cte q.ctes));
    Buffer.add_char buf ' '
  end;
  Buffer.add_string buf (query q.body);
  if q.order_by <> [] then begin
    let item (o : Ast.order_item) =
      expr o.sort_expr ^ if o.descending then " DESC" else ""
    in
    Buffer.add_string buf
      (" ORDER BY " ^ String.concat ", " (List.map item q.order_by))
  end;
  Option.iter (fun n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)) q.limit;
  if q.offset > 0 then
    Buffer.add_string buf (Printf.sprintf " OFFSET %d" q.offset);
  Buffer.contents buf

let rec statement = function
  | Ast.S_query q -> full_query q
  | Ast.S_create_table { table; if_not_exists; columns; primary_key } ->
    let cols =
      List.map
        (fun (c : Ast.column_def) ->
          Printf.sprintf "%s %s" (quote_ident c.col_name)
            (Column_type.to_string c.col_type))
        columns
    in
    let pk =
      match primary_key with
      | None -> ""
      | Some k -> Printf.sprintf ", PRIMARY KEY (%s)" (quote_ident k)
    in
    Printf.sprintf "CREATE TABLE %s%s (%s%s)"
      (if if_not_exists then "IF NOT EXISTS " else "")
      (quote_ident table) (String.concat ", " cols) pk
  | Ast.S_drop_table { table; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s"
      (if if_exists then "IF EXISTS " else "")
      (quote_ident table)
  | Ast.S_insert { table; columns; source } ->
    let cols =
      match columns with
      | None -> ""
      | Some cs -> " (" ^ String.concat ", " (List.map quote_ident cs) ^ ")"
    in
    let src =
      match source with
      | Ast.I_values tuples ->
        "VALUES "
        ^ String.concat ", "
            (List.map
               (fun t -> "(" ^ String.concat ", " (List.map expr t) ^ ")")
               tuples)
      | Ast.I_query q -> full_query q
    in
    Printf.sprintf "INSERT INTO %s%s %s" (quote_ident table) cols src
  | Ast.S_update { table; set; from; where } ->
    let assignments =
      List.map (fun (c, e) -> Printf.sprintf "%s = %s" (quote_ident c) (expr e)) set
    in
    Printf.sprintf "UPDATE %s SET %s%s%s" (quote_ident table)
      (String.concat ", " assignments)
      (match from with None -> "" | Some f -> " FROM " ^ from_item f)
      (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Ast.S_delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" (quote_ident table)
      (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Ast.S_truncate table -> "TRUNCATE TABLE " ^ quote_ident table
  | Ast.S_create_view { view; view_columns; body } ->
    Printf.sprintf "CREATE VIEW %s%s AS %s" (quote_ident view)
      (match view_columns with
      | None -> ""
      | Some cs -> " (" ^ String.concat ", " (List.map quote_ident cs) ^ ")")
      (query body)
  | Ast.S_drop_view { view; if_exists } ->
    Printf.sprintf "DROP VIEW %s%s"
      (if if_exists then "IF EXISTS " else "")
      (quote_ident view)
  | Ast.S_begin -> "BEGIN"
  | Ast.S_commit -> "COMMIT"
  | Ast.S_rollback -> "ROLLBACK"
  | Ast.S_explain { analyze; target } ->
    (if analyze then "EXPLAIN ANALYZE " else "EXPLAIN ") ^ statement target

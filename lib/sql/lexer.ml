(** Hand-written SQL lexer producing a token array with positions.

    Supports: [--] line comments, [/* */] block comments, single-quoted
    strings with [''] escapes, double-quoted identifiers, int/float
    literals (including [1.], [.5], [1e-3]) and multi-character
    operators ([<=], [>=], [<>], [!=], [||]). *)

exception Lex_error of string * int * int  (** message, line, col *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let error st msg = raise (Lex_error (msg, st.line, st.col))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec close () =
      match peek st with
      | None -> error st "unterminated block comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | _ -> ()

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
      Buffer.add_char buf '\'';
      advance st;
      advance st;
      loop ()
    | Some '\'' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Token.Str_lit (Buffer.contents buf)

let lex_quoted_ident st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated quoted identifier"
    | Some '"' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Token.Ident (Buffer.contents buf)

let lex_number st =
  let buf = Buffer.create 16 in
  let is_float = ref false in
  let consume_digits () =
    while (match peek st with Some c -> is_digit c | None -> false) do
      Buffer.add_char buf (Option.get (peek st));
      advance st
    done
  in
  consume_digits ();
  (match peek st with
  | Some '.' when (match peek2 st with Some c -> is_digit c | _ -> true) ->
    is_float := true;
    Buffer.add_char buf '.';
    advance st;
    consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') -> (
    match peek2 st with
    | Some c when is_digit c || c = '+' || c = '-' ->
      is_float := true;
      Buffer.add_char buf 'e';
      advance st;
      (match peek st with
      | Some ('+' | '-') ->
        Buffer.add_char buf (Option.get (peek st));
        advance st
      | _ -> ());
      consume_digits ()
    | _ -> ())
  | _ -> ());
  let text = Buffer.contents buf in
  if !is_float then Token.Float_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Token.Int_lit i
    | None ->
      (* Do NOT silently demote to a float literal: above 2^63 the
         nearest float loses low bits, so [WHERE id =
         9223372036854775809] would quietly match the wrong rows even
         though Value.compare is exact. Reject at the lexer where the
         literal text is still available for the message. *)
      error st
        (Printf.sprintf
           "integer literal %s is out of range (63-bit signed); write it as \
            a float (%s.0) if approximation is intended"
           text text)

let lex_word st =
  let buf = Buffer.create 16 in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    Buffer.add_char buf (Option.get (peek st));
    advance st
  done;
  let word = Buffer.contents buf in
  if Token.is_keyword word then Token.Kw (String.uppercase_ascii word)
  else Token.Ident word

let two_char_symbols = [ "<="; ">="; "<>"; "!="; "||" ]

let lex_symbol st =
  let c = Option.get (peek st) in
  let two =
    match peek2 st with
    | Some c2 ->
      let s = Printf.sprintf "%c%c" c c2 in
      if List.mem s two_char_symbols then Some s else None
    | None -> None
  in
  match two with
  | Some s ->
    advance st;
    advance st;
    Token.Symbol s
  | None -> (
    match c with
    | '(' | ')' | ',' | ';' | '.' | '+' | '-' | '*' | '/' | '%' | '=' | '<'
    | '>' ->
      advance st;
      Token.Symbol (String.make 1 c)
    | _ -> error st (Printf.sprintf "unexpected character %C" c))

let next_token st : Token.positioned =
  skip_trivia st;
  let line = st.line and col = st.col in
  let token =
    match peek st with
    | None -> Token.Eof
    | Some '\'' -> lex_string st
    | Some '"' -> lex_quoted_ident st
    | Some c when is_digit c -> lex_number st
    | Some '.' when (match peek2 st with Some c -> is_digit c | _ -> false) ->
      lex_number st
    | Some c when is_ident_start c -> lex_word st
    | Some _ -> lex_symbol st
  in
  { Token.token; line; col }

(** [tokenize src] lexes the whole input, ending with [Eof]. *)
let tokenize src : Token.positioned array =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let rec loop () =
    let t = next_token st in
    toks := t :: !toks;
    if t.Token.token <> Token.Eof then loop ()
  in
  loop ();
  Array.of_list (List.rev !toks)

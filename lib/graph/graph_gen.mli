(** Synthetic graph generation: deterministic stand-ins for the paper's
    SNAP datasets, matched on node/edge ratio and degree skew (see
    DESIGN.md §2). *)

module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation

type edge = {
  src : int;
  dst : int;
  weight : float;
}

type t = {
  num_nodes : int;
  edges : edge array;
}

val num_nodes : t -> int
val num_edges : t -> int
val edges : t -> edge array

(** Out-neighbours: node -> [(dst, weight)] list. *)
val out_adjacency : t -> (int * float) list array

(** In-neighbours: node -> [(src, weight)] list. *)
val in_adjacency : t -> (int * float) list array

(** Uniform digraph: [num_edges] edges with uniform endpoints, no self
    loops, weights in [1, 10).
    @raise Invalid_argument when [num_nodes < 2]. *)
val uniform : seed:int -> num_nodes:int -> num_edges:int -> t

(** Preferential attachment with degree-proportional target sampling:
    heavy-tailed degrees, as in citation/social/web graphs.
    @raise Invalid_argument when [num_nodes < 2]. *)
val power_law : seed:int -> num_nodes:int -> edges_per_node:int -> t

(** Mostly-local chain with long-range shortcuts: a rough road-network
    stand-in for the SSSP example. *)
val chain_with_shortcuts : seed:int -> num_nodes:int -> shortcut_every:int -> t

(** A {!chain_with_shortcuts} core plus [upstream] extra nodes, each
    with [fanout] edges into random core nodes but no incoming edges —
    unreachable from the core, like the regions upstream of any source
    in a directed graph. SSSP from the chain head keeps its narrow
    frontier while the loop body's full re-evaluation joins the whole
    fan-in every iteration; the benchmark uses this shape to isolate
    what semi-naive evaluation saves. *)
val chain_with_fanin :
  seed:int -> num_nodes:int -> shortcut_every:int -> upstream:int -> fanout:int -> t

(** Replace weights by [1 / out-degree(src)] (classic PageRank
    transition weights; keeps the delta iteration contractive). *)
val normalize_weights : t -> t

(** {2 Relational views} *)

(** [edges(src INT, dst INT, weight FLOAT)]. *)
val edges_schema : Schema.t

val edges_relation : t -> Relation.t

(** [vertexStatus(node INT, status INT)]. *)
val vertex_status_schema : Schema.t

(** One row per node; [inactive_fraction] get status 0. Deterministic
    in [seed] and consistent with {!vertex_status_array}. *)
val vertex_status_relation :
  ?seed:int -> ?inactive_fraction:float -> t -> Relation.t

(** Same statuses as an array ([true] = active). *)
val vertex_status_array : ?seed:int -> ?inactive_fraction:float -> t -> bool array

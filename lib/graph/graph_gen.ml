(** Synthetic graph generation.

    The paper evaluates on SNAP datasets (DBLP, Pokec, web-Google). We
    cannot redistribute those, so workloads use deterministic synthetic
    graphs whose node/edge ratios and degree skew match: a preferential
    attachment process (Barabási–Albert style) yields the heavy-tailed
    in-degree distribution typical of citation/social/web graphs, which
    is what the relative cost of the PR/SSSP join pipeline depends
    on. *)

type edge = {
  src : int;
  dst : int;
  weight : float;
}

type t = {
  num_nodes : int;
  edges : edge array;
}

let num_nodes t = t.num_nodes
let num_edges t = Array.length t.edges
let edges t = t.edges

(** Out-neighbour adjacency (node -> (dst, weight) list). *)
let out_adjacency t =
  let adj = Array.make t.num_nodes [] in
  Array.iter (fun e -> adj.(e.src) <- (e.dst, e.weight) :: adj.(e.src)) t.edges;
  adj

(** In-neighbour adjacency (node -> (src, weight) list). *)
let in_adjacency t =
  let adj = Array.make t.num_nodes [] in
  Array.iter (fun e -> adj.(e.dst) <- (e.src, e.weight) :: adj.(e.dst)) t.edges;
  adj

(** Uniform Erdős–Rényi-style digraph: [num_edges] directed edges with
    endpoints drawn uniformly; self-loops excluded, duplicates
    allowed (they act as parallel edges with their own weights). *)
let uniform ~seed ~num_nodes ~num_edges =
  if num_nodes < 2 then invalid_arg "Graph_gen.uniform: need at least 2 nodes";
  let rng = Rng.create seed in
  let edges =
    Array.init num_edges (fun _ ->
        let src = Rng.int rng num_nodes in
        let rec pick () =
          let d = Rng.int rng num_nodes in
          if d = src then pick () else d
        in
        let dst = pick () in
        { src; dst; weight = Rng.float_range rng 1.0 10.0 })
  in
  { num_nodes; edges }

(** Preferential attachment: nodes arrive one at a time; each new node
    emits [edges_per_node] edges whose targets are sampled from the
    running edge list (endpoint sampling = degree-proportional), giving
    a power-law in-degree tail. Edge direction is randomized so both
    in- and out-degree are skewed, as in real web/social graphs. *)
let power_law ~seed ~num_nodes ~edges_per_node =
  if num_nodes < 2 then invalid_arg "Graph_gen.power_law: need at least 2 nodes";
  let rng = Rng.create seed in
  let m = max 1 edges_per_node in
  let targets = Array.make (num_nodes * m) 0 in
  let filled = ref 0 in
  let edges = ref [] in
  let push_target v =
    targets.(!filled) <- v;
    incr filled
  in
  (* Seed with a small cycle so early samples have somewhere to go. *)
  let seed_nodes = min num_nodes (m + 1) in
  for v = 0 to seed_nodes - 1 do
    let d = (v + 1) mod seed_nodes in
    if d <> v then begin
      edges := { src = v; dst = d; weight = Rng.float_range rng 1.0 10.0 } :: !edges;
      push_target d
    end
  done;
  for v = seed_nodes to num_nodes - 1 do
    for _ = 1 to m do
      let target =
        if !filled = 0 || Rng.float rng < 0.15 then Rng.int rng v
        else targets.(Rng.int rng !filled)
      in
      let target = if target = v then (target + 1) mod v else target in
      let weight = Rng.float_range rng 1.0 10.0 in
      let e =
        if Rng.bool rng then { src = v; dst = target; weight }
        else { src = target; dst = v; weight }
      in
      edges := e :: !edges;
      if !filled < Array.length targets then push_target target
    done
  done;
  { num_nodes; edges = Array.of_list !edges }

(** Grid-like graph with mostly local edges: a rough stand-in for road
    networks, used by the SSSP example. *)
let chain_with_shortcuts ~seed ~num_nodes ~shortcut_every =
  let rng = Rng.create seed in
  let edges = ref [] in
  for v = 0 to num_nodes - 2 do
    edges :=
      { src = v; dst = v + 1; weight = Rng.float_range rng 1.0 5.0 } :: !edges;
    if shortcut_every > 0 && v mod shortcut_every = 0 then begin
      let d = Rng.int rng num_nodes in
      if d <> v then
        edges :=
          { src = v; dst = d; weight = Rng.float_range rng 5.0 50.0 } :: !edges
    end
  done;
  { num_nodes; edges = Array.of_list !edges }

(** A chain-with-shortcuts core plus [upstream] extra nodes that point
    into the core but are unreachable from it (directed graphs
    routinely have large regions upstream of any given source). SSSP
    from the chain head keeps a narrow frontier — only core distances
    ever improve — while every full re-evaluation of the loop body
    still joins the entire fan-in. The shape where semi-naive
    evaluation pays off most. *)
let chain_with_fanin ~seed ~num_nodes ~shortcut_every ~upstream ~fanout =
  let core = chain_with_shortcuts ~seed ~num_nodes ~shortcut_every in
  let rng = Rng.create (seed + 1) in
  let extra = ref [] in
  for u = 0 to upstream - 1 do
    let src = num_nodes + u in
    for _ = 1 to fanout do
      extra :=
        {
          src;
          dst = Rng.int rng num_nodes;
          weight = Rng.float_range rng 1.0 5.0;
        }
        :: !extra
    done
  done;
  {
    num_nodes = num_nodes + upstream;
    edges = Array.append core.edges (Array.of_list !extra);
  }

(** Replace every edge weight by [1 / out-degree(src)] — the classic
    PageRank transition weighting. With it the delta iteration is a
    contraction (damping 0.85), so ranks stay bounded and readable;
    with raw weights the paper's PR query still runs but its absolute
    numbers grow geometrically. *)
let normalize_weights t =
  let out_degree = Array.make t.num_nodes 0 in
  Array.iter (fun e -> out_degree.(e.src) <- out_degree.(e.src) + 1) t.edges;
  {
    t with
    edges =
      Array.map
        (fun e -> { e with weight = 1.0 /. float_of_int out_degree.(e.src) })
        t.edges;
  }

(* ------------------------------------------------------------------ *)
(* Relational views                                                    *)

module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type

let edges_schema : Schema.t =
  Schema.make
    [
      Schema.column ~ty:Column_type.T_int "src";
      Schema.column ~ty:Column_type.T_int "dst";
      Schema.column ~ty:Column_type.T_float "weight";
    ]

(** The [edges(src, dst, weight)] relation of the paper's queries. *)
let edges_relation t : Relation.t =
  Relation.make edges_schema
    (Array.map
       (fun e ->
         [| Value.Int e.src; Value.Int e.dst; Value.Float e.weight |])
       t.edges)

let vertex_status_schema : Schema.t =
  Schema.make
    [
      Schema.column ~ty:Column_type.T_int "node";
      Schema.column ~ty:Column_type.T_int "status";
    ]

(** The [vertexStatus(node, status)] table of the PR-VS query: one row
    per node, [inactive_fraction] of them with status 0. *)
let statuses ~seed ~inactive_fraction num_nodes : bool array =
  (* Explicit loop: the draw order must be deterministic so the
     relational and array views agree. *)
  let rng = Rng.create seed in
  let active = Array.make num_nodes true in
  for v = 0 to num_nodes - 1 do
    active.(v) <- Rng.float rng >= inactive_fraction
  done;
  active

let vertex_status_relation ?(seed = 7) ?(inactive_fraction = 0.1) t : Relation.t =
  let active = statuses ~seed ~inactive_fraction t.num_nodes in
  Relation.make vertex_status_schema
    (Array.init t.num_nodes (fun v ->
         [| Value.Int v; Value.Int (if active.(v) then 1 else 0) |]))

(** Statuses as an array for reference implementations; consistent with
    {!vertex_status_relation} for the same seed. *)
let vertex_status_array ?(seed = 7) ?(inactive_fraction = 0.1) t : bool array =
  statuses ~seed ~inactive_fraction t.num_nodes

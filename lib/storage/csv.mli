(** Minimal CSV reader/writer: quoted fields, configurable separator,
    SNAP-style [#] comment lines. No external dependency. *)

(** Split one line on [separator] (default [',']) honoring
    double-quoted fields with [""] escapes. *)
val split_line : ?separator:char -> string -> string list

(** [load ~schema ?separator path] reads a headerless file, parsing
    each field under the schema's declared column type; empty fields
    become NULL, [#]-prefixed lines are skipped. [separator] defaults
    to [','].
    @raise Failure on arity mismatches, [Sys_error] on I/O errors. *)
val load : schema:Schema.t -> ?separator:char -> string -> Relation.t

(** [save ?header ?separator rel path] writes one line per row;
    floats keep full round-trip precision, and fields containing the
    separator, a quote, or a newline are double-quoted so that
    [load] with the same separator round-trips them. *)
val save : ?header:bool -> ?separator:char -> Relation.t -> string -> unit

(** A row is a flat array of values, positionally aligned with a
    {!Schema.t}. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

(** [project row idxs] extracts the listed positions (used by grouping
    keys and join keys). *)
let project (row : t) (idxs : int array) : t =
  Array.map (fun i -> row.(i)) idxs

let concat (a : t) (b : t) : t = Array.append a b

(** Hashtable keyed by rows — the executor's hash-join build tables and
    distinct/grouping sets all key on rows. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp fmt (t : t) =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

let to_string (t : t) = Format.asprintf "%a" pp t

(** Runtime values stored in relations.

    The engine is dynamically typed at execution time: every cell is a
    {!t}. SQL NULL is represented by {!Null}; three-valued logic over
    NULLs lives in the expression evaluator, while this module provides
    NULL-aware primitive operations (comparison, arithmetic, hashing). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** Total ordering used by ORDER BY and grouping: [Null] sorts first,
    ints and floats compare numerically across the two types, other
    mismatched types compare by a fixed type rank. *)
val compare : t -> t -> int

(** Value equality consistent with {!compare} (so [Int 1] equals
    [Float 1.0]). This is {e not} SQL [=]: [Null] is equal to [Null]
    here, which is what grouping and DISTINCT require. *)
val equal : t -> t -> bool

(** Hash consistent with {!equal} (numeric values hash by their float
    image). *)
val hash : t -> int

val is_null : t -> bool

(** [to_float v] is the numeric image of [v].
    @raise Type_error if [v] is not numeric. *)
val to_float : t -> float

(** [to_int v] truncates numerics to int.
    @raise Type_error if [v] is not numeric. *)
val to_int : t -> int

(** [to_bool v] interprets [v] as a condition; [Null] maps to [None]
    (unknown), non-boolean values raise.
    @raise Type_error on non-boolean, non-null values. *)
val to_bool : t -> bool option

exception Type_error of string

(** Arithmetic with SQL NULL propagation: any NULL operand yields NULL.
    Integer pairs stay integral; mixed int/float promotes to float.
    [div] and [modulo] raise [Division_by_zero] for {e every} zero
    divisor — [Int 0], [Float 0.0] and [Float (-0.0)] alike — so the
    error does not depend on the inferred type of the operands.
    [div min_int (-1)] promotes to the exact float image of [2^62]
    (the quotient overflows the int range) and
    [modulo min_int (-1)] is [Int 0]; both would otherwise trap in
    native code. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val neg : t -> t

val pp : Format.formatter -> t -> unit

(** SQL literal rendering: strings quoted, NULL as [NULL]. *)
val to_string : t -> string

(** Type name used in error messages: ["null"], ["int"], ... *)
val type_name : t -> string

(** Rows: flat value arrays positionally aligned with a {!Schema.t}. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int

(** Pointwise {!Value.equal} (so [Int 1] equals [Float 1.0]). *)
val equal : t -> t -> bool

(** Lexicographic {!Value.compare}; shorter rows sort first. *)
val compare : t -> t -> int

(** Consistent with {!equal}. *)
val hash : t -> int

(** [project row idxs] extracts the listed positions (grouping and join
    keys). *)
val project : t -> int array -> t

val concat : t -> t -> t

(** Hashtable keyed by rows (join build tables, distinct sets, group
    maps) using {!equal}/{!hash}. *)
module Tbl : Hashtbl.S with type key = t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

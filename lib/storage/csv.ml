(** Minimal CSV reader/writer for loading edge lists and saving query
    results. Handles quoted fields with embedded commas/quotes; no
    external dependency. *)

let split_line ?(separator = ',') line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else if line.[i] = separator then begin
      push ();
      field (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      field (i + 1)
    end
  and quoted i =
    if i >= n then finish i
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else field (i + 1)
    else begin
      Buffer.add_char buf line.[i];
      quoted (i + 1)
    end
  and push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  and finish _ = push ()
  in
  field 0;
  List.rev !fields

let quote_field ?(separator = ',') s =
  if String.exists (fun c -> c = separator || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(** [load ~schema ?separator path] reads a headerless file, parsing each
    field under the schema's declared column type. [separator] defaults
    to comma; pass ['\t'] or [' '] for SNAP-style edge lists. *)
let load ~(schema : Schema.t) ?(separator = ',') path : Relation.t =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" && line.[0] <> '#' then begin
         let fields =
           (* Quoting is honored for every separator, not just comma;
              whitespace-separated edge lists (SNAP dumps) pad with
              runs of the separator, so their empty fields are still
              dropped. *)
           let all = split_line ~separator line in
           if separator = ',' then all
           else List.filter (fun s -> s <> "") all
         in
         let row =
           Array.of_list
             (List.mapi
                (fun i f ->
                  if i < Schema.arity schema then
                    Column_type.parse schema.(i).Schema.ty f
                  else Value.Null)
                fields)
         in
         if Array.length row = Schema.arity schema then rows := row :: !rows
         else
           failwith
             (Printf.sprintf "Csv.load %s: row with %d fields, expected %d"
                path (Array.length row) (Schema.arity schema))
       end
     done
   with
  | End_of_file -> close_in ic
  | e ->
    close_in ic;
    raise e);
  Relation.make schema (Array.of_list (List.rev !rows))

let raw_string (v : Value.t) =
  match v with
  | Value.Str s -> s
  | Value.Null -> ""
  (* Shortest representation that round-trips exactly. *)
  | Value.Float f -> Printf.sprintf "%.17g" f
  | v -> Value.to_string v

(** [save ?header ?separator rel path] writes one line per row;
    [header] adds a column-name line. Fields containing the separator,
    a quote, or a newline are double-quoted so [load] with the same
    separator round-trips them. *)
let save ?(header = false) ?(separator = ',') (rel : Relation.t) path =
  let sep = String.make 1 separator in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if header then
        output_string oc
          (String.concat sep (Schema.column_names (Relation.schema rel)) ^ "\n");
      Relation.iter
        (fun row ->
          let line =
            String.concat sep
              (Array.to_list
                 (Array.map (fun v -> quote_field ~separator (raw_string v)) row))
          in
          output_string oc (line ^ "\n"))
        rel)

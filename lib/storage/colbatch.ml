(** A typed column batch: the columnar twin of a [Row.t array].

    Each column stores its cells in an unboxed typed array when every
    non-NULL cell shares one runtime type (int / float / string /
    bool), with NULLs tracked in a side bitmap (a [bool array]; masked
    slots hold an arbitrary placeholder). Columns mixing numeric types
    — or anything the classifier cannot pin down — fall back to a
    boxed [Value.t array] with NULLs stored inline.

    Columns are materialized {e lazily}: {!gather}, {!gather_pad},
    {!slice} and {!concat} record how to build each output column and
    only run the copy when the column is first read. A column a
    downstream operator never touches (an unused join attribute, say)
    is never gathered at all, and a gather of a still-unforced gather
    composes the two selection vectors into one — so a two-join
    pipeline pays a single gather per column it actually reads, from
    the original base arrays. Memo cells are [Atomic.t] because
    batches are shared across domains (chunk-parallel and distributed
    executors): a racy double force only duplicates pure work, never
    publishes a half-built column.

    Batches are still {e dense at rest} in the logical sense:
    selection vectors never escape a batch, and every forced column is
    a fresh dense array — laziness changes when the copy happens, not
    what it produces. *)

type data =
  | D_int of int array
  | D_float of float array
  | D_bool of bool array
  | D_str of string array
  | D_value of Value.t array  (** mixed/unknown; NULLs inline, no bitmap *)

type col = {
  data : data;
  nulls : bool array option;
      (** NULL bitmap for typed arrays; [None] means no NULLs (or
          [D_value], which carries them inline) *)
}

(** One lazily-materialized column. [src] says how to build it; [memo]
    caches the result. [S_gather] keeps enough structure for the force
    path to flatten gather-of-gather chains by composing selection
    vectors. *)
type cell = { memo : col option Atomic.t; src : src }

and src =
  | S_thunk of (unit -> col)  (** arbitrary pure builder *)
  | S_gather of cell * int array * bool
      (** [(base, sel, has_neg)]: pad-gather of another cell; [-1]
          entries in [sel] yield NULL cells *)

type t = {
  len : int;  (** row count; authoritative even at arity 0 *)
  cells : cell array;
}

let cell_of_col c = { memo = Atomic.make (Some c); src = S_thunk (fun () -> c) }

let cell_of_thunk f = { memo = Atomic.make None; src = S_thunk f }

let length t = t.len
let arity t = Array.length t.cells
let make ~len cols = { len; cells = Array.map cell_of_col cols }

let data_length = function
  | D_int a -> Array.length a
  | D_float a -> Array.length a
  | D_bool a -> Array.length a
  | D_str a -> Array.length a
  | D_value a -> Array.length a

let is_null_at c i =
  match c.nulls with
  | Some m -> m.(i)
  | None -> ( match c.data with D_value a -> a.(i) = Value.Null | _ -> false)

(** Boxed read of one cell (NULL-aware). *)
let get c i =
  match c.nulls with
  | Some m when m.(i) -> Value.Null
  | _ -> (
    match c.data with
    | D_int a -> Value.Int a.(i)
    | D_float a -> Value.Float a.(i)
    | D_bool a -> Value.Bool a.(i)
    | D_str a -> Value.Str a.(i)
    | D_value a -> a.(i))

(* ------------------------------------------------------------------ *)
(* Gather primitives (over forced columns)                             *)

let gather_pad_col ~has_neg c (sel : int array) : col =
  let n = Array.length sel in
  match c.data with
  | D_value a ->
    {
      data =
        D_value
          (Array.map (fun i -> if i < 0 then Value.Null else a.(i)) sel);
      nulls = None;
    }
  | _ ->
    let mask =
      match c.nulls with
      | Some src ->
        let m = Array.make n false in
        for k = 0 to n - 1 do
          let i = sel.(k) in
          m.(k) <- i < 0 || src.(i)
        done;
        Some m
      | None ->
        if not has_neg then None
        else begin
          let m = Array.make n false in
          for k = 0 to n - 1 do
            m.(k) <- sel.(k) < 0
          done;
          Some m
        end
    in
    (* Seed with the pad placeholder, then overwrite real slots — one
       pass, no per-element closure. *)
    let pick : 'a. 'a array -> 'a -> 'a array =
     fun a fill ->
      let out = Array.make n fill in
      for k = 0 to n - 1 do
        let i = sel.(k) in
        if i >= 0 then out.(k) <- a.(i)
      done;
      out
    in
    let data =
      match c.data with
      | D_int a -> D_int (pick a 0)
      | D_float a -> D_float (pick a 0.0)
      | D_bool a -> D_bool (pick a false)
      | D_str a -> D_str (pick a "")
      | D_value _ -> assert false
    in
    { data; nulls = mask }

(** [compose inner outer] is the selection vector equivalent to
    gathering with [inner] and then with [outer]; a pad ([-1]) at
    either level stays a pad. Returns the vector and its has_neg. *)
let compose (inner : int array) (outer : int array) : int array * bool =
  let n = Array.length outer in
  let out = Array.make n 0 in
  let has_neg = ref false in
  for k = 0 to n - 1 do
    let i = outer.(k) in
    let j = if i < 0 then -1 else inner.(i) in
    if j < 0 then has_neg := true;
    out.(k) <- j
  done;
  (out, !has_neg)

(** Force a cell: run its builder and memoize. Unforced gather chains
    are flattened first — [gather sel2 (gather sel1 base)] becomes one
    [gather (compose sel1 sel2) base] — so intermediate join outputs
    are never materialized on behalf of downstream gathers. Safe to
    race from multiple domains: builders are pure, so a duplicate
    force just wastes the copy. *)
let rec force (cell : cell) : col =
  match Atomic.get cell.memo with
  | Some c -> c
  | None ->
    let c =
      match cell.src with
      | S_thunk f -> f ()
      | S_gather (base, sel, has_neg) -> resolve_gather base sel has_neg
    in
    Atomic.set cell.memo (Some c);
    c

and resolve_gather base sel has_neg : col =
  match Atomic.get base.memo with
  | Some bc -> gather_pad_col ~has_neg bc sel
  | None -> (
    match base.src with
    | S_gather (b2, s2, _) ->
      let sel', has_neg' = compose s2 sel in
      resolve_gather b2 sel' has_neg'
    | S_thunk _ -> gather_pad_col ~has_neg (force base) sel)

let col t i = force t.cells.(i)
let value_at t j i = get (col t j) i

(* ------------------------------------------------------------------ *)
(* Classification: Value array -> typed column                         *)

(** Classify a boxed column into the tightest typed representation.
    All-NULL columns stay boxed (there is no type to commit to — the
    "all-null column" edge case). Mixed Int/Float columns also stay
    boxed: packing an [Int] into a float array would erase its intness
    and break bit-identical results against the row engine. *)
let of_values (vals : Value.t array) : col =
  let n = Array.length vals in
  let ints = ref 0 and floats = ref 0 and strs = ref 0 in
  let bools = ref 0 and nulls = ref 0 in
  for i = 0 to n - 1 do
    match vals.(i) with
    | Value.Null -> incr nulls
    | Value.Int _ -> incr ints
    | Value.Float _ -> incr floats
    | Value.Str _ -> incr strs
    | Value.Bool _ -> incr bools
  done;
  let non_null = n - !nulls in
  let mask () =
    if !nulls = 0 then None
    else Some (Array.map (fun v -> v = Value.Null) vals)
  in
  if non_null = 0 then { data = D_value vals; nulls = None }
  else if !ints = non_null then
    {
      data =
        D_int
          (Array.map (function Value.Int i -> i | _ -> 0) vals);
      nulls = mask ();
    }
  else if !floats = non_null then
    {
      data =
        D_float
          (Array.map (function Value.Float f -> f | _ -> 0.0) vals);
      nulls = mask ();
    }
  else if !strs = non_null then
    {
      data =
        D_str (Array.map (function Value.Str s -> s | _ -> "") vals);
      nulls = mask ();
    }
  else if !bools = non_null then
    {
      data =
        D_bool
          (Array.map (function Value.Bool b -> b | _ -> false) vals);
      nulls = mask ();
    }
  else { data = D_value vals; nulls = None }

(** Untyped boxed column, no classification pass (used for operator
    outputs that are already known to be mixed). *)
let of_values_raw vals = { data = D_value vals; nulls = None }

let to_values c =
  let n = data_length c.data in
  Array.init n (fun i -> get c i)

(* ------------------------------------------------------------------ *)
(* Row conversion                                                      *)

let of_rows ~arity (rows : Row.t array) : t =
  let n = Array.length rows in
  let cells =
    Array.init arity (fun j ->
        cell_of_col (of_values (Array.init n (fun i -> rows.(i).(j)))))
  in
  { len = n; cells }

let to_rows t : Row.t array =
  let ar = arity t in
  let cols = Array.init ar (col t) in
  Array.init t.len (fun i -> Array.init ar (fun j -> get cols.(j) i))

(** A column holding [v] repeated [len] times (compiled literals). *)
let const v len : col =
  match (v : Value.t) with
  | Value.Int i -> { data = D_int (Array.make len i); nulls = None }
  | Value.Float f -> { data = D_float (Array.make len f); nulls = None }
  | Value.Str s -> { data = D_str (Array.make len s); nulls = None }
  | Value.Bool b -> { data = D_bool (Array.make len b); nulls = None }
  | Value.Null -> { data = D_value (Array.make len Value.Null); nulls = None }

(* ------------------------------------------------------------------ *)
(* Gather / slice / concat (lazy column plumbing)                      *)

let gather_cells t sel has_neg =
  {
    len = Array.length sel;
    cells =
      Array.map (fun cell -> { memo = Atomic.make None; src = S_gather (cell, sel, has_neg) }) t.cells;
  }

(** Dense gather: keep exactly the rows listed in [sel], in order.
    Columns materialize on first read. *)
let gather t (sel : int array) : t = gather_cells t sel false

(** Gather where a negative index produces an all-NULL cell — the
    outer-join padding path. Columns materialize on first read. *)
let gather_pad t (sel : int array) : t =
  let has_neg = ref false in
  for k = 0 to Array.length sel - 1 do
    if sel.(k) < 0 then has_neg := true
  done;
  gather_cells t sel !has_neg

let slice_col c lo len : col =
  let data =
    match c.data with
    | D_int a -> D_int (Array.sub a lo len)
    | D_float a -> D_float (Array.sub a lo len)
    | D_bool a -> D_bool (Array.sub a lo len)
    | D_str a -> D_str (Array.sub a lo len)
    | D_value a -> D_value (Array.sub a lo len)
  in
  { data; nulls = Option.map (fun m -> Array.sub m lo len) c.nulls }

(** [slice t lo len] — contiguous row range (returns [t] itself for
    the full range); column copies happen on first read. *)
let slice t lo len : t =
  if lo = 0 && len = t.len then t
  else
    {
      len;
      cells =
        Array.map
          (fun cell -> cell_of_thunk (fun () -> slice_col (force cell) lo len))
          t.cells;
    }

(** Side-by-side composition (join outputs): columns of [a] then [b];
    both must have equal length. Shares cells, copies nothing. *)
let hstack a b : t = { len = a.len; cells = Array.append a.cells b.cells }

let concat_masks parts lens total =
  if Array.for_all (fun (c : col) -> c.nulls = None) parts then None
  else begin
    let m = Array.make total false in
    let off = ref 0 in
    Array.iteri
      (fun k (c : col) ->
        (match c.nulls with
        | Some src -> Array.blit src 0 m !off lens.(k)
        | None -> ());
        off := !off + lens.(k))
      parts;
    Some m
  end

let concat_cols (parts : col array) (lens : int array) total : col =
  let same_kind =
    Array.length parts > 0
    &&
    let kind = function
      | D_int _ -> 0
      | D_float _ -> 1
      | D_bool _ -> 2
      | D_str _ -> 3
      | D_value _ -> 4
    in
    let k0 = kind parts.(0).data in
    Array.for_all (fun c -> kind c.data = k0) parts
  in
  if same_kind then begin
    let data =
      match parts.(0).data with
      | D_int _ ->
        D_int
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun c ->
                     match c.data with D_int a -> a | _ -> assert false)
                   parts)))
      | D_float _ ->
        D_float
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun c ->
                     match c.data with D_float a -> a | _ -> assert false)
                   parts)))
      | D_bool _ ->
        D_bool
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun c ->
                     match c.data with D_bool a -> a | _ -> assert false)
                   parts)))
      | D_str _ ->
        D_str
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun c ->
                     match c.data with D_str a -> a | _ -> assert false)
                   parts)))
      | D_value _ ->
        D_value
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun c ->
                     match c.data with D_value a -> a | _ -> assert false)
                   parts)))
    in
    { data; nulls = concat_masks parts lens total }
  end
  else begin
    (* Chunks disagreed on representation (possible when a scalar
       fallback classified per chunk): box everything. *)
    let out = Array.make total Value.Null in
    let off = ref 0 in
    Array.iteri
      (fun k c ->
        for i = 0 to lens.(k) - 1 do
          out.(!off + i) <- get c i
        done;
        off := !off + lens.(k))
      parts;
    { data = D_value out; nulls = None }
  end

(** Vertical concatenation of chunk outputs. All batches must share one
    arity; representation mismatches between chunks degrade that column
    to boxed values. Columns materialize (forcing the chunk columns)
    on first read. *)
let concat (parts : t array) : t =
  match Array.length parts with
  | 0 -> { len = 0; cells = [||] }
  | 1 -> parts.(0)
  | _ ->
    let lens = Array.map (fun p -> p.len) parts in
    let total = Array.fold_left ( + ) 0 lens in
    let ar = arity parts.(0) in
    {
      len = total;
      cells =
        Array.init ar (fun j ->
            cell_of_thunk (fun () ->
                concat_cols
                  (Array.map (fun p -> col p j) parts)
                  lens total));
    }

(* ------------------------------------------------------------------ *)
(* Cell comparison (columnar diff fast paths)                          *)

let cell_equal (a : col) i (b : col) j =
  match (a.data, b.data) with
  | D_int xa, D_int xb ->
    let na = is_null_at a i and nb = is_null_at b j in
    if na || nb then na && nb else Int.equal xa.(i) xb.(j)
  | D_float xa, D_float xb ->
    let na = is_null_at a i and nb = is_null_at b j in
    if na || nb then na && nb else Float.compare xa.(i) xb.(j) = 0
  | D_str xa, D_str xb ->
    let na = is_null_at a i and nb = is_null_at b j in
    if na || nb then na && nb else String.equal xa.(i) xb.(j)
  | D_bool xa, D_bool xb ->
    let na = is_null_at a i and nb = is_null_at b j in
    if na || nb then na && nb else Bool.equal xa.(i) xb.(j)
  | _ -> Value.equal (get a i) (get b j)

(** Positional row equality across two batches of equal arity, under
    {!Value.equal} semantics (so [Int 1] equals [Float 1.0] even when
    the columns classified differently). *)
let rows_equal_at a i b j =
  let ar = arity a in
  let ok = ref true in
  let c = ref 0 in
  while !ok && !c < ar do
    if not (cell_equal (col a !c) i (col b !c) j) then ok := false;
    incr c
  done;
  !ok

(** Typed column batches — the columnar twin of a [Row.t array].

    A batch stores each column as an unboxed typed array (int / float /
    string / bool) with a NULL bitmap when the column is monomorphic,
    falling back to a boxed [Value.t] array for mixed columns. The
    columnar operators evaluate expressions a column at a time over
    these arrays; {!gather} turns a selection vector back into a dense
    batch, so published batches never alias filtered views.

    Columns materialize lazily: {!gather}, {!gather_pad}, {!slice} and
    {!concat} defer their per-column copies until the column is first
    read via {!col}, and a gather of a still-unforced gather composes
    the two selection vectors into a single copy from the base arrays.
    Columns no downstream operator reads are never built. Forcing is
    memoized and safe to race across domains (pure builders). *)

type data =
  | D_int of int array
  | D_float of float array
  | D_bool of bool array
  | D_str of string array
  | D_value of Value.t array  (** mixed/unknown; NULLs inline, no bitmap *)

type col = {
  data : data;
  nulls : bool array option;
      (** NULL bitmap for typed arrays (masked slots hold placeholder
          values); [None] means no NULLs or [D_value] *)
}

(** A batch: a row count plus lazily-forced columns. *)
type t

val length : t -> int
val arity : t -> int

(** [col t i] — column [i], forcing (and memoizing) its
    materialization. *)
val col : t -> int -> col

val make : len:int -> col array -> t

(** Whether cell [i] of the column is NULL. *)
val is_null_at : col -> int -> bool

(** Boxed read of one cell (NULL-aware). *)
val get : col -> int -> Value.t

(** [value_at t j i] — boxed cell of column [j], row [i]. *)
val value_at : t -> int -> int -> Value.t

(** Classify a boxed column into the tightest typed representation.
    All-NULL and mixed Int/Float columns stay boxed ([D_value]) to
    preserve exact value identity. *)
val of_values : Value.t array -> col

(** Boxed column without the classification pass. *)
val of_values_raw : Value.t array -> col

val to_values : col -> Value.t array

(** Column-wise conversion of a row array; [arity] governs empty
    inputs. *)
val of_rows : arity:int -> Row.t array -> t

val to_rows : t -> Row.t array

(** A column holding [v] repeated [len] times (compiled literals). *)
val const : Value.t -> int -> col

(** Dense gather: keep exactly the rows listed in [sel], in order. *)
val gather : t -> int array -> t

(** Gather where a negative index produces an all-NULL cell — the
    outer-join padding path. *)
val gather_pad : t -> int array -> t

(** [slice t lo len] — contiguous row range as a fresh batch (returns
    [t] itself for the full range). *)
val slice : t -> int -> int -> t

(** Side-by-side composition (join outputs): columns of [a] then [b];
    both must have equal length. *)
val hstack : t -> t -> t

(** Vertical concatenation of chunk outputs of equal arity;
    representation mismatches degrade that column to boxed values. *)
val concat : t array -> t

(** Cell equality under {!Value.equal} semantics, with typed fast
    paths. *)
val cell_equal : col -> int -> col -> int -> bool

(** Positional row equality across two batches of equal arity, under
    {!Value.equal} semantics. *)
val rows_equal_at : t -> int -> t -> int -> bool

(** An immutable materialized relation: a schema plus its tuples.

    All executor operators consume and produce relations; the paper's
    engine likewise materializes intermediate results of iterative CTEs
    (§IV: "iterative CTEs mostly materialize intermediate results").

    Since the columnar core landed, a relation holds its tuples in
    either (or both) of two interchangeable views: a [Row.t array] and
    a typed {!Colbatch.t}. Constructors install one view; the other is
    materialized lazily on first demand and then memoized, so a
    columnar pipeline never pays for rows it does not read and the
    row-view shim keeps every legacy consumer working unchanged. The
    memo cells are [Atomic.t] because distributed partitions share
    relations across domains: a racy double conversion only wastes
    work, never publishes a half-built array. *)

type t = {
  schema : Schema.t;
  card : int;
  rows_v : Row.t array option Atomic.t;
  cols_v : Colbatch.t option Atomic.t;
}

(* At least one view is always present; constructors guarantee it. *)

let make schema rows =
  Array.iter
    (fun r ->
      if Array.length r <> Schema.arity schema then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d <> schema arity %d"
             (Array.length r) (Schema.arity schema)))
    rows;
  {
    schema;
    card = Array.length rows;
    rows_v = Atomic.make (Some rows);
    cols_v = Atomic.make None;
  }

(** Trusted constructor for operator outputs whose rows are built from
    already-validated relations: skips the O(n) per-row arity check of
    {!make}. External ingestion (CSV, DML, VALUES) must keep using
    {!make}. *)
let make_trusted schema rows =
  {
    schema;
    card = Array.length rows;
    rows_v = Atomic.make (Some rows);
    cols_v = Atomic.make None;
  }

(** Trusted columnar constructor: the batch's arity must match the
    schema's (operator outputs are built from validated inputs). *)
let of_batch schema batch =
  {
    schema;
    card = Colbatch.length batch;
    rows_v = Atomic.make None;
    cols_v = Atomic.make (Some batch);
  }

let of_lists schema rows = make schema (Array.of_list (List.map Row.of_list rows))
let empty schema = make_trusted schema [||]
let schema t = t.schema
let cardinality t = t.card
let is_empty t = t.card = 0

(** The row view, materializing (and memoizing) it from the columnar
    view on first use. *)
let rows t =
  match Atomic.get t.rows_v with
  | Some r -> r
  | None ->
    let r =
      match Atomic.get t.cols_v with
      | Some b -> Colbatch.to_rows b
      | None -> [||] (* unreachable: some view always exists *)
    in
    Atomic.set t.rows_v (Some r);
    r

(** The columnar view, converting (and memoizing) from rows on first
    use. *)
let columnar t =
  match Atomic.get t.cols_v with
  | Some b -> b
  | None ->
    let b =
      match Atomic.get t.rows_v with
      | Some r -> Colbatch.of_rows ~arity:(Schema.arity t.schema) r
      | None -> Colbatch.make ~len:0 [||]
    in
    Atomic.set t.cols_v (Some b);
    b

(** The columnar view only if it is already materialized — lets diff
    fast paths avoid forcing a conversion just to compare. *)
let columnar_opt t = Atomic.get t.cols_v

let iter f t = Array.iter f (rows t)
let fold f init t = Array.fold_left f init (rows t)

(** [column t name] extracts one column as a value array. *)
let column t name =
  let i = Schema.find_exn t.schema name in
  match Atomic.get t.cols_v with
  | Some b when Atomic.get t.rows_v = None -> Colbatch.to_values (Colbatch.col b i)
  | _ -> Array.map (fun r -> r.(i)) (rows t)

(** [key_values t i] — column [i] as boxed values, read from whichever
    view is already materialized (the unique-key check's accessor: it
    must not force a full row materialization of a columnar CTE every
    iteration). *)
let key_values t i =
  match Atomic.get t.rows_v with
  | Some rs -> Array.map (fun r -> r.(i)) rs
  | None -> (
    match Atomic.get t.cols_v with
    | Some b -> Colbatch.to_values (Colbatch.col b i)
    | None -> [||])

(** Structural equality as a {e bag} of rows (order-insensitive):
    relations are sets/bags in SQL, so tests compare with this. *)
let equal_bag a b =
  Schema.arity a.schema = Schema.arity b.schema
  && cardinality a = cardinality b
  &&
  let sa = Array.copy (rows a) and sb = Array.copy (rows b) in
  Array.sort Row.compare sa;
  Array.sort Row.compare sb;
  Array.for_all2 Row.equal sa sb

(* ------------------------------------------------------------------ *)
(* Versioned diffing (Delta termination + semi-naive evaluation)       *)

(** Positional fast path precondition: same cardinality and the same
    key sequence, position by position. Iterative loops keep key order
    stable, so this is the common case. *)
let keys_aligned ~key_idx (prev : t) (next : t) =
  cardinality prev = cardinality next
  &&
  match (columnar_opt prev, columnar_opt next) with
  | Some pb, Some nb ->
    let pk = Colbatch.col pb key_idx and nk = Colbatch.col nb key_idx in
    let n = cardinality next in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      if not (Colbatch.cell_equal pk !i nk !i) then ok := false;
      incr i
    done;
    !ok
  | _ ->
    let pr = rows prev and nr = rows next in
    let n = cardinality next in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      if not (Value.equal pr.(!i).(key_idx) nr.(!i).(key_idx)) then ok := false;
      incr i
    done;
    !ok

(** Positional row comparison over whichever views exist, avoiding a
    row materialization when both sides are columnar. *)
let row_equal_positional (prev : t) (next : t) =
  match (columnar_opt prev, columnar_opt next) with
  | Some pb, Some nb -> fun i -> Colbatch.rows_equal_at pb i nb i
  | _ ->
    let pr = rows prev and nr = rows next in
    fun i -> Row.equal pr.(i) nr.(i)

(** Rows changed between two versions keyed by column [key_idx]; used
    by the Delta termination condition and by tests. Counts rows whose
    key is present in both but whose payload differs, plus rows present
    in only one side. *)
let delta_count ~key_idx (prev : t) (next : t) =
  if keys_aligned ~key_idx prev next then begin
    (* Lockstep count over the columnar (or row) views: no hashing, no
       row boxing — this runs once per iteration over the whole CTE. *)
    let eq = row_equal_positional prev next in
    let changed = ref 0 in
    for i = 0 to cardinality next - 1 do
      if not (eq i) then incr changed
    done;
    !changed
  end
  else begin
    let index = Hashtbl.create (cardinality prev) in
    Array.iter (fun r -> Hashtbl.replace index r.(key_idx) r) (rows prev);
    let changed = ref 0 in
    let seen = ref 0 in
    Array.iter
      (fun r ->
        match Hashtbl.find_opt index r.(key_idx) with
        | Some old ->
          incr seen;
          if not (Row.equal old r) then incr changed
        | None -> incr changed)
      (rows next);
    (* Rows that vanished also count as changed. *)
    !changed + (cardinality prev - !seen)
  end

(** The rows behind {!delta_count}: every [next] row whose key is new or
    whose payload differs from [prev], plus the {e previous} version of
    changed and vanished keys. Returning both versions lets semi-naive
    evaluation chase join partners a changed row used to reach as well
    as the ones it reaches now. Schema is taken from [next]. *)
let changed_rows ~key_idx (prev : t) (next : t) =
  (* Fast path: iterative loops keep the key sequence stable from one
     iteration to the next, so when both versions list the same keys in
     the same positions the diff is a single lockstep walk with no
     hashing — this runs once per iteration over the whole CTE, so its
     constant matters. *)
  let n = cardinality next in
  if keys_aligned ~key_idx prev next then begin
    let prev_rows = rows prev and next_rows = rows next in
    let out = ref [] in
    for i = n - 1 downto 0 do
      let old = prev_rows.(i) and r = next_rows.(i) in
      if not (Row.equal old r) then out := r :: old :: !out
    done;
    make_trusted next.schema (Array.of_list !out)
  end
  else begin
    let index = Hashtbl.create (cardinality prev) in
    Array.iter (fun r -> Hashtbl.replace index r.(key_idx) r) (rows prev);
    let out = ref [] in
    let seen = Hashtbl.create (cardinality next) in
    Array.iter
      (fun r ->
        Hashtbl.replace seen r.(key_idx) ();
        match Hashtbl.find_opt index r.(key_idx) with
        | Some old -> if not (Row.equal old r) then out := old :: r :: !out
        | None -> out := r :: !out)
      (rows next);
    Array.iter
      (fun r -> if not (Hashtbl.mem seen r.(key_idx)) then out := r :: !out)
      (rows prev);
    make_trusted next.schema (Array.of_list (List.rev !out))
  end

(** [changed_rows_bounded ~key_idx ~cutoff prev next] is
    [Some (changed_rows prev next)] when fewer than [cutoff] distinct
    keys changed, and [None] as soon as the count reaches [cutoff]
    (early exit, before building any row list). This is the semi-naive
    cutoff probe: PageRank-style full-churn iterations abandon the diff
    roughly halfway through the scan instead of materializing a
    relation of every old+new pair only to discard it. [cutoff] must be
    at least 1. *)
let changed_rows_bounded ~key_idx ~cutoff (prev : t) (next : t) =
  let n = cardinality next in
  if keys_aligned ~key_idx prev next then begin
    (* Keys are unique per the executor's unique-key check, so each
       differing position is one distinct changed key. First count with
       early exit (no allocation); only materialize when under the
       cutoff. *)
    let eq = row_equal_positional prev next in
    let changed = ref 0 in
    let i = ref 0 in
    while !changed < cutoff && !i < n do
      if not (eq !i) then incr changed;
      incr i
    done;
    if !changed >= cutoff then None
    else begin
      let prev_rows = rows prev and next_rows = rows next in
      let out = ref [] in
      for i = n - 1 downto 0 do
        let old = prev_rows.(i) and r = next_rows.(i) in
        if not (Row.equal old r) then out := r :: old :: !out
      done;
      Some (make_trusted next.schema (Array.of_list !out))
    end
  end
  else begin
    (* Mirror the hashed path of {!changed_rows}, counting distinct
       changed keys (changed payloads, inserts, vanished) with the same
       early exit. *)
    let index = Hashtbl.create (cardinality prev) in
    Array.iter (fun r -> Hashtbl.replace index r.(key_idx) r) (rows prev);
    let keys = Hashtbl.create 64 in
    let mark k = if not (Hashtbl.mem keys k) then Hashtbl.replace keys k () in
    let seen = Hashtbl.create (cardinality next) in
    let next_rows = rows next in
    let i = ref 0 in
    while Hashtbl.length keys < cutoff && !i < n do
      let r = next_rows.(!i) in
      Hashtbl.replace seen r.(key_idx) ();
      (match Hashtbl.find_opt index r.(key_idx) with
      | Some old -> if not (Row.equal old r) then mark r.(key_idx)
      | None -> mark r.(key_idx));
      incr i
    done;
    if Hashtbl.length keys < cutoff then begin
      let prev_rows = rows prev in
      let j = ref 0 in
      while Hashtbl.length keys < cutoff && !j < Array.length prev_rows do
        let r = prev_rows.(!j) in
        (* [seen] is complete here: the first loop exhausted [next]. *)
        if not (Hashtbl.mem seen r.(key_idx)) then mark r.(key_idx);
        incr j
      done
    end;
    if Hashtbl.length keys >= cutoff then None
    else Some (changed_rows ~key_idx prev next)
  end

let sorted t =
  let rs = Array.copy (rows t) in
  Array.sort Row.compare rs;
  make_trusted t.schema rs

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema (cardinality t);
  Array.iteri
    (fun i r -> if i < 20 then Format.fprintf fmt "@\n  %a" Row.pp r)
    (rows t);
  if cardinality t > 20 then Format.fprintf fmt "@\n  ..."

(** Render as an aligned ASCII table (CLI output). *)
let to_table_string ?(max_rows = 50) t =
  let headers = Array.of_list (Schema.column_names t.schema) in
  let shown = min max_rows (cardinality t) in
  let rs = rows t in
  let cells = Array.init shown (fun i -> Array.map Value.to_string rs.(i)) in
  let widths =
    Array.mapi
      (fun c h ->
        Array.fold_left (fun w row -> max w (String.length row.(c)))
          (String.length h) cells)
      headers
  in
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let render row =
    Array.iteri
      (fun c cell ->
        Buffer.add_string buf (Printf.sprintf "| %-*s " widths.(c) cell))
      row;
    Buffer.add_string buf "|\n"
  in
  line '-';
  render headers;
  line '-';
  Array.iter render cells;
  line '-';
  if cardinality t > shown then
    Buffer.add_string buf
      (Printf.sprintf "(%d more rows)\n" (cardinality t - shown));
  Buffer.add_string buf (Printf.sprintf "(%d rows)\n" (cardinality t));
  Buffer.contents buf

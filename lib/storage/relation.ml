(** An immutable materialized relation: a schema plus a row array.

    All executor operators consume and produce relations; the paper's
    engine likewise materializes intermediate results of iterative CTEs
    (§IV: "iterative CTEs mostly materialize intermediate results"). *)

type t = {
  schema : Schema.t;
  rows : Row.t array;
}

let make schema rows =
  Array.iter
    (fun r ->
      if Array.length r <> Schema.arity schema then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d <> schema arity %d"
             (Array.length r) (Schema.arity schema)))
    rows;
  { schema; rows }

(** Trusted constructor for operator outputs whose rows are built from
    already-validated relations: skips the O(n) per-row arity check of
    {!make}. External ingestion (CSV, DML, VALUES) must keep using
    {!make}. *)
let make_trusted schema rows = { schema; rows }

let of_lists schema rows = make schema (Array.of_list (List.map Row.of_list rows))

let empty schema = { schema; rows = [||] }

let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows
let is_empty t = cardinality t = 0

let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows

(** [column t name] extracts one column as a value array. *)
let column t name =
  let i = Schema.find_exn t.schema name in
  Array.map (fun r -> r.(i)) t.rows

(** Structural equality as a {e bag} of rows (order-insensitive):
    relations are sets/bags in SQL, so tests compare with this. *)
let equal_bag a b =
  Schema.arity a.schema = Schema.arity b.schema
  && cardinality a = cardinality b
  &&
  let sa = Array.copy a.rows and sb = Array.copy b.rows in
  Array.sort Row.compare sa;
  Array.sort Row.compare sb;
  Array.for_all2 Row.equal sa sb

(** Rows changed between two versions keyed by column [key_idx]; used
    by the Delta termination condition and by tests. Counts rows whose
    key is present in both but whose payload differs, plus rows present
    in only one side. *)
let delta_count ~key_idx (prev : t) (next : t) =
  let index = Hashtbl.create (cardinality prev) in
  Array.iter (fun r -> Hashtbl.replace index r.(key_idx) r) prev.rows;
  let changed = ref 0 in
  let seen = ref 0 in
  Array.iter
    (fun r ->
      match Hashtbl.find_opt index r.(key_idx) with
      | Some old ->
        incr seen;
        if not (Row.equal old r) then incr changed
      | None -> incr changed)
    next.rows;
  (* Rows that vanished also count as changed. *)
  !changed + (cardinality prev - !seen)

(** The rows behind {!delta_count}: every [next] row whose key is new or
    whose payload differs from [prev], plus the {e previous} version of
    changed and vanished keys. Returning both versions lets semi-naive
    evaluation chase join partners a changed row used to reach as well
    as the ones it reaches now. Schema is taken from [next]. *)
let changed_rows ~key_idx (prev : t) (next : t) =
  (* Fast path: iterative loops keep the key sequence stable from one
     iteration to the next, so when both versions list the same keys in
     the same positions the diff is a single lockstep walk with no
     hashing — this runs once per iteration over the whole CTE, so its
     constant matters. *)
  let n = cardinality next in
  let aligned =
    cardinality prev = n
    &&
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      if not (Value.equal prev.rows.(!i).(key_idx) next.rows.(!i).(key_idx))
      then ok := false;
      incr i
    done;
    !ok
  in
  if aligned then begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      let old = prev.rows.(i) and r = next.rows.(i) in
      if not (Row.equal old r) then out := r :: old :: !out
    done;
    { schema = next.schema; rows = Array.of_list !out }
  end
  else begin
    let index = Hashtbl.create (cardinality prev) in
    Array.iter (fun r -> Hashtbl.replace index r.(key_idx) r) prev.rows;
    let out = ref [] in
    let seen = Hashtbl.create (cardinality next) in
    Array.iter
      (fun r ->
        Hashtbl.replace seen r.(key_idx) ();
        match Hashtbl.find_opt index r.(key_idx) with
        | Some old -> if not (Row.equal old r) then out := old :: r :: !out
        | None -> out := r :: !out)
      next.rows;
    Array.iter
      (fun r -> if not (Hashtbl.mem seen r.(key_idx)) then out := r :: !out)
      prev.rows;
    { schema = next.schema; rows = Array.of_list (List.rev !out) }
  end

let sorted t =
  let rows = Array.copy t.rows in
  Array.sort Row.compare rows;
  { t with rows }

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema (cardinality t);
  Array.iteri
    (fun i r -> if i < 20 then Format.fprintf fmt "@\n  %a" Row.pp r)
    t.rows;
  if cardinality t > 20 then Format.fprintf fmt "@\n  ..."

(** Render as an aligned ASCII table (CLI output). *)
let to_table_string ?(max_rows = 50) t =
  let headers = Array.of_list (Schema.column_names t.schema) in
  let shown = min max_rows (cardinality t) in
  let cells =
    Array.init shown (fun i -> Array.map Value.to_string t.rows.(i))
  in
  let widths =
    Array.mapi
      (fun c h ->
        Array.fold_left (fun w row -> max w (String.length row.(c)))
          (String.length h) cells)
      headers
  in
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let render row =
    Array.iteri
      (fun c cell ->
        Buffer.add_string buf (Printf.sprintf "| %-*s " widths.(c) cell))
      row;
    Buffer.add_string buf "|\n"
  in
  line '-';
  render headers;
  line '-';
  Array.iter render cells;
  line '-';
  if cardinality t > shown then
    Buffer.add_string buf
      (Printf.sprintf "(%d more rows)\n" (cardinality t - shown));
  Buffer.add_string buf (Printf.sprintf "(%d rows)\n" (cardinality t));
  Buffer.contents buf

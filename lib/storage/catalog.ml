(** The catalog: base tables plus the executor's intermediate-result
    lookup table.

    The lookup table mirrors the paper's §VI-A description: a map from
    name to (schema, pointer-to-rows). The [rename] operation swaps the
    binding in O(1) and releases any displaced entry — this is exactly
    the "rename" operator DBSpinner adds to the engine. *)

type base_event =
  | Created of string
  | Dropped of string

(** An immutable published version of the base tables (MVCC). Each
    entry keeps the live table it was frozen from and the live version
    at freeze time, so the next {!publish} can reuse unchanged entries
    by physical identity instead of re-freezing every table. *)
type snapshot_entry = {
  src : Table.t;  (** the live table this entry was frozen from *)
  src_version : int;  (** [Table.version src] at freeze time *)
  frozen : Table.t;  (** the immutable copy readers scan *)
}

type snapshot = {
  snap_version : int;  (** monotonic publish counter, never reused *)
  snap_tables : (string, snapshot_entry) Hashtbl.t;
      (** frozen after construction; concurrent reads are safe *)
}

type t = {
  base : (string, Table.t) Hashtbl.t;
  temps : (string, Relation.t) Hashtbl.t;
  temp_gens : (string, int) Hashtbl.t;
      (** generation number per temp; fresh on every (re)bind, so the
          executor cache can tell iterations of the same name apart *)
  base_hook : (base_event -> unit) option ref;
      (** shared across all {!with_shared_base} views, like [base]
          itself — DDL through any view reaches the one observer *)
  published : snapshot Atomic.t;
      (** latest published base-table version, shared across all
          {!with_shared_base} views; readers pin it without any lock *)
  mutable pinned : snapshot option;
      (** view-local: when set, base-table reads through this view
          resolve against the pinned snapshot instead of [base] *)
  mutable generation_counter : int;
  mutable ddl_ops : int;  (** CREATE/DROP count, for baseline accounting *)
  mutable renames : int;
}

exception Unknown_table of string
exception Duplicate_table of string

let empty_snapshot () = { snap_version = 0; snap_tables = Hashtbl.create 1 }

let create () =
  {
    base = Hashtbl.create 16;
    temps = Hashtbl.create 16;
    temp_gens = Hashtbl.create 16;
    base_hook = ref None;
    published = Atomic.make (empty_snapshot ());
    pinned = None;
    generation_counter = 0;
    ddl_ops = 0;
    renames = 0;
  }

(** A session-private view over a shared database: the [base] hashtable
    is the {e same physical table} (DDL and DML are visible across all
    views), while temps, generations and accounting counters are fresh.
    This is what keeps concurrent sessions' iterative CTEs apart — two
    sessions both materializing a temp named "pagerank" write to their
    own lookup tables instead of clobbering each other. *)
let with_shared_base parent =
  {
    base = parent.base;
    temps = Hashtbl.create 16;
    temp_gens = Hashtbl.create 16;
    base_hook = parent.base_hook;
    published = parent.published;
    pinned = None;
    generation_counter = 0;
    ddl_ops = 0;
    renames = 0;
  }

let key = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Base tables                                                         *)

let fire_base_event t ev =
  match !(t.base_hook) with
  | Some hook -> hook ev
  | None -> ()

let set_base_hook t hook = t.base_hook := hook

(** Resolve a base-table key for reading: the pinned snapshot (if any)
    wins over the live table, so a reader's entire statement sees one
    immutable version regardless of concurrent DML/DDL. *)
let base_find_opt t k =
  match t.pinned with
  | Some snap ->
    Option.map (fun e -> e.frozen) (Hashtbl.find_opt snap.snap_tables k)
  | None -> Hashtbl.find_opt t.base k

let guard_unpinned t what =
  if t.pinned <> None then
    invalid_arg ("Catalog." ^ what ^ ": view holds a pinned snapshot")

let create_table ?primary_key t ~name schema =
  guard_unpinned t "create_table";
  let k = key name in
  if Hashtbl.mem t.base k then raise (Duplicate_table name);
  let table = Table.create ?primary_key ~name schema in
  Hashtbl.replace t.base k table;
  t.ddl_ops <- t.ddl_ops + 1;
  fire_base_event t (Created name);
  table

let drop_table t name =
  guard_unpinned t "drop_table";
  let k = key name in
  if not (Hashtbl.mem t.base k) then raise (Unknown_table name);
  Hashtbl.remove t.base k;
  t.ddl_ops <- t.ddl_ops + 1;
  fire_base_event t (Dropped name)

let find_table t name =
  match base_find_opt t (key name) with
  | Some table -> table
  | None -> raise (Unknown_table name)

let find_table_opt t name = base_find_opt t (key name)
let mem_table t name = base_find_opt t (key name) <> None

let table_names t =
  (match t.pinned with
  | Some snap ->
    Hashtbl.fold (fun _ e acc -> Table.name e.frozen :: acc) snap.snap_tables []
  | None -> Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.base [])
  |> List.sort String.compare

(** Current base-table bindings, for transaction snapshots. Always the
    live tables: transactions run on the writer path, never pinned. *)
let base_bindings t = Hashtbl.fold (fun k tbl acc -> (k, tbl) :: acc) t.base []

(** Restore a {!base_bindings} snapshot: tables created since are
    dropped, dropped tables reappear. *)
let restore_base t bindings =
  guard_unpinned t "restore_base";
  Hashtbl.reset t.base;
  List.iter (fun (k, tbl) -> Hashtbl.replace t.base k tbl) bindings

(** A cheap fingerprint of base-table mutation state: an FNV-1a fold
    over the sorted (name, version, cardinality) triples. Any DML or
    DDL against any base table changes it; reads never do. Versions are
    monotonic, so states never repeat within a process lifetime. Under
    a pinned snapshot it fingerprints the frozen tables, so the value
    is stable for the whole pin. *)
let base_digest t =
  let fnv_prime = 0x100000001b3 in
  let mix h v = (h lxor v) * fnv_prime land max_int in
  let bindings =
    match t.pinned with
    | Some snap ->
      Hashtbl.fold (fun k e acc -> (k, e.frozen) :: acc) snap.snap_tables []
    | None -> Hashtbl.fold (fun k tbl acc -> (k, tbl) :: acc) t.base []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) bindings
  |> List.fold_left
       (fun h (k, tbl) ->
         let h = mix h (Hashtbl.hash k) in
         let h = mix h (Table.version tbl) in
         mix h (Table.cardinality tbl))
       0x3bf29ce484222325 (* FNV offset basis, truncated to OCaml's int *)

(* ------------------------------------------------------------------ *)
(* MVCC snapshots (copy-on-write published versions)                   *)

(** Publish the current live base tables as a new immutable snapshot.
    Must be called with writers serialized (the server's writer lock):
    it reads the live tables and the previous snapshot, and replaces
    the shared published pointer atomically. Cost is O(#tables): a
    table whose live version is unchanged since the previous publish
    reuses its existing frozen entry (checked by physical identity, so
    a drop-and-recreate under the same name can never alias), and
    {!Table.freeze} itself is O(1) because row storage is a persistent
    list. *)
let publish t =
  let prev = Atomic.get t.published in
  let tables = Hashtbl.create (max 16 (Hashtbl.length t.base)) in
  Hashtbl.iter
    (fun k live ->
      let entry =
        match Hashtbl.find_opt prev.snap_tables k with
        | Some e when e.src == live && e.src_version = Table.version live -> e
        | _ ->
          { src = live; src_version = Table.version live;
            frozen = Table.freeze live }
      in
      Hashtbl.replace tables k entry)
    t.base;
  let snap = { snap_version = prev.snap_version + 1; snap_tables = tables } in
  Atomic.set t.published snap;
  snap

(** The latest published snapshot (lock-free). Before the first
    {!publish} this is an empty version-0 snapshot. *)
let snapshot t = Atomic.get t.published

let snapshot_version snap = snap.snap_version

(** Pin [snap] on this view: base-table reads resolve against the
    frozen tables until {!unpin_snapshot}. Pin only on session views
    executing read-only statements — DDL through a pinned view is
    refused, and DML would corrupt the shared snapshot. *)
let pin_snapshot t snap = t.pinned <- Some snap

let unpin_snapshot t = t.pinned <- None
let pinned_version t = Option.map (fun s -> s.snap_version) t.pinned

(* ------------------------------------------------------------------ *)
(* Intermediate results (temp lookup table)                            *)

let next_gen t =
  t.generation_counter <- t.generation_counter + 1;
  t.generation_counter

let set_temp t name rel =
  let k = key name in
  Hashtbl.replace t.temps k rel;
  Hashtbl.replace t.temp_gens k (next_gen t)

let find_temp t name =
  match Hashtbl.find_opt t.temps (key name) with
  | Some rel -> rel
  | None -> raise (Unknown_table name)

let find_temp_opt t name = Hashtbl.find_opt t.temps (key name)
let mem_temp t name = Hashtbl.mem t.temps (key name)
let drop_temp t name =
  Hashtbl.remove t.temps (key name);
  Hashtbl.remove t.temp_gens (key name)

(** Generation of a temp binding: assigned fresh on every
    [set_temp]/[rename_temp], never reused (the counter only rises, even
    across [clear_temps]). *)
let temp_generation t name = Hashtbl.find_opt t.temp_gens (key name)

(** O(1) pointer swap. If [into] already exists its entry is removed
    first (the engine releases the memory), per paper §VI-A. *)
let rename_temp t ~from_ ~into =
  let rel =
    match Hashtbl.find_opt t.temps (key from_) with
    | Some rel -> rel
    | None -> raise (Unknown_table from_)
  in
  Hashtbl.remove t.temps (key into);
  Hashtbl.remove t.temps (key from_);
  Hashtbl.remove t.temp_gens (key from_);
  Hashtbl.replace t.temps (key into) rel;
  (* Still an O(1) swap: only the generation counter is touched, never
     the rows. *)
  Hashtbl.replace t.temp_gens (key into) (next_gen t);
  t.renames <- t.renames + 1

let temp_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.temps [] |> List.sort String.compare

let clear_temps t =
  Hashtbl.reset t.temps;
  (* The counter is deliberately NOT reset: generations stay globally
     unique so a cache outliving the temps can never see a stale hit. *)
  Hashtbl.reset t.temp_gens

(** Resolve a name for reading: temps shadow base tables, so that the
    iterative CTE reference ("PageRank") wins over a base table of the
    same name inside the CTE body. *)
let resolve t name : Relation.t =
  match find_temp_opt t name with
  | Some rel -> rel
  | None -> Table.to_relation (find_table t name)

let resolve_opt t name : Relation.t option =
  match find_temp_opt t name with
  | Some rel -> Some rel
  | None -> Option.map Table.to_relation (find_table_opt t name)

let schema_of t name : Schema.t =
  match find_temp_opt t name with
  | Some rel -> Relation.schema rel
  | None -> Table.schema (find_table t name)

let ddl_ops t = t.ddl_ops
let renames t = t.renames

(** A mutable base table supporting the DML operations that the
    middleware and stored-procedure baselines rely on (INSERT, UPDATE,
    DELETE), with declared-type checking and an optional primary key.

    The native iterative-CTE path never mutates base tables; it only
    reads them and materializes temp relations in {!Catalog}. *)

type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Row.t list;  (** newest first; order is irrelevant *)
  mutable cardinality : int;
  mutable version : int;
      (** bumped on every mutation; executor caches key on it *)
  primary_key : int option;
  pk_index : (Value.t, unit) Hashtbl.t option;
  snapshot : (int * Relation.t) option Atomic.t;
      (** {!to_relation} memo keyed by [version], so repeated scans of
          an unmutated table share one relation — and therefore share
          its lazily built columnar view across loop iterations.
          Atomic: server sessions read base tables concurrently. *)
}

exception Constraint_violation of string

let create ?primary_key ~name schema =
  let pk_idx =
    Option.map
      (fun k ->
        match Schema.index_of schema k with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Table.create: primary key %S not in schema" k))
      primary_key
  in
  {
    name;
    schema;
    rows = [];
    cardinality = 0;
    version = 0;
    primary_key = pk_idx;
    pk_index = Option.map (fun _ -> Hashtbl.create 64) pk_idx;
    snapshot = Atomic.make None;
  }

let name t = t.name
let schema t = t.schema
let cardinality t = t.cardinality
let version t = t.version
let primary_key t = t.primary_key

let check_row t (row : Row.t) : Row.t =
  if Array.length row <> Schema.arity t.schema then
    raise
      (Constraint_violation
         (Printf.sprintf "table %s expects %d columns, got %d" t.name
            (Schema.arity t.schema) (Array.length row)));
  Array.mapi
    (fun i v ->
      let col : Schema.column = t.schema.(i) in
      if not (Column_type.admits col.ty v) then
        raise
          (Constraint_violation
             (Printf.sprintf "table %s column %s (%s) rejects %s" t.name
                col.name
                (Column_type.to_string col.ty)
                (Value.to_string v)));
      Column_type.coerce col.ty v)
    row

let insert t row =
  let row = check_row t row in
  (match t.primary_key, t.pk_index with
  | Some k, Some idx ->
    let key = row.(k) in
    if Value.is_null key then
      raise (Constraint_violation (t.name ^ ": NULL primary key"));
    if Hashtbl.mem idx key then
      raise
        (Constraint_violation
           (Printf.sprintf "%s: duplicate primary key %s" t.name
              (Value.to_string key)));
    Hashtbl.replace idx key ()
  | _ -> ());
  t.rows <- row :: t.rows;
  t.cardinality <- t.cardinality + 1;
  t.version <- t.version + 1

let insert_all t rows = List.iter (insert t) rows

(** [update t ~pred ~set] applies [set] to every row satisfying [pred];
    returns the number of rows updated. [set] receives the old row and
    must return the full new row. *)
let update t ~pred ~set =
  let updated = ref 0 in
  t.rows <-
    List.map
      (fun row ->
        if pred row then begin
          incr updated;
          check_row t (set row)
        end
        else row)
      t.rows;
  (* Primary-key index must be rebuilt if keys may have changed. *)
  (match t.pk_index, t.primary_key with
  | Some idx, Some k when !updated > 0 ->
    Hashtbl.reset idx;
    List.iter
      (fun (r : Row.t) ->
        if Hashtbl.mem idx r.(k) then
          raise
            (Constraint_violation
               (Printf.sprintf "%s: update created duplicate key %s" t.name
                  (Value.to_string r.(k))));
        Hashtbl.replace idx r.(k) ())
      t.rows
  | _ -> ());
  if !updated > 0 then t.version <- t.version + 1;
  !updated

(** [delete t ~pred] removes matching rows; returns how many. *)
let delete t ~pred =
  let deleted = ref 0 in
  t.rows <-
    List.filter
      (fun (row : Row.t) ->
        let kill = pred row in
        if kill then begin
          incr deleted;
          match t.pk_index, t.primary_key with
          | Some idx, Some k -> Hashtbl.remove idx row.(k)
          | _ -> ()
        end;
        not kill)
      t.rows;
  t.cardinality <- t.cardinality - !deleted;
  if !deleted > 0 then t.version <- t.version + 1;
  !deleted

let truncate t =
  t.rows <- [];
  t.cardinality <- 0;
  t.version <- t.version + 1;
  Option.iter Hashtbl.reset t.pk_index

let to_relation t =
  match Atomic.get t.snapshot with
  | Some (v, rel) when v = t.version -> rel
  | _ ->
    (* Capture the version before building: a concurrent mutation then
       publishes under the old version and the next read rebuilds. *)
    let v = t.version in
    let rel = Relation.make t.schema (Array.of_list t.rows) in
    Atomic.set t.snapshot (Some (v, rel));
    rel

(** O(1) snapshot of the row list (rows are immutable once stored). *)
let snapshot_rows t = t.rows

(** O(1) immutable copy for MVCC catalog snapshots: the row list is a
    persistent cons list (every mutation replaces the list pointer, it
    never mutates cells), so the copy shares rows and schema with the
    live table while keeping its own version/cardinality fields and a
    private {!to_relation} memo — later mutations of the live table
    can neither change what the copy scans nor thrash its scan cache.
    The copy itself must never be mutated (it aliases the live pk
    index, which only mutation paths touch). *)
let freeze t = { t with snapshot = Atomic.make (Atomic.get t.snapshot) }

(** Restore a snapshot taken with {!snapshot_rows}, rebuilding the
    primary-key index. *)
let restore_rows t rows =
  t.rows <- rows;
  t.cardinality <- List.length rows;
  t.version <- t.version + 1;
  match t.pk_index, t.primary_key with
  | Some idx, Some k ->
    Hashtbl.reset idx;
    List.iter (fun (r : Row.t) -> Hashtbl.replace idx r.(k) ()) rows
  | _ -> ()

(** Recovery-only: force the mutation counter so a restored table's
    version matches its pre-crash value (WAL digests depend on it). *)
let set_version t v = t.version <- v

let replace_contents t (rel : Relation.t) =
  truncate t;
  Relation.iter (fun r -> insert t r) rel

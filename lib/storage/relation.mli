(** Immutable materialized relations: a schema plus tuples held as a
    row array, a typed column batch, or both (each view is materialized
    lazily from the other and memoized). All executor operators consume
    and produce relations. *)

type t

(** @raise Invalid_argument when a row's arity differs from the
    schema's. *)
val make : Schema.t -> Row.t array -> t

(** Unchecked constructor for trusted operator outputs: the caller
    guarantees every row already matches the schema arity (rows taken
    from validated relations). Skips {!make}'s O(n) re-validation;
    external/CSV ingestion must keep using {!make}. *)
val make_trusted : Schema.t -> Row.t array -> t

(** Trusted columnar constructor (columnar operator outputs): the
    batch's arity must match the schema's. The row view is only built
    if a consumer asks for it. *)
val of_batch : Schema.t -> Colbatch.t -> t

val of_lists : Schema.t -> Value.t list list -> t
val empty : Schema.t -> t
val schema : t -> Schema.t

(** The row view — the compatibility shim: materialized from the
    columnar view on first use and memoized. *)
val rows : t -> Row.t array

(** The columnar view: converted from rows on first use and memoized.
    Safe under concurrent use (a racy double conversion only wastes
    work). *)
val columnar : t -> Colbatch.t

(** The columnar view only if already materialized; diff fast paths use
    this to avoid forcing conversions. *)
val columnar_opt : t -> Colbatch.t option

(** [key_values t i] — column [i] as boxed values, read from whichever
    view is already materialized (never forces a row
    materialization). *)
val key_values : t -> int -> Value.t array

val cardinality : t -> int
val is_empty : t -> bool
val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a

(** One column as a value array.
    @raise Invalid_argument when the column does not exist. *)
val column : t -> string -> Value.t array

(** Bag (multiset) equality: same rows with the same multiplicities,
    in any order. The equality used by tests, since SQL results are
    bags. *)
val equal_bag : t -> t -> bool

(** [delta_count ~key_idx prev next] — number of rows that changed
    between two versions keyed by column [key_idx]: rows whose payload
    differs, plus insertions, plus deletions. Assumes unique keys.
    Drives the Delta termination condition and update counting. *)
val delta_count : key_idx:int -> t -> t -> int

(** [changed_rows ~key_idx prev next] — the rows behind
    {!delta_count}: every [next] row whose key is new or whose payload
    differs, plus the {e previous} version of changed and vanished
    keys (so delta-driven evaluation can chase join partners a row
    used to reach as well as the ones it reaches now). Schema is
    [next]'s. *)
val changed_rows : key_idx:int -> t -> t -> t

(** [changed_rows_bounded ~key_idx ~cutoff prev next] is
    [Some (changed_rows prev next)] when fewer than [cutoff] distinct
    keys changed, and [None] as soon as the distinct-changed-key count
    reaches [cutoff] — early exit, before building any row list. The
    semi-naive cutoff probe: full-churn iterations abandon the diff
    partway through the scan instead of materializing a relation of
    every old+new pair only to discard it. [cutoff >= 1]. *)
val changed_rows_bounded : key_idx:int -> cutoff:int -> t -> t -> t option

(** Copy with rows sorted by {!Row.compare} (canonical order for
    comparisons). *)
val sorted : t -> t

val pp : Format.formatter -> t -> unit

(** Aligned ASCII rendering, truncated to [max_rows] (default 50). *)
val to_table_string : ?max_rows:int -> t -> string

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (type_name v)))

(* Rank for cross-type comparison; numeric types share a rank so that
   Int/Float compare by value. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

(* Compare [Int x] with [Float y] exactly. Rounding [x] through
   [float_of_int] collapses distinct values once |x| exceeds 2^53 (all
   of [Int max_int], [Int (max_int - 1)], ... share one float image),
   which would make [compare] report equality between unequal keys. So
   compare in integer space: floats beyond the int range order by
   sign, NaN sorts below every int (matching [Float.compare]'s total
   order), and in-range floats compare by truncation with the
   fractional part breaking ties. *)
let compare_int_float x y =
  if Float.is_nan y then 1
  else if y >= 0x1p62 then -1 (* y > max_int *)
  else if y < -0x1p62 then 1 (* y < min_int *)
  else
    let t = Float.trunc y in
    let c = Int.compare x (int_of_float t) in
    (* x = trunc y, so float_of_int x is exact here; deferring to
       [Float.compare] orders the fractional part and keeps -0.0 vs
       0.0 consistent with the Float/Float case. *)
    if c <> 0 then c else Float.compare (float_of_int x) y

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> compare_int_float x y
  | Float x, Int y -> -compare_int_float y x
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | (Null | Str _ | Bool _) as v -> type_error "numeric" v

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | (Null | Str _ | Bool _) as v -> type_error "numeric" v

let to_bool = function
  | Bool b -> Some b
  | Null -> None
  | (Int _ | Float _ | Str _) as v -> type_error "bool" v

let arith int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | (Str _ | Bool _), _ -> type_error "numeric" a
  | _, (Str _ | Bool _) -> type_error "numeric" b

let add a b = arith ( + ) ( +. ) a b
let sub a b = arith ( - ) ( -. ) a b
let mul a b = arith ( * ) ( *. ) a b

(* A zero divisor raises Division_by_zero on EVERY numeric path, not
   just Int/Int: IEEE semantics would make [1/0.0] return [inf] and
   [1.0 % 0.0] return [nan], so whether a query errored would depend on
   the inferred type of its operands. SQL wants one behavior. The
   float-side test [f = 0.0] also catches [-0.0]. *)
let zero_divisor = function
  | Int 0 -> true
  | Float f -> f = 0.0
  | Null | Int _ | Str _ | Bool _ -> false

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | (Int _ | Float _), b when zero_divisor b -> raise Division_by_zero
  (* [min_int / -1] overflows the int range; in native code the
     hardware division traps (and the [x mod y = 0] guard below would
     evaluate [min_int mod -1], which traps the same way), so this case
     must be decided before either expression runs. The exact quotient
     [-min_int = 2^62] is not representable as an Int; promote to the
     (exactly representable) float image, matching the non-exact
     branch's promotion policy. *)
  | Int x, Int (-1) when x = min_int -> Float (-.(float_of_int x))
  | Int x, Int y when x mod y = 0 -> Int (x / y)
  (* Non-exact integer division promotes to float: SQL users writing
     [friends / friendsPrev] expect a ratio, not truncation. *)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a /. to_float b)
  | (Str _ | Bool _), _ -> type_error "numeric" a
  | _, (Str _ | Bool _) -> type_error "numeric" b

let modulo a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | (Int _ | Float _), b when zero_divisor b -> raise Division_by_zero
  (* [min_int mod -1] is mathematically 0 but traps in native code
     (the hardware computes the quotient first, which overflows). *)
  | Int x, Int (-1) when x = min_int -> Int 0
  | Int x, Int y -> Int (x mod y)
  | (Int _ | Float _), (Int _ | Float _) ->
    Float (Float.rem (to_float a) (to_float b))
  | (Str _ | Bool _), _ -> type_error "numeric" a
  | _, (Str _ | Bool _) -> type_error "numeric" b

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | (Str _ | Bool _) as v -> type_error "numeric" v

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
    (* Render floats so that integral values keep a trailing ".": SQL
       output style, and unambiguous vs Int. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Bool b -> if b then "TRUE" else "FALSE"

let pp fmt v = Format.pp_print_string fmt (to_string v)

(** The catalog: base tables plus the executor's intermediate-result
    lookup table. The lookup table realizes the paper's §VI-A [rename]
    operator: an O(1) pointer swap that releases any displaced entry.
    All names are case-insensitive. *)

type t

(** Base-table DDL notifications, for durability observers. *)
type base_event =
  | Created of string
  | Dropped of string

exception Unknown_table of string
exception Duplicate_table of string

val create : unit -> t

(** [with_shared_base parent] is a session-private view: it aliases the
    parent's base-table hashtable (DDL/DML visible both ways) but has
    its own temps, generations and accounting counters, so concurrent
    sessions' iterative CTEs cannot collide on temp names. *)
val with_shared_base : t -> t

(** {2 Base tables} *)

(** @raise Duplicate_table when the name is taken. *)
val create_table : ?primary_key:string -> t -> name:string -> Schema.t -> Table.t

(** @raise Unknown_table when absent. *)
val drop_table : t -> string -> unit

(** @raise Unknown_table when absent. *)
val find_table : t -> string -> Table.t

val find_table_opt : t -> string -> Table.t option
val mem_table : t -> string -> bool
val table_names : t -> string list

(** Current base-table bindings, for transaction snapshots. *)
val base_bindings : t -> (string * Table.t) list

(** Restore a {!base_bindings} snapshot: tables created since are
    dropped, dropped tables reappear. *)
val restore_base : t -> (string * Table.t) list -> unit

(** Install (or clear) the single base-DDL observer. The hook slot is
    shared across all {!with_shared_base} views, like the base tables
    themselves: DDL through any view reaches the observer. *)
val set_base_hook : t -> (base_event -> unit) option -> unit

(** A cheap fingerprint of base-table mutation state (a fold over the
    sorted (name, version, cardinality) triples). Any committed DML or
    DDL changes it; reads never do. Versions are monotonic, so a state
    is never repeated within a process lifetime. Under a pinned
    snapshot it fingerprints the frozen tables. *)
val base_digest : t -> int

(** {2 MVCC snapshots}

    Copy-on-write published versions of the base tables. Writers
    mutate the live tables (serialized externally) and {!publish} a
    new immutable version; readers {!pin_snapshot} the latest
    {!snapshot} on their session view and run without any lock — the
    whole statement sees one frozen version regardless of concurrent
    DML/DDL. Publishing is O(#tables), not O(rows): row storage is a
    persistent list, so freezing a table is a pointer copy, and tables
    unchanged since the previous publish reuse their frozen entry. *)

type snapshot

(** Publish the live base tables as a new immutable snapshot and make
    it the shared latest version. Call only with writers serialized. *)
val publish : t -> snapshot

(** The latest published snapshot (lock-free read; shared across all
    {!with_shared_base} views). An empty version-0 snapshot before the
    first {!publish}. *)
val snapshot : t -> snapshot

(** Monotonic publish counter; version 0 is the pre-publish empty
    snapshot. Plan caches key on it: any committed base change
    publishes a fresh version, so stale reuse is impossible. *)
val snapshot_version : snapshot -> int

(** Pin a snapshot on this (session) view: base-table reads resolve
    against the frozen tables until {!unpin_snapshot}; temps are
    untouched. DDL through a pinned view raises [Invalid_argument].
    Pin only around read-only statements. *)
val pin_snapshot : t -> snapshot -> unit

val unpin_snapshot : t -> unit

(** Version of the pinned snapshot, if any. *)
val pinned_version : t -> int option

(** {2 Intermediate results (temps)} *)

val set_temp : t -> string -> Relation.t -> unit

(** @raise Unknown_table when absent. *)
val find_temp : t -> string -> Relation.t

val find_temp_opt : t -> string -> Relation.t option
val mem_temp : t -> string -> bool
val drop_temp : t -> string -> unit

(** The rename operator: O(1) binding swap; an existing [into] entry is
    dropped first.
    @raise Unknown_table when [from_] is absent. *)
val rename_temp : t -> from_:string -> into:string -> unit

val temp_names : t -> string list
val clear_temps : t -> unit

(** Generation number of a temp binding. Every [set_temp]/[rename_temp]
    assigns a fresh, globally unique generation (the counter only
    rises, even across [clear_temps]), so executor caches keyed on
    [(name, generation)] invalidate naturally when a temp is rebound. *)
val temp_generation : t -> string -> int option

(** {2 Unified resolution} *)

(** Resolve a name for reading; temps shadow base tables, so the
    iterative reference inside a loop body reads the current
    iteration's table.
    @raise Unknown_table when absent everywhere. *)
val resolve : t -> string -> Relation.t

val resolve_opt : t -> string -> Relation.t option

(** @raise Unknown_table when absent. *)
val schema_of : t -> string -> Schema.t

(** {2 Accounting} *)

(** CREATE/DROP operations performed (baseline overhead metric). *)
val ddl_ops : t -> int

val renames : t -> int

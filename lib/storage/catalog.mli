(** The catalog: base tables plus the executor's intermediate-result
    lookup table. The lookup table realizes the paper's §VI-A [rename]
    operator: an O(1) pointer swap that releases any displaced entry.
    All names are case-insensitive. *)

type t

(** Base-table DDL notifications, for durability observers. *)
type base_event =
  | Created of string
  | Dropped of string

exception Unknown_table of string
exception Duplicate_table of string

val create : unit -> t

(** [with_shared_base parent] is a session-private view: it aliases the
    parent's base-table hashtable (DDL/DML visible both ways) but has
    its own temps, generations and accounting counters, so concurrent
    sessions' iterative CTEs cannot collide on temp names. *)
val with_shared_base : t -> t

(** {2 Base tables} *)

(** @raise Duplicate_table when the name is taken. *)
val create_table : ?primary_key:string -> t -> name:string -> Schema.t -> Table.t

(** @raise Unknown_table when absent. *)
val drop_table : t -> string -> unit

(** @raise Unknown_table when absent. *)
val find_table : t -> string -> Table.t

val find_table_opt : t -> string -> Table.t option
val mem_table : t -> string -> bool
val table_names : t -> string list

(** Current base-table bindings, for transaction snapshots. *)
val base_bindings : t -> (string * Table.t) list

(** Restore a {!base_bindings} snapshot: tables created since are
    dropped, dropped tables reappear. *)
val restore_base : t -> (string * Table.t) list -> unit

(** Install (or clear) the single base-DDL observer. The hook slot is
    shared across all {!with_shared_base} views, like the base tables
    themselves: DDL through any view reaches the observer. *)
val set_base_hook : t -> (base_event -> unit) option -> unit

(** A cheap fingerprint of base-table mutation state (a fold over the
    sorted (name, version, cardinality) triples). Any committed DML or
    DDL changes it; reads never do. Versions are monotonic, so a state
    is never repeated within a process lifetime. *)
val base_digest : t -> int

(** {2 Intermediate results (temps)} *)

val set_temp : t -> string -> Relation.t -> unit

(** @raise Unknown_table when absent. *)
val find_temp : t -> string -> Relation.t

val find_temp_opt : t -> string -> Relation.t option
val mem_temp : t -> string -> bool
val drop_temp : t -> string -> unit

(** The rename operator: O(1) binding swap; an existing [into] entry is
    dropped first.
    @raise Unknown_table when [from_] is absent. *)
val rename_temp : t -> from_:string -> into:string -> unit

val temp_names : t -> string list
val clear_temps : t -> unit

(** Generation number of a temp binding. Every [set_temp]/[rename_temp]
    assigns a fresh, globally unique generation (the counter only
    rises, even across [clear_temps]), so executor caches keyed on
    [(name, generation)] invalidate naturally when a temp is rebound. *)
val temp_generation : t -> string -> int option

(** {2 Unified resolution} *)

(** Resolve a name for reading; temps shadow base tables, so the
    iterative reference inside a loop body reads the current
    iteration's table.
    @raise Unknown_table when absent everywhere. *)
val resolve : t -> string -> Relation.t

val resolve_opt : t -> string -> Relation.t option

(** @raise Unknown_table when absent. *)
val schema_of : t -> string -> Schema.t

(** {2 Accounting} *)

(** CREATE/DROP operations performed (baseline overhead metric). *)
val ddl_ops : t -> int

val renames : t -> int

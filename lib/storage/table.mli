(** Mutable base tables with declared-type checking and an optional
    primary key — the DML surface used by the middleware and
    stored-procedure baselines. The native iterative-CTE path never
    mutates base tables. *)

type t

exception Constraint_violation of string

(** [create ?primary_key ~name schema] — [primary_key] names a column
    enforced unique and non-NULL on insert.
    @raise Invalid_argument when the key column is not in the schema. *)
val create : ?primary_key:string -> name:string -> Schema.t -> t

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

(** Monotonic mutation counter: bumped by every insert/update/delete/
    truncate/restore. Executor caches key base-table reads on it. *)
val version : t -> int

(** Index of the primary-key column, if any. *)
val primary_key : t -> int option

(** @raise Constraint_violation on arity, type, duplicate-key or
    NULL-key violations. Ints are widened into float columns. *)
val insert : t -> Row.t -> unit

val insert_all : t -> Row.t list -> unit

(** [update t ~pred ~set] rewrites every row satisfying [pred]; returns
    the number of rows updated. [set] receives the old row and returns
    the full new row.
    @raise Constraint_violation when an update breaks a constraint. *)
val update : t -> pred:(Row.t -> bool) -> set:(Row.t -> Row.t) -> int

(** [delete t ~pred] removes matching rows; returns how many. *)
val delete : t -> pred:(Row.t -> bool) -> int

val truncate : t -> unit

(** Immutable snapshot of the current contents. *)
val to_relation : t -> Relation.t

(** Replace all contents with the rows of a relation. *)
val replace_contents : t -> Relation.t -> unit

(** O(1) snapshot of the row list (rows are immutable once stored);
    pair with {!restore_rows} for transaction rollback. *)
val snapshot_rows : t -> Row.t list

(** O(1) immutable copy for MVCC catalog snapshots: shares the
    persistent row list with the live table but is insulated from its
    later mutations (own version/cardinality fields and scan-cache
    memo). The copy must never be mutated. *)
val freeze : t -> t

(** Restore a {!snapshot_rows} snapshot, rebuilding the primary-key
    index. *)
val restore_rows : t -> Row.t list -> unit

(** Recovery-only: force the mutation counter so a restored table
    matches its pre-crash version (durability digests depend on it). *)
val set_version : t -> int -> unit

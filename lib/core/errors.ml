(** Unified error surface of the engine: every subsystem exception is
    converted into [Error of stage * message] so callers handle one
    exception type. *)

type stage =
  | Parse
  | Bind
  | Rewrite
  | Execute
  | Constraint
  | Catalog
  | Resource

exception Error of stage * string

let stage_name = function
  | Parse -> "parse"
  | Bind -> "bind"
  | Rewrite -> "rewrite"
  | Execute -> "execute"
  | Constraint -> "constraint"
  | Catalog -> "catalog"
  | Resource -> "resource"

let to_string = function
  | Error (stage, msg) -> Printf.sprintf "%s error: %s" (stage_name stage) msg
  | e -> Printexc.to_string e

(** Run [f], normalizing known exceptions into {!Error}. *)
let wrap f =
  try f () with
  | Error _ as e -> raise e
  | Dbspinner_sql.Parser.Parse_error (m, line, col) ->
    raise (Error (Parse, Printf.sprintf "%s at line %d, column %d" m line col))
  | Dbspinner_sql.Lexer.Lex_error (m, line, col) ->
    raise (Error (Parse, Printf.sprintf "%s at line %d, column %d" m line col))
  | Dbspinner_plan.Binder.Bind_error m -> raise (Error (Bind, m))
  | Dbspinner_rewrite.Iterative_rewrite.Rewrite_error m ->
    raise (Error (Rewrite, m))
  | Dbspinner_exec.Executor.Execution_error m -> raise (Error (Execute, m))
  | Dbspinner_exec.Eval.Runtime_error m -> raise (Error (Execute, m))
  | Dbspinner_exec.Guards.Resource_exhausted m -> raise (Error (Resource, m))
  | Dbspinner_mpp.Distributed.Unsupported m ->
    raise (Error (Execute, Printf.sprintf "distributed execution: %s" m))
  | Dbspinner_mpp.Fault.Transient_fault m -> raise (Error (Execute, m))
  | Dbspinner_storage.Value.Type_error m -> raise (Error (Execute, m))
  | Dbspinner_storage.Table.Constraint_violation m ->
    raise (Error (Constraint, m))
  | Dbspinner_storage.Catalog.Unknown_table t ->
    raise (Error (Catalog, Printf.sprintf "relation %s does not exist" t))
  | Dbspinner_storage.Catalog.Duplicate_table t ->
    raise (Error (Catalog, Printf.sprintf "relation %s already exists" t))
  | Division_by_zero -> raise (Error (Execute, "division by zero"))

(** The DBSpinner engine session: parses SQL, applies the functional
    and optimization rewrites, and executes the resulting single step
    program. DDL and DML are also supported so the middleware and
    stored-procedure baselines can drive the very same engine
    statement-by-statement.

    All entry points raise {!Errors.Error} on failure. *)

module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Stats = Dbspinner_exec.Stats
module Options = Dbspinner_rewrite.Options
module Trace = Dbspinner_obs.Trace

type t

type result =
  | Rows of Relation.t
  | Affected of int  (** row count of INSERT/UPDATE/DELETE *)
  | Executed  (** DDL *)
  | Explained of string

(** [create ?options ?catalog ()] — [catalog] lets a server hand each
    session a {!Catalog.with_shared_base} view over one shared
    database; by default the session gets a private fresh catalog. *)
val create : ?options:Options.t -> ?catalog:Catalog.t -> unit -> t

(** Install (or clear) the session's cancellation probe. It is folded
    into every statement's resource guards and polled at materialize
    and loop-iteration boundaries; returning [Some reason] aborts the
    statement with a [Resource]-stage error. *)
val set_interrupt : t -> (unit -> string option) option -> unit

(** Install (or clear) a plan memoization hook. When set, each query's
    compilation routes through [hook query compile]: the hook may
    return a previously cached program or call [compile] (which
    parses, rewrites, and pre-evaluates scalar subqueries against the
    session's current catalog view) and cache the result. The hook is
    bypassed while the session has views defined — view bodies are
    per-session state that an external cache key cannot see. The
    server installs its cross-session plan cache here. *)
val set_plan_hook :
  t ->
  (Dbspinner_sql.Ast.full_query ->
  (unit -> Dbspinner_plan.Program.t) ->
  Dbspinner_plan.Program.t)
  option ->
  unit

(** Is a BEGIN ... COMMIT/ROLLBACK transaction open? *)
val in_transaction : t -> bool

val catalog : t -> Catalog.t
val options : t -> Options.t
val set_options : t -> Options.t -> unit

(** Cumulative executor statistics across all statements of the
    session. *)
val session_stats : t -> Stats.t

(** The session's trace collector, if tracing is on. Queries executed
    while one is installed record step / iteration / operator / program
    spans into it (see {!Dbspinner_obs.Trace}); with [None] the
    executors skip all tracing work. EXPLAIN ANALYZE always traces its
    own run (into the session collector when installed, else a
    throwaway one) to render the convergence timeline. *)
val trace : t -> Trace.t option

val set_trace : t -> Trace.t option -> unit

(** Install a fresh collector sized by [Options.trace_buffer] and
    return it. *)
val enable_trace : t -> Trace.t

(** Execute one statement. Query temps are cleared afterwards. *)
val execute : t -> string -> result

(** Run a [;]-separated script; returns one result per statement. *)
val execute_script : t -> string -> result list

(** Run a query and return its relation.
    @raise Errors.Error when [sql] is not a query. *)
val query : t -> string -> Relation.t

(** EXPLAIN text of a query under the session's current options. *)
val explain : t -> string -> string

(** Create (or replace) a base table and fill it from a relation. *)
val load_table : ?primary_key:string -> t -> name:string -> Relation.t -> unit

(** Run [f] with a one-off option set, restoring afterwards. *)
val with_options : t -> Options.t -> (unit -> 'a) -> 'a

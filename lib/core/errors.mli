(** Unified error surface: every subsystem exception is normalized to
    {!Error} so callers handle one exception type. *)

type stage =
  | Parse
  | Bind
  | Rewrite
  | Execute
  | Constraint
  | Catalog
  | Resource  (** deadline or row-budget guard tripped *)

exception Error of stage * string

val stage_name : stage -> string
val to_string : exn -> string

(** Run [f], converting known subsystem exceptions into {!Error};
    unknown exceptions propagate unchanged. *)
val wrap : (unit -> 'a) -> 'a

(** The DBSpinner engine session: parses SQL, applies the functional
    and optimization rewrites, and executes the resulting single step
    program — the native path the paper argues for. DDL and DML are
    also supported so the middleware and stored-procedure baselines can
    drive the very same engine statement-by-statement. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Table = Dbspinner_storage.Table
module Catalog = Dbspinner_storage.Catalog
module Column_type = Dbspinner_storage.Column_type
module Ast = Dbspinner_sql.Ast
module Parser = Dbspinner_sql.Parser
module Binder = Dbspinner_plan.Binder
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Explain = Dbspinner_plan.Explain
module Executor = Dbspinner_exec.Executor
module Operators = Dbspinner_exec.Operators
module Eval = Dbspinner_exec.Eval
module Stats = Dbspinner_exec.Stats
module Options = Dbspinner_rewrite.Options
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Trace = Dbspinner_obs.Trace

(** Snapshot taken at BEGIN: the base-table bindings plus every
    table's row list (rows are immutable, so this is O(tables)). *)
type transaction_snapshot = {
  snapshot_bindings : (string * Table.t) list;
  snapshot_rows : (Table.t * Row.t list) list;
}

type t = {
  catalog : Catalog.t;
  views : (string, Ast.query) Hashtbl.t;
      (** view name (lowercased) -> stored body, expanded per §III *)
  mutable options : Options.t;
  mutable transaction : transaction_snapshot option;
  stats : Stats.t;  (** cumulative across all statements of the session *)
  mutable trace : Trace.t option;
      (** session trace collector; [None] (the default) disables
          tracing entirely — the executors then do no tracing work *)
  mutable interrupt : (unit -> string option) option;
      (** external cancellation probe folded into every statement's
          guards; the server installs one per session so shutdown can
          drain in-flight iterative loops at an iteration boundary *)
  mutable plan_hook :
    (Ast.full_query -> (unit -> Program.t) -> Program.t) option;
      (** plan memoization seam: when set, [run_query] routes the
          (query, compile thunk) pair through the hook instead of
          compiling directly; the server installs a cross-session plan
          cache here. Skipped when the session has views — view bodies
          are session state no external cache key can see. *)
}

type result =
  | Rows of Relation.t
  | Affected of int  (** row count of INSERT/UPDATE/DELETE *)
  | Executed  (** DDL *)
  | Explained of string

let create ?(options = Options.default) ?catalog () =
  {
    catalog = (match catalog with Some c -> c | None -> Catalog.create ());
    views = Hashtbl.create 8;
    options;
    transaction = None;
    stats = Stats.create ();
    trace = None;
    interrupt = None;
    plan_hook = None;
  }

let in_transaction t = t.transaction <> None

let catalog t = t.catalog
let options t = t.options
let set_options t options = t.options <- options
let session_stats t = t.stats
let trace t = t.trace
let set_trace t tr = t.trace <- tr

(** Install a fresh trace collector sized from the session options and
    return it. *)
let enable_trace t =
  let tr = Trace.create ~capacity:t.options.Options.trace_buffer () in
  t.trace <- Some tr;
  tr

let set_interrupt t probe = t.interrupt <- probe
let set_plan_hook t hook = t.plan_hook <- hook

let lookup t name =
  match Catalog.find_temp_opt t.catalog name with
  | Some rel -> Some (Relation.schema rel)
  | None -> Option.map Table.schema (Catalog.find_table_opt t.catalog name)

(* ------------------------------------------------------------------ *)
(* Query path: the single-plan native execution                        *)

let view_body t name = Hashtbl.find_opt t.views (String.lowercase_ascii name)

(** Pre-evaluate uncorrelated scalar subqueries against the current
    base tables: sound because base tables cannot change during the
    statement. Subqueries referencing CTE names surface as
    unknown-table binding errors. *)
let prevaluate_scalar_subqueries t (q : Ast.full_query) : Ast.full_query =
  let evaluate sub =
    let expanded =
      Dbspinner_rewrite.View_expansion.expand ~lookup:(view_body t)
        (Ast.plain_query sub)
    in
    let plan =
      Binder.bind_query (Binder.env_of_lookup (lookup t)) expanded.Ast.body
    in
    if Schema.arity (Logical.schema plan) <> 1 then
      raise
        (Errors.Error
           (Errors.Bind, "a scalar subquery must return exactly one column"));
    let stats = Stats.create () in
    let rel = Executor.run_plan ~stats t.catalog plan in
    Stats.add ~into:t.stats stats;
    match Relation.cardinality rel with
    | 0 -> Value.Null
    | 1 -> (Relation.rows rel).(0).(0)
    | n ->
      raise
        (Errors.Error
           ( Errors.Execute,
             Printf.sprintf "a scalar subquery returned %d rows" n ))
  in
  let has_scalar e =
    Ast.fold_expr
      (fun acc n -> acc || match n with Ast.Scalar_subquery _ -> true | _ -> false)
      false e
  in
  Dbspinner_rewrite.Fold.map_exprs
    (fun e ->
      if not (has_scalar e) then e
      else
        Ast.map_expr
          (function
            | Ast.Scalar_subquery sub -> Ast.Lit (evaluate sub)
            | n -> n)
          e)
    q

(** Pre-evaluate scalar subqueries inside one expression (DML SET /
    WHERE clauses). *)
let prevaluate_expr t (e : Ast.expr) : Ast.expr =
  let q = prevaluate_scalar_subqueries t (Ast.plain_query (Ast.simple_select [ Ast.item e ])) in
  match q.Ast.body with
  | Ast.Q_select { items = [ { Ast.expr; _ } ]; _ } -> expr
  | _ -> e

(** Catalog-backed cardinalities for the cost model: base tables by
    table cardinality, already-materialized temps by relation size.
    Supplying this to the compiler is what arms cost-based rewrite
    arbitration ([Options.cost_based_rewrites]). *)
let statistics_of t : Dbspinner_plan.Cost.statistics =
  {
    Dbspinner_plan.Cost.cardinality_of =
      (fun name ->
        match Catalog.find_table_opt t.catalog name with
        | Some tbl -> Some (Table.cardinality tbl)
        | None ->
          Option.map Relation.cardinality (Catalog.find_temp_opt t.catalog name));
  }

let compile_query t (q : Ast.full_query) : Program.t =
  let q =
    Dbspinner_rewrite.View_expansion.expand ~lookup:(view_body t) q
  in
  let q = prevaluate_scalar_subqueries t q in
  Iterative_rewrite.compile ~options:t.options ~statistics:(statistics_of t)
    ~lookup:(lookup t) q

(** Resource guards for one statement, from the session options plus
    the session interrupt probe. Built per statement so the wall-clock
    deadline starts at statement start. *)
let guards_of t : Dbspinner_exec.Guards.t =
  Dbspinner_exec.Guards.make
    ?deadline_seconds:t.options.Options.deadline_seconds
    ?timeout_seconds:t.options.Options.statement_timeout_seconds
    ?row_budget:t.options.Options.row_budget ?interrupt:t.interrupt ()

(** Chunk-parallel execution context from the session options ([None]
    when [parallel_workers <= 1], i.e. sequential). *)
let parallel_of_options (options : Options.t) :
    Dbspinner_exec.Parallel.ctx option =
  Dbspinner_exec.Parallel.context ~chunk_rows:options.parallel_chunk_rows
    ~workers:options.parallel_workers ()

let run_query ?(keep_temps = false) t (q : Ast.full_query) : Relation.t =
  let program =
    match t.plan_hook with
    | Some hook when Hashtbl.length t.views = 0 ->
      hook q (fun () -> compile_query t q)
    | _ -> compile_query t q
  in
  let stats = Stats.create () in
  let guards = guards_of t in
  let parallel = parallel_of_options t.options in
  Fun.protect
    ~finally:(fun () ->
      Stats.add ~into:t.stats stats;
      if not keep_temps then Catalog.clear_temps t.catalog)
    (fun () ->
      Executor.run_program ?parallel ~stats ~guards
        ~use_cache:t.options.Options.use_exec_cache
        ~columnar:t.options.Options.use_columnar ?trace:t.trace t.catalog
        program)

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)

let bind_constant_row t exprs =
  List.map
    (fun e -> Eval.eval [||] (Binder.bind_scalar [||] (prevaluate_expr t e)))
    exprs

(** Build the full row for an INSERT with an explicit column list:
    unlisted columns become NULL. *)
let widen_row schema columns (values : Value.t list) : Row.t =
  match columns with
  | None ->
    if List.length values <> Schema.arity schema then
      raise
        (Errors.Error
           ( Errors.Bind,
             Printf.sprintf "INSERT supplies %d values for %d columns"
               (List.length values) (Schema.arity schema) ));
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      raise
        (Errors.Error
           (Errors.Bind, "INSERT column list and VALUES have different arity"));
    let row = Array.make (Schema.arity schema) Value.Null in
    List.iter2
      (fun c v ->
        match Schema.index_of schema c with
        | Some i -> row.(i) <- v
        | None ->
          raise
            (Errors.Error
               (Errors.Bind, Printf.sprintf "unknown column %s in INSERT" c)))
      cols values;
    row

let exec_insert t ~table ~columns ~source =
  let tbl = Catalog.find_table t.catalog table in
  let schema = Table.schema tbl in
  let inserted = ref 0 in
  (match source with
  | Ast.I_values tuples ->
    List.iter
      (fun tuple ->
        Table.insert tbl (widen_row schema columns (bind_constant_row t tuple));
        incr inserted)
      tuples
  | Ast.I_query q ->
    let rel = run_query t q in
    if
      Schema.arity (Relation.schema rel)
      <> (match columns with
         | None -> Schema.arity schema
         | Some cs -> List.length cs)
    then
      raise
        (Errors.Error
           (Errors.Bind, "INSERT ... SELECT arity does not match target"));
    Relation.iter
      (fun row ->
        Table.insert tbl (widen_row schema columns (Array.to_list row));
        incr inserted)
      rel);
  t.stats.Stats.dml_rows_touched <- t.stats.Stats.dml_rows_touched + !inserted;
  !inserted

(** UPDATE [table] SET ... [FROM f] [WHERE pred]: rows of [table] that
    have a matching [f] row satisfying [pred] are rewritten with the
    SET expressions evaluated over (table row ++ f row). Matching uses
    a hash join when an equi-conjunct exists — the middleware baseline
    issues large keyed updates every iteration and would otherwise be
    quadratic. *)
let exec_update t ~table ~set ~from ~where =
  let set = List.map (fun (c, e) -> (c, prevaluate_expr t e)) set in
  let where = Option.map (prevaluate_expr t) where in
  let tbl = Catalog.find_table t.catalog table in
  let schema = Table.schema tbl in
  let own_scope = Binder.scope_of_schema ~qualifier:table schema in
  let env = Binder.env_of_lookup (lookup t) in
  match from with
  | None ->
    let pred = Option.map (Binder.bind_scalar own_scope) where in
    let assignments =
      List.map
        (fun (c, e) ->
          match Schema.index_of schema c with
          | Some i -> (i, Binder.bind_scalar own_scope e)
          | None ->
            raise
              (Errors.Error
                 (Errors.Bind, Printf.sprintf "unknown column %s in UPDATE" c)))
        set
    in
    let n =
      Table.update tbl
        ~pred:(fun row ->
          match pred with None -> true | Some p -> Eval.eval_pred row p)
        ~set:(fun row ->
          let row' = Array.copy row in
          List.iter (fun (i, e) -> row'.(i) <- Eval.eval row e) assignments;
          row')
    in
    t.stats.Stats.dml_rows_touched <- t.stats.Stats.dml_rows_touched + n;
    n
  | Some f ->
    let stats = Stats.create () in
    let fplan, fscope = Binder.bind_from env f in
    let frel = Executor.run_plan ~stats t.catalog fplan in
    Stats.add ~into:t.stats stats;
    let scope = Binder.scope_concat own_scope fscope in
    let pred = Option.map (Binder.bind_scalar scope) where in
    let assignments =
      List.map
        (fun (c, e) ->
          match Schema.index_of schema c with
          | Some i -> (i, Binder.bind_scalar scope e)
          | None ->
            raise
              (Errors.Error
                 (Errors.Bind, Printf.sprintf "unknown column %s in UPDATE" c)))
        set
    in
    (* Hash the FROM relation on any equi-key against the target. *)
    let arity = Schema.arity schema in
    let keys, residual =
      match pred with
      | None -> ([], [])
      | Some p -> Operators.split_equi_condition ~left_arity:arity p
    in
    let matching : Row.t -> Row.t option =
      if keys = [] then fun row ->
        let rec first i =
          if i >= Relation.cardinality frel then None
          else
            let combined = Row.concat row (Relation.rows frel).(i) in
            let ok =
              match pred with None -> true | Some p -> Eval.eval_pred combined p
            in
            if ok then Some combined else first (i + 1)
        in
        first 0
      else begin
        let module Row_tbl = Operators.Row_tbl in
        let table_idx = Row_tbl.create (max 16 (Relation.cardinality frel)) in
        let right_keys = Array.of_list (List.map snd keys) in
        Relation.iter
          (fun frow ->
            let k = Array.map (fun e -> Eval.eval frow e) right_keys in
            if not (Array.exists Value.is_null k) then
              if not (Row_tbl.mem table_idx k) then Row_tbl.replace table_idx k frow)
          frel;
        let left_keys = Array.of_list (List.map fst keys) in
        fun row ->
          let k = Array.map (fun e -> Eval.eval row e) left_keys in
          match Row_tbl.find_opt table_idx k with
          | None -> None
          | Some frow ->
            let combined = Row.concat row frow in
            if List.for_all (fun p -> Eval.eval_pred combined p) residual then
              Some combined
            else None
      end
    in
    let n =
      Table.update tbl
        ~pred:(fun row -> Option.is_some (matching row))
        ~set:(fun row ->
          match matching row with
          | None -> row
          | Some combined ->
            let row' = Array.copy row in
            List.iter
              (fun (i, e) -> row'.(i) <- Eval.eval combined e)
              assignments;
            row')
    in
    t.stats.Stats.dml_rows_touched <- t.stats.Stats.dml_rows_touched + n;
    n

let exec_delete t ~table ~where =
  let where = Option.map (prevaluate_expr t) where in
  let tbl = Catalog.find_table t.catalog table in
  let scope = Binder.scope_of_schema ~qualifier:table (Table.schema tbl) in
  let pred = Option.map (Binder.bind_scalar scope) where in
  let n =
    Table.delete tbl ~pred:(fun row ->
        match pred with None -> true | Some p -> Eval.eval_pred row p)
  in
  t.stats.Stats.dml_rows_touched <- t.stats.Stats.dml_rows_touched + n;
  n

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)

let rec exec_statement t (stmt : Ast.statement) : result =
  t.stats.Stats.statements <- t.stats.Stats.statements + 1;
  match stmt with
  | Ast.S_query q -> Rows (run_query t q)
  | Ast.S_create_table { table; if_not_exists; columns; primary_key } ->
    if if_not_exists && Catalog.mem_table t.catalog table then Executed
    else begin
      let schema =
        Schema.make
          (List.map
             (fun (c : Ast.column_def) -> Schema.column ~ty:c.col_type c.col_name)
             columns)
      in
      ignore (Catalog.create_table ?primary_key t.catalog ~name:table schema);
      Executed
    end
  | Ast.S_drop_table { table; if_exists } ->
    if if_exists && not (Catalog.mem_table t.catalog table) then Executed
    else begin
      Catalog.drop_table t.catalog table;
      Executed
    end
  | Ast.S_insert { table; columns; source } ->
    Affected (exec_insert t ~table ~columns ~source)
  | Ast.S_update { table; set; from; where } ->
    Affected (exec_update t ~table ~set ~from ~where)
  | Ast.S_delete { table; where } -> Affected (exec_delete t ~table ~where)
  | Ast.S_truncate table ->
    Table.truncate (Catalog.find_table t.catalog table);
    Executed
  | Ast.S_create_view { view; view_columns; body } ->
    if Catalog.mem_table t.catalog view || Hashtbl.mem t.views (String.lowercase_ascii view)
    then
      raise
        (Errors.Error
           (Errors.Catalog, Printf.sprintf "relation %s already exists" view));
    (* Validate the body now (binding it against the current catalog,
       with other views expanded) and fold a declared column list into
       the stored body. *)
    let expanded =
      Dbspinner_rewrite.View_expansion.expand ~lookup:(view_body t)
        (Ast.plain_query body)
    in
    let plan = Binder.bind_query (Binder.env_of_lookup (lookup t)) expanded.Ast.body in
    let body =
      match view_columns with
      | None -> body
      | Some names ->
        let schema = Logical.schema plan in
        if List.length names <> Schema.arity schema then
          raise
            (Errors.Error
               ( Errors.Bind,
                 Printf.sprintf
                   "view column list has %d names but the query returns %d \
                    columns"
                   (List.length names) (Schema.arity schema) ));
        let outputs = Schema.column_names schema in
        let distinct_outputs =
          List.length (List.sort_uniq String.compare
                         (List.map String.lowercase_ascii outputs))
          = List.length outputs
        in
        if not distinct_outputs then
          raise
            (Errors.Error
               ( Errors.Bind,
                 "a view column list requires the underlying query to \
                  produce distinct column names" ));
        Ast.Q_select
          {
            Ast.distinct = false;
            items =
              List.map2
                (fun orig renamed ->
                  {
                    Ast.expr = Ast.Col (Some "_view_body", orig);
                    alias = Some renamed;
                  })
                outputs names;
            from = Some (Ast.From_subquery { query = body; alias = "_view_body" });
            where = None;
            group_by = [];
            having = None;
          }
    in
    Hashtbl.replace t.views (String.lowercase_ascii view) body;
    Executed
  | Ast.S_drop_view { view; if_exists } ->
    let key = String.lowercase_ascii view in
    if Hashtbl.mem t.views key then begin
      Hashtbl.remove t.views key;
      Executed
    end
    else if if_exists then Executed
    else
      raise
        (Errors.Error
           (Errors.Catalog, Printf.sprintf "view %s does not exist" view))
  | Ast.S_begin ->
    if t.transaction <> None then
      raise (Errors.Error (Errors.Execute, "a transaction is already open"));
    let bindings = Catalog.base_bindings t.catalog in
    t.transaction <-
      Some
        {
          snapshot_bindings = bindings;
          snapshot_rows =
            List.map (fun (_, tbl) -> (tbl, Table.snapshot_rows tbl)) bindings;
        };
    Executed
  | Ast.S_commit -> (
    match t.transaction with
    | None -> raise (Errors.Error (Errors.Execute, "no transaction is open"))
    | Some _ ->
      t.transaction <- None;
      Executed)
  | Ast.S_rollback -> (
    match t.transaction with
    | None -> raise (Errors.Error (Errors.Execute, "no transaction is open"))
    | Some snapshot ->
      Catalog.restore_base t.catalog snapshot.snapshot_bindings;
      List.iter
        (fun (tbl, rows) -> Table.restore_rows tbl rows)
        snapshot.snapshot_rows;
      t.transaction <- None;
      Executed)
  | Ast.S_explain { analyze; target } -> (
    match target with
    | Ast.S_query q ->
      let expanded =
        Dbspinner_rewrite.View_expansion.expand ~lookup:(view_body t) q
      in
      let expanded = prevaluate_scalar_subqueries t expanded in
      let statistics = statistics_of t in
      let program, report =
        Iterative_rewrite.compile_with_report ~options:t.options ~statistics
          ~lookup:(lookup t) expanded
      in
      let estimate = Dbspinner_plan.Cost.program statistics program in
      let rewrite_log =
        match
          Dbspinner_rewrite.Rule.to_lines
            report.Iterative_rewrite.rewrite_log
        with
        | [] -> ""
        | lines -> "\nRewrite log:\n  " ^ String.concat "\n  " lines
      in
      let base =
        Explain.program_to_string program
        ^ Format.asprintf "@\n@\nRewrites applied: %s@\nCost estimate: %a"
            (Iterative_rewrite.report_to_string report)
            Dbspinner_plan.Cost.pp_program_estimate estimate
        ^ rewrite_log
      in
      if not analyze then Explained base
      else begin
        (* EXPLAIN ANALYZE: execute the program and report the actual
           executor counters next to the estimates. Always traced — the
           session trace if one is installed, else a throwaway local
           collector — so the convergence timeline can be rendered for
           iterative queries. *)
        let stats = Stats.create () in
        let guards = guards_of t in
        let parallel = parallel_of_options t.options in
        let tr =
          match t.trace with
          | Some tr -> tr
          | None -> Trace.create ~capacity:t.options.Options.trace_buffer ()
        in
        let seq0 = Trace.next_seq tr in
        let rel, seconds =
          let t0 = Unix.gettimeofday () in
          let rel =
            Fun.protect
              ~finally:(fun () ->
                Stats.add ~into:t.stats stats;
                Catalog.clear_temps t.catalog)
              (fun () ->
                Executor.run_program ?parallel ~stats ~guards
                  ~use_cache:t.options.Options.use_exec_cache
                  ~columnar:t.options.Options.use_columnar ~trace:tr
                  t.catalog program)
          in
          (rel, Unix.gettimeofday () -. t0)
        in
        let timeline = Trace.render_timeline ~min_seq:seq0 tr in
        Explained
          (Format.asprintf "%s@\n@\nActual: %.4f s, %d rows returned@\n  %a%s"
             base seconds (Relation.cardinality rel) Stats.pp stats
             (if timeline = "" then "" else "\n\n" ^ timeline))
      end
    | other -> Explained (Dbspinner_sql.Sql_pretty.statement other))

and execute t sql : result =
  Errors.wrap (fun () -> exec_statement t (Parser.parse_statement sql))

(** Run a [;]-separated script; returns the result of each statement. *)
let execute_script t sql : result list =
  Errors.wrap (fun () ->
      List.map (exec_statement t) (Parser.parse_script sql))

(** Convenience: run a query and return its relation.
    @raise Errors.Error if [sql] is not a query. *)
let query t sql : Relation.t =
  match execute t sql with
  | Rows rel -> rel
  | Affected _ | Executed | Explained _ ->
    raise (Errors.Error (Errors.Execute, "statement did not return rows"))

(** EXPLAIN text of a query under the session's current options. *)
let explain t sql : string =
  match execute t ("EXPLAIN " ^ sql) with
  | Explained s -> s
  | _ -> raise (Errors.Error (Errors.Execute, "EXPLAIN did not return a plan"))

(* ------------------------------------------------------------------ *)
(* Bulk loading (used by workloads and examples)                       *)

(** Create (or replace) a base table and fill it from a relation. *)
let load_table ?primary_key t ~name (rel : Relation.t) =
  if Catalog.mem_table t.catalog name then Catalog.drop_table t.catalog name;
  let tbl =
    Catalog.create_table ?primary_key t.catalog ~name (Relation.schema rel)
  in
  Relation.iter (fun row -> Table.insert tbl row) rel

(** Run a query with a one-off option set, restoring afterwards. *)
let with_options t options f =
  let saved = t.options in
  t.options <- options;
  Fun.protect ~finally:(fun () -> t.options <- saved) f

(** Concurrent multi-session SQL server over a Unix-domain socket.

    One OS thread per session, query CPU work submitted to the shared
    {!Dbspinner_exec.Parallel} Domain pool, and admission control that
    rejects — never queues — work beyond [max_inflight]. Sessions
    execute over {!Dbspinner_storage.Catalog.with_shared_base} views
    of one shared database, so base tables are shared while iterative
    CTE temps stay session-private.

    Concurrency control is MVCC: read statements pin the latest
    published catalog snapshot and run lock-free; write statements
    serialize on a writer lock and publish a new version before they
    are acknowledged. A cross-session plan cache keyed by (normalized
    SQL, snapshot version, options fingerprint) skips recompilation of
    repeated statements. Shutdown drains in-flight iterative loops at
    an iteration boundary via the engine's interrupt probe. *)

(** Writer-preferring readers-writer lock. Exposed for tests (wakeup
    ordering, starvation); the server itself now uses it only to
    serialize writers and durable checkpoints when MVCC is on. *)
module Rwlock : sig
  type t

  val create : unit -> t
  val lock_read : t -> unit
  val unlock_read : t -> unit
  val lock_write : t -> unit
  val unlock_write : t -> unit

  (** Run [f] under the read (shared) or write (exclusive) side. *)
  val with_lock : t -> read:bool -> (unit -> 'a) -> 'a
end

type config = {
  socket_path : string;
  max_sessions : int;  (** concurrent client connections *)
  max_inflight : int;  (** concurrent executing queries (admission) *)
  workers : int;  (** Domain-pool size query work is submitted to *)
  options : Dbspinner_rewrite.Options.t;  (** per-session defaults *)
  data_dir : string option;
      (** durability root (snapshot + WAL). When set, the server
          recovers from it at start, logs every committed write before
          acknowledging it, and checkpoints periodically. [None] = pure
          in-memory operation (prior behavior). *)
  fsync : Dbspinner_durable.Durable.policy;
      (** WAL fsync policy when [data_dir] is set; see
          {!Dbspinner_durable.Wal.policy} for what each mode survives *)
  checkpoint_every : float;
      (** seconds between background checkpoints; <= 0 checkpoints on
          every maintenance tick that finds pending WAL records *)
  mvcc : bool;
      (** lock-free snapshot reads (the default). [false] restores the
          single-RW-lock read path — bench baseline / escape hatch *)
  plan_cache : bool;
      (** cross-session plan cache (effective only with [mvcc]) *)
}

val default_config : config

type t

(** Bind, listen and start the accept thread. [catalog] preloads a
    shared database (e.g. from {!Dbspinner_workload.Loader}); a fresh
    empty one otherwise. Ignores SIGPIPE process-wide. *)
val start : ?config:config -> ?catalog:Dbspinner_storage.Catalog.t -> unit -> t

val catalog : t -> Dbspinner_storage.Catalog.t
val draining : t -> bool

(** What recovery found at boot; [None] when running without a
    [data_dir]. *)
val recovery : t -> Dbspinner_durable.Durable.recovery option

(** Graceful shutdown: stop admitting queries, abort in-flight loops
    at their next iteration boundary, answer every waiting client,
    close sockets, join threads, remove the socket file. Idempotent
    and blocking. *)
val shutdown : t -> unit

(** Block until {!shutdown} has completed (from any thread). *)
val wait : t -> unit

(** Trigger {!shutdown} from a session thread without self-joining
    (used by the SHUTDOWN request; returns immediately). *)
val request_shutdown : t -> unit

(** [with_server f] runs [f] against a started server and always shuts
    it down afterwards. *)
val with_server :
  ?config:config ->
  ?catalog:Dbspinner_storage.Catalog.t ->
  (t -> 'a) ->
  'a

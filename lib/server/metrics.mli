(** Server-wide counters and a bounded latency reservoir for the
    [STATS] command. Thread-safe. *)

type t

val create : unit -> t
val session_opened : t -> unit
val session_closed : t -> unit

(** Record a completed query with its wall-clock latency; [read] marks
    it as having run on the lock-free snapshot read path. *)
val query_done : ?read:bool -> t -> ok:bool -> seconds:float -> unit

(** Nearest-rank percentile (in seconds) over the retained latency
    reservoir. Total: 0.0 when nothing has been recorded, the lone
    sample when one has; [p] is clamped to [0, 100] and NaN treated
    as 0. *)
val percentile : t -> float -> float

type snapshot = {
  sessions_total : int;
  sessions_active : int;
  queries_ok : int;
  queries_err : int;
  queries_read : int;
  queries_write : int;
  p50_seconds : float;
  p99_seconds : float;
}

val snapshot : t -> snapshot

(** The [STATS] body: one [key value] pair per line; [extra] appends
    subsystem counters (e.g. durability) after the core keys. *)
val render :
  ?extra:(string * string) list ->
  t ->
  admission:Admission.t ->
  draining:bool ->
  string

(** Parse a {!render}ed body into an association list. *)
val parse : string -> (string * string) list

(** One client session: a private {!Dbspinner.Engine.t} whose catalog
    is a {!Catalog.with_shared_base} view over the server's shared
    database. Temps (iterative CTE working tables) are session-local,
    so concurrent sessions running the same query cannot collide on
    temp names; DDL/DML go to the shared base tables under the
    server's statement lock. *)

module Engine = Dbspinner.Engine
module Options = Dbspinner_rewrite.Options
module Catalog = Dbspinner_storage.Catalog
module Relation = Dbspinner_storage.Relation
module Trace = Dbspinner_obs.Trace

type t = {
  id : int;
  engine : Engine.t;
  catalog_view : Catalog.t;
      (** the session's shared-base catalog view (same value the engine
          holds); kept here so snapshot pin/unpin does not round-trip
          through the engine *)
  timeout_ceiling : float option;
      (** server-configured statement timeout at session start; [SET
          statement_timeout] may only tighten it — the server relies on
          the ceiling to keep a wedged query from stalling its
          checkpointer or shutdown drain *)
  mutable plan_cache : bool;
      (** whether this session participates in the server's
          cross-session plan cache ([SET plan_cache on|off]) *)
}

let create ~id ~options ~shared_catalog =
  let catalog = Catalog.with_shared_base shared_catalog in
  {
    id;
    engine = Engine.create ~options ~catalog ();
    catalog_view = catalog;
    timeout_ceiling = options.Options.statement_timeout_seconds;
    plan_cache = true;
  }

let id t = t.id
let engine t = t.engine
let plan_cache_enabled t = t.plan_cache

(* ------------------------------------------------------------------ *)
(* MVCC snapshot pinning                                               *)

(** Pin the session's catalog view to an immutable snapshot: until
    {!unpin}, every base-table read resolves against the snapshot's
    frozen tables, so the statement runs lock-free and sees a stable
    database no matter what concurrent writers commit. *)
let pin t snap = Catalog.pin_snapshot t.catalog_view snap

let unpin t = Catalog.unpin_snapshot t.catalog_view
let pinned_version t = Catalog.pinned_version t.catalog_view

(* ------------------------------------------------------------------ *)
(* Result rendering                                                    *)

let render_result = function
  | Engine.Rows rel -> Relation.to_table_string rel
  | Engine.Affected n -> Printf.sprintf "%d row(s) affected\n" n
  | Engine.Executed -> "ok\n"
  | Engine.Explained text -> text ^ "\n"

(** Run a [;]-separated script and render every statement's result,
    concatenated in statement order. *)
let run_script t sql =
  String.concat "" (List.map render_result (Engine.execute_script t.engine sql))

(* ------------------------------------------------------------------ *)
(* SET: per-session options (the server-side mirror of the REPL's
   [\set] meta commands)                                               *)

let set_bool_option options key enabled =
  match key with
  | "rename" -> Some { options with Options.use_rename = enabled }
  | "common" -> Some { options with Options.use_common_result = enabled }
  | "pushdown" -> Some { options with Options.use_pushdown = enabled }
  | "fold" -> Some { options with Options.use_constant_folding = enabled }
  | "exec_cache" | "cache" ->
    Some { options with Options.use_exec_cache = enabled }
  | "delta" -> Some { options with Options.use_delta = enabled }
  | "columnar" -> Some { options with Options.use_columnar = enabled }
  | "rule_engine" -> Some { options with Options.use_rule_engine = enabled }
  | "cost_rewrites" ->
    Some { options with Options.cost_based_rewrites = enabled }
  | _ -> None

let parse_bool = function
  | "on" | "true" | "1" -> Some true
  | "off" | "false" | "0" -> Some false
  | _ -> None

(** Apply [SET key value]; [Ok confirmation] or [Error usage]. *)
let set t key value : (string, string) result =
  let options = Engine.options t.engine in
  let off = value = "off" || value = "none" in
  match key with
  | "deadline" -> (
    match (off, float_of_string_opt value) with
    | true, _ ->
      Engine.set_options t.engine
        { options with Options.deadline_seconds = None };
      Ok "deadline off"
    | false, Some s when s > 0.0 ->
      Engine.set_options t.engine
        { options with Options.deadline_seconds = Some s };
      Ok (Printf.sprintf "deadline %gs" s)
    | false, _ -> Error "usage: SET deadline SECONDS|off")
  | "statement_timeout" -> (
    match (off, float_of_string_opt value) with
    | true, _ -> (
      match t.timeout_ceiling with
      | None ->
        Engine.set_options t.engine
          { options with Options.statement_timeout_seconds = None };
        Ok "statement_timeout off"
      | Some ceiling ->
        Error
          (Printf.sprintf
             "statement_timeout may only be tightened (server ceiling %gs)"
             ceiling))
    | false, Some s when s > 0.0 -> (
      match t.timeout_ceiling with
      | Some ceiling when s > ceiling ->
        Error
          (Printf.sprintf
             "statement_timeout may only be tightened (server ceiling %gs)"
             ceiling)
      | _ ->
        Engine.set_options t.engine
          { options with Options.statement_timeout_seconds = Some s };
        Ok (Printf.sprintf "statement_timeout %gs" s))
    | false, _ -> Error "usage: SET statement_timeout SECONDS|off")
  | "budget" -> (
    match (off, int_of_string_opt value) with
    | true, _ ->
      Engine.set_options t.engine { options with Options.row_budget = None };
      Ok "budget off"
    | false, Some n when n > 0 ->
      Engine.set_options t.engine
        { options with Options.row_budget = Some n };
      Ok (Printf.sprintf "budget %d rows" n)
    | false, _ -> Error "usage: SET budget ROWS|off")
  | "workers" -> (
    match int_of_string_opt value with
    | Some n when n >= 1 ->
      Engine.set_options t.engine
        { options with Options.parallel_workers = n };
      Ok (Printf.sprintf "workers %d" n)
    | _ -> Error "usage: SET workers N (N >= 1)")
  | "max_iterations" -> (
    match int_of_string_opt value with
    | Some n when n >= 1 ->
      Engine.set_options t.engine
        { options with Options.max_iterations_guard = n };
      Ok (Printf.sprintf "max_iterations %d" n)
    | _ -> Error "usage: SET max_iterations N (N >= 1)")
  | "trace" -> (
    match parse_bool value with
    | Some true ->
      ignore (Engine.enable_trace t.engine);
      Ok "trace on"
    | Some false ->
      Engine.set_trace t.engine None;
      Ok "trace off"
    | None -> Error "usage: SET trace on|off")
  | "plan_cache" -> (
    match parse_bool value with
    | Some enabled ->
      t.plan_cache <- enabled;
      Ok (Printf.sprintf "plan_cache %b" enabled)
    | None -> Error "usage: SET plan_cache on|off")
  | _ -> (
    match parse_bool value with
    | Some enabled -> (
      match set_bool_option options key enabled with
      | Some options ->
        Engine.set_options t.engine options;
        Ok (Printf.sprintf "%s %b" key enabled)
      | None ->
        Error
          (Printf.sprintf
             "unknown option %s \
              (rename|common|pushdown|fold|cache|delta|columnar|rule_engine|cost_rewrites|deadline|statement_timeout|budget|workers|max_iterations|trace|plan_cache)"
             key))
    | None -> Error (Printf.sprintf "SET %s expects on|off" key))

(** The session's trace buffer as NDJSON ("" when tracing is off). *)
let trace_ndjson t =
  match Engine.trace t.engine with
  | Some tr -> Trace.to_ndjson tr
  | None -> ""

(** Wire protocol: length-prefixed text frames
    ([<decimal byte length>\n<payload>]) over a stream socket, with
    plain-text request/response payloads. *)

(** Raised on malformed frames or unknown statuses. *)
exception Protocol_error of string

(** Hard cap on an accepted frame's payload size. *)
val max_frame_bytes : int

val write_frame : Unix.file_descr -> string -> unit

(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise Protocol_error on malformed input.
    @raise End_of_file when the peer dies mid-frame. *)
val read_frame : Unix.file_descr -> string option

type request =
  | Query of string  (** a [;]-separated SQL script *)
  | Set of string * string  (** session option: key, value *)
  | Stats  (** server-wide counters *)
  | Trace  (** this session's trace buffer as NDJSON *)
  | Ping
  | Quit  (** end this session *)
  | Shutdown  (** initiate graceful server shutdown *)

val render_request : request -> string
val parse_request : string -> (request, string) result

type response =
  | Ok_result of string  (** rendered statement results *)
  | Err of string * string  (** error stage, message *)
  | Busy of string  (** admission control rejected the query *)
  | Closing of string  (** server is draining; no new queries *)
  | Pong
  | Bye

val render_response : response -> string

(** @raise Protocol_error on an unknown status line. *)
val parse_response : string -> response

(** True when every non-empty [;]-fragment starts with a read-only
    verb (SELECT / WITH / EXPLAIN / VALUES). Conservative: anything
    unrecognized counts as a write. *)
val read_only : string -> bool

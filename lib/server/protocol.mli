(** Wire protocol: length-prefixed text frames
    ([<decimal byte length>\n<payload>]) over a stream socket, with
    plain-text request/response payloads. *)

(** Raised on malformed frames or unknown statuses. *)
exception Protocol_error of string

(** Hard cap on an accepted frame's payload size. *)
val max_frame_bytes : int

val write_frame : Unix.file_descr -> string -> unit

(** Write several frames with one [write] syscall (pipelining batch). *)
val write_frames : Unix.file_descr -> string list -> unit

(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise Protocol_error on malformed input.
    @raise End_of_file when the peer dies mid-frame. *)
val read_frame : Unix.file_descr -> string option

type request =
  | Query of string  (** a [;]-separated SQL script *)
  | Set of string * string  (** session option: key, value *)
  | Stats  (** server-wide counters *)
  | Trace  (** this session's trace buffer as NDJSON *)
  | Ping
  | Quit  (** end this session *)
  | Shutdown  (** initiate graceful server shutdown *)

val render_request : request -> string
val parse_request : string -> (request, string) result

type response =
  | Ok_result of string  (** rendered statement results *)
  | Err of string * string  (** error stage, message *)
  | Busy of string  (** admission control rejected the query *)
  | Closing of string  (** server is draining; no new queries *)
  | Pong
  | Bye

val render_response : response -> string

(** @raise Protocol_error on an unknown status line. *)
val parse_response : string -> response

(** {2 Request ids (pipelining)}

    A request payload may carry a client-chosen id as a [#<id>\n]
    prefix; the response echoes the same prefix. The server responds
    strictly in request order per session, so a client can stream N
    request frames back-to-back and then collect the N responses,
    paying one round-trip for the whole batch. Untagged payloads (the
    pre-pipelining format) remain valid and get untagged responses. *)

(** Prefix a rendered payload with a request id.
    @raise Invalid_argument on a negative id. *)
val with_id : int -> string -> string

(** Split a [#<id>\n] prefix off a payload; [(None, payload)] when
    untagged. *)
val strip_id : string -> int option * string

(** Split a script into statement fragments at top-level [;] only:
    semicolons inside single-quoted strings ([''] escapes),
    double-quoted identifiers, [--] line comments and [/* */] block
    comments do not split, and comment bodies are dropped from the
    fragments. *)
val split_statements : string -> string list

(** True when every non-empty statement starts with a read-only verb
    (SELECT / WITH / EXPLAIN / VALUES), so the script can run
    lock-free against a pinned MVCC snapshot. Splitting respects
    strings and comments ({!split_statements}); conservative: anything
    unrecognized counts as a write. *)
val read_only : string -> bool

(** The DBSpinner server: a concurrent multi-session SQL front-end
    over a Unix-domain socket.

    Threading model: one OS thread accepts connections and one OS
    thread per session parses frames and blocks on I/O, while query
    CPU work is submitted to the shared {!Parallel} Domain pool
    ({!Parallel.submit}) — so N idle sessions cost N parked threads,
    not N domains, and the pool bounds actual query parallelism.

    Isolation: every session executes over a
    {!Catalog.with_shared_base} view of one shared database. Base
    tables (and DDL) are shared; iterative CTE temps are
    session-private. Read statements take MVCC snapshots: they pin the
    latest published catalog version (immutable frozen tables over
    persistent row lists) and execute with no lock at all, so
    concurrent read-only scripts (the common case: iterative
    analytics) run fully in parallel, cannot be starved by writers,
    and each sees one stable database for its whole script. Write
    statements serialize on a writer lock and publish a new catalog
    version before their OK is sent (read-your-writes). Setting
    [config.mvcc = false] restores the previous whole-statement RW
    lock.

    Admission control: at most [max_inflight] queries execute at once;
    excess queries are {e rejected} with [BUSY] rather than queued, so
    overload surfaces immediately instead of as timeout storms.

    Shutdown drains at iteration boundaries: a draining flag flips the
    per-session interrupt probe (polled by {!Guards.check} at
    materialize and loop boundaries), so in-flight iterative loops
    abort cleanly with a [Resource]-stage error at the next boundary —
    the same mechanism the MPP layer's checkpoints hook — and every
    client gets a response before its socket closes. *)

module Engine = Dbspinner.Engine
module Errors = Dbspinner.Errors
module Options = Dbspinner_rewrite.Options
module Catalog = Dbspinner_storage.Catalog
module Parallel = Dbspinner_exec.Parallel
module Durable = Dbspinner_durable.Durable

(* ------------------------------------------------------------------ *)
(* Readers-writer lock (writer-preferring)                             *)

module Rwlock = struct
  type t = {
    lock : Mutex.t;
    can_read : Condition.t;
    can_write : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable writers_waiting : int;
  }

  let create () =
    {
      lock = Mutex.create ();
      can_read = Condition.create ();
      can_write = Condition.create ();
      readers = 0;
      writer = false;
      writers_waiting = 0;
    }

  let lock_read t =
    Mutex.lock t.lock;
    (* Writer preference: queued writers block new readers, so a DML
       burst cannot be starved by a stream of SELECTs. *)
    while t.writer || t.writers_waiting > 0 do
      Condition.wait t.can_read t.lock
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.lock

  let unlock_read t =
    Mutex.lock t.lock;
    t.readers <- t.readers - 1;
    if t.readers = 0 && t.writers_waiting > 0 then
      Condition.signal t.can_write;
    Mutex.unlock t.lock

  let lock_write t =
    Mutex.lock t.lock;
    t.writers_waiting <- t.writers_waiting + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.can_write t.lock
    done;
    t.writers_waiting <- t.writers_waiting - 1;
    t.writer <- true;
    Mutex.unlock t.lock

  let unlock_write t =
    Mutex.lock t.lock;
    t.writer <- false;
    (* Hand off to a queued writer first; waking readers too would be
       a thundering herd that re-blocks on [writers_waiting > 0] and —
       worse — could slip in ahead of the writer on an unfair wakeup
       order, breaking the writer preference [lock_read] promises.
       Readers are only woken when no writer is queued. *)
    if t.writers_waiting > 0 then Condition.signal t.can_write
    else Condition.broadcast t.can_read;
    Mutex.unlock t.lock

  let with_lock t ~read f =
    if read then begin
      lock_read t;
      Fun.protect ~finally:(fun () -> unlock_read t) f
    end
    else begin
      lock_write t;
      Fun.protect ~finally:(fun () -> unlock_write t) f
    end
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  socket_path : string;
  max_sessions : int;  (** concurrent client connections *)
  max_inflight : int;  (** concurrent executing queries (admission) *)
  workers : int;  (** Domain-pool size query work is submitted to *)
  options : Options.t;  (** per-session engine defaults *)
  data_dir : string option;
      (** durability root (snapshot + WAL); [None] = in-memory only *)
  fsync : Durable.policy;  (** WAL fsync policy when [data_dir] is set *)
  checkpoint_every : float;
      (** seconds between background checkpoints (only taken when the
          WAL has pending records); <= 0 checkpoints on every
          maintenance tick that finds pending records *)
  mvcc : bool;
      (** read statements pin a published catalog snapshot and run
          without any lock (the default). [false] restores the PR 5
          single-RW-lock read path — kept as the bench baseline and an
          escape hatch *)
  plan_cache : bool;
      (** enable the cross-session plan cache (requires [mvcc]: cache
          keys are snapshot versions) *)
}

let default_config =
  {
    socket_path = Filename.concat (Filename.get_temp_dir_name ()) "dbspinner.sock";
    max_sessions = 64;
    max_inflight = 8;
    workers = 4;
    options = Options.default;
    data_dir = None;
    fsync = Durable.Batch;
    checkpoint_every = 30.0;
    mvcc = true;
    plan_cache = true;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  catalog : Catalog.t;  (** the shared database *)
  admission : Admission.t;
  metrics : Metrics.t;
  pool : Parallel.t;
  statement_lock : Rwlock.t;
      (** with MVCC on this is purely a writer-serialization point
          (write statements + durable checkpoints); readers never touch
          it. With [config.mvcc = false] it reverts to the PR 5 role of
          a full statement RW lock. *)
  plans : Plan_cache.t option;  (** cross-session plan cache *)
  durable : Durable.t option;
  draining : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable maintenance_thread : Thread.t option;
      (** periodic WAL sync + checkpointing; runs iff [durable] is set *)
  conn_lock : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;  (** live session sockets *)
  mutable session_threads : Thread.t list;
  mutable next_session : int;
  shutdown_done : Mutex.t * Condition.t * bool ref;
  mutable on_shutdown_request : unit -> unit;
      (** set at [start]; spawns the drain off the session thread *)
}

let catalog t = t.catalog
let draining t = Atomic.get t.draining

(** What recovery found at boot, when running durably. *)
let recovery t = Option.map Durable.recovery t.durable

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)

let stage_of_exn = function
  | Errors.Error (stage, msg) -> (Errors.stage_name stage, msg)
  | e -> ("internal", Printexc.to_string e)

let durable_error_message = function
  | Durable.Durability_error m -> m
  | Unix.Unix_error (err, call, arg) ->
    Printf.sprintf "%s(%s): %s" call arg (Unix.error_message err)
  | e -> Printexc.to_string e

let exec_query srv session sql : Protocol.response =
  if Atomic.get srv.draining then
    Protocol.Closing "server is shutting down; no new queries"
  else if not (Admission.try_acquire srv.admission) then
    Protocol.Busy
      (Printf.sprintf "server at capacity (%d queries in flight); retry"
         (Admission.limit srv.admission))
  else
    Fun.protect
      ~finally:(fun () -> Admission.release srv.admission)
      (fun () ->
        let read = Protocol.read_only sql in
        let t0 = Unix.gettimeofday () in
        let run () =
          (* The session thread parks here while a pool domain does
             the CPU work. *)
          match
            Parallel.submit srv.pool (fun () -> Session.run_script session sql)
          with
          | body -> Ok body
          | exception e -> Error (stage_of_exn e)
        in
        let finish outcome =
          match outcome with
          | Ok body ->
            Metrics.query_done srv.metrics ~read ~ok:true
              ~seconds:(Unix.gettimeofday () -. t0);
            Protocol.Ok_result body
          | Error (stage, msg) ->
            Metrics.query_done srv.metrics ~read ~ok:false
              ~seconds:(Unix.gettimeofday () -. t0);
            Protocol.Err (stage, msg)
        in
        if read && srv.config.mvcc then begin
          (* MVCC read path: pin the latest published snapshot and run
             with NO lock at all. The snapshot's tables are immutable
             (persistent row lists), so concurrent writers — who only
             ever publish whole new versions — cannot perturb this
             statement, and a stream of writes cannot starve it. *)
          Session.pin session (Catalog.snapshot srv.catalog);
          Fun.protect
            ~finally:(fun () -> Session.unpin session)
            (fun () -> finish (run ()))
        end
        else
          Rwlock.with_lock srv.statement_lock ~read (fun () ->
              (* Writers (and, with MVCC off, readers too) still
                 serialize on the statement lock. *)
              let digest_before =
                if read then 0 else Catalog.base_digest srv.catalog
              in
              let outcome = run () in
              let changed_digest =
                if read then None
                else
                  let digest = Catalog.base_digest srv.catalog in
                  if digest <> digest_before then Some digest else None
              in
              (* Publish-before-ack: the new catalog version must be
                 visible before the client hears OK, so its very next
                 read (which pins the latest snapshot) observes its own
                 write. Failed scripts publish too when they mutated
                 anything — partial DML is committed state here. Stale
                 plan-cache entries are swept in the same breath. *)
              (match changed_digest with
              | Some _ when srv.config.mvcc ->
                let snap = Catalog.publish srv.catalog in
                Option.iter
                  (fun cache ->
                    Plan_cache.sweep cache
                      ~version:(Catalog.snapshot_version snap))
                  srv.plans
              | _ -> ());
              (* Log-before-ack: the WAL append happens after execution
                 but before the response, still under the writer lock,
                 so a checkpoint can never slip between a mutation and
                 its log record. Replay is deterministic, so re-running
                 a failed-but-mutating script recovers the exact
                 state. *)
              let log_result =
                match (srv.durable, changed_digest) with
                | Some d, Some digest -> (
                  try Ok (Durable.log_script d ~digest ~sql)
                  with e -> Error e)
                | _ -> Ok ()
              in
              match log_result with
              | Error e ->
                (* The mutation happened but could not be made durable;
                   the client must not see an OK it could lose. *)
                Metrics.query_done srv.metrics ~read ~ok:false
                  ~seconds:(Unix.gettimeofday () -. t0);
                Protocol.Err ("durable", durable_error_message e)
              | Ok () -> finish outcome))

(* ------------------------------------------------------------------ *)
(* Session loop                                                        *)

let handle_request srv session (req : Protocol.request) : Protocol.response * bool =
  match req with
  | Protocol.Ping -> (Protocol.Pong, true)
  | Protocol.Query sql -> (exec_query srv session sql, true)
  | Protocol.Set (key, value) -> (
    match Session.set session key value with
    | Ok confirmation -> (Protocol.Ok_result confirmation, true)
    | Error usage -> (Protocol.Err ("set", usage), true))
  | Protocol.Stats ->
    let mvcc_extra =
      if srv.config.mvcc then
        [
          ( "snapshot_version",
            string_of_int
              (Catalog.snapshot_version (Catalog.snapshot srv.catalog)) );
        ]
      else []
    in
    let plan_extra =
      match srv.plans with
      | None -> []
      | Some cache ->
        [
          ("plan_hits", string_of_int (Plan_cache.hits cache));
          ("plan_misses", string_of_int (Plan_cache.misses cache));
          ("plan_entries", string_of_int (Plan_cache.size cache));
        ]
    in
    let durable_extra =
      match srv.durable with
      | None -> []
      | Some d ->
        let c = Durable.counters d in
        [
          ("fsync_policy", Durable.policy_to_string (Durable.policy d));
          ("wal_records", string_of_int c.Durable.wal_records);
          ("wal_bytes", string_of_int c.Durable.wal_bytes);
          ("wal_fsyncs", string_of_int c.Durable.wal_fsyncs);
          ("checkpoints", string_of_int c.Durable.checkpoints);
          ("ddl_events", string_of_int c.Durable.ddl_events);
        ]
    in
    ( Protocol.Ok_result
        (Metrics.render
           ~extra:(mvcc_extra @ plan_extra @ durable_extra)
           srv.metrics ~admission:srv.admission
           ~draining:(Atomic.get srv.draining)),
      true )
  | Protocol.Trace -> (Protocol.Ok_result (Session.trace_ndjson session), true)
  | Protocol.Quit -> (Protocol.Bye, false)
  | Protocol.Shutdown ->
    srv.on_shutdown_request ();
    (Protocol.Bye, false)

let session_loop srv fd session =
  let continue = ref true in
  while !continue do
    match Protocol.read_frame fd with
    | None -> continue := false
    | Some payload ->
      (* Pipelining: a [#<id>\n] prefix is split off before parsing
         and echoed on the response. The loop itself already services
         back-to-back frames in arrival order, so a client may stream
         a whole batch and then collect the (order-preserving, id-
         tagged) responses. *)
      let tag, body = Protocol.strip_id payload in
      let response, keep_going =
        match Protocol.parse_request body with
        | Ok req -> handle_request srv session req
        | Error msg -> (Protocol.Err ("protocol", msg), true)
      in
      let rendered = Protocol.render_response response in
      let rendered =
        match tag with
        | Some id -> Protocol.with_id id rendered
        | None -> rendered
      in
      (* The peer may vanish between request and response (EPIPE);
         that ends the session, it must not kill the thread. *)
      (try
         Protocol.write_frame fd rendered;
         continue := keep_going
       with Unix.Unix_error _ -> continue := false)
    | exception (End_of_file | Unix.Unix_error _ | Protocol.Protocol_error _)
      ->
      continue := false
  done

let serve_connection srv id fd =
  let session =
    Session.create ~id ~options:srv.config.options
      ~shared_catalog:srv.catalog
  in
  (* Drain hook: once the server starts draining, the probe makes this
     session's in-flight statements abort at their next guard
     boundary. *)
  Engine.set_interrupt (Session.engine session)
    (Some
       (fun () ->
         if Atomic.get srv.draining then Some "server shutting down"
         else None));
  (* Cross-session plan cache: compiled programs are keyed by
     (normalized SQL, pinned snapshot version, options fingerprint).
     Only snapshot-pinned statements participate — an unpinned
     statement (write, or MVCC off) has no version to key by, and the
     engine already bypasses the hook when the session has views. *)
  (match srv.plans with
  | Some cache ->
    let engine = Session.engine session in
    Engine.set_plan_hook engine
      (Some
         (fun q compile ->
           match Session.pinned_version session with
           | Some version when Session.plan_cache_enabled session ->
             Plan_cache.find_or_compile cache
               ~sql:(Dbspinner_sql.Sql_pretty.full_query q)
               ~version
               ~opts:(Plan_cache.fingerprint (Engine.options engine))
               compile
           | _ -> compile ()))
  | None -> ());
  Metrics.session_opened srv.metrics;
  Fun.protect
    ~finally:(fun () ->
      Metrics.session_closed srv.metrics;
      Mutex.lock srv.conn_lock;
      Hashtbl.remove srv.conns id;
      Mutex.unlock srv.conn_lock;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> session_loop srv fd session)

let accept_loop srv () =
  let continue = ref true in
  while !continue do
    match Unix.accept srv.listen_fd with
    | exception
        Unix.Unix_error
          ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
      if Atomic.get srv.draining then begin
        (* Late connector during shutdown: answer once, then close —
           and exit the loop rather than re-entering [accept].
           Re-entering would race [shutdown]'s close of the listening
           socket: closing an fd does not wake a thread already
           blocked in accept, and the join would hang forever. *)
        (try
           Protocol.write_frame fd
             (Protocol.render_response
                (Protocol.Closing "server is shutting down"))
         with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        Mutex.lock srv.conn_lock;
        let at_capacity =
          Hashtbl.length srv.conns >= srv.config.max_sessions
        in
        let id = srv.next_session in
        if not at_capacity then begin
          srv.next_session <- id + 1;
          Hashtbl.replace srv.conns id fd
        end;
        Mutex.unlock srv.conn_lock;
        if at_capacity then begin
          (try
             Protocol.write_frame fd
               (Protocol.render_response
                  (Protocol.Busy
                     (Printf.sprintf "session limit (%d) reached"
                        srv.config.max_sessions)))
           with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          let thread = Thread.create (fun () -> serve_connection srv id fd) () in
          Mutex.lock srv.conn_lock;
          srv.session_threads <- thread :: srv.session_threads;
          Mutex.unlock srv.conn_lock
        end
      end
  done

(* ------------------------------------------------------------------ *)
(* Durability maintenance                                              *)

(** Background loop: push buffered WAL bytes toward disk every tick
    ([Batch]'s periodic fsync) and checkpoint when the interval has
    elapsed with records pending. The checkpoint takes the writer lock,
    so it sees a quiescent catalog; the statement-timeout guard keeps a
    wedged query from holding that lock forever. *)
let maintenance_loop srv d () =
  let last_checkpoint = ref (Unix.gettimeofday ()) in
  while not (Atomic.get srv.draining) do
    Thread.delay 0.05;
    (try Durable.tick d
     with e -> prerr_endline ("durable tick: " ^ durable_error_message e));
    if
      Unix.gettimeofday () -. !last_checkpoint >= srv.config.checkpoint_every
      && Durable.pending_records d > 0
      && not (Atomic.get srv.draining)
    then begin
      Rwlock.with_lock srv.statement_lock ~read:false (fun () ->
          try Durable.checkpoint d
          with e ->
            prerr_endline ("durable checkpoint: " ^ durable_error_message e));
      last_checkpoint := Unix.gettimeofday ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(config = default_config) ?catalog () : t =
  (* A dead client mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let catalog = match catalog with Some c -> c | None -> Catalog.create () in
  (* Recover before the socket exists: no client can connect until the
     catalog is fully rebuilt. Replay runs each logged script through a
     throwaway session view exactly like live execution, swallowing
     statement errors (they are deterministic and their partial effects
     are part of the logged digest). *)
  let durable =
    match config.data_dir with
    | None -> None
    | Some dir ->
      let replay sql =
        let eng =
          Engine.create ~options:config.options
            ~catalog:(Catalog.with_shared_base catalog) ()
        in
        match Engine.execute_script eng sql with
        | _ -> ()
        | exception _ -> ()
      in
      Some (Durable.attach ~dir ~policy:config.fsync ~catalog ~replay)
  in
  (* Publish the initial snapshot only after recovery has rebuilt the
     catalog, so the very first pinned reader sees the recovered
     database, not an empty version 0. *)
  if config.mvcc then ignore (Catalog.publish catalog);
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let srv =
    {
      config;
      listen_fd;
      catalog;
      admission = Admission.create ~limit:config.max_inflight;
      metrics = Metrics.create ();
      pool = Parallel.get config.workers;
      statement_lock = Rwlock.create ();
      plans =
        (if config.mvcc && config.plan_cache then Some (Plan_cache.create ())
         else None);
      durable;
      draining = Atomic.make false;
      accept_thread = None;
      maintenance_thread = None;
      conn_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      session_threads = [];
      next_session = 1;
      shutdown_done = (Mutex.create (), Condition.create (), ref false);
      on_shutdown_request = ignore;
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  (match durable with
  | Some d ->
    srv.maintenance_thread <- Some (Thread.create (maintenance_loop srv d) ())
  | None -> ());
  srv

(** Graceful shutdown: stop admitting, let in-flight loops abort at
    their next iteration boundary (interrupt probe), answer every
    waiting client, then close sockets, join threads and remove the
    socket file. Idempotent. *)
let shutdown srv =
  if not (Atomic.exchange srv.draining true) then begin
    (* Wake the accept loop. shutdown(2) on the listening socket
       reliably interrupts a blocked [accept] (unlike close(2), which
       leaves an already-parked accept sleeping); the throwaway
       connection is belt-and-braces for the instant between accepting
       one connection and re-checking the draining flag. Only close
       the fd once the thread is joined. *)
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX srv.config.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match srv.accept_thread with
    | Some t ->
      Thread.join t;
      srv.accept_thread <- None
    | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* Session threads drain on their own: in-flight statements abort
       at the next guard boundary and are answered with a Resource
       error; subsequent queries get CLOSING. Shut the read side of
       every live connection so sessions parked in [read_frame] (idle
       clients) wake up with EOF instead of blocking shutdown. *)
    Mutex.lock srv.conn_lock;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) srv.conns [] in
    let threads = srv.session_threads in
    srv.session_threads <- [];
    Mutex.unlock srv.conn_lock;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      fds;
    List.iter Thread.join threads;
    (match srv.maintenance_thread with
    | Some t ->
      Thread.join t;
      srv.maintenance_thread <- None
    | None -> ());
    (* Final checkpoint: collapse the WAL into a snapshot so the next
       boot replays nothing, then close the log. *)
    (match srv.durable with
    | Some d -> (
      try
        if Durable.pending_records d > 0 then Durable.checkpoint d;
        Durable.close d
      with e ->
        prerr_endline ("durable shutdown: " ^ durable_error_message e))
    | None -> ());
    if Sys.file_exists srv.config.socket_path then
      Sys.remove srv.config.socket_path;
    let lock, cond, flag = srv.shutdown_done in
    Mutex.lock lock;
    flag := true;
    Condition.broadcast cond;
    Mutex.unlock lock
  end

(** Block until {!shutdown} has completed (from any thread). *)
let wait srv =
  let lock, cond, flag = srv.shutdown_done in
  Mutex.lock lock;
  while not !flag do
    Condition.wait cond lock
  done;
  Mutex.unlock lock

(* A SHUTDOWN request must not run [shutdown] on the session thread
   itself (it would join itself); hand it to a fresh thread. *)
let request_shutdown srv =
  ignore (Thread.create (fun () -> shutdown srv) ())

let start ?config ?catalog () =
  let srv = start ?config ?catalog () in
  srv.on_shutdown_request <- (fun () -> request_shutdown srv);
  srv

let with_server ?config ?catalog f =
  let srv = start ?config ?catalog () in
  Fun.protect ~finally:(fun () -> shutdown srv) (fun () -> f srv)

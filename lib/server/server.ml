(** The DBSpinner server: a concurrent multi-session SQL front-end
    over a Unix-domain socket.

    Threading model: one OS thread accepts connections and one OS
    thread per session parses frames and blocks on I/O, while query
    CPU work is submitted to the shared {!Parallel} Domain pool
    ({!Parallel.submit}) — so N idle sessions cost N parked threads,
    not N domains, and the pool bounds actual query parallelism.

    Isolation: every session executes over a
    {!Catalog.with_shared_base} view of one shared database. Base
    tables (and DDL) are shared; iterative CTE temps are
    session-private. A readers-writer lock serializes write statements
    against everything else, so concurrent read-only scripts (the
    common case: iterative analytics) run fully in parallel and
    produce results bit-identical to a sequential run.

    Admission control: at most [max_inflight] queries execute at once;
    excess queries are {e rejected} with [BUSY] rather than queued, so
    overload surfaces immediately instead of as timeout storms.

    Shutdown drains at iteration boundaries: a draining flag flips the
    per-session interrupt probe (polled by {!Guards.check} at
    materialize and loop boundaries), so in-flight iterative loops
    abort cleanly with a [Resource]-stage error at the next boundary —
    the same mechanism the MPP layer's checkpoints hook — and every
    client gets a response before its socket closes. *)

module Engine = Dbspinner.Engine
module Errors = Dbspinner.Errors
module Options = Dbspinner_rewrite.Options
module Catalog = Dbspinner_storage.Catalog
module Parallel = Dbspinner_exec.Parallel

(* ------------------------------------------------------------------ *)
(* Readers-writer lock (writer-preferring)                             *)

module Rwlock = struct
  type t = {
    lock : Mutex.t;
    can_read : Condition.t;
    can_write : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable writers_waiting : int;
  }

  let create () =
    {
      lock = Mutex.create ();
      can_read = Condition.create ();
      can_write = Condition.create ();
      readers = 0;
      writer = false;
      writers_waiting = 0;
    }

  let lock_read t =
    Mutex.lock t.lock;
    (* Writer preference: queued writers block new readers, so a DML
       burst cannot be starved by a stream of SELECTs. *)
    while t.writer || t.writers_waiting > 0 do
      Condition.wait t.can_read t.lock
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.lock

  let unlock_read t =
    Mutex.lock t.lock;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.signal t.can_write;
    Mutex.unlock t.lock

  let lock_write t =
    Mutex.lock t.lock;
    t.writers_waiting <- t.writers_waiting + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.can_write t.lock
    done;
    t.writers_waiting <- t.writers_waiting - 1;
    t.writer <- true;
    Mutex.unlock t.lock

  let unlock_write t =
    Mutex.lock t.lock;
    t.writer <- false;
    Condition.signal t.can_write;
    Condition.broadcast t.can_read;
    Mutex.unlock t.lock

  let with_lock t ~read f =
    if read then begin
      lock_read t;
      Fun.protect ~finally:(fun () -> unlock_read t) f
    end
    else begin
      lock_write t;
      Fun.protect ~finally:(fun () -> unlock_write t) f
    end
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  socket_path : string;
  max_sessions : int;  (** concurrent client connections *)
  max_inflight : int;  (** concurrent executing queries (admission) *)
  workers : int;  (** Domain-pool size query work is submitted to *)
  options : Options.t;  (** per-session engine defaults *)
}

let default_config =
  {
    socket_path = Filename.concat (Filename.get_temp_dir_name ()) "dbspinner.sock";
    max_sessions = 64;
    max_inflight = 8;
    workers = 4;
    options = Options.default;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  catalog : Catalog.t;  (** the shared database *)
  admission : Admission.t;
  metrics : Metrics.t;
  pool : Parallel.t;
  statement_lock : Rwlock.t;
  draining : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conn_lock : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;  (** live session sockets *)
  mutable session_threads : Thread.t list;
  mutable next_session : int;
  shutdown_done : Mutex.t * Condition.t * bool ref;
  mutable on_shutdown_request : unit -> unit;
      (** set at [start]; spawns the drain off the session thread *)
}

let catalog t = t.catalog
let draining t = Atomic.get t.draining

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)

let stage_of_exn = function
  | Errors.Error (stage, msg) -> (Errors.stage_name stage, msg)
  | e -> ("internal", Printexc.to_string e)

let exec_query srv session sql : Protocol.response =
  if Atomic.get srv.draining then
    Protocol.Closing "server is shutting down; no new queries"
  else if not (Admission.try_acquire srv.admission) then
    Protocol.Busy
      (Printf.sprintf "server at capacity (%d queries in flight); retry"
         (Admission.limit srv.admission))
  else
    Fun.protect
      ~finally:(fun () -> Admission.release srv.admission)
      (fun () ->
        Rwlock.with_lock srv.statement_lock ~read:(Protocol.read_only sql)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            match
              (* The session thread parks here while a pool domain
                 does the CPU work. *)
              Parallel.submit srv.pool (fun () ->
                  Session.run_script session sql)
            with
            | body ->
              Metrics.query_done srv.metrics ~ok:true
                ~seconds:(Unix.gettimeofday () -. t0);
              Protocol.Ok_result body
            | exception e ->
              Metrics.query_done srv.metrics ~ok:false
                ~seconds:(Unix.gettimeofday () -. t0);
              let stage, msg = stage_of_exn e in
              Protocol.Err (stage, msg)))

(* ------------------------------------------------------------------ *)
(* Session loop                                                        *)

let handle_request srv session (req : Protocol.request) : Protocol.response * bool =
  match req with
  | Protocol.Ping -> (Protocol.Pong, true)
  | Protocol.Query sql -> (exec_query srv session sql, true)
  | Protocol.Set (key, value) -> (
    match Session.set session key value with
    | Ok confirmation -> (Protocol.Ok_result confirmation, true)
    | Error usage -> (Protocol.Err ("set", usage), true))
  | Protocol.Stats ->
    ( Protocol.Ok_result
        (Metrics.render srv.metrics ~admission:srv.admission
           ~draining:(Atomic.get srv.draining)),
      true )
  | Protocol.Trace -> (Protocol.Ok_result (Session.trace_ndjson session), true)
  | Protocol.Quit -> (Protocol.Bye, false)
  | Protocol.Shutdown ->
    srv.on_shutdown_request ();
    (Protocol.Bye, false)

let session_loop srv fd session =
  let continue = ref true in
  while !continue do
    match Protocol.read_frame fd with
    | None -> continue := false
    | Some payload ->
      let response, keep_going =
        match Protocol.parse_request payload with
        | Ok req -> handle_request srv session req
        | Error msg -> (Protocol.Err ("protocol", msg), true)
      in
      (* The peer may vanish between request and response (EPIPE);
         that ends the session, it must not kill the thread. *)
      (try
         Protocol.write_frame fd (Protocol.render_response response);
         continue := keep_going
       with Unix.Unix_error _ -> continue := false)
    | exception (End_of_file | Unix.Unix_error _ | Protocol.Protocol_error _)
      ->
      continue := false
  done

let serve_connection srv id fd =
  let session =
    Session.create ~id ~options:srv.config.options
      ~shared_catalog:srv.catalog
  in
  (* Drain hook: once the server starts draining, the probe makes this
     session's in-flight statements abort at their next guard
     boundary. *)
  Engine.set_interrupt (Session.engine session)
    (Some
       (fun () ->
         if Atomic.get srv.draining then Some "server shutting down"
         else None));
  Metrics.session_opened srv.metrics;
  Fun.protect
    ~finally:(fun () ->
      Metrics.session_closed srv.metrics;
      Mutex.lock srv.conn_lock;
      Hashtbl.remove srv.conns id;
      Mutex.unlock srv.conn_lock;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> session_loop srv fd session)

let accept_loop srv () =
  let continue = ref true in
  while !continue do
    match Unix.accept srv.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
      if Atomic.get srv.draining then begin
        (* Late connector during shutdown: answer once, then close. *)
        (try
           Protocol.write_frame fd
             (Protocol.render_response
                (Protocol.Closing "server is shutting down"))
         with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        Mutex.lock srv.conn_lock;
        let at_capacity =
          Hashtbl.length srv.conns >= srv.config.max_sessions
        in
        let id = srv.next_session in
        if not at_capacity then begin
          srv.next_session <- id + 1;
          Hashtbl.replace srv.conns id fd
        end;
        Mutex.unlock srv.conn_lock;
        if at_capacity then begin
          (try
             Protocol.write_frame fd
               (Protocol.render_response
                  (Protocol.Busy
                     (Printf.sprintf "session limit (%d) reached"
                        srv.config.max_sessions)))
           with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          let thread = Thread.create (fun () -> serve_connection srv id fd) () in
          Mutex.lock srv.conn_lock;
          srv.session_threads <- thread :: srv.session_threads;
          Mutex.unlock srv.conn_lock
        end
      end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(config = default_config) ?catalog () : t =
  (* A dead client mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let srv =
    {
      config;
      listen_fd;
      catalog = (match catalog with Some c -> c | None -> Catalog.create ());
      admission = Admission.create ~limit:config.max_inflight;
      metrics = Metrics.create ();
      pool = Parallel.get config.workers;
      statement_lock = Rwlock.create ();
      draining = Atomic.make false;
      accept_thread = None;
      conn_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      session_threads = [];
      next_session = 1;
      shutdown_done = (Mutex.create (), Condition.create (), ref false);
      on_shutdown_request = ignore;
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

(** Graceful shutdown: stop admitting, let in-flight loops abort at
    their next iteration boundary (interrupt probe), answer every
    waiting client, then close sockets, join threads and remove the
    socket file. Idempotent. *)
let shutdown srv =
  if not (Atomic.exchange srv.draining true) then begin
    (* Wake the accept loop: it is parked in [accept], so poke it with
       a throwaway connection (it answers CLOSING and closes), then
       close the listening socket to make further accepts fail. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX srv.config.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (match srv.accept_thread with
    | Some t ->
      Thread.join t;
      srv.accept_thread <- None
    | None -> ());
    (* Session threads drain on their own: in-flight statements abort
       at the next guard boundary and are answered with a Resource
       error; subsequent queries get CLOSING. Shut the read side of
       every live connection so sessions parked in [read_frame] (idle
       clients) wake up with EOF instead of blocking shutdown. *)
    Mutex.lock srv.conn_lock;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) srv.conns [] in
    let threads = srv.session_threads in
    srv.session_threads <- [];
    Mutex.unlock srv.conn_lock;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      fds;
    List.iter Thread.join threads;
    if Sys.file_exists srv.config.socket_path then
      Sys.remove srv.config.socket_path;
    let lock, cond, flag = srv.shutdown_done in
    Mutex.lock lock;
    flag := true;
    Condition.broadcast cond;
    Mutex.unlock lock
  end

(** Block until {!shutdown} has completed (from any thread). *)
let wait srv =
  let lock, cond, flag = srv.shutdown_done in
  Mutex.lock lock;
  while not !flag do
    Condition.wait cond lock
  done;
  Mutex.unlock lock

(* A SHUTDOWN request must not run [shutdown] on the session thread
   itself (it would join itself); hand it to a fresh thread. *)
let request_shutdown srv =
  ignore (Thread.create (fun () -> shutdown srv) ())

let start ?config ?catalog () =
  let srv = start ?config ?catalog () in
  srv.on_shutdown_request <- (fun () -> request_shutdown srv);
  srv

let with_server ?config ?catalog f =
  let srv = start ?config ?catalog () in
  Fun.protect ~finally:(fun () -> shutdown srv) (fun () -> f srv)

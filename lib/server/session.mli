(** One client session: a private engine whose catalog shares the
    server's base tables but owns its temps, so concurrent iterative
    CTEs cannot collide on temp names. *)

type t

val create :
  id:int ->
  options:Dbspinner_rewrite.Options.t ->
  shared_catalog:Dbspinner_storage.Catalog.t ->
  t

val id : t -> int
val engine : t -> Dbspinner.Engine.t

(** Run a [;]-separated script; the rendered results of every
    statement, concatenated in order.
    @raise Dbspinner.Errors.Error on failure. *)
val run_script : t -> string -> string

(** Apply [SET key value]; [Ok confirmation] or [Error usage]. *)
val set : t -> string -> string -> (string, string) result

(** The session's trace buffer as NDJSON ("" when tracing is off). *)
val trace_ndjson : t -> string

(** One client session: a private engine whose catalog shares the
    server's base tables but owns its temps, so concurrent iterative
    CTEs cannot collide on temp names. *)

type t

val create :
  id:int ->
  options:Dbspinner_rewrite.Options.t ->
  shared_catalog:Dbspinner_storage.Catalog.t ->
  t

val id : t -> int
val engine : t -> Dbspinner.Engine.t

(** Does this session participate in the server's cross-session plan
    cache? Toggled by [SET plan_cache on|off]; on by default. *)
val plan_cache_enabled : t -> bool

(** Pin the session's catalog view to an immutable snapshot: until
    {!unpin}, base-table reads resolve against the snapshot's frozen
    tables, so a read statement runs lock-free and sees a stable
    database regardless of concurrent commits. *)
val pin : t -> Dbspinner_storage.Catalog.snapshot -> unit

val unpin : t -> unit

(** Version of the currently pinned snapshot ([None] when unpinned). *)
val pinned_version : t -> int option

(** Run a [;]-separated script; the rendered results of every
    statement, concatenated in order.
    @raise Dbspinner.Errors.Error on failure. *)
val run_script : t -> string -> string

(** Apply [SET key value]; [Ok confirmation] or [Error usage]. *)
val set : t -> string -> string -> (string, string) result

(** The session's trace buffer as NDJSON ("" when tracing is off). *)
val trace_ndjson : t -> string

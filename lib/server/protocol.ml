(** Wire protocol for the DBSpinner server: length-prefixed text
    frames over a stream socket.

    A frame is [<decimal byte length>\n<payload>]. Length-prefixing
    (rather than newline-framing) lets SQL scripts and rendered result
    tables cross the wire verbatim, embedded newlines and all.

    Request payloads are [<VERB>] or [<VERB>\n<body>]; response
    payloads are [<STATUS>] or [<STATUS ...>\n<body>]. Both sides are
    plain text so a session is debuggable with a hex dump. *)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

(** Upper bound on an accepted frame; a malformed peer cannot make the
    server allocate unbounded memory. *)
let max_frame_bytes = 16 * 1024 * 1024

exception Protocol_error of string

(** Retry a syscall interrupted by a signal: the server handles
    SIGPIPE/shutdown signals, and a mid-[read] EINTR must not tear down
    a healthy session. *)
let rec eintr_safe f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_safe f

let really_read fd buf ofs len =
  let read = ref 0 in
  while !read < len do
    let n = eintr_safe (fun () -> Unix.read fd buf (ofs + !read) (len - !read)) in
    if n = 0 then raise End_of_file;
    read := !read + n
  done

let really_write fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + eintr_safe (fun () -> Unix.write fd buf !written (len - !written))
  done

let write_frame fd payload =
  really_write fd
    (Printf.sprintf "%d\n%s" (String.length payload) payload)

(** Write several frames with one [write]: a pipelining client streams
    its whole batch in a single syscall instead of N round-trips. *)
let write_frames fd payloads =
  let buf = Buffer.create 256 in
  List.iter
    (fun payload ->
      Buffer.add_string buf (string_of_int (String.length payload));
      Buffer.add_char buf '\n';
      Buffer.add_string buf payload)
    payloads;
  really_write fd (Buffer.contents buf)

(** Read one frame; [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on a malformed or oversized header.
    @raise End_of_file when the peer dies mid-frame. *)
let read_frame fd : string option =
  let header = Buffer.create 12 in
  let byte = Bytes.create 1 in
  let rec read_header () =
    match eintr_safe (fun () -> Unix.read fd byte 0 1) with
    | 0 ->
      if Buffer.length header = 0 then None
      else raise End_of_file
    | _ -> (
      match Bytes.get byte 0 with
      | '\n' -> Some (Buffer.contents header)
      | c when c >= '0' && c <= '9' ->
        if Buffer.length header > 9 then
          raise (Protocol_error "frame header too long");
        Buffer.add_char header c;
        read_header ()
      | c ->
        raise
          (Protocol_error
             (Printf.sprintf "invalid byte %C in frame header" c)))
  in
  match read_header () with
  | None -> None
  | Some digits ->
    let len =
      match int_of_string_opt digits with
      | Some n when n >= 0 && n <= max_frame_bytes -> n
      | Some n ->
        raise
          (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" n))
      | None -> raise (Protocol_error "empty frame header")
    in
    let buf = Bytes.create len in
    really_read fd buf 0 len;
    Some (Bytes.to_string buf)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type request =
  | Query of string  (** a [;]-separated SQL script *)
  | Set of string * string  (** session option: key, value *)
  | Stats  (** server-wide counters *)
  | Trace  (** this session's trace buffer as NDJSON *)
  | Ping
  | Quit  (** end this session *)
  | Shutdown  (** initiate graceful server shutdown *)

let split_head payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    ( String.sub payload 0 i,
      String.sub payload (i + 1) (String.length payload - i - 1) )

let render_request = function
  | Query sql -> "QUERY\n" ^ sql
  | Set (k, v) -> Printf.sprintf "SET %s %s" k v
  | Stats -> "STATS"
  | Trace -> "TRACE"
  | Ping -> "PING"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"

let parse_request payload : (request, string) result =
  let head, body = split_head payload in
  match String.split_on_char ' ' (String.trim head) with
  | [ "QUERY" ] ->
    if String.trim body = "" then Error "QUERY requires a SQL body"
    else Ok (Query body)
  | "SET" :: key :: rest when key <> "" && rest <> [] ->
    Ok (Set (key, String.concat " " rest))
  | [ "STATS" ] -> Ok Stats
  | [ "TRACE" ] -> Ok Trace
  | [ "PING" ] -> Ok Ping
  | [ "QUIT" ] -> Ok Quit
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | verb :: _ -> Error (Printf.sprintf "unknown request verb %s" verb)
  | [] -> Error "empty request"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

type response =
  | Ok_result of string  (** rendered statement results *)
  | Err of string * string  (** error stage, message *)
  | Busy of string  (** admission control rejected the query *)
  | Closing of string  (** server is draining; no new queries *)
  | Pong
  | Bye

let render_response = function
  | Ok_result body -> "OK\n" ^ body
  | Err (stage, msg) -> Printf.sprintf "ERR %s\n%s" stage msg
  | Busy msg -> "BUSY\n" ^ msg
  | Closing msg -> "CLOSING\n" ^ msg
  | Pong -> "PONG"
  | Bye -> "BYE"

let parse_response payload : response =
  let head, body = split_head payload in
  match String.split_on_char ' ' (String.trim head) with
  | [ "OK" ] -> Ok_result body
  | "ERR" :: stage -> Err (String.concat " " stage, body)
  | [ "BUSY" ] -> Busy body
  | [ "CLOSING" ] -> Closing body
  | [ "PONG" ] -> Pong
  | [ "BYE" ] -> Bye
  | _ -> raise (Protocol_error ("unknown response status: " ^ head))

(* ------------------------------------------------------------------ *)
(* Request ids (pipelining)                                            *)

(** A request payload may carry a client-chosen id as a [#<id>\n]
    prefix; the response to it echoes the same prefix. The server
    answers strictly in request order per session, so a client can
    stream a whole batch of frames and then collect the responses,
    paying one round-trip for N statements instead of N. *)
let with_id id payload =
  if id < 0 then invalid_arg "Protocol.with_id: negative id";
  Printf.sprintf "#%d\n%s" id payload

(** Split a [#<id>\n] prefix off a payload; [(None, payload)] when the
    payload is untagged (the pre-pipelining wire format). *)
let strip_id payload =
  let n = String.length payload in
  if n = 0 || payload.[0] <> '#' then (None, payload)
  else
    match String.index_opt payload '\n' with
    | None -> (None, payload)
    | Some nl -> (
      match int_of_string_opt (String.sub payload 1 (nl - 1)) with
      | Some id when id >= 0 ->
        (Some id, String.sub payload (nl + 1) (n - nl - 1))
      | _ -> (None, payload))

(* ------------------------------------------------------------------ *)
(* Statement classification (admission / locking)                      *)

(** Split a script into statement fragments at top-level [;] only:
    semicolons inside single-quoted strings (with [''] escapes),
    double-quoted identifiers, [--] line comments and [/* */] block
    comments do not split. Comment bodies are dropped from the
    fragments so a leading comment cannot masquerade as a statement's
    first word. An unterminated string or comment swallows the rest of
    the script into the current fragment — the classifier below treats
    anything unrecognized as a write, so malformed input stays on the
    conservative path. *)
let split_statements sql =
  let n = String.length sql in
  let fragments = ref [] in
  let buf = Buffer.create 64 in
  let flush () =
    fragments := Buffer.contents buf :: !fragments;
    Buffer.clear buf
  in
  let i = ref 0 in
  while !i < n do
    let c = sql.[!i] in
    if c = '-' && !i + 1 < n && sql.[!i + 1] = '-' then
      (* Line comment: skip to (but not past) the newline, which then
         lands in the fragment as ordinary whitespace. *)
      while !i < n && sql.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && !i + 1 < n && sql.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if sql.[!i] = '*' && !i + 1 < n && sql.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else incr i
      done;
      (* Keep the tokens on either side of a stripped comment apart. *)
      Buffer.add_char buf ' '
    end
    else if c = '\'' || c = '"' then begin
      (* Copy the quoted literal/identifier verbatim; a doubled quote
         is an escape, not a terminator. *)
      Buffer.add_char buf c;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        Buffer.add_char buf sql.[!i];
        if sql.[!i] = c then
          if !i + 1 < n && sql.[!i + 1] = c then begin
            Buffer.add_char buf c;
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else incr i
      done
    end
    else if c = ';' then begin
      flush ();
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  flush ();
  List.rev !fragments

(** True when every non-empty statement of [sql] starts with a
    read-only verb, so the script can run lock-free against a pinned
    MVCC snapshot. Statement splitting respects string literals and
    comments (see {!split_statements}); conservative: anything
    unrecognized counts as a write. *)
let read_only sql =
  let fragment_read_only frag =
    let frag = String.trim frag in
    if frag = "" then true
    else
      let word =
        let n = String.length frag in
        let rec stop i =
          if i >= n then i
          else
            match frag.[i] with
            | 'a' .. 'z' | 'A' .. 'Z' -> stop (i + 1)
            | _ -> i
        in
        String.lowercase_ascii (String.sub frag 0 (stop 0))
      in
      match word with
      | "select" | "with" | "explain" | "values" -> true
      | _ -> false
  in
  List.for_all fragment_read_only (split_statements sql)

(** Admission control: a bounded count of in-flight queries.

    The server rejects (rather than queues) work beyond the limit — a
    client immediately gets [BUSY] and can back off, instead of
    parking on an invisible queue while its deadline burns. Iterative
    queries run for many iterations, so a queue would just convert
    overload into timeout storms. *)

type t = {
  limit : int;
  lock : Mutex.t;
  mutable inflight : int;
  mutable rejected : int;
}

let create ~limit = { limit = max 1 limit; lock = Mutex.create (); inflight = 0; rejected = 0 }

(** Try to claim a slot; [false] (and a rejection recorded) when all
    slots are taken. *)
let try_acquire t =
  Mutex.lock t.lock;
  let ok = t.inflight < t.limit in
  if ok then t.inflight <- t.inflight + 1
  else t.rejected <- t.rejected + 1;
  Mutex.unlock t.lock;
  ok

let release t =
  Mutex.lock t.lock;
  t.inflight <- max 0 (t.inflight - 1);
  Mutex.unlock t.lock

let inflight t =
  Mutex.lock t.lock;
  let n = t.inflight in
  Mutex.unlock t.lock;
  n

let rejected t =
  Mutex.lock t.lock;
  let n = t.rejected in
  Mutex.unlock t.lock;
  n

let limit t = t.limit

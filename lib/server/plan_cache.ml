(** Cross-session prepared-statement / plan cache.

    Compiled programs (parsed + bound + rewritten, including
    pre-evaluated scalar subqueries) are memoized under
    [(normalized SQL text, catalog snapshot version, options
    fingerprint)]. The snapshot version is in the key, so a cached
    plan can never be reused across a committed base-table change —
    stale reuse is impossible by construction, mirroring the executor
    cache's generation-number discipline. Entries for superseded
    versions are swept on every publish, keeping the cache bounded by
    the live statement working set.

    Programs are immutable plan values, so one cached program is
    safely shared by any number of concurrently executing sessions. *)

module Program = Dbspinner_plan.Program
module Options = Dbspinner_rewrite.Options

type key = {
  sql : string;  (** normalized statement text (pretty-printed AST) *)
  version : int;  (** catalog snapshot version the plan was built against *)
  opts : string;  (** fingerprint of the compile-relevant options *)
}

type t = {
  lock : Mutex.t;
  entries : (key, Program.t) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 512) () =
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    capacity = max 1 capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Fingerprint of the options that affect compilation (rewrites and
    loop bounds). Runtime-only knobs — deadlines, budgets, parallelism,
    executor/columnar toggles — deliberately excluded: they change how
    a program runs, not what program is built, so sessions differing
    only in them share plans. *)
let fingerprint (o : Options.t) =
  Printf.sprintf "%b%b%b%b%b%b%b%b:%d:%d" o.Options.use_rename
    o.Options.use_common_result o.Options.use_pushdown
    o.Options.use_constant_folding o.Options.use_outer_to_inner
    o.Options.use_delta o.Options.use_rule_engine
    o.Options.cost_based_rewrites o.Options.max_recursion
    o.Options.max_iterations_guard

(** Drop every entry built against a version older than [version].
    Readers still pinned to an older snapshot simply recompile on
    their next statement — a perf ripple, never a correctness one. *)
let sweep_locked t ~version =
  let stale =
    Hashtbl.fold
      (fun k _ acc -> if k.version < version then k :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale;
  t.evictions <- t.evictions + List.length stale

let sweep t ~version = locked t (fun () -> sweep_locked t ~version)

(** Look up the plan for [(sql, version, opts)], compiling (outside
    the cache lock — compilation may itself execute scalar subqueries)
    and inserting on a miss. Two sessions racing on the same cold key
    both compile; last insert wins, which is harmless because both
    compiled against the same immutable snapshot version. *)
let find_or_compile t ~sql ~version ~opts compile =
  let key = { sql; version; opts } in
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some program ->
          t.hits <- t.hits + 1;
          Some program
        | None ->
          t.misses <- t.misses + 1;
          None)
  with
  | Some program -> program
  | None ->
    let program = compile () in
    locked t (fun () ->
        if Hashtbl.length t.entries >= t.capacity then begin
          (* Full: stale versions go first; if the working set itself
             exceeds capacity, drop everything rather than thrash. *)
          sweep_locked t ~version;
          if Hashtbl.length t.entries >= t.capacity then begin
            t.evictions <- t.evictions + Hashtbl.length t.entries;
            Hashtbl.reset t.entries
          end
        end;
        Hashtbl.replace t.entries key program);
    program

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let size t = locked t (fun () -> Hashtbl.length t.entries)

(** Admission control: a bounded count of in-flight queries; work
    beyond the limit is rejected with [BUSY], never queued. *)

type t

val create : limit:int -> t

(** Claim a slot; [false] (and a rejection recorded) when full. *)
val try_acquire : t -> bool

val release : t -> unit
val inflight : t -> int
val rejected : t -> int
val limit : t -> int

(** Blocking client for the DBSpinner server protocol: one connected
    socket, synchronous request/response — plus a pipelined batch mode
    that streams N tagged requests before reading the N responses.
    Used by the CLI's [client] subcommand, the server tests and the
    benchmark harness. *)

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  jitter : Random.State.t Lazy.t;
      (** backoff jitter source; lazy so clients that never retry never
          pay for seeding *)
}

(** [connect ?seed ~socket_path] — [seed] makes the BUSY-retry backoff
    jitter deterministic (benchmarks and tests that must be
    reproducible run-to-run); by default it is self-seeded. *)
let connect ?seed ~socket_path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let jitter =
    match seed with
    | Some s -> lazy (Random.State.make [| s |])
    | None -> lazy (Random.State.make_self_init ())
  in
  { fd; closed = false; jitter }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** Send one request and wait for its response.
    @raise End_of_file when the server closes the connection first. *)
let request t (req : Protocol.request) : Protocol.response =
  Protocol.write_frame t.fd (Protocol.render_request req);
  match Protocol.read_frame t.fd with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

(** Run a SQL script; [Ok rendered_results] or [Error (status, msg)]
    where status is the response's wire status ([ERR <stage>], [BUSY],
    [CLOSING]).

    [retries] (default 0) re-sends the script after a [BUSY] rejection
    up to that many times, sleeping a jittered exponential backoff
    starting at [backoff_ms] (default 5). Only [BUSY] is retried: it is
    the one response that promises the server did not execute anything.
    The final rejection surfaces unchanged. *)
let query ?(retries = 0) ?(backoff_ms = 5.0) t sql :
    (string, string * string) result =
  let rec go attempt =
    match request t (Protocol.Query sql) with
    | Protocol.Ok_result body -> Ok body
    | Protocol.Err (stage, msg) -> Error ("ERR " ^ stage, msg)
    | Protocol.Busy _ when attempt < retries ->
      let jitter = 0.5 +. Random.State.float (Lazy.force t.jitter) 1.0 in
      (* Cap the doubling at 250ms so a long retry budget degrades into
         steady polling instead of second-long sleeps. *)
      let delay_s =
        Float.min 0.25
          (backoff_ms *. (2.0 ** float_of_int (min attempt 16)) /. 1000.0)
        *. jitter
      in
      Thread.delay delay_s;
      go (attempt + 1)
    | Protocol.Busy msg -> Error ("BUSY", msg)
    | Protocol.Closing msg -> Error ("CLOSING", msg)
    | Protocol.Pong | Protocol.Bye -> Error ("protocol", "unexpected response")
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Pipelining                                                          *)

(** Send a whole batch of requests in one write, then collect the
    responses in order. Each request is tagged [#i] (its index in
    [reqs]); the server answers in request order and echoes each tag,
    and this function verifies the echo — a hole or reorder raises
    {!Protocol.Protocol_error} rather than silently misattributing a
    response. One round-trip for N requests instead of N.
    @raise End_of_file when the server closes mid-batch. *)
let pipeline t (reqs : Protocol.request list) : Protocol.response list =
  let payloads =
    List.mapi (fun i req -> Protocol.with_id i (Protocol.render_request req)) reqs
  in
  Protocol.write_frames t.fd payloads;
  List.mapi
    (fun i _ ->
      match Protocol.read_frame t.fd with
      | None -> raise End_of_file
      | Some payload -> (
        match Protocol.strip_id payload with
        | Some id, body when id = i -> Protocol.parse_response body
        | Some id, _ ->
          raise
            (Protocol.Protocol_error
               (Printf.sprintf "pipeline: expected response #%d, got #%d" i id))
        | None, _ ->
          raise
            (Protocol.Protocol_error
               (Printf.sprintf "pipeline: response #%d lost its tag" i))))
    reqs

(** Pipeline a list of SQL scripts; per-script results in order, with
    the same [Ok]/[Error] shape as {!query} (no BUSY retry — a batch is
    all-or-nothing admission-wise, each script admits separately). *)
let pipeline_queries t (sqls : string list) :
    (string, string * string) result list =
  pipeline t (List.map (fun sql -> Protocol.Query sql) sqls)
  |> List.map (function
       | Protocol.Ok_result body -> Ok body
       | Protocol.Err (stage, msg) -> Error ("ERR " ^ stage, msg)
       | Protocol.Busy msg -> Error ("BUSY", msg)
       | Protocol.Closing msg -> Error ("CLOSING", msg)
       | Protocol.Pong | Protocol.Bye ->
         Error ("protocol", "unexpected response"))

let set t key value : (string, string) result =
  match request t (Protocol.Set (key, value)) with
  | Protocol.Ok_result body -> Ok body
  | Protocol.Err (_, msg) -> Error msg
  | _ -> Error "unexpected response"

(** Server counters as an association list (see {!Metrics.render}). *)
let stats t : (string * string) list =
  match request t Protocol.Stats with
  | Protocol.Ok_result body -> Metrics.parse body
  | _ -> []

let ping t =
  match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

(** End the session ([QUIT]) and close the socket. *)
let quit t =
  (try ignore (request t Protocol.Quit) with _ -> ());
  close t

(** Ask the server to shut down gracefully, then close the socket. *)
let shutdown_server t =
  (try ignore (request t Protocol.Shutdown) with _ -> ());
  close t

(** [with_client ~socket_path f] connects, runs [f] and always closes
    the socket. *)
let with_client ?seed ~socket_path f =
  let t = connect ?seed ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(** Blocking client for the DBSpinner server protocol: one connected
    socket, synchronous request/response. Used by the CLI's [client]
    subcommand, the server tests and the benchmark harness. *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** Send one request and wait for its response.
    @raise End_of_file when the server closes the connection first. *)
let request t (req : Protocol.request) : Protocol.response =
  Protocol.write_frame t.fd (Protocol.render_request req);
  match Protocol.read_frame t.fd with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

(** Run a SQL script; [Ok rendered_results] or [Error (status, msg)]
    where status is the response's wire status ([ERR <stage>], [BUSY],
    [CLOSING]). *)
let query t sql : (string, string * string) result =
  match request t (Protocol.Query sql) with
  | Protocol.Ok_result body -> Ok body
  | Protocol.Err (stage, msg) -> Error ("ERR " ^ stage, msg)
  | Protocol.Busy msg -> Error ("BUSY", msg)
  | Protocol.Closing msg -> Error ("CLOSING", msg)
  | Protocol.Pong | Protocol.Bye -> Error ("protocol", "unexpected response")

let set t key value : (string, string) result =
  match request t (Protocol.Set (key, value)) with
  | Protocol.Ok_result body -> Ok body
  | Protocol.Err (_, msg) -> Error msg
  | _ -> Error "unexpected response"

(** Server counters as an association list (see {!Metrics.render}). *)
let stats t : (string * string) list =
  match request t Protocol.Stats with
  | Protocol.Ok_result body -> Metrics.parse body
  | _ -> []

let ping t =
  match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

(** End the session ([QUIT]) and close the socket. *)
let quit t =
  (try ignore (request t Protocol.Quit) with _ -> ());
  close t

(** Ask the server to shut down gracefully, then close the socket. *)
let shutdown_server t =
  (try ignore (request t Protocol.Shutdown) with _ -> ());
  close t

(** [with_client ~socket_path f] connects, runs [f] and always closes
    the socket. *)
let with_client ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(** Blocking client for the DBSpinner server protocol: one connected
    socket, synchronous request/response. Used by the CLI's [client]
    subcommand, the server tests and the benchmark harness. *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** Send one request and wait for its response.
    @raise End_of_file when the server closes the connection first. *)
let request t (req : Protocol.request) : Protocol.response =
  Protocol.write_frame t.fd (Protocol.render_request req);
  match Protocol.read_frame t.fd with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

(* Jitter source for backoff; lazy so clients that never retry never
   pay for seeding. *)
let jitter_state = lazy (Random.State.make_self_init ())

(** Run a SQL script; [Ok rendered_results] or [Error (status, msg)]
    where status is the response's wire status ([ERR <stage>], [BUSY],
    [CLOSING]).

    [retries] (default 0) re-sends the script after a [BUSY] rejection
    up to that many times, sleeping a jittered exponential backoff
    starting at [backoff_ms] (default 5). Only [BUSY] is retried: it is
    the one response that promises the server did not execute anything.
    The final rejection surfaces unchanged. *)
let query ?(retries = 0) ?(backoff_ms = 5.0) t sql :
    (string, string * string) result =
  let rec go attempt =
    match request t (Protocol.Query sql) with
    | Protocol.Ok_result body -> Ok body
    | Protocol.Err (stage, msg) -> Error ("ERR " ^ stage, msg)
    | Protocol.Busy _ when attempt < retries ->
      let jitter = 0.5 +. Random.State.float (Lazy.force jitter_state) 1.0 in
      (* Cap the doubling at 250ms so a long retry budget degrades into
         steady polling instead of second-long sleeps. *)
      let delay_s =
        Float.min 0.25
          (backoff_ms *. (2.0 ** float_of_int (min attempt 16)) /. 1000.0)
        *. jitter
      in
      Thread.delay delay_s;
      go (attempt + 1)
    | Protocol.Busy msg -> Error ("BUSY", msg)
    | Protocol.Closing msg -> Error ("CLOSING", msg)
    | Protocol.Pong | Protocol.Bye -> Error ("protocol", "unexpected response")
  in
  go 0

let set t key value : (string, string) result =
  match request t (Protocol.Set (key, value)) with
  | Protocol.Ok_result body -> Ok body
  | Protocol.Err (_, msg) -> Error msg
  | _ -> Error "unexpected response"

(** Server counters as an association list (see {!Metrics.render}). *)
let stats t : (string * string) list =
  match request t Protocol.Stats with
  | Protocol.Ok_result body -> Metrics.parse body
  | _ -> []

let ping t =
  match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

(** End the session ([QUIT]) and close the socket. *)
let quit t =
  (try ignore (request t Protocol.Quit) with _ -> ());
  close t

(** Ask the server to shut down gracefully, then close the socket. *)
let shutdown_server t =
  (try ignore (request t Protocol.Shutdown) with _ -> ());
  close t

(** [with_client ~socket_path f] connects, runs [f] and always closes
    the socket. *)
let with_client ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(** Cross-session prepared-statement / plan cache: compiled programs
    memoized under (normalized SQL, catalog snapshot version, options
    fingerprint). The snapshot version in the key makes stale reuse
    impossible by construction. Thread-safe; compilation runs outside
    the cache lock. *)

type t

val create : ?capacity:int -> unit -> t

(** Fingerprint of the compile-relevant options (rewrites and loop
    bounds); sessions differing only in runtime knobs share plans. *)
val fingerprint : Dbspinner_rewrite.Options.t -> string

(** [find_or_compile t ~sql ~version ~opts compile] returns the cached
    program for the key, or runs [compile] and caches its result. *)
val find_or_compile :
  t ->
  sql:string ->
  version:int ->
  opts:string ->
  (unit -> Dbspinner_plan.Program.t) ->
  Dbspinner_plan.Program.t

(** Drop entries built against versions older than [version] (called
    after each publish). *)
val sweep : t -> version:int -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val size : t -> int

(** Blocking client: one connected socket, synchronous
    request/response, plus a pipelined batch mode. *)

type t

(** [connect ?seed ~socket_path ()] — [seed] makes BUSY-retry backoff
    jitter deterministic (reproducible benchmarks/tests); self-seeded
    by default. *)
val connect : ?seed:int -> socket_path:string -> unit -> t

val close : t -> unit

(** Send one request, wait for its response.
    @raise End_of_file when the server closes the connection first. *)
val request : t -> Protocol.request -> Protocol.response

(** Run a SQL script; [Ok rendered_results] or [Error (status, msg)]
    with status one of [ERR <stage>], [BUSY], [CLOSING].

    [retries] (default 0) re-sends after a [BUSY] rejection up to that
    many times with jittered exponential backoff starting at
    [backoff_ms] (default 5). Only [BUSY] is retried — the one response
    that guarantees the server executed nothing. *)
val query :
  ?retries:int ->
  ?backoff_ms:float ->
  t ->
  string ->
  (string, string * string) result

(** Send a whole batch of requests in one write, then collect the
    responses in order (one round-trip for N requests). Request ids are
    verified against the server's echo.
    @raise Protocol.Protocol_error on a missing or reordered tag.
    @raise End_of_file when the server closes mid-batch. *)
val pipeline : t -> Protocol.request list -> Protocol.response list

(** Pipeline SQL scripts; per-script results in order, same shape as
    {!query} (no BUSY retry). *)
val pipeline_queries : t -> string list -> (string, string * string) result list

val set : t -> string -> string -> (string, string) result

(** Server counters as an association list. *)
val stats : t -> (string * string) list

val ping : t -> bool

(** End the session and close the socket. *)
val quit : t -> unit

(** Ask the server to shut down gracefully, then close the socket. *)
val shutdown_server : t -> unit

val with_client : ?seed:int -> socket_path:string -> (t -> 'a) -> 'a

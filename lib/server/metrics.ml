(** Server-wide counters and a bounded latency reservoir for the
    [STATS] command. All entry points are thread-safe; sessions update
    from their own threads and [STATS] renders a consistent snapshot. *)

let reservoir_capacity = 4096

type t = {
  lock : Mutex.t;
  mutable sessions_total : int;
  mutable sessions_active : int;
  mutable queries_ok : int;
  mutable queries_err : int;
  mutable queries_read : int;  (** completed on the lock-free read path *)
  mutable queries_write : int;
  (* Latencies (seconds) of the most recent completed queries, a ring
     of [reservoir_capacity]: recent percentiles, O(1) memory. *)
  latencies : float array;
  mutable latency_count : int;  (** total recorded, monotonically *)
}

let create () =
  {
    lock = Mutex.create ();
    sessions_total = 0;
    sessions_active = 0;
    queries_ok = 0;
    queries_err = 0;
    queries_read = 0;
    queries_write = 0;
    latencies = Array.make reservoir_capacity 0.0;
    latency_count = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let session_opened t =
  locked t (fun () ->
      t.sessions_total <- t.sessions_total + 1;
      t.sessions_active <- t.sessions_active + 1)

let session_closed t =
  locked t (fun () -> t.sessions_active <- max 0 (t.sessions_active - 1))

let query_done ?(read = false) t ~ok ~seconds =
  locked t (fun () ->
      if ok then t.queries_ok <- t.queries_ok + 1
      else t.queries_err <- t.queries_err + 1;
      if read then t.queries_read <- t.queries_read + 1
      else t.queries_write <- t.queries_write + 1;
      t.latencies.(t.latency_count mod reservoir_capacity) <- seconds;
      t.latency_count <- t.latency_count + 1)

(** Nearest-rank percentile over the retained reservoir, in seconds.
    Total on its edge cases: an empty reservoir yields 0.0 (never an
    out-of-bounds read), a single sample is every percentile of itself,
    and [p] is clamped to [0, 100] with NaN treated as 0 (NaN would
    otherwise flow through [int_of_float], whose result is
    unspecified). *)
let percentile_locked t p =
  let n = min t.latency_count reservoir_capacity in
  if n = 0 then 0.0
  else begin
    let p = if Float.is_nan p then 0.0 else Float.max 0.0 (Float.min 100.0 p) in
    let sorted = Array.sub t.latencies 0 n in
    Array.sort Float.compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(** Public, locking variant of {!percentile_locked}. *)
let percentile t p = locked t (fun () -> percentile_locked t p)

type snapshot = {
  sessions_total : int;
  sessions_active : int;
  queries_ok : int;
  queries_err : int;
  queries_read : int;
  queries_write : int;
  p50_seconds : float;
  p99_seconds : float;
}

let snapshot t =
  locked t (fun () ->
      {
        sessions_total = t.sessions_total;
        sessions_active = t.sessions_active;
        queries_ok = t.queries_ok;
        queries_err = t.queries_err;
        queries_read = t.queries_read;
        queries_write = t.queries_write;
        p50_seconds = percentile_locked t 50.0;
        p99_seconds = percentile_locked t 99.0;
      })

(** Render the [STATS] body: one [key value] pair per line, stable
    keys, machine-parseable. [extra] appends subsystem counters (e.g.
    durability) without this module knowing their names. *)
let render ?(extra = []) t ~(admission : Admission.t) ~draining =
  let s = snapshot t in
  String.concat "\n"
    ([
       Printf.sprintf "sessions_total %d" s.sessions_total;
       Printf.sprintf "sessions_active %d" s.sessions_active;
       Printf.sprintf "queries_ok %d" s.queries_ok;
       Printf.sprintf "queries_err %d" s.queries_err;
       Printf.sprintf "queries_read %d" s.queries_read;
       Printf.sprintf "queries_write %d" s.queries_write;
       Printf.sprintf "rejected %d" (Admission.rejected admission);
       Printf.sprintf "inflight %d" (Admission.inflight admission);
       Printf.sprintf "max_inflight %d" (Admission.limit admission);
       Printf.sprintf "p50_ms %.3f" (s.p50_seconds *. 1000.0);
       Printf.sprintf "p99_ms %.3f" (s.p99_seconds *. 1000.0);
       Printf.sprintf "draining %b" draining;
     ]
    @ List.map (fun (k, v) -> Printf.sprintf "%s %s" k v) extra)

(** Parse a {!render}ed body back into an association list (client /
    test convenience). *)
let parse body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | Some i ->
           Some
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         | None -> None)

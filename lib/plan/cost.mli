(** Cost and cardinality estimation, including the paper's §IX future
    work: iteration-count estimation for optimizer costing. The model
    compares rewrites relatively; it does not predict wall time. *)

(** Source of base-table / temp cardinalities. *)
type statistics = {
  cardinality_of : string -> int option;
}

type estimate = {
  rows : float;  (** estimated output cardinality *)
  cost : float;  (** estimated total work, arbitrary units *)
}

val plan : statistics -> Logical.t -> estimate

(** Estimated iteration count for a termination condition given the
    CTE's estimated cardinality: Metadata counts are exact, UPDATES
    divides the budget by the expected per-iteration update volume,
    Delta/Data use a convergence heuristic logarithmic in the
    working-set size. *)
val estimate_iterations : cte_rows:float -> Program.termination -> float

(** Selectivity of a (possibly compound) predicate: conjuncts multiply
    — equality conjuncts contribute the equality constant, everything
    else the default. *)
val pred_selectivity : Bound_expr.t -> float

(** Clamp an estimated row count to a sane [0, max_int] cardinality:
    NaN and non-positive estimates collapse to 0, overflow saturates. *)
val cardinality_of_rows : float -> int

type loop_estimate = {
  body_cost : float;  (** one iteration of this loop's body *)
  loop_iterations : float;
}

type program_estimate = {
  setup_cost : float;  (** work outside any loop *)
  per_iteration_cost : float;  (** first loop's body (0 without loops) *)
  iterations : float;  (** first loop's estimate (1 without loops) *)
  loops : loop_estimate list;  (** every loop, in program order *)
  total_cost : float;  (** setup + Σ body × iterations over all loops *)
}

(** Estimate a full step program; each loop's body steps are charged
    per that loop's own estimated iteration count, and materialized
    temp cardinalities propagate (clamped to [0, max_int]) to later
    steps. *)
val program : statistics -> Program.t -> program_estimate

val pp_program_estimate : Format.formatter -> program_estimate -> unit

(** Textual rendering of logical plans and step programs (the engine's
    EXPLAIN output). The program rendering matches the paper's Table I
    style: numbered steps with loop back-edges spelled out. *)

module Schema = Dbspinner_storage.Schema

let join_kind = function
  | Logical.Inner -> "Inner"
  | Logical.Left_outer -> "LeftOuter"
  | Logical.Right_outer -> "RightOuter"
  | Logical.Full_outer -> "FullOuter"
  | Logical.Cross -> "Cross"

let agg_to_string (a : Logical.agg) =
  let name = Dbspinner_sql.Sql_pretty.agg_name a.agg_kind in
  match a.agg_kind with
  | Dbspinner_sql.Ast.Count_star -> "COUNT(*)"
  | _ ->
    Printf.sprintf "%s(%s%s)" name
      (if a.agg_distinct then "DISTINCT " else "")
      (Bound_expr.to_string a.agg_arg)

let rec plan_lines indent (t : Logical.t) acc =
  let pad = String.make (indent * 2) ' ' in
  let line s rest = (pad ^ s) :: rest in
  match t with
  | Logical.L_scan { name; _ } -> line (Printf.sprintf "Scan %s" name) acc
  | Logical.L_values rel ->
    line
      (Printf.sprintf "Values [%d rows]" (Dbspinner_storage.Relation.cardinality rel))
      acc
  | Logical.L_filter { pred; input } ->
    line
      (Printf.sprintf "Filter %s" (Bound_expr.to_string pred))
      (plan_lines (indent + 1) input acc)
  | Logical.L_project { exprs; input } ->
    let items =
      List.map
        (fun (e, n) -> Printf.sprintf "%s AS %s" (Bound_expr.to_string e) n)
        exprs
    in
    line
      (Printf.sprintf "Project [%s]" (String.concat ", " items))
      (plan_lines (indent + 1) input acc)
  | Logical.L_join { kind; cond; left; right; _ } ->
    let cond_s =
      match cond with
      | None -> ""
      | Some c -> " ON " ^ Bound_expr.to_string c
    in
    line
      (Printf.sprintf "%sJoin%s" (join_kind kind) cond_s)
      (plan_lines (indent + 1) left (plan_lines (indent + 1) right acc))
  | Logical.L_aggregate { keys; aggs; input; _ } ->
    let keys_s = List.map Bound_expr.to_string keys in
    let aggs_s = List.map agg_to_string aggs in
    line
      (Printf.sprintf "Aggregate keys=[%s] aggs=[%s]"
         (String.concat ", " keys_s) (String.concat ", " aggs_s))
      (plan_lines (indent + 1) input acc)
  | Logical.L_distinct input ->
    line "Distinct" (plan_lines (indent + 1) input acc)
  | Logical.L_sort { keys; input } ->
    let keys_s =
      List.map
        (fun (e, desc) ->
          Bound_expr.to_string e ^ if desc then " DESC" else " ASC")
        keys
    in
    line
      (Printf.sprintf "Sort [%s]" (String.concat ", " keys_s))
      (plan_lines (indent + 1) input acc)
  | Logical.L_limit (n, input) ->
    line (Printf.sprintf "Limit %d" n) (plan_lines (indent + 1) input acc)
  | Logical.L_offset (n, input) ->
    line (Printf.sprintf "Offset %d" n) (plan_lines (indent + 1) input acc)
  | Logical.L_union { all; left; right } ->
    line
      (if all then "UnionAll" else "Union")
      (plan_lines (indent + 1) left (plan_lines (indent + 1) right acc))
  | Logical.L_intersect { all; left; right } ->
    line
      (if all then "IntersectAll" else "Intersect")
      (plan_lines (indent + 1) left (plan_lines (indent + 1) right acc))
  | Logical.L_except { all; left; right } ->
    line
      (if all then "ExceptAll" else "Except")
      (plan_lines (indent + 1) left (plan_lines (indent + 1) right acc))
  | Logical.L_subquery_filter { anti; key; input; sub } ->
    let label =
      match key, anti with
      | Some k, false -> Printf.sprintf "SemiJoin (IN %s)" (Bound_expr.to_string k)
      | Some k, true -> Printf.sprintf "AntiJoin (NOT IN %s)" (Bound_expr.to_string k)
      | None, false -> "SemiJoin (EXISTS)"
      | None, true -> "AntiJoin (NOT EXISTS)"
    in
    line label (plan_lines (indent + 1) input (plan_lines (indent + 1) sub acc))

let plan_to_string t = String.concat "\n" (plan_lines 0 t [])

let step_to_lines idx (s : Program.step) =
  let head = Printf.sprintf "%2d. " (idx + 1) in
  match s with
  | Program.Materialize { target; plan } ->
    (head ^ Printf.sprintf "Materialize %s:" target)
    :: List.map (fun l -> "      " ^ l) (plan_lines 0 plan [])
  | Program.Delta_materialize { target; restricted_plan; affected_plans; _ } ->
    (head
    ^ Printf.sprintf "DeltaMaterialize %s (%d affected-key plan%s):" target
        (List.length affected_plans)
        (if List.length affected_plans = 1 then "" else "s"))
    :: List.map (fun l -> "      " ^ l) (plan_lines 0 restricted_plan [])
  | Program.Rename { from_; into } ->
    [ head ^ Printf.sprintf "Rename %s -> %s" from_ into ]
  | Program.Drop_temp name -> [ head ^ Printf.sprintf "Drop %s" name ]
  | Program.Assert_unique_key { temp; key_idx } ->
    [ head ^ Printf.sprintf "AssertUniqueKey %s (column %d)" temp key_idx ]
  | Program.Init_loop { loop_id; termination; cte; _ } ->
    [
      head
      ^ Printf.sprintf "InitLoop #%d over %s <<%s>>" loop_id cte
          (Program.termination_to_string termination);
    ]
  | Program.Loop_end { loop_id; body_start } ->
    [
      head
      ^ Printf.sprintf "LoopEnd #%d: go to step %d while continue" loop_id
          (body_start + 1);
    ]
  | Program.Snapshot { loop_id } ->
    [ head ^ Printf.sprintf "Snapshot #%d" loop_id ]
  | Program.Recursive_cte { name; union_all; _ } ->
    [
      head
      ^ Printf.sprintf "RecursiveCTE %s (UNION%s, semi-naive)" name
          (if union_all then " ALL" else "");
    ]
  | Program.Return plan ->
    (head ^ "Return:")
    :: List.map (fun l -> "      " ^ l) (plan_lines 0 plan [])

let program_to_string (p : Program.t) =
  let lines =
    Array.to_list (Array.mapi step_to_lines (Program.steps p)) |> List.concat
  in
  String.concat "\n" lines

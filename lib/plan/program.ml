(** Step programs: the single executable plan an iterative query
    compiles to, mirroring the paper's Table I.

    A program is a flat array of steps executed by a program counter;
    [Loop_end] conditionally jumps backwards, which is exactly the
    paper's "Go to step 3 if counter < 10". All intermediate state
    lives in the catalog's temp lookup table, so [Rename] is the O(1)
    pointer swap of §VI-A. *)

module Schema = Dbspinner_storage.Schema

(** Executable form of the termination condition [Tc] (§VI-B). *)
type termination =
  | Max_iterations of int
  | Max_updates of int  (** cumulative updated-row count reaches N *)
  | Delta_at_most of int
      (** stop once an iteration changes at most N rows *)
  | Data of { any : bool; pred : Bound_expr.t }
      (** predicate over the CTE table; [any] = stop when some row
          satisfies it, otherwise when all rows do *)

type step =
  | Materialize of { target : string; plan : Logical.t }
      (** evaluate [plan] and store it as temp [target] *)
  | Delta_materialize of {
      loop_id : int;
      target : string;  (** the loop's working table *)
      cte : string;  (** the CTE temp the loop iterates over *)
      key_idx : int;
      full_plan : Logical.t;  (** [Ri] as compiled for full re-evaluation *)
      restricted_plan : Logical.t;
          (** [Ri] with the driver scan semijoined against
              [affected_name], evaluating only keys whose inputs
              changed *)
      affected_plans : Logical.t list;
          (** one single-column plan per non-driver CTE occurrence,
              mapping rows of [delta_name] to the driver keys they can
              reach through the loop body's joins *)
      delta_name : string;  (** temp holding rows changed last iteration *)
      affected_name : string;  (** temp holding the affected key set *)
    }
      (** semi-naive working-table materialization: produce exactly what
          [Materialize target full_plan] would, evaluating [Ri] only for
          affected keys and stitching unaffected keys from the previous
          iteration's working table (full re-evaluation on the first
          iteration, after recovery, or when most keys changed) *)
  | Rename of { from_ : string; into : string }  (** O(1) pointer swap *)
  | Drop_temp of string
  | Assert_unique_key of { temp : string; key_idx : int }
      (** runtime duplicate-row-key check required by §II *)
  | Init_loop of {
      loop_id : int;
      termination : termination;
      cte : string;  (** temp name of the main CTE table *)
      key_idx : int;  (** row-identifier column, for update counting *)
      guard : int;
          (** hard iteration cap for Data/Delta conditions that never
              converge *)
    }
  | Loop_end of { loop_id : int; body_start : int }
      (** update loop state; jump to [body_start] if another iteration
          is needed *)
  | Snapshot of { loop_id : int }
      (** record the CTE table version at the top of an iteration so
          Loop_end can count updates / compute deltas *)
  | Recursive_cte of {
      name : string;
      work_name : string;
      base : Logical.t;
      step_plan : Logical.t;  (** reads [work_name] as the reference *)
      union_all : bool;
      max_recursion : int;
    }
      (** standard recursive CTE, evaluated semi-naively *)
  | Return of Logical.t

type t = {
  steps : step array;
  result_schema : Schema.t;
}

let make steps ~result_schema = { steps = Array.of_list steps; result_schema }

let steps t = t.steps
let result_schema t = t.result_schema

(** Count of steps of each interesting kind — used by tests asserting
    plan shape (e.g. "the optimized PR program contains exactly one
    Rename and no merge Materialize inside the loop"). *)
let count_steps t ~f = Array.fold_left (fun n s -> if f s then n + 1 else n) 0 t.steps

let has_rename t =
  count_steps t ~f:(function Rename _ -> true | _ -> false) > 0

let termination_to_string = function
  | Max_iterations n -> Printf.sprintf "Metadata(iterations=%d)" n
  | Max_updates n -> Printf.sprintf "Metadata(updates=%d)" n
  | Delta_at_most n -> Printf.sprintf "Delta(<=%d)" n
  | Data { any; pred } ->
    Printf.sprintf "Data(%s %s)"
      (if any then "ANY" else "ALL")
      (Bound_expr.to_string pred)

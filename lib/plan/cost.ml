(** Cost and cardinality estimation, including the paper's stated
    future work: {e "estimating number of iterations for more accurate
    optimizer costing"} (§IX).

    The model is deliberately simple — textbook selectivity constants
    and per-row operator weights — because its purpose is {e relative}
    comparison of rewrites (e.g. how much of a program's cost sits
    inside the loop), not absolute prediction. Step programs multiply
    the loop body's cost by an estimated iteration count derived from
    the termination condition. *)

module Schema = Dbspinner_storage.Schema
module Ast = Dbspinner_sql.Ast

(** Source of base-table cardinalities (the "statistics subsystem"). *)
type statistics = {
  cardinality_of : string -> int option;
      (** base table or already-materialized temp *)
}

let default_selectivity = 0.33
let equality_selectivity = 0.1

(* Per-row operator weights; arbitrary units. *)
let w_scan = 1.0
let w_filter = 0.5
let w_project = 0.5
let w_build = 2.0
let w_probe = 1.5
let w_aggregate = 2.0
let w_sort_factor = 2.0
let w_materialize = 1.0

type estimate = {
  rows : float;  (** estimated output cardinality *)
  cost : float;  (** estimated total work, arbitrary units *)
}

let is_equality_pred = function
  | Bound_expr.B_binop (Ast.Eq, _, _) -> true
  | _ -> false

(** Selectivity of a (possibly compound) predicate: conjuncts multiply,
    each contributing the equality or default constant — [a = 1 AND
    b = 2] is 0.1 × 0.1, not a flat 0.33. *)
let pred_selectivity pred =
  List.fold_left
    (fun acc conjunct ->
      acc
      *. (if is_equality_pred conjunct then equality_selectivity
          else default_selectivity))
    1.0 (Bound_expr.conjuncts pred)

let rec plan (stats : statistics) (p : Logical.t) : estimate =
  match p with
  | Logical.L_scan { name; _ } ->
    let rows =
      float_of_int (Option.value (stats.cardinality_of name) ~default:1000)
    in
    { rows; cost = rows *. w_scan }
  | Logical.L_values rel ->
    let rows = float_of_int (Dbspinner_storage.Relation.cardinality rel) in
    { rows; cost = rows }
  | Logical.L_filter { pred; input } ->
    let inp = plan stats input in
    let selectivity = pred_selectivity pred in
    {
      rows = Float.max 1.0 (inp.rows *. selectivity);
      cost = inp.cost +. (inp.rows *. w_filter);
    }
  | Logical.L_project { input; _ } ->
    let inp = plan stats input in
    { rows = inp.rows; cost = inp.cost +. (inp.rows *. w_project) }
  | Logical.L_join { kind; cond; left; right; _ } -> (
    let l = plan stats left in
    let r = plan stats right in
    match kind, cond with
    | Logical.Cross, _ | _, None ->
      {
        rows = l.rows *. r.rows;
        cost = l.cost +. r.cost +. (l.rows *. r.rows *. w_probe);
      }
    | _, Some _ ->
      (* Equi-join estimate: the larger side survives; outer joins keep
         at least the preserved side. *)
      let matched = Float.max l.rows r.rows in
      let rows =
        match kind with
        | Logical.Inner -> matched
        | Logical.Left_outer -> Float.max matched l.rows
        | Logical.Right_outer -> Float.max matched r.rows
        | Logical.Full_outer -> Float.max matched (l.rows +. r.rows)
        | Logical.Cross -> assert false
      in
      {
        rows;
        cost = l.cost +. r.cost +. (r.rows *. w_build) +. (l.rows *. w_probe);
      })
  | Logical.L_aggregate { keys; input; _ } ->
    let inp = plan stats input in
    let groups =
      if keys = [] then 1.0
      else Float.max 1.0 (inp.rows /. 2.0)
    in
    { rows = groups; cost = inp.cost +. (inp.rows *. w_aggregate) }
  | Logical.L_distinct input ->
    let inp = plan stats input in
    { rows = Float.max 1.0 (inp.rows *. 0.9); cost = inp.cost +. inp.rows }
  | Logical.L_sort { input; _ } ->
    let inp = plan stats input in
    {
      rows = inp.rows;
      cost = inp.cost +. (inp.rows *. w_sort_factor *. Float.log (inp.rows +. 2.0));
    }
  | Logical.L_limit (n, input) ->
    let inp = plan stats input in
    { rows = Float.min (float_of_int n) inp.rows; cost = inp.cost }
  | Logical.L_offset (n, input) ->
    let inp = plan stats input in
    { rows = Float.max 0.0 (inp.rows -. float_of_int n); cost = inp.cost }
  | Logical.L_union { left; right; _ } ->
    let l = plan stats left in
    let r = plan stats right in
    { rows = l.rows +. r.rows; cost = l.cost +. r.cost }
  | Logical.L_intersect { left; right; _ } ->
    let l = plan stats left in
    let r = plan stats right in
    {
      rows = Float.max 1.0 (Float.min l.rows r.rows *. 0.5);
      cost = l.cost +. r.cost +. l.rows +. r.rows;
    }
  | Logical.L_except { left; right; _ } ->
    let l = plan stats left in
    let r = plan stats right in
    {
      rows = Float.max 1.0 (l.rows *. 0.5);
      cost = l.cost +. r.cost +. l.rows +. r.rows;
    }
  | Logical.L_subquery_filter { input; sub; _ } ->
    let i = plan stats input in
    let sq = plan stats sub in
    {
      rows = Float.max 1.0 (i.rows *. 0.5);
      cost = i.cost +. sq.cost +. (i.rows *. w_probe) +. (sq.rows *. w_build);
    }

(** Estimated iteration count for a termination condition, given the
    estimated CTE cardinality (paper §IX future work). Metadata counts
    are exact; UPDATES divides the budget by the expected per-iteration
    update volume; Delta/Data conditions are data-dependent, so a
    convergence heuristic logarithmic in the working-set size is used
    (relaxation-style iterations shrink the active set geometrically). *)
let estimate_iterations ~(cte_rows : float) (t : Program.termination) : float =
  match t with
  | Program.Max_iterations n -> float_of_int n
  | Program.Max_updates n ->
    Float.max 1.0 (float_of_int n /. Float.max 1.0 cte_rows)
  | Program.Delta_at_most _ | Program.Data _ ->
    Float.max 8.0 (4.0 *. (Float.log (cte_rows +. 2.0) /. Float.log 2.0))

type loop_estimate = {
  body_cost : float;  (** one iteration of this loop's body *)
  loop_iterations : float;
}

type program_estimate = {
  setup_cost : float;  (** work outside any loop *)
  per_iteration_cost : float;  (** first loop's body (0 without loops) *)
  iterations : float;  (** first loop's estimate (1 without loops) *)
  loops : loop_estimate list;  (** every loop, in program order *)
  total_cost : float;
}

(** Clamp an estimated row count to a sane [0, max_int] cardinality:
    NaN and non-positive estimates collapse to 0, overflow saturates —
    a degenerate estimate must not poison later steps' lookups. *)
let cardinality_of_rows rows =
  if Float.is_nan rows || rows <= 0.0 then 0
  else if rows >= float_of_int max_int then max_int
  else int_of_float rows

(** Estimate a full step program: steps between [Init_loop] and its
    [Loop_end] are charged once per that loop's estimated iteration
    count — each loop keeps its own (body, iterations) pair, so a
    program with two iterative CTEs costs each region independently.
    Materialized temp cardinalities are propagated so later steps see
    earlier estimates. *)
let program (stats : statistics) (p : Program.t) : program_estimate =
  let temp_rows : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let lookup name =
    match Hashtbl.find_opt temp_rows (String.lowercase_ascii name) with
    | Some n -> Some n
    | None -> stats.cardinality_of name
  in
  let stats = { cardinality_of = lookup } in
  let steps = Program.steps p in
  let setup = ref 0.0 in
  let loops = ref [] in  (* closed loops, reversed *)
  let current = ref None in  (* (body so far, iterations) of the open loop *)
  let charge c =
    match !current with
    | Some (body, iters) -> current := Some (body +. c, iters)
    | None -> setup := !setup +. c
  in
  let close_loop () =
    match !current with
    | Some (body, iters) ->
      loops := { body_cost = body; loop_iterations = iters } :: !loops;
      current := None
    | None -> ()
  in
  Array.iter
    (fun step ->
      match step with
      | Program.Materialize { target; plan = pl } ->
        let est = plan stats pl in
        Hashtbl.replace temp_rows
          (String.lowercase_ascii target)
          (cardinality_of_rows est.rows);
        charge (est.cost +. (est.rows *. w_materialize))
      | Program.Delta_materialize { target; full_plan; _ } ->
        (* Costed as the full plan: the delta restriction is a runtime
           win whose magnitude (the affected fraction) the planner
           cannot know, and the step falls back to the full plan
           whenever most keys changed. *)
        let est = plan stats full_plan in
        Hashtbl.replace temp_rows
          (String.lowercase_ascii target)
          (cardinality_of_rows est.rows);
        charge (est.cost +. (est.rows *. w_materialize))
      | Program.Return pl -> charge (plan stats pl).cost
      | Program.Recursive_cte { base; step_plan; _ } ->
        (* Recursive CTEs: base once plus a log-bounded number of
           rounds of the step. *)
        let b = plan stats base in
        let s = plan stats step_plan in
        charge (b.cost +. (s.cost *. Float.max 4.0 (Float.log (b.rows +. 2.0))))
      | Program.Init_loop { termination; cte; _ } ->
        close_loop ();
        let cte_rows =
          float_of_int (Option.value (lookup cte) ~default:1000)
        in
        current := Some (0.0, estimate_iterations ~cte_rows termination)
      | Program.Loop_end _ -> close_loop ()
      | Program.Snapshot _ -> ()
      | Program.Rename _ ->
        (* The O(1) pointer swap: effectively free, the point of §VI-A. *)
        charge 1.0
      | Program.Drop_temp _ -> ()
      | Program.Assert_unique_key { temp; _ } ->
        charge
          (float_of_int (Option.value (lookup temp) ~default:1000) *. 0.25))
    steps;
  close_loop ();
  let loops = List.rev !loops in
  let loop_total =
    List.fold_left
      (fun acc l -> acc +. (l.body_cost *. l.loop_iterations))
      0.0 loops
  in
  let per_iteration_cost, iterations =
    match loops with
    | [] -> (0.0, 1.0)
    | first :: _ -> (first.body_cost, first.loop_iterations)
  in
  {
    setup_cost = !setup;
    per_iteration_cost;
    iterations;
    loops;
    total_cost = !setup +. loop_total;
  }

let pp_program_estimate fmt e =
  Format.fprintf fmt
    "setup=%.0f per-iteration=%.0f estimated-iterations=%.1f total=%.0f"
    e.setup_cost e.per_iteration_cost e.iterations e.total_cost;
  match e.loops with
  | [] | [ _ ] -> ()
  | loops ->
    Format.fprintf fmt " loops=[%s]"
      (String.concat "; "
         (List.map
            (fun l ->
              Printf.sprintf "%.0fx%.1f" l.body_cost l.loop_iterations)
            loops))

(** Logical query plans. Every node carries its output schema so that
    downstream binding and the executor never recompute name
    resolution.

    Scans are by name and resolved against the catalog at execution
    time: intermediate results (temps) shadow base tables, which is how
    the iterative reference ("PageRank") inside the loop body reads the
    current iteration's table. *)

module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Ast = Dbspinner_sql.Ast

type join_kind = Inner | Left_outer | Right_outer | Full_outer | Cross

type agg = {
  agg_kind : Ast.agg_kind;
  agg_distinct : bool;
  agg_arg : Bound_expr.t;  (** ignored for [Count_star] *)
}

type t =
  | L_scan of { name : string; scan_schema : Schema.t }
  | L_values of Relation.t
  | L_filter of { pred : Bound_expr.t; input : t }
  | L_project of { exprs : (Bound_expr.t * string) list; input : t }
  | L_join of {
      kind : join_kind;
      cond : Bound_expr.t option;
          (** over the concatenated (left @ right) row *)
      left : t;
      right : t;
      join_schema : Schema.t;
    }
  | L_aggregate of {
      keys : Bound_expr.t list;
      aggs : agg list;
      input : t;
      agg_schema : Schema.t;  (** key columns then aggregate columns *)
    }
  | L_distinct of t
  | L_sort of { keys : (Bound_expr.t * bool) list; input : t }
      (** [(expr, descending)] *)
  | L_limit of int * t
  | L_offset of int * t
  | L_union of { all : bool; left : t; right : t }
  | L_intersect of { all : bool; left : t; right : t }
      (** bag semantics for ALL (minimum multiplicities) *)
  | L_except of { all : bool; left : t; right : t }
      (** bag semantics for ALL (multiplicity difference) *)
  | L_subquery_filter of {
      anti : bool;  (** NOT IN / NOT EXISTS *)
      key : Bound_expr.t option;
          (** the probe expression of IN; [None] for EXISTS *)
      input : t;
      sub : t;  (** arity 1 when [key] is [Some] *)
    }
      (** uncorrelated IN / EXISTS subquery predicates, executed as
          semi / (null-aware) anti joins *)

let rec schema = function
  | L_scan { scan_schema; _ } -> scan_schema
  | L_values rel -> Relation.schema rel
  | L_filter { input; _ } -> schema input
  | L_project { exprs; _ } ->
    Schema.of_names (List.map snd exprs)
  | L_join { join_schema; _ } -> join_schema
  | L_aggregate { agg_schema; _ } -> agg_schema
  | L_distinct input -> schema input
  | L_sort { input; _ } -> schema input
  | L_limit (_, input) | L_offset (_, input) -> schema input
  | L_union { left; _ } | L_intersect { left; _ } | L_except { left; _ } ->
    schema left
  | L_subquery_filter { input; _ } -> schema input

(* Smart constructors --------------------------------------------------- *)

let scan ~name ~schema = L_scan { name; scan_schema = schema }
let values rel = L_values rel
let filter pred input = L_filter { pred; input }
let project exprs input = L_project { exprs; input }

let join kind ?cond left right =
  let join_schema = Schema.append (schema left) (schema right) in
  L_join { kind; cond; left; right; join_schema }

let aggregate ~keys ~key_names ~aggs ~agg_names input =
  assert (List.length keys = List.length key_names);
  assert (List.length aggs = List.length agg_names);
  let agg_schema = Schema.of_names (key_names @ agg_names) in
  L_aggregate { keys; aggs; input; agg_schema }

let distinct input = L_distinct input
let sort keys input = if keys = [] then input else L_sort { keys; input }
let limit n input = L_limit (n, input)
let offset n input = if n <= 0 then input else L_offset (n, input)

let subquery_filter ~anti ~key input sub =
  (match key with
  | Some _ ->
    if Schema.arity (schema sub) <> 1 then
      invalid_arg "Logical.subquery_filter: IN subquery must return one column"
  | None -> ());
  L_subquery_filter { anti; key; input; sub }

let check_set_arity name left right =
  if Schema.arity (schema left) <> Schema.arity (schema right) then
    invalid_arg (Printf.sprintf "Logical.%s: arity mismatch" name)

let union ~all left right =
  check_set_arity "union" left right;
  L_union { all; left; right }

let intersect ~all left right =
  check_set_arity "intersect" left right;
  L_intersect { all; left; right }

let except ~all left right =
  check_set_arity "except" left right;
  L_except { all; left; right }

(* Traversals ----------------------------------------------------------- *)

(** Names of all scans in the plan (base tables and temps). *)
let rec scan_names acc = function
  | L_scan { name; _ } -> name :: acc
  | L_values _ -> acc
  | L_filter { input; _ }
  | L_project { input; _ }
  | L_sort { input; _ }
  | L_limit (_, input)
  | L_offset (_, input)
  | L_aggregate { input; _ }
  | L_distinct input ->
    scan_names acc input
  | L_join { left; right; _ }
  | L_union { left; right; _ }
  | L_intersect { left; right; _ }
  | L_except { left; right; _ } ->
    scan_names (scan_names acc left) right
  | L_subquery_filter { input; sub; _ } -> scan_names (scan_names acc input) sub

let referenced_tables t = List.sort_uniq String.compare (scan_names [] t)

(** [rename_scans mapping t] replaces scan names per [mapping]
    (case-insensitive keys); used when a rewrite redirects the
    iterative reference to a materialized common result. *)
let rec rename_scans mapping = function
  | L_scan { name; scan_schema } ->
    let name' =
      match
        List.assoc_opt (String.lowercase_ascii name)
          (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) mapping)
      with
      | Some n -> n
      | None -> name
    in
    L_scan { name = name'; scan_schema }
  | L_values _ as t -> t
  | L_filter { pred; input } -> L_filter { pred; input = rename_scans mapping input }
  | L_project { exprs; input } ->
    L_project { exprs; input = rename_scans mapping input }
  | L_join { kind; cond; left; right; join_schema } ->
    L_join
      {
        kind;
        cond;
        left = rename_scans mapping left;
        right = rename_scans mapping right;
        join_schema;
      }
  | L_aggregate { keys; aggs; input; agg_schema } ->
    L_aggregate { keys; aggs; input = rename_scans mapping input; agg_schema }
  | L_distinct input -> L_distinct (rename_scans mapping input)
  | L_sort { keys; input } -> L_sort { keys; input = rename_scans mapping input }
  | L_limit (n, input) -> L_limit (n, rename_scans mapping input)
  | L_offset (n, input) -> L_offset (n, rename_scans mapping input)
  | L_union { all; left; right } ->
    L_union
      { all; left = rename_scans mapping left; right = rename_scans mapping right }
  | L_intersect { all; left; right } ->
    L_intersect
      { all; left = rename_scans mapping left; right = rename_scans mapping right }
  | L_except { all; left; right } ->
    L_except
      { all; left = rename_scans mapping left; right = rename_scans mapping right }
  | L_subquery_filter { anti; key; input; sub } ->
    L_subquery_filter
      {
        anti;
        key;
        input = rename_scans mapping input;
        sub = rename_scans mapping sub;
      }

(** Rebuild a node with [f] applied to each immediate child plan; the
    node's own fields (predicates, schemas, conditions) are preserved
    verbatim. One-layer map — rewrite combinators build full traversals
    (e.g. bottom-up) on top of it. *)
let map_children f = function
  | (L_scan _ | L_values _) as t -> t
  | L_filter { pred; input } -> L_filter { pred; input = f input }
  | L_project { exprs; input } -> L_project { exprs; input = f input }
  | L_join { kind; cond; left; right; join_schema } ->
    L_join { kind; cond; left = f left; right = f right; join_schema }
  | L_aggregate { keys; aggs; input; agg_schema } ->
    L_aggregate { keys; aggs; input = f input; agg_schema }
  | L_distinct input -> L_distinct (f input)
  | L_sort { keys; input } -> L_sort { keys; input = f input }
  | L_limit (n, input) -> L_limit (n, f input)
  | L_offset (n, input) -> L_offset (n, f input)
  | L_union { all; left; right } ->
    L_union { all; left = f left; right = f right }
  | L_intersect { all; left; right } ->
    L_intersect { all; left = f left; right = f right }
  | L_except { all; left; right } ->
    L_except { all; left = f left; right = f right }
  | L_subquery_filter { anti; key; input; sub } ->
    L_subquery_filter { anti; key; input = f input; sub = f sub }

(** Number of operator nodes; a coarse plan-size metric used by tests
    and EXPLAIN. *)
let rec size = function
  | L_scan _ | L_values _ -> 1
  | L_filter { input; _ }
  | L_project { input; _ }
  | L_sort { input; _ }
  | L_limit (_, input)
  | L_offset (_, input)
  | L_aggregate { input; _ }
  | L_distinct input ->
    1 + size input
  | L_join { left; right; _ }
  | L_union { left; right; _ }
  | L_intersect { left; right; _ }
  | L_except { left; right; _ } ->
    1 + size left + size right
  | L_subquery_filter { input; sub; _ } -> 1 + size input + size sub

(** Logical query plans. Every node carries enough information to
    recover its output schema without re-binding; scans are by name and
    resolved against the catalog at execution time, with temps
    shadowing base tables (how the iterative reference reads the
    current iteration's table). *)

module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Ast = Dbspinner_sql.Ast

type join_kind = Inner | Left_outer | Right_outer | Full_outer | Cross

type agg = {
  agg_kind : Ast.agg_kind;
  agg_distinct : bool;
  agg_arg : Bound_expr.t;  (** ignored for [Count_star] *)
}

type t =
  | L_scan of { name : string; scan_schema : Schema.t }
  | L_values of Relation.t
  | L_filter of { pred : Bound_expr.t; input : t }
  | L_project of { exprs : (Bound_expr.t * string) list; input : t }
  | L_join of {
      kind : join_kind;
      cond : Bound_expr.t option;  (** over the concatenated row *)
      left : t;
      right : t;
      join_schema : Schema.t;
    }
  | L_aggregate of {
      keys : Bound_expr.t list;
      aggs : agg list;
      input : t;
      agg_schema : Schema.t;  (** key columns then aggregate columns *)
    }
  | L_distinct of t
  | L_sort of { keys : (Bound_expr.t * bool) list; input : t }
      (** [(expr, descending)] *)
  | L_limit of int * t
  | L_offset of int * t
  | L_union of { all : bool; left : t; right : t }
  | L_intersect of { all : bool; left : t; right : t }
  | L_except of { all : bool; left : t; right : t }
  | L_subquery_filter of {
      anti : bool;  (** NOT IN / NOT EXISTS *)
      key : Bound_expr.t option;  (** IN probe; [None] = EXISTS *)
      input : t;
      sub : t;
    }

val schema : t -> Schema.t

(** {2 Smart constructors} *)

val scan : name:string -> schema:Schema.t -> t
val values : Relation.t -> t
val filter : Bound_expr.t -> t -> t
val project : (Bound_expr.t * string) list -> t -> t
val join : join_kind -> ?cond:Bound_expr.t -> t -> t -> t

val aggregate :
  keys:Bound_expr.t list ->
  key_names:string list ->
  aggs:agg list ->
  agg_names:string list ->
  t ->
  t

val distinct : t -> t

(** No-op on an empty key list. *)
val sort : (Bound_expr.t * bool) list -> t -> t

val limit : int -> t -> t

(** No-op on a non-positive offset. *)
val offset : int -> t -> t

(** @raise Invalid_argument on arity mismatches. *)
val union : all:bool -> t -> t -> t

val intersect : all:bool -> t -> t -> t
val except : all:bool -> t -> t -> t

(** @raise Invalid_argument when an IN subquery is not single-column. *)
val subquery_filter : anti:bool -> key:Bound_expr.t option -> t -> t -> t

(** {2 Traversals} *)

(** Every scan name in the plan, one entry per occurrence, prepended to
    the accumulator. Use {!referenced_tables} for the deduplicated
    set; this form exists for occurrence counting (the semi-naive
    eligibility check needs to know how many times a CTE is scanned). *)
val scan_names : string list -> t -> string list

(** Sorted unique names of all scans (base tables and temps). *)
val referenced_tables : t -> string list

(** Replace scan names per the (case-insensitive) mapping. *)
val rename_scans : (string * string) list -> t -> t

(** Rebuild a node with the function applied to each immediate child
    plan; all other fields are preserved verbatim. One-layer map —
    rewrite combinators build full traversals on top of it. *)
val map_children : (t -> t) -> t -> t

(** Operator-node count; a coarse plan-size metric. *)
val size : t -> int

(** Step programs: the single executable plan an iterative query
    compiles to, mirroring the paper's Table I. A program is a flat
    step array executed by a program counter; [Loop_end] conditionally
    jumps backwards ("go to step 3 if counter < 10"). *)

module Schema = Dbspinner_storage.Schema

(** Executable form of the termination condition [Tc] (§VI-B). *)
type termination =
  | Max_iterations of int
  | Max_updates of int  (** stop once the cumulative updated-row count reaches N *)
  | Delta_at_most of int  (** stop once an iteration changes at most N rows *)
  | Data of { any : bool; pred : Bound_expr.t }
      (** predicate over the CTE table; [any] = stop when some row
          satisfies it, otherwise when all rows do *)

type step =
  | Materialize of { target : string; plan : Logical.t }
  | Delta_materialize of {
      loop_id : int;
      target : string;
      cte : string;
      key_idx : int;
      full_plan : Logical.t;
      restricted_plan : Logical.t;
          (** [Ri] with the driver scan semijoined against
              [affected_name] *)
      affected_plans : Logical.t list;
          (** single-column plans mapping [delta_name] rows to reachable
              driver keys, one per non-driver CTE occurrence *)
      delta_name : string;
      affected_name : string;
    }
      (** semi-naive working-table materialization: bag-identical to
          [Materialize target full_plan], but evaluates [Ri] only for
          keys whose inputs changed since the previous iteration *)
  | Rename of { from_ : string; into : string }  (** O(1) pointer swap *)
  | Drop_temp of string
  | Assert_unique_key of { temp : string; key_idx : int }
      (** the §II duplicate-row-key runtime check *)
  | Init_loop of {
      loop_id : int;
      termination : termination;
      cte : string;
      key_idx : int;
      guard : int;  (** hard cap for non-converging Data/Delta loops *)
    }
  | Loop_end of { loop_id : int; body_start : int }
  | Snapshot of { loop_id : int }
      (** record the CTE version at the top of an iteration for update
          counting / deltas *)
  | Recursive_cte of {
      name : string;
      work_name : string;
      base : Logical.t;
      step_plan : Logical.t;
      union_all : bool;
      max_recursion : int;
    }
  | Return of Logical.t

type t

val make : step list -> result_schema:Schema.t -> t
val steps : t -> step array
val result_schema : t -> Schema.t

(** Count steps matching a predicate — used by plan-shape tests. *)
val count_steps : t -> f:(step -> bool) -> int

val has_rename : t -> bool
val termination_to_string : termination -> string

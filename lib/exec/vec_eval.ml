(** Columnar expression evaluation: compile a {!Bound_expr} into a
    kernel that evaluates a whole {!Colbatch} at a time.

    The hot kernels are tight loops over unboxed int/float arrays
    (arithmetic, comparisons, Kleene logic, CAST, ROUND); everything
    else falls back to a boxed per-element loop built from the exact
    same value combinators the row interpreter uses ({!Eval}), so the
    two paths are bit-identical by construction — including error
    messages, NULL propagation and [Division_by_zero]. The only node
    that abandons vectorization for its whole subtree is [B_case]:
    its branches short-circuit per row, so evaluating a branch over
    the full batch could raise errors the row path never reaches.

    NULL convention: typed columns carry an optional bitmap whose
    masked slots hold placeholder values (0 / 0.0 / "" / false).
    Kernels compute placeholder slots freely — int/float arithmetic
    on garbage cannot raise — and carry the union of the input masks.
    Division is the exception: its per-element loop must skip masked
    slots {e before} the zero-divisor test, mirroring
    [Value.div]'s NULL-first check. *)

module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type
module Colbatch = Dbspinner_storage.Colbatch
module Ast = Dbspinner_sql.Ast
module Bound_expr = Dbspinner_plan.Bound_expr

type kernel = Colbatch.t -> Colbatch.col

let error fmt = Printf.ksprintf (fun s -> raise (Eval.Runtime_error s)) fmt

(* [Array.init]'s application order is unspecified; kernels that can
   raise must visit rows in index order so the first error matches the
   row engine's. *)
let tabulate n (f : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

(* Masks are immutable once built, so sharing one input's mask is
   safe. *)
let union_mask (a : Colbatch.col) (b : Colbatch.col) : bool array option =
  match a.Colbatch.nulls, b.Colbatch.nulls with
  | None, None -> None
  | (Some _ as m), None | None, (Some _ as m) -> m
  | Some ma, Some mb ->
    Some (Array.init (Array.length ma) (fun i -> ma.(i) || mb.(i)))

let is_masked (nulls : bool array option) i =
  match nulls with Some m -> m.(i) | None -> false

(* Boxed per-element fallbacks. [of_values] re-classifies the output so
   a monomorphic result feeds the typed kernels downstream. *)
let map1 f (a : Colbatch.col) n : Colbatch.col =
  Colbatch.of_values (tabulate n (fun i -> f (Colbatch.get a i)))

let map2 f (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  Colbatch.of_values
    (tabulate n (fun i -> f (Colbatch.get a i) (Colbatch.get b i)))

(* ------------------------------------------------------------------ *)
(* Column-level combinators                                            *)

(* Mixed boxed-numeric x float arithmetic: a [D_value] column whose
   cells are all Int/Float/NULL combined with a [D_float] column
   always yields Float ([Value.arith]'s mixed rule), so the result can
   stay typed even though the input could not. Returns [None] when the
   boxed side holds a non-numeric cell — the caller's boxed fallback
   then raises the row engine's type error at the same element. *)
let vf_arith op ~v_left (v_side : Value.t array) (f_side : float array)
    (fnulls : bool array option) n : Colbatch.col option =
  let clean = ref true in
  let i = ref 0 in
  while !clean && !i < n do
    (match v_side.(!i) with
    | Value.Int _ | Value.Float _ | Value.Null -> ()
    | Value.Str _ | Value.Bool _ -> clean := false);
    incr i
  done;
  if not !clean then None
  else begin
    let f =
      match op with
      | Ast.Add -> ( +. )
      | Ast.Sub -> ( -. )
      | Ast.Mul -> ( *. )
      | _ -> assert false
    in
    let mask = Array.make n false in
    let any = ref false in
    let out = Array.make n 0.0 in
    for k = 0 to n - 1 do
      match v_side.(k) with
      | Value.Null -> mask.(k) <- true; any := true
      | v ->
        if match fnulls with Some m -> m.(k) | None -> false then begin
          mask.(k) <- true;
          any := true
        end
        else begin
          let x =
            match v with
            | Value.Int i -> float_of_int i
            | Value.Float g -> g
            | _ -> 0.0
          in
          out.(k) <-
            (if v_left then f x f_side.(k) else f f_side.(k) x)
        end
    done;
    Some
      {
        Colbatch.data = Colbatch.D_float out;
        nulls = (if !any then Some mask else None);
      }
  end

let arith_cols op (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  match a.Colbatch.data, b.Colbatch.data with
  | Colbatch.D_int xa, Colbatch.D_int xb ->
    let out =
      match op with
      | Ast.Add -> tabulate n (fun i -> xa.(i) + xb.(i))
      | Ast.Sub -> tabulate n (fun i -> xa.(i) - xb.(i))
      | Ast.Mul -> tabulate n (fun i -> xa.(i) * xb.(i))
      | _ -> assert false
    in
    { Colbatch.data = Colbatch.D_int out; nulls = union_mask a b }
  | ( (Colbatch.D_int _ | Colbatch.D_float _),
      (Colbatch.D_int _ | Colbatch.D_float _) ) ->
    let fa =
      match a.Colbatch.data with
      | Colbatch.D_float x -> x
      | Colbatch.D_int x -> Array.map float_of_int x
      | _ -> assert false
    in
    let fb =
      match b.Colbatch.data with
      | Colbatch.D_float x -> x
      | Colbatch.D_int x -> Array.map float_of_int x
      | _ -> assert false
    in
    let out =
      match op with
      | Ast.Add -> tabulate n (fun i -> fa.(i) +. fb.(i))
      | Ast.Sub -> tabulate n (fun i -> fa.(i) -. fb.(i))
      | Ast.Mul -> tabulate n (fun i -> fa.(i) *. fb.(i))
      | _ -> assert false
    in
    { Colbatch.data = Colbatch.D_float out; nulls = union_mask a b }
  | _ ->
    let f =
      match op with
      | Ast.Add -> Value.add
      | Ast.Sub -> Value.sub
      | Ast.Mul -> Value.mul
      | _ -> assert false
    in
    let typed =
      match a.Colbatch.data, b.Colbatch.data with
      | Colbatch.D_value va, Colbatch.D_float fb ->
        vf_arith op ~v_left:true va fb b.Colbatch.nulls n
      | Colbatch.D_float fa, Colbatch.D_value vb ->
        vf_arith op ~v_left:false vb fa a.Colbatch.nulls n
      | _ -> None
    in
    (match typed with Some c -> c | None -> map2 f a b n)

let div_cols (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  match a.Colbatch.data, b.Colbatch.data with
  (* Float/Float is the only typed fast path: Int/Int division returns
     Int on exact quotients and Float otherwise, so its output cannot
     stay unboxed. NULL is checked before the divisor, like
     [Value.div]. *)
  | Colbatch.D_float xa, Colbatch.D_float xb ->
    let mask = union_mask a b in
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      if not (is_masked mask i) then begin
        let d = xb.(i) in
        if d = 0.0 then raise Division_by_zero;
        out.(i) <- xa.(i) /. d
      end
    done;
    { Colbatch.data = Colbatch.D_float out; nulls = mask }
  | _ -> map2 Value.div a b n

let mod_cols (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  match a.Colbatch.data, b.Colbatch.data with
  (* Same-typed pairs only: mixed Int/Float returns Float and the
     min_int/-1 trap only exists on the Int/Int path. NULL (mask) is
     checked before the divisor, like [Value.modulo]. *)
  | Colbatch.D_int xa, Colbatch.D_int xb ->
    let mask = union_mask a b in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      if not (is_masked mask i) then begin
        let y = xb.(i) in
        if y = 0 then raise Division_by_zero;
        out.(i) <- (if y = -1 && xa.(i) = min_int then 0 else xa.(i) mod y)
      end
    done;
    { Colbatch.data = Colbatch.D_int out; nulls = mask }
  | Colbatch.D_float xa, Colbatch.D_float xb ->
    let mask = union_mask a b in
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      if not (is_masked mask i) then begin
        let y = xb.(i) in
        if y = 0.0 then raise Division_by_zero;
        out.(i) <- Float.rem xa.(i) y
      end
    done;
    { Colbatch.data = Colbatch.D_float out; nulls = mask }
  | _ -> map2 Value.modulo a b n

(* Two-argument LEAST/GREATEST over same-typed numeric columns.
   Row semantics ({!Eval.apply_func}): NULLs are dropped, both-NULL
   yields NULL, and ties keep the first argument — so the comparison
   against the second argument is strict. Floats compare with
   [Float.compare] (matching [Value.compare]): LEAST propagates NaN,
   which [(<)] would not. *)
let minmax2_cols ~greatest (a : Colbatch.col) (b : Colbatch.col) n :
    Colbatch.col =
  let ma = a.Colbatch.nulls and mb = b.Colbatch.nulls in
  match a.Colbatch.data, b.Colbatch.data with
  | Colbatch.D_int xa, Colbatch.D_int xb ->
    let out = Array.make n 0 in
    let mask = ref None in
    for i = 0 to n - 1 do
      match is_masked ma i, is_masked mb i with
      | true, true ->
        (match !mask with
        | Some m -> m.(i) <- true
        | None ->
          let m = Array.make n false in
          m.(i) <- true;
          mask := Some m)
      | true, false -> out.(i) <- xb.(i)
      | false, true -> out.(i) <- xa.(i)
      | false, false ->
        let x = xa.(i) and y = xb.(i) in
        out.(i) <- (if (if greatest then y > x else y < x) then y else x)
    done;
    { Colbatch.data = Colbatch.D_int out; nulls = !mask }
  | Colbatch.D_float xa, Colbatch.D_float xb ->
    let out = Array.make n 0.0 in
    let mask = ref None in
    for i = 0 to n - 1 do
      match is_masked ma i, is_masked mb i with
      | true, true ->
        (match !mask with
        | Some m -> m.(i) <- true
        | None ->
          let m = Array.make n false in
          m.(i) <- true;
          mask := Some m)
      | true, false -> out.(i) <- xb.(i)
      | false, true -> out.(i) <- xa.(i)
      | false, false ->
        let x = xa.(i) and y = xb.(i) in
        let c = Float.compare y x in
        out.(i) <- (if (if greatest then c > 0 else c < 0) then y else x)
    done;
    { Colbatch.data = Colbatch.D_float out; nulls = !mask }
  | _ ->
    let f = if greatest then Bound_expr.F_greatest else Bound_expr.F_least in
    map2 (fun x y -> Eval.apply_func f [ x; y ]) a b n

let cmp_cols op (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  let test : int -> bool =
    match op with
    | Ast.Eq -> fun c -> c = 0
    | Ast.Neq -> fun c -> c <> 0
    | Ast.Lt -> fun c -> c < 0
    | Ast.Le -> fun c -> c <= 0
    | Ast.Gt -> fun c -> c > 0
    | Ast.Ge -> fun c -> c >= 0
    | _ -> assert false
  in
  match a.Colbatch.data, b.Colbatch.data with
  | Colbatch.D_int xa, Colbatch.D_int xb ->
    {
      Colbatch.data =
        Colbatch.D_bool (tabulate n (fun i -> test (Int.compare xa.(i) xb.(i))));
      nulls = union_mask a b;
    }
  | Colbatch.D_float xa, Colbatch.D_float xb ->
    {
      Colbatch.data =
        Colbatch.D_bool
          (tabulate n (fun i -> test (Float.compare xa.(i) xb.(i))));
      nulls = union_mask a b;
    }
  | Colbatch.D_str xa, Colbatch.D_str xb ->
    {
      Colbatch.data =
        Colbatch.D_bool
          (tabulate n (fun i -> test (String.compare xa.(i) xb.(i))));
      nulls = union_mask a b;
    }
  (* Mixed Int/Float columns go through [Value.compare], whose
     integer-space comparison keeps 2^62-scale ints exact. *)
  | _ -> map2 (Eval.compare_values op) a b n

let and_cols (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  match a.Colbatch.data, b.Colbatch.data with
  | Colbatch.D_bool xa, Colbatch.D_bool xb ->
    let na = a.Colbatch.nulls and nb = b.Colbatch.nulls in
    let out = Array.make n false in
    let mask = Array.make n false in
    let any_null = ref false in
    for i = 0 to n - 1 do
      let a_null = is_masked na i and b_null = is_masked nb i in
      if ((not a_null) && not xa.(i)) || ((not b_null) && not xb.(i)) then ()
        (* definite false dominates NULL *)
      else if a_null || b_null then begin
        mask.(i) <- true;
        any_null := true
      end
      else out.(i) <- true
    done;
    {
      Colbatch.data = Colbatch.D_bool out;
      nulls = (if !any_null then Some mask else None);
    }
  | _ -> map2 Eval.kleene_and a b n

let or_cols (a : Colbatch.col) (b : Colbatch.col) n : Colbatch.col =
  match a.Colbatch.data, b.Colbatch.data with
  | Colbatch.D_bool xa, Colbatch.D_bool xb ->
    let na = a.Colbatch.nulls and nb = b.Colbatch.nulls in
    let out = Array.make n false in
    let mask = Array.make n false in
    let any_null = ref false in
    for i = 0 to n - 1 do
      let a_null = is_masked na i and b_null = is_masked nb i in
      if ((not a_null) && xa.(i)) || ((not b_null) && xb.(i)) then
        out.(i) <- true (* definite true dominates NULL *)
      else if a_null || b_null then begin
        mask.(i) <- true;
        any_null := true
      end
    done;
    {
      Colbatch.data = Colbatch.D_bool out;
      nulls = (if !any_null then Some mask else None);
    }
  | _ -> map2 Eval.kleene_or a b n

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

(* B_case falls back to the row interpreter over a scratch row: only
   the columns the expression references are filled, in index order, so
   branch short-circuiting (and which row first raises) is exactly the
   row engine's. *)
let scalar_batch (e : Bound_expr.t) : kernel =
  let needed = Bound_expr.columns_of e in
  let f = Eval.compile e in
  fun batch ->
    let n = Colbatch.length batch in
    let scratch = Array.make (max 1 (Colbatch.arity batch)) Value.Null in
    Colbatch.of_values
      (tabulate n (fun i ->
           List.iter (fun j -> scratch.(j) <- Colbatch.value_at batch j i) needed;
           f scratch))

let rec compile (e : Bound_expr.t) : kernel =
  match e with
  | Bound_expr.B_lit v -> fun batch -> Colbatch.const v (Colbatch.length batch)
  | Bound_expr.B_col i ->
    fun batch ->
      let arity = Colbatch.arity batch in
      if i >= arity then
        error "column index %d out of range (row arity %d)" i arity
      else Colbatch.col batch i
  | Bound_expr.B_binop (op, a, b) -> (
    let ka = compile a and kb = compile b in
    let lift2 f =
     fun batch ->
      let ca = ka batch in
      let cb = kb batch in
      f ca cb (Colbatch.length batch)
    in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul -> lift2 (arith_cols op)
    | Ast.Div -> lift2 div_cols
    | Ast.Mod -> lift2 mod_cols
    | Ast.Concat -> lift2 (map2 Eval.concat)
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      lift2 (cmp_cols op)
    | Ast.And -> lift2 and_cols
    | Ast.Or -> lift2 or_cols)
  | Bound_expr.B_unop (Ast.Neg, a) -> (
    let ka = compile a in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      match c.Colbatch.data with
      | Colbatch.D_int xa ->
        {
          Colbatch.data = Colbatch.D_int (tabulate n (fun i -> -xa.(i)));
          nulls = c.Colbatch.nulls;
        }
      | Colbatch.D_float xa ->
        {
          Colbatch.data = Colbatch.D_float (tabulate n (fun i -> -.xa.(i)));
          nulls = c.Colbatch.nulls;
        }
      | _ -> map1 Value.neg c n)
  | Bound_expr.B_unop (Ast.Not, a) -> (
    let ka = compile a in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      match c.Colbatch.data with
      | Colbatch.D_bool xa ->
        {
          Colbatch.data = Colbatch.D_bool (Array.map not xa);
          nulls = c.Colbatch.nulls;
        }
      | _ ->
        map1
          (function
            | Value.Bool b -> Value.Bool (not b)
            | Value.Null -> Value.Null
            | _ -> error "NOT requires a boolean operand")
          c n)
  (* ROUND(x, literal-digits) over a numeric column is PageRank's and
     Friends-Forever's per-iteration workhorse — worth its own loop. *)
  | Bound_expr.B_func (Bound_expr.F_round, [ a; Bound_expr.B_lit (Value.Int d) ])
    -> (
    let ka = compile a in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      match c.Colbatch.data with
      | Colbatch.D_float xa ->
        {
          Colbatch.data =
            Colbatch.D_float
              (tabulate n (fun i -> Eval.round_to_digits xa.(i) d));
          nulls = c.Colbatch.nulls;
        }
      | Colbatch.D_int xa ->
        {
          Colbatch.data =
            Colbatch.D_float
              (tabulate n (fun i ->
                   Eval.round_to_digits (float_of_int xa.(i)) d));
          nulls = c.Colbatch.nulls;
        }
      | _ ->
        map1 (fun v -> Eval.apply_func Bound_expr.F_round [ v; Value.Int d ]) c n)
  | Bound_expr.B_func (Bound_expr.F_coalesce, args) -> (
    let ks = List.map compile args in
    fun batch ->
      let n = Colbatch.length batch in
      let cols = List.map (fun k -> k batch) ks in
      match cols with
      | [ c ] -> c (* COALESCE(x) = x, NULLs included *)
      (* Two-argument form: a typed first column with no NULL mask wins
         outright; a masked typed column only consults the fallback on
         masked slots (PageRank's COALESCE over the outer-join SUM). *)
      | [ c1; _ ]
        when c1.Colbatch.nulls = None
             && (match c1.Colbatch.data with
                | Colbatch.D_value _ -> false
                | _ -> true) ->
        c1
      | [ { Colbatch.data = Colbatch.D_float xa; nulls = Some m }; c2 ] ->
        Colbatch.of_values
          (tabulate n (fun i ->
               if m.(i) then Colbatch.get c2 i else Value.Float xa.(i)))
      | [ { Colbatch.data = Colbatch.D_int xa; nulls = Some m }; c2 ] ->
        Colbatch.of_values
          (tabulate n (fun i ->
               if m.(i) then Colbatch.get c2 i else Value.Int xa.(i)))
      | _ ->
        Colbatch.of_values
          (tabulate n (fun i ->
               let rec first = function
                 | [] -> Value.Null
                 | c :: rest ->
                   let v = Colbatch.get c i in
                   if Value.is_null v then first rest else v
               in
               first cols)))
  (* SSSP computes LEAST(distance, delta) in its group key every
     iteration — keep the two-argument form typed. *)
  | Bound_expr.B_func ((Bound_expr.F_least | Bound_expr.F_greatest) as f, [ a; b ])
    ->
    let greatest = f = Bound_expr.F_greatest in
    let ka = compile a and kb = compile b in
    fun batch ->
      minmax2_cols ~greatest (ka batch) (kb batch) (Colbatch.length batch)
  | Bound_expr.B_func (f, args) ->
    let ks = List.map compile args in
    fun batch ->
      let n = Colbatch.length batch in
      let cols = List.map (fun k -> k batch) ks in
      Colbatch.of_values
        (tabulate n (fun i ->
             Eval.apply_func f (List.map (fun c -> Colbatch.get c i) cols)))
  | Bound_expr.B_case _ -> scalar_batch e
  | Bound_expr.B_cast (ty, a) -> (
    let ka = compile a in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      match ty, c.Colbatch.data with
      | Column_type.T_any, _
      | Column_type.T_int, Colbatch.D_int _
      | Column_type.T_float, Colbatch.D_float _
      | Column_type.T_string, Colbatch.D_str _
      | Column_type.T_bool, Colbatch.D_bool _ ->
        c
      | Column_type.T_float, Colbatch.D_int xa ->
        {
          Colbatch.data = Colbatch.D_float (Array.map float_of_int xa);
          nulls = c.Colbatch.nulls;
        }
      | Column_type.T_int, Colbatch.D_float xa ->
        {
          Colbatch.data = Colbatch.D_int (Array.map int_of_float xa);
          nulls = c.Colbatch.nulls;
        }
      | _ -> map1 (Eval.cast_value ty) c n)
  | Bound_expr.B_is_null (a, want_null) ->
    let ka = compile a in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      {
        Colbatch.data =
          Colbatch.D_bool
            (tabulate n (fun i -> Colbatch.is_null_at c i = want_null));
        nulls = None;
      }
  | Bound_expr.B_in (a, items, negated) ->
    let ka = compile a in
    let kitems = List.map compile items in
    fun batch ->
      let n = Colbatch.length batch in
      let ca = ka batch in
      let citems = List.map (fun k -> k batch) kitems in
      Colbatch.of_values
        (tabulate n (fun i ->
             let v = Colbatch.get ca i in
             if Value.is_null v then Value.Null
             else begin
               let found = ref false in
               let saw_null = ref false in
               List.iter
                 (fun c ->
                   let iv = Colbatch.get c i in
                   if Value.is_null iv then saw_null := true
                   else if Value.equal v iv then found := true)
                 citems;
               if !found then Value.Bool (not negated)
               else if !saw_null then Value.Null
               else Value.Bool negated
             end))
  | Bound_expr.B_between (a, lo, hi) ->
    let ka = compile a and klo = compile lo and khi = compile hi in
    fun batch ->
      let n = Colbatch.length batch in
      let ca = ka batch in
      let clo = klo batch in
      let chi = khi batch in
      and_cols (cmp_cols Ast.Ge ca clo n) (cmp_cols Ast.Le ca chi n) n
  | Bound_expr.B_like (a, pattern, negated) -> (
    let ka = compile a in
    let matcher = Eval.like_matcher pattern in
    fun batch ->
      let c = ka batch in
      let n = Colbatch.length batch in
      match c.Colbatch.data with
      | Colbatch.D_str xa ->
        {
          Colbatch.data =
            Colbatch.D_bool
              (tabulate n (fun i ->
                   let r = matcher xa.(i) in
                   if negated then not r else r));
          nulls = c.Colbatch.nulls;
        }
      | _ ->
        map1
          (function
            | Value.Null -> Value.Null
            | v ->
              let r = matcher (Eval.as_text v) in
              Value.Bool (if negated then not r else r))
          c n)

(* ------------------------------------------------------------------ *)
(* Predicates → selection vectors                                      *)

let pred_error () = error "predicate did not evaluate to a boolean"

let truthy_sel (c : Colbatch.col) n : int array =
  match c.Colbatch.data with
  | Colbatch.D_bool xa ->
    let nulls = c.Colbatch.nulls in
    let sel = Array.make n 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if xa.(i) && not (is_masked nulls i) then begin
        sel.(!j) <- i;
        incr j
      end
    done;
    if !j = n then sel else Array.sub sel 0 !j
  | Colbatch.D_value xa ->
    let sel = Array.make n 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      match xa.(i) with
      | Value.Bool true ->
        sel.(!j) <- i;
        incr j
      | Value.Bool false | Value.Null -> ()
      | _ -> pred_error ()
    done;
    if !j = n then sel else Array.sub sel 0 !j
  | Colbatch.D_int _ | Colbatch.D_float _ | Colbatch.D_str _ ->
    (* A typed non-boolean column: every unmasked slot is the row
       engine's per-row type error; an all-NULL column rejects every
       row. *)
    (match c.Colbatch.nulls with
    | None -> if n > 0 then pred_error () else [||]
    | Some m ->
      for i = 0 to n - 1 do
        if not m.(i) then pred_error ()
      done;
      [||])

let compile_sel (e : Bound_expr.t) : Colbatch.t -> int array =
  let k = compile e in
  fun batch -> truthy_sel (k batch) (Colbatch.length batch)

(** Per-execution counters. Benchmarks and tests use these to verify
    that an optimization actually changed the work performed, not just
    the wall time. The fault/recovery counters are filled in by the
    distributed executor's checkpoint-recovery machinery. *)

type t = {
  mutable rows_scanned : int;
  mutable rows_joined : int;  (** rows produced by join operators *)
  mutable join_probes : int;  (** probe-side rows processed *)
  mutable rows_aggregated : int;  (** rows consumed by aggregations *)
  mutable rows_materialized : int;
  mutable materializations : int;
  mutable renames : int;
  mutable loop_iterations : int;
  mutable statements : int;  (** statements executed (baselines > 1) *)
  mutable dml_rows_touched : int;  (** rows written by INSERT/UPDATE/DELETE *)
  mutable faults_injected : int;  (** transient faults raised by Fault.plan *)
  mutable retries : int;  (** iteration re-executions after a fault *)
  mutable checkpoints_taken : int;  (** loop checkpoints persisted *)
  mutable recoveries : int;  (** successful restarts from a checkpoint *)
  mutable fallbacks : int;  (** degradations to single-node execution *)
  mutable backoff_steps : int;
      (** cumulative deterministic backoff units accrued across retries
          (simulated, not slept) *)
}

val create : unit -> t
val reset : t -> unit

(** [add ~into src] accumulates [src] into [into]. *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string

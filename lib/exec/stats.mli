(** Per-execution counters. Benchmarks and tests use these to verify
    that an optimization actually changed the work performed, not just
    the wall time. The fault/recovery counters are filled in by the
    distributed executor's checkpoint-recovery machinery.

    Integer counters are {e logical}: deterministic for a given plan
    and input, even under parallel execution (per-task private
    instances are merged in task order). The [op_wall] buckets are
    measured wall time and excluded from {!logical_equal}. *)

(** Operator families timed into {!t.op_wall} via {!timed}. *)
type op =
  | Op_scan
  | Op_filter
  | Op_project
  | Op_join
  | Op_aggregate
  | Op_sort
  | Op_distinct
  | Op_setop  (** union / intersect / except / subquery filters *)

type t = {
  mutable rows_scanned : int;
  mutable rows_filtered : int;  (** rows evaluated by filter operators *)
  mutable rows_projected : int;  (** rows produced by projections *)
  mutable rows_joined : int;  (** rows produced by join operators *)
  mutable join_probes : int;  (** probe-side rows processed *)
  mutable rows_aggregated : int;  (** rows consumed by aggregations *)
  mutable rows_materialized : int;
  mutable materializations : int;
  mutable renames : int;
  mutable loop_iterations : int;
  mutable statements : int;  (** statements executed (baselines > 1) *)
  mutable dml_rows_touched : int;  (** rows written by INSERT/UPDATE/DELETE *)
  mutable faults_injected : int;  (** transient faults raised by Fault.plan *)
  mutable retries : int;  (** iteration re-executions after a fault *)
  mutable checkpoints_taken : int;  (** loop checkpoints persisted *)
  mutable recoveries : int;  (** successful restarts from a checkpoint *)
  mutable fallbacks : int;  (** degradations to single-node execution *)
  mutable backoff_steps : int;
      (** cumulative deterministic backoff units accrued across retries
          (simulated, not slept) *)
  mutable delta_rows_evaluated : int;
      (** working-table rows produced by restricted (delta-driven)
          re-evaluation instead of a full pass over the CTE *)
  mutable full_reevals : int;
      (** full loop-body re-evaluations inside delta-eligible loops
          (first iteration, large deltas, post-recovery restarts) *)
  mutable cache_hits : int;  (** executor-cache lookups served from cache *)
  mutable cache_misses : int;  (** executor-cache lookups that built fresh *)
  mutable build_ms_saved : float;
      (** wall milliseconds of build work avoided by cache hits
          (measured, not deterministic) *)
  op_wall : float array;
      (** seconds spent per operator family, indexed by {!op_index};
          CPU seconds (summed across domains) under parallel execution *)
}

val create : unit -> t
val reset : t -> unit

(** [add ~into src] accumulates [src] into [into] (wall-time buckets
    included). *)
val add : into:t -> t -> unit

(** Full snapshot, wall-time buckets included. The tracer records one
    before a step/iteration and diffs afterwards with
    {!trace_counters}. *)
val copy : t -> t

(** Counter deltas since [since], packaged for a trace span. Pure reads;
    never perturbs either instance. *)
val trace_counters : since:t -> t -> Dbspinner_obs.Trace.counters

(** Copy with only the logical counters retained: [op_wall] and the
    cache counters are zeroed. The executor cache stores one of these
    per entry so a hit can replay the build's logical work. *)
val clone_logical : t -> t

(** Equality of the deterministic logical counters; [op_wall] and the
    cache counters are ignored (cache-on vs cache-off runs must compare
    equal). Used by seq-vs-parallel and cache equivalence tests. *)
val logical_equal : t -> t -> bool

val op_index : op -> int
val op_name : op -> string
val all_ops : op list

(** [timed t op f] runs [f ()], accruing its elapsed wall time into
    [t]'s bucket for [op] (also on exception). *)
val timed : t -> op -> (unit -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** The executor: evaluates logical plans against the catalog and runs
    step programs (program counter, loop state, rename) — the runtime
    half of the paper's §VI.

    Scans resolve names through the catalog with temps shadowing base
    tables; that is how the iterative reference reads the current
    iteration's version of the CTE table. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Table = Dbspinner_storage.Table
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Bound_expr = Dbspinner_plan.Bound_expr
module Trace = Dbspinner_obs.Trace

exception Execution_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Plan evaluation                                                     *)

exception Not_cacheable

(** The relations a plan subtree reads, with their generations, or
    [None] when the subtree is not cache-eligible. Eligible subtrees
    read only named relations (temps or base tables): an [L_values]
    leaf embeds literal rows in the key, where NaN floats would defeat
    the structural equality the memo tables rely on, so it opts out.
    Every source's generation is part of the cache key, which is what
    makes a stale hit impossible: rebinding a temp or mutating a base
    table changes the key rather than racing an invalidation. *)
let cache_sources (catalog : Catalog.t) (plan : Logical.t) :
    Cache.source list option =
  let acc = ref [] in
  let add_scan name =
    let k = String.lowercase_ascii name in
    (* Temps shadow base tables, same precedence as Catalog.resolve. *)
    match Catalog.temp_generation catalog name with
    | Some gen ->
      acc := { Cache.src_temp = true; src_name = k; src_gen = gen } :: !acc
    | None -> (
      match Catalog.find_table_opt catalog name with
      | Some tbl ->
        acc :=
          { Cache.src_temp = false; src_name = k; src_gen = Table.version tbl }
          :: !acc
      | None -> raise Not_cacheable)
  in
  let rec walk = function
    | Logical.L_scan { name; _ } -> add_scan name
    | Logical.L_values _ -> raise Not_cacheable
    | Logical.L_filter { input; _ }
    | Logical.L_project { input; _ }
    | Logical.L_aggregate { input; _ }
    | Logical.L_distinct input
    | Logical.L_sort { input; _ }
    | Logical.L_limit (_, input)
    | Logical.L_offset (_, input) -> walk input
    | Logical.L_join { left; right; _ }
    | Logical.L_union { left; right; _ }
    | Logical.L_intersect { left; right; _ }
    | Logical.L_except { left; right; _ } ->
      walk left;
      walk right
    | Logical.L_subquery_filter { input; sub; _ } ->
      walk input;
      walk sub
  in
  match walk plan with
  | () -> Some (List.sort_uniq compare !acc)
  | exception Not_cacheable -> None

let rec run_plan ?parallel ?cache ?guards ?columnar ~(stats : Stats.t)
    (catalog : Catalog.t) (plan : Logical.t) : Relation.t =
  match plan with
  | Logical.L_scan { name; scan_schema } -> (
    Stats.timed stats Stats.Op_scan @@ fun () ->
    match Catalog.resolve_opt catalog name with
    | None -> error "relation %s does not exist" name
    | Some rel ->
      stats.Stats.rows_scanned <-
        stats.Stats.rows_scanned + Relation.cardinality rel;
      if Schema.arity (Relation.schema rel) <> Schema.arity scan_schema then
        error "relation %s changed arity since planning" name;
      rel)
  | Logical.L_values rel -> rel
  | Logical.L_filter { pred; input } ->
    Operators.filter ?parallel ?cache ?guards ?columnar ~stats pred
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_project { exprs; input } ->
    Operators.project ?parallel ?cache ?guards ?columnar ~stats exprs
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_join { kind; cond; left; right; join_schema } -> (
    let l = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog left in
    (* Cached hash-join path: when the build (right) side reads only
       named relations, memoize its build table under the sources'
       generations. A loop-invariant side (the common-result temp, or a
       base table like [edges]) keeps its generation across iterations
       and hits; the iterative temp is rebound each iteration and
       misses. Falls back to the ordinary join when no equi-key exists
       or the side is not eligible. *)
    let cached =
      match cache, cond with
      | Some c, Some cnd when kind <> Logical.Cross -> (
        let left_arity = Schema.arity (Relation.schema l) in
        match Operators.split_equi_condition ~left_arity cnd with
        | [], _ -> None
        | keys, residual -> (
          match cache_sources catalog right with
          | None -> None
          | Some srcs ->
            let build_keys = List.map snd keys in
            let build =
              Cache.join_build c ~stats
                { Cache.bk_sources = srcs; bk_plan = right; bk_keys = build_keys }
                (fun local ->
                  let r =
                    run_plan ?parallel ?cache ?guards ?columnar ~stats:local
                      catalog right
                  in
                  Operators.make_join_build ?cache ?guards ~stats:local
                    build_keys r)
            in
            Some
              (Operators.hash_join_probe ?parallel ?cache ?guards ?columnar
                 ~stats kind keys residual build l join_schema)))
      | _ -> None
    in
    match cached with
    | Some rel -> rel
    | None ->
      let r = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog right in
      Operators.join ?parallel ?cache ?guards ?columnar ~stats kind cond l r
        join_schema)
  | Logical.L_aggregate { keys; aggs; input; agg_schema } ->
    Operators.aggregate ?cache ?guards ?columnar ~stats ~keys ~aggs
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
      agg_schema
  | Logical.L_distinct input ->
    Operators.distinct ~stats
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_sort { keys; input } ->
    Operators.sort ?cache ~stats keys
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_limit (n, input) ->
    Operators.limit ~stats n
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_offset (n, input) ->
    Operators.offset ~stats n
      (run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input)
  | Logical.L_union { all; left; right } ->
    let l = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog left in
    let r = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog right in
    let u = Operators.union_all ~stats l r in
    if all then u else Operators.distinct ~stats u
  | Logical.L_intersect { all; left; right } ->
    let l = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog left in
    let r = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog right in
    Operators.intersect ~stats ~all l r
  | Logical.L_except { all; left; right } ->
    let l = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog left in
    let r = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog right in
    Operators.except ~stats ~all l r
  | Logical.L_subquery_filter { anti; key; input; sub } -> (
    let i = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog input in
    (* Same memoization for IN / EXISTS subquery digests: a
       loop-invariant subquery is digested once per run. *)
    let cached =
      match cache with
      | Some c -> (
        match cache_sources catalog sub with
        | None -> None
        | Some srcs ->
          let keyed = key <> None in
          let set =
            Cache.sub_set c ~stats
              { Cache.sk_sources = srcs; sk_plan = sub; sk_keyed = keyed }
              (fun local ->
                let sq =
                  run_plan ?parallel ?cache ?guards ?columnar ~stats:local
                    catalog sub
                in
                Operators.make_sub_set ~stats:local ~need_members:keyed sq)
          in
          Some (Operators.subquery_filter_with_set ?cache ~stats ~anti ~key i set))
      | None -> None
    in
    match cached with
    | Some rel -> rel
    | None ->
      let sq = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog sub in
      Operators.subquery_filter ?cache ~stats ~anti ~key i sq)

(* ------------------------------------------------------------------ *)
(* Loop state (paper §VI-B)                                            *)

type loop_state = {
  spec : Program.termination;
  cte : string;
  key_idx : int;
  guard : int;
  mutable iterations : int;
  mutable cumulative_updates : int;
  mutable snapshot : Relation.t option;
      (** CTE version at the top of the current iteration *)
  mutable iter_mark : (float * Stats.t) option;
      (** tracing only: wall clock and stats snapshot at the start of
          the current iteration, so the iteration span can carry its
          own deltas. [None] whenever tracing is off. *)
  mutable d_prev_cte : Relation.t option;
      (** semi-naive only: CTE version consumed by the previous
          iteration's [Delta_materialize], diffed against the current
          version to find changed keys. Distinct from [snapshot]: the
          snapshot feeds termination accounting and is taken at the top
          of the body, while this one is updated by the delta step
          itself, so a program may use either, both or neither. *)
  mutable d_prev_work : Relation.t option;
      (** semi-naive only: the previous iteration's work output, reused
          for unaffected keys when stitching. *)
  mutable d_cutoff_streak : int;
      (** consecutive iterations whose diff hit the large-delta cutoff;
          at {!delta_cutoff_streak_limit} the loop stops diffing
          entirely (PageRank-style loops update every key every
          iteration — without the streak they would pay an O(|CTE|)
          diff per iteration just to learn that, every time). *)
}

(** Consecutive large-delta cutoffs after which a loop permanently
    falls back to full re-evaluation. Deterministic (purely
    data-driven), so every executor makes the same decision and stats
    stay comparable across them. *)
let delta_cutoff_streak_limit = 3

(** Decide whether another iteration is needed, updating counters.
    Returns the continue flag and, when it was computed (or when
    [want_delta] forces it for the trace timeline), this iteration's
    update count.

    First-iteration semantics, load-bearing and regression-tested in
    [test_exec.ml]: when [st.snapshot = None] (no [Snapshot] step has
    run for this loop — hand-built programs, or the distributed
    executor's [Max_iterations] fast path) the "delta" is the {e full}
    CTE cardinality, because with no previous version every row counts
    as updated. Consequently [Max_updates n] charges the whole first
    materialization against its budget, and [Delta_at_most 0] can never
    converge without a snapshot — even on already-converged input —
    until the guard trips. Compiled programs always emit [Snapshot] at
    the top of the loop body, so user queries get true deltas from
    iteration 2 on; the first iteration still counts full cardinality
    (snapshot of a not-yet-materialized CTE is [None]). A refactor
    that made the first delta 0 would silently let [UNTIL DELTA]
    loops terminate one iteration early. *)
let loop_continue ~(stats : Stats.t) ?(want_delta = false) catalog
    (st : loop_state) : bool * int option =
  st.iterations <- st.iterations + 1;
  stats.Stats.loop_iterations <- stats.Stats.loop_iterations + 1;
  let current () = Catalog.find_temp catalog st.cte in
  (* Pure reads only (cardinality / delta_count touch no stats), so
     forcing this for the trace cannot perturb logical counters. *)
  let updates_this_iteration =
    lazy
      (match st.snapshot with
      | None -> Relation.cardinality (current ())
      | Some prev -> Relation.delta_count ~key_idx:st.key_idx prev (current ()))
  in
  let continue_ =
    match st.spec with
    | Program.Max_iterations n -> st.iterations < n
    | Program.Max_updates n ->
      st.cumulative_updates <-
        st.cumulative_updates + Lazy.force updates_this_iteration;
      st.cumulative_updates < n
    | Program.Delta_at_most bound -> Lazy.force updates_this_iteration > bound
    | Program.Data { any; pred } ->
      let rel = current () in
      let satisfied = ref 0 in
      Relation.iter (fun r -> if Eval.eval_pred r pred then incr satisfied) rel;
      (* ALL over an empty relation is vacuously true: a CTE that
         drains to empty must stop, not spin until the guard trips. *)
      let stop =
        if any then !satisfied > 0 else !satisfied = Relation.cardinality rel
      in
      not stop
  in
  (* The guard trips only when another iteration would actually run: a
     loop whose termination fires exactly on the guard iteration
     returns its result instead of erroring. *)
  if continue_ && st.iterations >= st.guard then
    error "iterative CTE %s exceeded the %d-iteration guard without meeting \
           its termination condition"
      st.cte st.guard;
  let delta =
    if want_delta || Lazy.is_val updates_this_iteration then
      Some (Lazy.force updates_this_iteration)
    else None
  in
  (continue_, delta)

(* ------------------------------------------------------------------ *)
(* Recursive CTE (semi-naive)                                          *)

let run_recursive ?parallel ?cache ?guards ?columnar ~stats catalog ~name
    ~work_name ~base ~step_plan ~union_all ~max_recursion =
  let invalidate n = Option.iter (fun c -> Cache.invalidate_temp c n) cache in
  let base_rel = run_plan ?parallel ?cache ?guards ?columnar ~stats catalog base in
  let schema = Relation.schema base_rel in
  let module Row_tbl = Operators.Row_tbl in
  let seen = Row_tbl.create (max 16 (Relation.cardinality base_rel)) in
  let dedupe rel =
    (* Keep only rows never produced before (UNION-distinct mode). *)
    let fresh = ref [] in
    Relation.iter
      (fun r ->
        if not (Row_tbl.mem seen r) then begin
          Row_tbl.replace seen r ();
          fresh := r :: !fresh
        end)
      rel;
    Relation.make schema (Array.of_list (List.rev !fresh))
  in
  let acc = ref [] in
  let push rel = Relation.iter (fun r -> acc := r :: !acc) rel in
  let working = ref (if union_all then base_rel else dedupe base_rel) in
  push !working;
  let rounds = ref 0 in
  while Relation.cardinality !working > 0 do
    incr rounds;
    if !rounds > max_recursion then
      error "recursive CTE %s exceeded %d rounds (missing fixed point?)" name
        max_recursion;
    Catalog.set_temp catalog work_name !working;
    invalidate work_name;
    let produced =
      run_plan ?parallel ?cache ?guards ?columnar ~stats catalog step_plan
    in
    let fresh = if union_all then produced else dedupe produced in
    push fresh;
    working := fresh
  done;
  Catalog.drop_temp catalog work_name;
  invalidate work_name;
  let result = Relation.make schema (Array.of_list (List.rev !acc)) in
  Catalog.set_temp catalog name result;
  invalidate name

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)

let assert_unique_key catalog ~temp ~key_idx =
  let rel = Catalog.find_temp catalog temp in
  (* [key_values] reads whichever view is materialized, so a columnar
     pipeline is not forced into a full row conversion just to check
     one column. *)
  let keys = Relation.key_values rel key_idx in
  let seen = Hashtbl.create (Array.length keys) in
  Array.iter
    (fun k ->
      if Value.is_null k then
        error
          "iterative CTE produced a NULL row key; specify a key column or \
           remove NULL keys"
      else if Hashtbl.mem seen k then
        error
          "iterative CTE produced duplicate rows for key %s; resolve \
           duplicates with an aggregation or GROUP BY (see paper §II)"
          (Value.to_string k)
      else Hashtbl.replace seen k ())
    keys

(** Run a step program to completion and return the final relation.
    [guards] (wall-clock deadline, rows-materialized budget) are
    checked at materialize and loop boundaries. [use_cache] enables the
    per-run iteration-aware {!Cache}; results and logical stats are
    identical either way.

    [trace], when given, records one {!Trace} span per executed step,
    per loop iteration (carrying the convergence gauges), per operator
    family and per program. The [None] path does no tracing work at
    all, and the [Some] path reads counters and relations purely, so
    traced and untraced runs stay [Stats.logical_equal]. *)
let run_program ?parallel ?(stats = Stats.create ()) ?(guards = Guards.none)
    ?(use_cache = true) ?(columnar = false) ?trace (catalog : Catalog.t)
    (program : Program.t) : Relation.t =
  let cache = if use_cache then Some (Cache.create ()) else None in
  (* In-operator probes are free to skip when no limit is set; [None]
     keeps the per-row tick a single branch. *)
  let gopt = if Guards.is_none guards then None else Some guards in
  (* Memory hygiene at every rebinding step: generations already make
     stale hits impossible, but entries built over a dead generation
     would otherwise pile up for the length of the loop. *)
  let invalidate n = Option.iter (fun c -> Cache.invalidate_temp c n) cache in
  let steps = Program.steps program in
  let loops : (int, loop_state) Hashtbl.t = Hashtbl.create 4 in
  let result = ref None in
  let pc = ref 0 in
  let prog_mark =
    match trace with
    | None -> None
    | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats)
  in
  let step_label step =
    match step with
    | Program.Materialize { target; _ } -> "materialize:" ^ target
    | Program.Delta_materialize { target; _ } -> "delta_materialize:" ^ target
    | Program.Rename { from_; into } -> "rename:" ^ from_ ^ "->" ^ into
    | Program.Drop_temp name -> "drop:" ^ name
    | Program.Assert_unique_key { temp; _ } -> "assert_unique:" ^ temp
    | Program.Init_loop { cte; _ } -> "init_loop:" ^ cte
    | Program.Snapshot { loop_id } -> Printf.sprintf "snapshot:%d" loop_id
    | Program.Loop_end { loop_id; _ } -> Printf.sprintf "loop_end:%d" loop_id
    | Program.Recursive_cte { name; _ } -> "recursive_cte:" ^ name
    | Program.Return _ -> "return"
  in
  while !pc < Array.length steps do
    let jump = ref None in
    (* Gauges the current step wants attached to its Step span. *)
    let step_rows = ref (-1) in
    let step_delta = ref (-1) in
    let step_mark =
      match trace with
      | None -> None
      | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats)
    in
    (match steps.(!pc) with
    | Program.Materialize { target; plan } ->
      let rel =
        run_plan ?parallel ?cache ?guards:gopt ~columnar ~stats catalog plan
      in
      stats.Stats.materializations <- stats.Stats.materializations + 1;
      stats.Stats.rows_materialized <-
        stats.Stats.rows_materialized + Relation.cardinality rel;
      step_rows := Relation.cardinality rel;
      Guards.check guards ~stats;
      Catalog.set_temp catalog target rel;
      invalidate target
    | Program.Delta_materialize
        {
          loop_id;
          target;
          cte;
          key_idx;
          full_plan;
          restricted_plan;
          affected_plans;
          delta_name;
          affected_name;
        } -> (
      match Hashtbl.find_opt loops loop_id with
      | None -> error "Delta_materialize for uninitialized loop %d" loop_id
      | Some st ->
        let cur = Catalog.find_temp catalog cte in
        let full_eval () =
          stats.Stats.full_reevals <- stats.Stats.full_reevals + 1;
          run_plan ?parallel ?cache ?guards:gopt ~columnar ~stats catalog
            full_plan
        in
        let work =
          match st.d_prev_cte, st.d_prev_work with
          | Some prev, Some prev_work -> (
            (* Cutoff: when at least half the keys changed, restriction
               buys nothing — the extra diff/stitch passes would make
               the iteration slower than a plain re-evaluation (PageRank
               updates every key every iteration and takes this path).
               The bounded diff abandons the scan — and skips building
               the delta relation entirely — the moment the distinct
               changed-key count reaches the cutoff. [max 1] keeps the
               decision order of the unbounded original: a zero-change
               scan must fall through to the empty-delta fast path, not
               report a cutoff. *)
            let cutoff = max 1 ((Relation.cardinality cur + 1) / 2) in
            match Relation.changed_rows_bounded ~key_idx ~cutoff prev cur with
            | None ->
              st.d_cutoff_streak <- st.d_cutoff_streak + 1;
              full_eval ()
            | Some delta ->
              if Relation.cardinality delta = 0 then begin
                (* Nothing changed: last iteration's work output is
                   still exact. (The loop is about to converge; this
                   avoids one final full pass.) *)
                st.d_cutoff_streak <- 0;
                prev_work
              end
              else begin
                let changed_keys = Hashtbl.create 64 in
                Relation.iter
                  (fun r -> Hashtbl.replace changed_keys r.(key_idx) ())
                  delta;
                st.d_cutoff_streak <- 0;
                Catalog.set_temp catalog delta_name delta;
                invalidate delta_name;
                (* Affected keys: directly-changed keys plus every key
                   that reads a changed row through a join leg. *)
                let affected = Hashtbl.create 64 in
                Hashtbl.iter
                  (fun k () -> Hashtbl.replace affected k ())
                  changed_keys;
                List.iter
                  (fun p ->
                    let rel =
                      run_plan ?parallel ?cache ?guards:gopt ~columnar ~stats
                        catalog p
                    in
                    Relation.iter
                      (fun r -> Hashtbl.replace affected r.(0) ())
                      rel)
                  affected_plans;
                let a_rows =
                  Hashtbl.fold (fun k () acc -> [| k |] :: acc) affected []
                in
                Catalog.set_temp catalog affected_name
                  (Relation.make
                     (Schema.of_names [ "key" ])
                     (Array.of_list a_rows));
                invalidate affected_name;
                let restricted =
                  run_plan ?parallel ?cache ?guards:gopt ~columnar ~stats
                    catalog restricted_plan
                in
                stats.Stats.delta_rows_evaluated <-
                  stats.Stats.delta_rows_evaluated
                  + Relation.cardinality restricted;
                (* Stitch in CTE order, one key at a time: recomputed
                   rows for affected keys, the previous work row
                   otherwise. Eligible plans emit output in driver
                   (CTE) key order, so this reproduces the full
                   evaluation bit for bit — including rows-per-key
                   multiplicities, so a duplicate-key plan still trips
                   [Assert_unique_key] exactly as it would have. *)
                let by_key : (Value.t, Row.t list) Hashtbl.t =
                  Hashtbl.create 64
                in
                Relation.iter
                  (fun r ->
                    let k = r.(key_idx) in
                    let rest =
                      try Hashtbl.find by_key k with Not_found -> []
                    in
                    Hashtbl.replace by_key k (r :: rest))
                  restricted;
                let out = ref [] in
                let cur_rows = Relation.rows cur in
                let prev_rows = Relation.rows prev_work in
                let n_cur = Array.length cur_rows in
                (* Fast path: when the previous output lists the same
                   keys at the same positions (the steady state of an
                   iterative loop, whose key sequence is stable and —
                   per the §II requirement, enforced by
                   [Assert_unique_key] — duplicate-free), unaffected
                   rows are copied by index with no hashing. *)
                let aligned =
                  Array.length prev_rows = n_cur
                  &&
                  let ok = ref true in
                  let i = ref 0 in
                  while !ok && !i < n_cur do
                    if
                      not
                        (Value.equal
                           cur_rows.(!i).(key_idx)
                           prev_rows.(!i).(key_idx))
                    then ok := false;
                    incr i
                  done;
                  !ok
                in
                if aligned then
                  for i = 0 to n_cur - 1 do
                    let k = cur_rows.(i).(key_idx) in
                    if Hashtbl.mem affected k then
                      List.iter
                        (fun row -> out := row :: !out)
                        (List.rev
                           (try Hashtbl.find by_key k with Not_found -> []))
                    else out := prev_rows.(i) :: !out
                  done
                else begin
                  let prev_by_key = Hashtbl.create 64 in
                  Relation.iter
                    (fun r ->
                      if not (Hashtbl.mem prev_by_key r.(key_idx)) then
                        Hashtbl.replace prev_by_key r.(key_idx) r)
                    prev_work;
                  let seen_keys =
                    Hashtbl.create (Relation.cardinality cur)
                  in
                  Relation.iter
                    (fun r ->
                      let k = r.(key_idx) in
                      if not (Hashtbl.mem seen_keys k) then begin
                        Hashtbl.replace seen_keys k ();
                        if Hashtbl.mem affected k then
                          List.iter
                            (fun row -> out := row :: !out)
                            (List.rev
                               (try Hashtbl.find by_key k
                                with Not_found -> []))
                        else
                          match Hashtbl.find_opt prev_by_key k with
                          | Some row -> out := row :: !out
                          | None -> ()
                      end)
                    cur
                end;
                Relation.make
                  (Relation.schema prev_work)
                  (Array.of_list (List.rev !out))
              end)
          | _ -> full_eval ()
        in
        if st.d_cutoff_streak >= delta_cutoff_streak_limit then begin
          (* This loop updates (nearly) every key every iteration;
             stop paying for the diff and re-evaluate in full from
             here on. *)
          st.d_prev_cte <- None;
          st.d_prev_work <- None
        end
        else begin
          st.d_prev_cte <- Some cur;
          st.d_prev_work <- Some work
        end;
        stats.Stats.materializations <- stats.Stats.materializations + 1;
        stats.Stats.rows_materialized <-
          stats.Stats.rows_materialized + Relation.cardinality work;
        step_rows := Relation.cardinality work;
        Guards.check guards ~stats;
        Catalog.set_temp catalog target work;
        invalidate target)
    | Program.Rename { from_; into } ->
      Catalog.rename_temp catalog ~from_ ~into;
      stats.Stats.renames <- stats.Stats.renames + 1;
      invalidate from_;
      invalidate into
    | Program.Drop_temp name ->
      Catalog.drop_temp catalog name;
      invalidate name
    | Program.Assert_unique_key { temp; key_idx } ->
      assert_unique_key catalog ~temp ~key_idx
    | Program.Init_loop { loop_id; termination; cte; key_idx; guard } ->
      Hashtbl.replace loops loop_id
        {
          spec = termination;
          cte;
          key_idx;
          guard;
          iterations = 0;
          cumulative_updates = 0;
          snapshot = None;
          iter_mark =
            (match trace with
            | None -> None
            | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats));
          d_prev_cte = None;
          d_prev_work = None;
          d_cutoff_streak = 0;
        }
    | Program.Snapshot { loop_id } -> (
      match Hashtbl.find_opt loops loop_id with
      | None -> error "Snapshot for uninitialized loop %d" loop_id
      | Some st -> st.snapshot <- Catalog.find_temp_opt catalog st.cte)
    | Program.Loop_end { loop_id; body_start } -> (
      match Hashtbl.find_opt loops loop_id with
      | None -> error "Loop_end for uninitialized loop %d" loop_id
      | Some st ->
        Guards.check guards ~stats;
        let continue_, delta =
          loop_continue ~stats ~want_delta:(trace <> None) catalog st
        in
        (match trace, st.iter_mark with
        | Some tr, Some (t0, s0) ->
          let now = Unix.gettimeofday () in
          let rows =
            match Catalog.find_temp_opt catalog st.cte with
            | Some rel -> Relation.cardinality rel
            | None -> -1
          in
          let d = Option.value delta ~default:(-1) in
          step_delta := d;
          Trace.emit tr ~kind:Trace.Iteration ~label:st.cte ~loop_id
            ~iteration:st.iterations ~rows ~delta:d
            ~cum_updates:
              (match st.spec with
              | Program.Max_updates _ -> st.cumulative_updates
              | _ -> -1)
            ~wall_ms:((now -. t0) *. 1000.)
            ~counters:(Stats.trace_counters ~since:s0 stats)
            ();
          if continue_ then st.iter_mark <- Some (now, Stats.copy stats)
        | _ -> ());
        if continue_ then jump := Some body_start)
    | Program.Recursive_cte
        { name; work_name; base; step_plan; union_all; max_recursion } ->
      run_recursive ?parallel ?cache ?guards:gopt ~columnar ~stats catalog
        ~name ~work_name ~base ~step_plan ~union_all ~max_recursion
    | Program.Return plan ->
      let rel =
        run_plan ?parallel ?cache ?guards:gopt ~columnar ~stats catalog plan
      in
      step_rows := Relation.cardinality rel;
      result := Some rel);
    (match trace, step_mark with
    | Some tr, Some (t0, s0) ->
      Trace.emit tr ~kind:Trace.Step
        ~label:(step_label steps.(!pc))
        ~rows:!step_rows ~delta:!step_delta
        ~wall_ms:((Unix.gettimeofday () -. t0) *. 1000.)
        ~counters:(Stats.trace_counters ~since:s0 stats)
        ()
    | _ -> ());
    match !jump with
    | Some target -> pc := target
    | None -> incr pc
  done;
  (match trace, prog_mark with
  | Some tr, Some (t0, s0) ->
    List.iter
      (fun op ->
        let i = Stats.op_index op in
        let dt = stats.Stats.op_wall.(i) -. s0.Stats.op_wall.(i) in
        if dt > 0.0 then
          Trace.emit tr ~kind:Trace.Operator ~label:(Stats.op_name op)
            ~wall_ms:(dt *. 1000.) ~counters:Trace.zero_counters ())
      Stats.all_ops;
    Trace.emit tr ~kind:Trace.Program ~label:"program"
      ~rows:
        (match !result with
        | Some rel -> Relation.cardinality rel
        | None -> -1)
      ~wall_ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ~counters:(Stats.trace_counters ~since:s0 stats)
      ()
  | _ -> ());
  match !result with
  | Some rel -> rel
  | None -> error "program terminated without a Return step"

(** Loop-iteration count of the last loop in a program run — exposed
    for tests via running with an explicit [stats]. *)
let run_program_with_stats ?parallel ?guards ?use_cache ?columnar ?trace
    catalog program =
  let stats = Stats.create () in
  let rel =
    run_program ?parallel ~stats ?guards ?use_cache ?columnar ?trace catalog
      program
  in
  (rel, stats)

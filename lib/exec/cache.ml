(** Iteration-aware executor cache, one instance per program run.

    The paper's common-result rewrite (§V-A) hoists loop-invariant
    inputs into temps materialized once before the loop — but the
    executor still rebuilt the hash-join build table over those temps on
    every iteration, and re-interpreted every expression tree per row.
    This module finishes the optimization inside the engine:

    - {e join builds}, {e semi/anti-join membership sets} and
      {e IN-subquery sets} are memoized under a key combining the
      producing plan subtree, the key expressions, and the
      {b generation} of every source the subtree reads
      ({!Catalog.temp_generation} for temps, {!Table.version} for base
      tables). Loop-invariant sides keep their generation across
      iterations and hit; the iterative temp is rebound (fresh
      generation) each iteration, so its entries miss naturally —
      generations make stale hits impossible by construction.
    - {e compiled expressions} ({!Eval.compile} closures) are memoized
      by the bound-expression value itself, so a filter or join key
      inside a 50-iteration loop is compiled once, not 50 times.

    Each entry stores a {!Stats.clone_logical} snapshot of the logical
    counters its build accrued; a hit replays that snapshot into the
    caller's stats, so cache-on and cache-off runs report identical
    logical counters ({!Stats.logical_equal}) and differ only in wall
    time and the cache counters themselves.

    Concurrency: only the compiled-expression table is consulted from
    worker domains (the distributed per-partition paths), so only it is
    mutex-guarded. The build/set memos are touched exclusively by the
    single-threaded program executor — and their miss thunks recurse
    into nested cache lookups, so guarding them with the same lock would
    deadlock. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Relation = Dbspinner_storage.Relation
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical

(** One relation a cached plan subtree reads, identified by name plus
    its generation/version at build time. Names are lowercased
    (catalog-normal form). *)
type source = { src_temp : bool; src_name : string; src_gen : int }

type build_key = {
  bk_sources : source list;  (** sorted, deduplicated *)
  bk_plan : Logical.t;  (** the build-side plan subtree *)
  bk_keys : Bound_expr.t list;  (** build-side key expressions *)
}

type set_key = {
  sk_sources : source list;
  sk_plan : Logical.t;  (** the subquery plan subtree *)
  sk_keyed : bool;  (** IN (membership set built) vs EXISTS (emptiness only) *)
}

(** Open-addressing (linear probing) int-keyed mirror of a build
    table; an empty bucket marks a free slot (real buckets are never
    empty). Capacity is a power of two at most half full. *)
type int_mirror = {
  im_mask : int;  (** capacity - 1 *)
  im_keys : int array;
  im_buckets : int list array;
      (** build-row indices per key, most recent first (the boxed
          table's bucket order) *)
}

(** A hash-join build table: the built relation plus buckets of
    [(row index, row)] keyed by the key-expression values. The boxed
    table is behind a memoizing thunk: the columnar probe serves
    single-Int-key joins entirely from {!int_mirror} and never boxes
    the build side. The thunk is safe to force from worker domains
    (atomic memo, pure builder — a racy double build is wasted work,
    not corruption). The [right_matched] tracking array for outer
    joins is deliberately NOT here — it is per-probe state and is
    allocated by each probe call. *)
type join_build = {
  jb_rel : Relation.t;
  jb_table : unit -> (int * Row.t) list Row.Tbl.t;
  mutable jb_int : int_mirror option option;
      (** lazily built unboxed mirror of the build keys for
          single-Int-key builds; [None] = not yet examined,
          [Some None] = ineligible (multi-column or non-Int keys),
          [Some (Some m)] = mirror. Written once by the coordinator
          before any parallel probe fan-out, read-only afterwards. *)
}

(** An IN / EXISTS subquery result digest (see
    {!Operators.subquery_filter} for the null-aware semantics the
    fields feed). [ss_members] is only populated when the key was
    built with [sk_keyed = true]. *)
type sub_set = {
  ss_empty : bool;
  ss_has_null : bool;
  ss_members : (Value.t, unit) Hashtbl.t;
}

type 'a entry = {
  value : 'a;
  replay : Stats.t;  (** logical counters the build accrued *)
  built_s : float;  (** wall seconds the build took *)
}

type t = {
  lock : Mutex.t;  (** guards [compiled] and [compiled_vec]; see module doc *)
  compiled : (Bound_expr.t, Row.t -> Value.t) Hashtbl.t;
  compiled_vec : (Bound_expr.t, Vec_eval.kernel) Hashtbl.t;
  builds : (build_key, join_build entry) Hashtbl.t;
  sets : (set_key, sub_set entry) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    compiled = Hashtbl.create 64;
    compiled_vec = Hashtbl.create 64;
    builds = Hashtbl.create 16;
    sets = Hashtbl.create 16;
  }

(* Generic memoization with stats replay. On a miss the build runs
   against a private Stats.t so we can snapshot exactly what it did;
   the snapshot (with cache/wall fields zeroed) is replayed into the
   caller on every hit, keeping logical counters identical to a
   cache-off run. *)
let memo tbl ~(stats : Stats.t) key build =
  match Hashtbl.find_opt tbl key with
  | Some e ->
    stats.Stats.cache_hits <- stats.Stats.cache_hits + 1;
    Stats.add ~into:stats e.replay;
    stats.Stats.build_ms_saved <-
      stats.Stats.build_ms_saved +. (e.built_s *. 1000.);
    e.value
  | None ->
    stats.Stats.cache_misses <- stats.Stats.cache_misses + 1;
    let local = Stats.create () in
    let t0 = Unix.gettimeofday () in
    let value = build local in
    let built_s = Unix.gettimeofday () -. t0 in
    Stats.add ~into:stats local;
    Hashtbl.replace tbl key
      { value; replay = Stats.clone_logical local; built_s };
    value

let join_build t ~stats key build = memo t.builds ~stats key build
let sub_set t ~stats key build = memo t.sets ~stats key build

(** Fetch (or compile and insert) the closure for an expression. Called
    once per operator call, including from concurrent partition domains,
    hence the lock; holding it across the compile is safe because
    {!Eval.compile} is pure and never re-enters the cache. *)
let compiled t ~(stats : Stats.t) (e : Bound_expr.t) : Row.t -> Value.t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match Hashtbl.find_opt t.compiled e with
  | Some f ->
    stats.Stats.cache_hits <- stats.Stats.cache_hits + 1;
    f
  | None ->
    stats.Stats.cache_misses <- stats.Stats.cache_misses + 1;
    let f = Eval.compile e in
    Hashtbl.replace t.compiled e f;
    f

(** Columnar twin of {!compiled}: memoized {!Vec_eval.compile} kernels.
    A separate table because an expression used by both engines (e.g.
    row-based build keys next to a columnar probe) needs both forms.
    Cache hit/miss counts are outside {!Stats.logical_equal}, so the
    columnar path counting differently from the row path is fine. *)
let compiled_kernel t ~(stats : Stats.t) (e : Bound_expr.t) : Vec_eval.kernel =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match Hashtbl.find_opt t.compiled_vec e with
  | Some k ->
    stats.Stats.cache_hits <- stats.Stats.cache_hits + 1;
    k
  | None ->
    stats.Stats.cache_misses <- stats.Stats.cache_misses + 1;
    let k = Vec_eval.compile e in
    Hashtbl.replace t.compiled_vec e k;
    k

let compiled_pred t ~stats (e : Bound_expr.t) : Row.t -> bool =
  let f = compiled t ~stats e in
  fun row ->
    match f row with
    | Value.Bool b -> b
    | Value.Null -> false
    | _ -> raise (Eval.Runtime_error "predicate did not evaluate to a boolean")

(** Drop every build/set entry that read the named temp. Generations
    already guarantee correctness (a rebound temp gets a fresh
    generation, so stale entries can never hit again); this is memory
    hygiene, preventing one dead build table per iteration from
    accumulating for the lifetime of the run. *)
let invalidate_temp t name =
  let name = String.lowercase_ascii name in
  let reads_temp sources =
    List.exists (fun s -> s.src_temp && String.equal s.src_name name) sources
  in
  let stale_builds =
    Hashtbl.fold
      (fun k _ acc -> if reads_temp k.bk_sources then k :: acc else acc)
      t.builds []
  in
  List.iter (Hashtbl.remove t.builds) stale_builds;
  let stale_sets =
    Hashtbl.fold
      (fun k _ acc -> if reads_temp k.sk_sources then k :: acc else acc)
      t.sets []
  in
  List.iter (Hashtbl.remove t.sets) stale_sets

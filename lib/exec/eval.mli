(** Bound-expression interpreter with SQL three-valued logic: NULL
    comparisons are unknown, AND/OR are Kleene, arithmetic propagates
    NULL, COALESCE/LEAST/GREATEST skip NULLs. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Bound_expr = Dbspinner_plan.Bound_expr

exception Runtime_error of string

(** Evaluate over a row.
    @raise Runtime_error on type misuse
    @raise Division_by_zero on integer division by zero. *)
val eval : Row.t -> Bound_expr.t -> Value.t

(** Condition semantics for WHERE/ON/HAVING: unknown (NULL) rejects the
    row.
    @raise Runtime_error when the expression is not boolean. *)
val eval_pred : Row.t -> Bound_expr.t -> bool

(** Closure-compile an expression: the [Bound_expr] tree is walked once
    at compile time (resolving operator dispatch, literals, column
    indices and LIKE patterns), and the returned closure re-walks
    nothing per row. Result and errors are identical to {!eval}. *)
val compile : Bound_expr.t -> Row.t -> Value.t

(** Compiled counterpart of {!eval_pred} (NULL rejects the row). *)
val compile_pred : Bound_expr.t -> Row.t -> bool

(** LIKE matching ([%] any sequence, [_] one character); exposed for
    tests. *)
val like_match : string -> string -> bool

(** [like_matcher pattern] precompiles a LIKE pattern into an
    allocation-free per-string matcher. *)
val like_matcher : string -> string -> bool

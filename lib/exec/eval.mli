(** Bound-expression interpreter with SQL three-valued logic: NULL
    comparisons are unknown, AND/OR are Kleene, arithmetic propagates
    NULL, COALESCE/LEAST/GREATEST skip NULLs. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Bound_expr = Dbspinner_plan.Bound_expr

exception Runtime_error of string

(** Evaluate over a row.
    @raise Runtime_error on type misuse
    @raise Division_by_zero on integer division by zero. *)
val eval : Row.t -> Bound_expr.t -> Value.t

(** Condition semantics for WHERE/ON/HAVING: unknown (NULL) rejects the
    row.
    @raise Runtime_error when the expression is not boolean. *)
val eval_pred : Row.t -> Bound_expr.t -> bool

(** Closure-compile an expression: the [Bound_expr] tree is walked once
    at compile time (resolving operator dispatch, literals, column
    indices and LIKE patterns), and the returned closure re-walks
    nothing per row. Result and errors are identical to {!eval}. *)
val compile : Bound_expr.t -> Row.t -> Value.t

(** Compiled counterpart of {!eval_pred} (NULL rejects the row). *)
val compile_pred : Bound_expr.t -> Row.t -> bool

(** LIKE matching ([%] any sequence, [_] one character); exposed for
    tests. *)
val like_match : string -> string -> bool

(** [like_matcher pattern] precompiles a LIKE pattern into an
    allocation-free per-string matcher. *)
val like_matcher : string -> string -> bool

(** {2 Value-level combinators}

    The scalar semantics shared with the columnar evaluator
    ({!Vec_eval}); its typed kernels must produce bit-identical
    results, and its boxed fallbacks call these directly. *)

(** Three-valued comparison: NULL operand yields NULL. *)
val compare_values :
  Dbspinner_sql.Ast.binop -> Value.t -> Value.t -> Value.t

(** Kleene conjunction/disjunction.
    @raise Runtime_error on non-boolean operands. *)
val kleene_and : Value.t -> Value.t -> Value.t

val kleene_or : Value.t -> Value.t -> Value.t

(** String concatenation ([||]); NULL propagates. *)
val concat : Value.t -> Value.t -> Value.t

(** Textual image used by [||], LIKE and the string functions ([Str]
    passes through unquoted). *)
val as_text : Value.t -> string

(** Scalar function application (COALESCE, ROUND, SUBSTR, ...).
    @raise Runtime_error on arity or type misuse. *)
val apply_func : Bound_expr.func -> Value.t list -> Value.t

(** CAST semantics; NULL stays NULL. *)
val cast_value : Dbspinner_storage.Column_type.t -> Value.t -> Value.t

(** Half-even-free rounding used by ROUND:
    [Float.round (x *. 10^d) /. 10^d]. *)
val round_to_digits : float -> int -> float

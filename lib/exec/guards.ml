(** Resource guards: a wall-clock deadline and a rows-materialized
    budget checked at materialize and loop boundaries by both the
    single-node and the distributed executor. A production engine
    serving many tenants must bound runaway iterative queries — an
    unbounded [UNTIL] loop can otherwise monopolize a worker; guards
    turn that into a typed, recoverable error instead of a hung
    session. *)

exception Resource_exhausted of string

type t = {
  deadline : float option;
      (** absolute wall-clock time (Unix epoch seconds) after which
          execution aborts *)
  timeout : float option;
      (** absolute wall-clock statement timeout; distinct from
          [deadline] so the two produce distinct error messages — a
          session deadline covers the whole connection's work, the
          statement timeout a single script. The server relies on it to
          keep a wedged query from stalling the checkpointer or a
          shutdown drain. *)
  row_budget : int option;
      (** maximum total rows the program may materialize *)
  interrupt : (unit -> string option) option;
      (** external cancellation probe, polled at the same boundaries as
          the limits; [Some reason] aborts with that reason. The server
          uses this to drain in-flight iterative loops at an iteration
          boundary during shutdown. *)
}

let none = { deadline = None; timeout = None; row_budget = None; interrupt = None }

let is_none t =
  t.deadline = None && t.timeout = None && t.row_budget = None
  && Option.is_none t.interrupt

(** Build guards from relative knobs: [deadline_seconds] and
    [timeout_seconds] are measured from now. *)
let make ?deadline_seconds ?timeout_seconds ?row_budget ?interrupt () =
  let now = Unix.gettimeofday () in
  {
    deadline = Option.map (fun s -> now +. s) deadline_seconds;
    timeout = Option.map (fun s -> now +. s) timeout_seconds;
    row_budget;
    interrupt;
  }

let error fmt = Printf.ksprintf (fun s -> raise (Resource_exhausted s)) fmt

(** Raise {!Resource_exhausted} when a limit has been crossed. The
    row budget is compared against [stats.rows_materialized], so the
    caller must account materialized rows before checking. *)
let check t ~(stats : Stats.t) =
  (match t.interrupt with
  | Some probe -> (
    match probe () with
    | Some reason ->
      error "interrupted after %d loop iterations: %s"
        stats.Stats.loop_iterations reason
    | None -> ())
  | None -> ());
  (match t.row_budget with
  | Some budget when stats.Stats.rows_materialized > budget ->
    error
      "row budget exhausted: %d rows materialized exceeds the %d-row budget"
      stats.Stats.rows_materialized budget
  | _ -> ());
  (match t.timeout with
  | Some cutoff when Unix.gettimeofday () > cutoff ->
    error "statement timeout after %d loop iterations"
      stats.Stats.loop_iterations
  | _ -> ());
  match t.deadline with
  | Some deadline when Unix.gettimeofday () > deadline ->
    error "deadline exceeded after %d loop iterations"
      stats.Stats.loop_iterations
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Periodic in-operator probes                                         *)

(** Rows between two probes inside an operator loop. Large enough that
    the clock read disappears in the per-row work (one gettimeofday per
    8192 rows), small enough that a giant scan/join notices a
    statement timeout within milliseconds. *)
let probe_interval = 8192

(** Mutable row countdown threaded through an operator's inner loop;
    one per loop so chunk-parallel tasks never share state. *)
type probe = { mutable until_check : int }

let probe () = { until_check = probe_interval }

(** Count one row; every {!probe_interval} rows, run {!check}. Checking
    mid-operator means a single enormous statement honors timeouts and
    interrupts instead of only noticing them at the next materialize or
    loop boundary. [None] guards compile to a single branch. *)
let tick (guards : t option) (p : probe) ~(stats : Stats.t) =
  match guards with
  | None -> ()
  | Some g ->
    p.until_check <- p.until_check - 1;
    if p.until_check <= 0 then begin
      p.until_check <- probe_interval;
      check g ~stats
    end

(** Bulk {!tick}: count [n] rows at once (columnar operators process a
    whole batch per call). Probes fire at least as often per row as the
    per-row variant would over the same volume. *)
let tick_n (guards : t option) (p : probe) ~(stats : Stats.t) n =
  match guards with
  | None -> ()
  | Some g ->
    p.until_check <- p.until_check - n;
    if p.until_check <= 0 then begin
      p.until_check <- probe_interval;
      check g ~stats
    end

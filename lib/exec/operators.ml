(** Physical relational operators. Each consumes and produces
    materialized {!Relation.t} values; joins are hash joins whenever an
    equi-conjunct can be extracted from the condition, with a
    nested-loop fallback.

    [filter], [project] and the hash-join probe accept an optional
    {!Parallel.ctx} and split large inputs into contiguous chunks
    executed across the Domain pool. Chunk outputs are concatenated in
    chunk order and per-chunk counters are merged in chunk order, so
    the parallel path is bit-identical to the sequential one. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Ast = Dbspinner_sql.Ast
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical

module Row_tbl = Row.Tbl

(* With a cache the expression is closure-compiled once per program run
   and fetched here (a hit after the first call); without one it falls
   back to the tree-walking interpreter, so the legacy path executes
   exactly the code it always did. Either way the resolution happens
   once per operator call, outside the per-row loop. *)
let compiled_val ?cache ~stats (e : Bound_expr.t) : Row.t -> Value.t =
  match cache with
  | Some c -> Cache.compiled c ~stats e
  | None -> fun row -> Eval.eval row e

let compiled_pred ?cache ~stats (e : Bound_expr.t) : Row.t -> bool =
  match cache with
  | Some c -> Cache.compiled_pred c ~stats e
  | None -> fun row -> Eval.eval_pred row e

let filter ?parallel ?cache ?guards ~(stats : Stats.t) pred (rel : Relation.t)
    : Relation.t =
  Stats.timed stats Stats.Op_filter @@ fun () ->
  let pred = compiled_pred ?cache ~stats pred in
  let rows = Relation.rows rel in
  let n = Array.length rows in
  let chunk (st : Stats.t) lo len =
    st.Stats.rows_filtered <- st.Stats.rows_filtered + len;
    let probe = Guards.probe () in
    let kept = ref [] in
    for j = lo + len - 1 downto lo do
      Guards.tick guards probe ~stats:st;
      let r = rows.(j) in
      if pred r then kept := r :: !kept
    done;
    Array.of_list !kept
  in
  let chunks = Parallel.chunked parallel ~stats ~n chunk in
  Relation.make_trusted (Relation.schema rel)
    (Array.concat (Array.to_list chunks))

let project ?parallel ?cache ?guards ~(stats : Stats.t) exprs (rel : Relation.t)
    : Relation.t =
  Stats.timed stats Stats.Op_project @@ fun () ->
  let schema = Schema.of_names (List.map snd exprs) in
  let exprs =
    Array.of_list
      (List.map (fun (e, _) -> compiled_val ?cache ~stats e) exprs)
  in
  let rows = Relation.rows rel in
  let n = Array.length rows in
  (* Chunks write disjoint index ranges of one pre-sized output array,
     so the merged result is position-identical to the sequential map. *)
  let out = Array.make n [||] in
  let chunk (st : Stats.t) lo len =
    st.Stats.rows_projected <- st.Stats.rows_projected + len;
    let probe = Guards.probe () in
    for j = lo to lo + len - 1 do
      Guards.tick guards probe ~stats:st;
      let r = rows.(j) in
      out.(j) <- Array.map (fun f -> f r) exprs
    done
  in
  ignore (Parallel.chunked parallel ~stats ~n chunk);
  Relation.make_trusted schema out

let distinct ~stats (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_distinct @@ fun () ->
  let seen = Row_tbl.create (Relation.cardinality rel) in
  let keep = ref [] in
  Relation.iter
    (fun r ->
      if not (Row_tbl.mem seen r) then begin
        Row_tbl.replace seen r ();
        keep := r :: !keep
      end)
    rel;
  Relation.make_trusted (Relation.schema rel) (Array.of_list (List.rev !keep))

let sort ?cache ~stats keys (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_sort @@ fun () ->
  let keys =
    Array.of_list
      (List.map (fun (e, desc) -> (compiled_val ?cache ~stats e, desc)) keys)
  in
  let compare_rows a b =
    let rec go i =
      if i >= Array.length keys then 0
      else
        let f, descending = keys.(i) in
        let c = Value.compare (f a) (f b) in
        let c = if descending then -c else c in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let rows = Array.copy (Relation.rows rel) in
  Array.stable_sort compare_rows rows;
  Relation.make_trusted (Relation.schema rel) rows

let limit ~stats n (rel : Relation.t) : Relation.t =
  ignore stats;
  let n = min n (Relation.cardinality rel) in
  Relation.make_trusted (Relation.schema rel) (Array.sub (Relation.rows rel) 0 n)

let offset ~stats n (rel : Relation.t) : Relation.t =
  ignore stats;
  let n = min n (Relation.cardinality rel) in
  Relation.make_trusted (Relation.schema rel)
    (Array.sub (Relation.rows rel) n (Relation.cardinality rel - n))

let union_all ~stats (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  Relation.make_trusted (Relation.schema a)
    (Array.append (Relation.rows a) (Relation.rows b))

let counts_of (rel : Relation.t) =
  let table = Row_tbl.create (max 16 (Relation.cardinality rel)) in
  Relation.iter
    (fun r ->
      Row_tbl.replace table r
        (1 + Option.value (Row_tbl.find_opt table r) ~default:0))
    rel;
  table

(** INTERSECT [ALL]: bag semantics take the minimum multiplicity; set
    semantics emit each common row once. *)
let intersect ~stats ~all (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let right_counts = counts_of b in
  let emitted = Row_tbl.create 16 in
  let out = ref [] in
  Relation.iter
    (fun r ->
      match Row_tbl.find_opt right_counts r with
      | Some n when n > 0 ->
        if all then begin
          Row_tbl.replace right_counts r (n - 1);
          out := r :: !out
        end
        else if not (Row_tbl.mem emitted r) then begin
          Row_tbl.replace emitted r ();
          out := r :: !out
        end
      | _ -> ())
    a;
  Relation.make_trusted (Relation.schema a) (Array.of_list (List.rev !out))

(** EXCEPT [ALL]: bag semantics subtract multiplicities; set semantics
    emit each left-only row once. *)
let except ~stats ~all (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let right_counts = counts_of b in
  let emitted = Row_tbl.create 16 in
  let out = ref [] in
  Relation.iter
    (fun r ->
      let remaining = Option.value (Row_tbl.find_opt right_counts r) ~default:0 in
      if all then begin
        if remaining > 0 then Row_tbl.replace right_counts r (remaining - 1)
        else out := r :: !out
      end
      else if remaining = 0 && not (Row_tbl.mem emitted r) then begin
        Row_tbl.replace emitted r ();
        out := r :: !out
      end)
    a;
  Relation.make_trusted (Relation.schema a) (Array.of_list (List.rev !out))

(** Digest a subquery result for IN / EXISTS filtering. The membership
    set is only built when [need_members] (an IN probe exists); EXISTS
    only needs emptiness, and indexing [r.(0)] on a multi-column EXISTS
    subquery would be wrong. Cacheable: depends only on [sub]. *)
let make_sub_set ~stats ~need_members (sub : Relation.t) : Cache.sub_set =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let members =
    Hashtbl.create (if need_members then max 16 (Relation.cardinality sub) else 1)
  in
  let sub_has_null = ref false in
  if need_members then
    Relation.iter
      (fun r ->
        if Value.is_null r.(0) then sub_has_null := true
        else Hashtbl.replace members r.(0) ())
      sub;
  {
    Cache.ss_empty = Relation.is_empty sub;
    ss_has_null = !sub_has_null;
    ss_members = members;
  }

(** Uncorrelated IN / EXISTS subquery predicates as semi / anti joins
    over a prepared {!make_sub_set} digest.
    [key = Some e]: keep input rows per SQL IN / NOT IN semantics,
    including the null-aware NOT IN rules (a NULL probe or a NULL in a
    non-empty subquery makes the predicate unknown, which rejects);
    [key = None]: EXISTS — keep all rows iff the subquery is non-empty
    (inverted for [anti]). *)
let subquery_filter_with_set ?cache ~stats ~anti ~(key : Bound_expr.t option)
    (input : Relation.t) (set : Cache.sub_set) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  match key with
  | None ->
    let nonempty = not set.Cache.ss_empty in
    if nonempty <> anti then input
    else Relation.empty (Relation.schema input)
  | Some probe ->
    let probe = compiled_val ?cache ~stats probe in
    let members = set.Cache.ss_members in
    let keep row =
      let v = probe row in
      if not anti then (not (Value.is_null v)) && Hashtbl.mem members v
      else if set.Cache.ss_empty then true  (* x NOT IN (empty) is TRUE *)
      else
        (not (Value.is_null v))
        && (not set.Cache.ss_has_null)
        && not (Hashtbl.mem members v)
    in
    Relation.make_trusted (Relation.schema input)
      (Array.of_seq (Seq.filter keep (Array.to_seq (Relation.rows input))))

let subquery_filter ?cache ~stats ~anti ~(key : Bound_expr.t option)
    (input : Relation.t) (sub : Relation.t) : Relation.t =
  let set = make_sub_set ~stats ~need_members:(key <> None) sub in
  subquery_filter_with_set ?cache ~stats ~anti ~key input set

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)

(** Split a join condition (over the concatenated row) into hashable
    equi-key pairs and a residual predicate. A conjunct [a = b]
    qualifies when [a] reads only left columns and [b] only right
    columns (or vice versa). *)
let split_equi_condition ~left_arity cond =
  let conjuncts =
    let rec split acc = function
      | Bound_expr.B_binop (Ast.And, a, b) -> split (split acc a) b
      | e -> e :: acc
    in
    List.rev (split [] cond)
  in
  let side e =
    let cols = Bound_expr.columns_of e in
    if cols = [] then `Either
    else if List.for_all (fun i -> i < left_arity) cols then `Left
    else if List.for_all (fun i -> i >= left_arity) cols then `Right
    else `Both
  in
  let keys = ref [] in
  let residual = ref [] in
  List.iter
    (fun conj ->
      match conj with
      | Bound_expr.B_binop (Ast.Eq, a, b) -> (
        match side a, side b with
        | `Left, `Right -> keys := (a, Bound_expr.shift (-left_arity) b) :: !keys
        | `Right, `Left -> keys := (b, Bound_expr.shift (-left_arity) a) :: !keys
        | _ -> residual := conj :: !residual)
      | _ -> residual := conj :: !residual)
    conjuncts;
  (List.rev !keys, List.rev !residual)

let null_row n : Row.t = Array.make n Value.Null

let key_has_null (k : Row.t) = Array.exists Value.is_null k

(** Build the hash table for [hash_join_probe] over the right side.
    Split out of the join so the executor can memoize it: when the
    build side is loop-invariant, the table survives across iterations
    of the loop (see {!Cache}). The result carries no per-probe state —
    outer-join matched-row tracking is allocated by each probe call. *)
let make_join_build ?cache ?guards ~(stats : Stats.t) keys
    (right : Relation.t) : Cache.join_build =
  Stats.timed stats Stats.Op_join @@ fun () ->
  let right_keys =
    Array.of_list (List.map (fun e -> compiled_val ?cache ~stats e) keys)
  in
  let table = Row_tbl.create (max 16 (Relation.cardinality right)) in
  let gprobe = Guards.probe () in
  Array.iteri
    (fun idx row ->
      Guards.tick guards gprobe ~stats;
      let k = Array.map (fun f -> f row) right_keys in
      if not (key_has_null k) then
        Row_tbl.replace table k
          ((idx, row) :: (try Row_tbl.find table k with Not_found -> [])))
    (Relation.rows right);
  { Cache.jb_rel = right; jb_table = table }

(** Probe a {!make_join_build} table with the left rows. Emits
    left++right rows; [kind] controls unmatched-row padding. The probe
    is chunk-parallel over the left rows, with per-chunk outputs
    concatenated in chunk order (probe order == left order, identical
    to sequential). *)
let hash_join_probe ?parallel ?cache ?guards ~(stats : Stats.t) kind keys
    residual (build : Cache.join_build) (left : Relation.t) schema : Relation.t
    =
  Stats.timed stats Stats.Op_join @@ fun () ->
  let right = build.Cache.jb_rel in
  let table = build.Cache.jb_table in
  let left_keys =
    Array.of_list
      (List.map (fun (l, _) -> compiled_val ?cache ~stats l) keys)
  in
  let residual =
    List.map (fun p -> compiled_pred ?cache ~stats p) residual
  in
  let passes_residual row = List.for_all (fun p -> p row) residual in
  let right_matched =
    match kind with
    | Logical.Full_outer | Logical.Right_outer ->
      Some (Array.make (Relation.cardinality right) false)
    | _ -> None
  in
  let l_arity = Schema.arity (Relation.schema left) in
  let r_arity = Schema.arity (Relation.schema right) in
  let lrows = Relation.rows left in
  let n = Array.length lrows in
  (* Chunks only ever write [true] into [right_matched]; writes become
     visible at the barrier, before the padding pass reads the array. *)
  let probe (st : Stats.t) lo len =
    let out = ref [] in
    let emit row = out := row :: !out in
    let gprobe = Guards.probe () in
    for j = lo to lo + len - 1 do
      Guards.tick guards gprobe ~stats:st;
      let lrow = lrows.(j) in
      st.Stats.join_probes <- st.Stats.join_probes + 1;
      let k = Array.map (fun f -> f lrow) left_keys in
      let matched = ref false in
      if not (key_has_null k) then begin
        match Row_tbl.find_opt table k with
        | None -> ()
        | Some candidates ->
          List.iter
            (fun (ridx, rrow) ->
              let combined = Row.concat lrow rrow in
              if passes_residual combined then begin
                matched := true;
                Option.iter (fun arr -> arr.(ridx) <- true) right_matched;
                emit combined
              end)
            candidates
      end;
      if not !matched then
        match kind with
        | Logical.Left_outer | Logical.Full_outer ->
          emit (Row.concat lrow (null_row r_arity))
        | Logical.Inner | Logical.Right_outer | Logical.Cross -> ()
    done;
    Array.of_list (List.rev !out)
  in
  let chunks = Parallel.chunked parallel ~stats ~n probe in
  let pad =
    match right_matched, kind with
    | Some arr, (Logical.Right_outer | Logical.Full_outer) ->
      let extra = ref [] in
      let rrows = Relation.rows right in
      for idx = Array.length arr - 1 downto 0 do
        if not arr.(idx) then
          extra := Row.concat (null_row l_arity) rrows.(idx) :: !extra
      done;
      [ Array.of_list !extra ]
    | _ -> []
  in
  let rows = Array.concat (Array.to_list chunks @ pad) in
  stats.Stats.rows_joined <- stats.Stats.rows_joined + Array.length rows;
  Relation.make_trusted schema rows

(** Hash join over extracted keys: build on the right, probe with the
    left. *)
let hash_join ?parallel ?cache ?guards ~(stats : Stats.t) kind keys residual
    (left : Relation.t) (right : Relation.t) schema : Relation.t =
  let build = make_join_build ?cache ?guards ~stats (List.map snd keys) right in
  hash_join_probe ?parallel ?cache ?guards ~stats kind keys residual build left
    schema

(** Nested-loop fallback when no equi-key exists. *)
let nested_loop_join ?cache ?guards ~(stats : Stats.t) kind cond
    (left : Relation.t) (right : Relation.t) schema : Relation.t =
  Stats.timed stats Stats.Op_join @@ fun () ->
  let l_arity = Schema.arity (Relation.schema left) in
  let r_arity = Schema.arity (Relation.schema right) in
  let right_matched =
    match kind with
    | Logical.Full_outer | Logical.Right_outer ->
      Some (Array.make (Relation.cardinality right) false)
    | _ -> None
  in
  let out = ref [] in
  let emit row = out := row :: !out in
  let passes =
    match cond with
    | None -> fun _ -> true
    | Some c -> compiled_pred ?cache ~stats c
  in
  let gprobe = Guards.probe () in
  Relation.iter
    (fun lrow ->
      stats.Stats.join_probes <- stats.Stats.join_probes + 1;
      let matched = ref false in
      Array.iteri
        (fun ridx rrow ->
          (* tick per candidate pair: a cross join is quadratic in its
             inputs, so probing only per left row would still leave
             arbitrarily long gaps between guard checks *)
          Guards.tick guards gprobe ~stats;
          let combined = Row.concat lrow rrow in
          if passes combined then begin
            matched := true;
            Option.iter (fun arr -> arr.(ridx) <- true) right_matched;
            emit combined
          end)
        (Relation.rows right);
      if not !matched then
        match kind with
        | Logical.Left_outer | Logical.Full_outer ->
          emit (Row.concat lrow (null_row r_arity))
        | Logical.Inner | Logical.Right_outer | Logical.Cross -> ())
    left;
  (match right_matched, kind with
  | Some arr, (Logical.Right_outer | Logical.Full_outer) ->
    Array.iteri
      (fun idx m ->
        if not m then emit (Row.concat (null_row l_arity) (Relation.rows right).(idx)))
      arr
  | _ -> ());
  let rows = Array.of_list (List.rev !out) in
  stats.Stats.rows_joined <- stats.Stats.rows_joined + Array.length rows;
  Relation.make_trusted schema rows

let join ?parallel ?cache ?guards ~stats kind cond (left : Relation.t)
    (right : Relation.t) schema : Relation.t =
  match kind, cond with
  | Logical.Cross, _ ->
    nested_loop_join ?cache ?guards ~stats kind None left right schema
  | _, None -> nested_loop_join ?cache ?guards ~stats kind None left right schema
  | _, Some c -> (
    let left_arity = Schema.arity (Relation.schema left) in
    match split_equi_condition ~left_arity c with
    | [], _ ->
      nested_loop_join ?cache ?guards ~stats kind (Some c) left right schema
    | keys, residual ->
      hash_join ?parallel ?cache ?guards ~stats kind keys residual left right
        schema)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

type accumulator = {
  mutable count : int;  (** non-null inputs, or rows for COUNT star *)
  mutable sum : Value.t;  (** running sum; Null until first input *)
  mutable min : Value.t;
  mutable max : Value.t;
  seen : unit Row_tbl.t option;  (** per-group distinct set *)
}

let new_accumulator distinct =
  {
    count = 0;
    sum = Value.Null;
    min = Value.Null;
    max = Value.Null;
    seen = (if distinct then Some (Row_tbl.create 8) else None);
  }

let accumulate acc (v : Value.t) =
  let fresh =
    match acc.seen with
    | None -> true
    | Some seen ->
      let key = [| v |] in
      if Row_tbl.mem seen key then false
      else begin
        Row_tbl.replace seen key ();
        true
      end
  in
  if fresh then begin
    if not (Value.is_null v) then begin
      acc.count <- acc.count + 1;
      acc.sum <- (if Value.is_null acc.sum then v else Value.add acc.sum v);
      if Value.is_null acc.min || Value.compare v acc.min < 0 then acc.min <- v;
      if Value.is_null acc.max || Value.compare v acc.max > 0 then acc.max <- v
    end
  end

let finalize (kind : Ast.agg_kind) acc : Value.t =
  match kind with
  | Ast.Count | Ast.Count_star -> Value.Int acc.count
  | Ast.Sum -> acc.sum
  | Ast.Min -> acc.min
  | Ast.Max -> acc.max
  | Ast.Avg ->
    if acc.count = 0 then Value.Null
    else Value.Float (Value.to_float acc.sum /. float_of_int acc.count)

let aggregate ?cache ?guards ~(stats : Stats.t) ~keys
    ~(aggs : Logical.agg list) (input : Relation.t) schema : Relation.t =
  Stats.timed stats Stats.Op_aggregate @@ fun () ->
  let keys =
    Array.of_list (List.map (fun e -> compiled_val ?cache ~stats e) keys)
  in
  let aggs = Array.of_list aggs in
  let agg_args =
    Array.map
      (fun (a : Logical.agg) ->
        match a.agg_kind with
        | Ast.Count_star -> fun _ -> Value.Null  (* unused *)
        | _ -> compiled_val ?cache ~stats a.agg_arg)
      aggs
  in
  stats.Stats.rows_aggregated <-
    stats.Stats.rows_aggregated + Relation.cardinality input;
  let groups : (Row.t * accumulator array) Row_tbl.t =
    Row_tbl.create (max 16 (Relation.cardinality input / 4))
  in
  let order = ref [] in
  let gprobe = Guards.probe () in
  Relation.iter
    (fun row ->
      Guards.tick guards gprobe ~stats;
      let key = Array.map (fun f -> f row) keys in
      let _, accs =
        match Row_tbl.find_opt groups key with
        | Some entry -> entry
        | None ->
          let accs =
            Array.map (fun (a : Logical.agg) -> new_accumulator a.agg_distinct) aggs
          in
          Row_tbl.replace groups key (key, accs);
          order := key :: !order;
          (key, accs)
      in
      Array.iteri
        (fun i (a : Logical.agg) ->
          match a.agg_kind with
          | Ast.Count_star ->
            (* COUNT star counts rows regardless of nulls *)
            accs.(i).count <- accs.(i).count + 1
          | _ -> accumulate accs.(i) (agg_args.(i) row))
        aggs)
    input;
  let emit key =
    let _, accs = Row_tbl.find groups key in
    let agg_values =
      Array.mapi (fun i (a : Logical.agg) -> finalize a.agg_kind accs.(i)) aggs
    in
    Row.concat key agg_values
  in
  let rows =
    if Array.length keys = 0 && Row_tbl.length groups = 0 then
      (* Global aggregate over an empty input yields one default row. *)
      [|
        Row.concat [||]
          (Array.map
             (fun (a : Logical.agg) -> finalize a.agg_kind (new_accumulator false))
             aggs);
      |]
    else Array.of_list (List.rev_map emit !order)
  in
  Relation.make_trusted schema rows

(** Physical relational operators. Each consumes and produces
    materialized {!Relation.t} values; joins are hash joins whenever an
    equi-conjunct can be extracted from the condition, with a
    nested-loop fallback.

    [filter], [project] and the hash-join probe accept an optional
    {!Parallel.ctx} and split large inputs into contiguous chunks
    executed across the Domain pool. Chunk outputs are concatenated in
    chunk order and per-chunk counters are merged in chunk order, so
    the parallel path is bit-identical to the sequential one. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Colbatch = Dbspinner_storage.Colbatch
module Ast = Dbspinner_sql.Ast
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical

module Row_tbl = Row.Tbl

(* With a cache the expression is closure-compiled once per program run
   and fetched here (a hit after the first call); without one it falls
   back to the tree-walking interpreter, so the legacy path executes
   exactly the code it always did. Either way the resolution happens
   once per operator call, outside the per-row loop. *)
let compiled_val ?cache ~stats (e : Bound_expr.t) : Row.t -> Value.t =
  match cache with
  | Some c -> Cache.compiled c ~stats e
  | None -> fun row -> Eval.eval row e

let compiled_pred ?cache ~stats (e : Bound_expr.t) : Row.t -> bool =
  match cache with
  | Some c -> Cache.compiled_pred c ~stats e
  | None -> fun row -> Eval.eval_pred row e

(* Columnar twin of [compiled_val]: a memoized (or fresh)
   {!Vec_eval.compile} kernel. *)
let compiled_kernel ?cache ~stats (e : Bound_expr.t) : Vec_eval.kernel =
  match cache with
  | Some c -> Cache.compiled_kernel c ~stats e
  | None -> Vec_eval.compile e

let filter ?parallel ?cache ?guards ?(columnar = false) ~(stats : Stats.t)
    pred (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_filter @@ fun () ->
  if columnar then begin
    (* Batch path: evaluate the predicate kernel over each chunk, turn
       the truthy rows into a selection vector, and gather — rows kept
       and chunk order are exactly the row loop's, so the result is
       bit-identical. *)
    let kern = compiled_kernel ?cache ~stats pred in
    let batch = Relation.columnar rel in
    let n = Colbatch.length batch in
    let chunk (st : Stats.t) lo len =
      st.Stats.rows_filtered <- st.Stats.rows_filtered + len;
      let probe = Guards.probe () in
      Guards.tick_n guards probe ~stats:st len;
      let sub = Colbatch.slice batch lo len in
      Colbatch.gather sub (Vec_eval.truthy_sel (kern sub) len)
    in
    let chunks = Parallel.chunked parallel ~stats ~n chunk in
    Relation.of_batch (Relation.schema rel) (Colbatch.concat chunks)
  end
  else begin
    let pred = compiled_pred ?cache ~stats pred in
    let rows = Relation.rows rel in
    let n = Array.length rows in
    let chunk (st : Stats.t) lo len =
      st.Stats.rows_filtered <- st.Stats.rows_filtered + len;
      let probe = Guards.probe () in
      let kept = ref [] in
      for j = lo + len - 1 downto lo do
        Guards.tick guards probe ~stats:st;
        let r = rows.(j) in
        if pred r then kept := r :: !kept
      done;
      Array.of_list !kept
    in
    let chunks = Parallel.chunked parallel ~stats ~n chunk in
    Relation.make_trusted (Relation.schema rel)
      (Array.concat (Array.to_list chunks))
  end

let project ?parallel ?cache ?guards ?(columnar = false) ~(stats : Stats.t)
    exprs (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_project @@ fun () ->
  let schema = Schema.of_names (List.map snd exprs) in
  if columnar then begin
    let kerns =
      Array.of_list
        (List.map (fun (e, _) -> compiled_kernel ?cache ~stats e) exprs)
    in
    let batch = Relation.columnar rel in
    let n = Colbatch.length batch in
    let chunk (st : Stats.t) lo len =
      st.Stats.rows_projected <- st.Stats.rows_projected + len;
      let probe = Guards.probe () in
      Guards.tick_n guards probe ~stats:st len;
      let sub = Colbatch.slice batch lo len in
      Colbatch.make ~len (Array.map (fun k -> k sub) kerns)
    in
    let chunks = Parallel.chunked parallel ~stats ~n chunk in
    Relation.of_batch schema (Colbatch.concat chunks)
  end
  else begin
    let exprs =
      Array.of_list
        (List.map (fun (e, _) -> compiled_val ?cache ~stats e) exprs)
    in
    let rows = Relation.rows rel in
    let n = Array.length rows in
    (* Chunks write disjoint index ranges of one pre-sized output array,
       so the merged result is position-identical to the sequential map. *)
    let out = Array.make n [||] in
    let chunk (st : Stats.t) lo len =
      st.Stats.rows_projected <- st.Stats.rows_projected + len;
      let probe = Guards.probe () in
      for j = lo to lo + len - 1 do
        Guards.tick guards probe ~stats:st;
        let r = rows.(j) in
        out.(j) <- Array.map (fun f -> f r) exprs
      done
    in
    ignore (Parallel.chunked parallel ~stats ~n chunk);
    Relation.make_trusted schema out
  end

let distinct ~stats (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_distinct @@ fun () ->
  let seen = Row_tbl.create (Relation.cardinality rel) in
  let keep = ref [] in
  Relation.iter
    (fun r ->
      if not (Row_tbl.mem seen r) then begin
        Row_tbl.replace seen r ();
        keep := r :: !keep
      end)
    rel;
  Relation.make_trusted (Relation.schema rel) (Array.of_list (List.rev !keep))

let sort ?cache ~stats keys (rel : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_sort @@ fun () ->
  let keys =
    Array.of_list
      (List.map (fun (e, desc) -> (compiled_val ?cache ~stats e, desc)) keys)
  in
  let compare_rows a b =
    let rec go i =
      if i >= Array.length keys then 0
      else
        let f, descending = keys.(i) in
        let c = Value.compare (f a) (f b) in
        let c = if descending then -c else c in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let rows = Array.copy (Relation.rows rel) in
  Array.stable_sort compare_rows rows;
  Relation.make_trusted (Relation.schema rel) rows

let limit ~stats n (rel : Relation.t) : Relation.t =
  ignore stats;
  let n = min n (Relation.cardinality rel) in
  Relation.make_trusted (Relation.schema rel) (Array.sub (Relation.rows rel) 0 n)

let offset ~stats n (rel : Relation.t) : Relation.t =
  ignore stats;
  let n = min n (Relation.cardinality rel) in
  Relation.make_trusted (Relation.schema rel)
    (Array.sub (Relation.rows rel) n (Relation.cardinality rel - n))

let union_all ~stats (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  Relation.make_trusted (Relation.schema a)
    (Array.append (Relation.rows a) (Relation.rows b))

let counts_of (rel : Relation.t) =
  let table = Row_tbl.create (max 16 (Relation.cardinality rel)) in
  Relation.iter
    (fun r ->
      Row_tbl.replace table r
        (1 + Option.value (Row_tbl.find_opt table r) ~default:0))
    rel;
  table

(** INTERSECT [ALL]: bag semantics take the minimum multiplicity; set
    semantics emit each common row once. *)
let intersect ~stats ~all (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let right_counts = counts_of b in
  let emitted = Row_tbl.create 16 in
  let out = ref [] in
  Relation.iter
    (fun r ->
      match Row_tbl.find_opt right_counts r with
      | Some n when n > 0 ->
        if all then begin
          Row_tbl.replace right_counts r (n - 1);
          out := r :: !out
        end
        else if not (Row_tbl.mem emitted r) then begin
          Row_tbl.replace emitted r ();
          out := r :: !out
        end
      | _ -> ())
    a;
  Relation.make_trusted (Relation.schema a) (Array.of_list (List.rev !out))

(** EXCEPT [ALL]: bag semantics subtract multiplicities; set semantics
    emit each left-only row once. *)
let except ~stats ~all (a : Relation.t) (b : Relation.t) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let right_counts = counts_of b in
  let emitted = Row_tbl.create 16 in
  let out = ref [] in
  Relation.iter
    (fun r ->
      let remaining = Option.value (Row_tbl.find_opt right_counts r) ~default:0 in
      if all then begin
        if remaining > 0 then Row_tbl.replace right_counts r (remaining - 1)
        else out := r :: !out
      end
      else if remaining = 0 && not (Row_tbl.mem emitted r) then begin
        Row_tbl.replace emitted r ();
        out := r :: !out
      end)
    a;
  Relation.make_trusted (Relation.schema a) (Array.of_list (List.rev !out))

(** Digest a subquery result for IN / EXISTS filtering. The membership
    set is only built when [need_members] (an IN probe exists); EXISTS
    only needs emptiness, and indexing [r.(0)] on a multi-column EXISTS
    subquery would be wrong. Cacheable: depends only on [sub]. *)
let make_sub_set ~stats ~need_members (sub : Relation.t) : Cache.sub_set =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  let members =
    Hashtbl.create (if need_members then max 16 (Relation.cardinality sub) else 1)
  in
  let sub_has_null = ref false in
  if need_members then
    Relation.iter
      (fun r ->
        if Value.is_null r.(0) then sub_has_null := true
        else Hashtbl.replace members r.(0) ())
      sub;
  {
    Cache.ss_empty = Relation.is_empty sub;
    ss_has_null = !sub_has_null;
    ss_members = members;
  }

(** Uncorrelated IN / EXISTS subquery predicates as semi / anti joins
    over a prepared {!make_sub_set} digest.
    [key = Some e]: keep input rows per SQL IN / NOT IN semantics,
    including the null-aware NOT IN rules (a NULL probe or a NULL in a
    non-empty subquery makes the predicate unknown, which rejects);
    [key = None]: EXISTS — keep all rows iff the subquery is non-empty
    (inverted for [anti]). *)
let subquery_filter_with_set ?cache ~stats ~anti ~(key : Bound_expr.t option)
    (input : Relation.t) (set : Cache.sub_set) : Relation.t =
  Stats.timed stats Stats.Op_setop @@ fun () ->
  match key with
  | None ->
    let nonempty = not set.Cache.ss_empty in
    if nonempty <> anti then input
    else Relation.empty (Relation.schema input)
  | Some probe ->
    let probe = compiled_val ?cache ~stats probe in
    let members = set.Cache.ss_members in
    let keep row =
      let v = probe row in
      if not anti then (not (Value.is_null v)) && Hashtbl.mem members v
      else if set.Cache.ss_empty then true  (* x NOT IN (empty) is TRUE *)
      else
        (not (Value.is_null v))
        && (not set.Cache.ss_has_null)
        && not (Hashtbl.mem members v)
    in
    Relation.make_trusted (Relation.schema input)
      (Array.of_seq (Seq.filter keep (Array.to_seq (Relation.rows input))))

let subquery_filter ?cache ~stats ~anti ~(key : Bound_expr.t option)
    (input : Relation.t) (sub : Relation.t) : Relation.t =
  let set = make_sub_set ~stats ~need_members:(key <> None) sub in
  subquery_filter_with_set ?cache ~stats ~anti ~key input set

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)

(** Split a join condition (over the concatenated row) into hashable
    equi-key pairs and a residual predicate. A conjunct [a = b]
    qualifies when [a] reads only left columns and [b] only right
    columns (or vice versa). *)
let split_equi_condition ~left_arity cond =
  let conjuncts =
    let rec split acc = function
      | Bound_expr.B_binop (Ast.And, a, b) -> split (split acc a) b
      | e -> e :: acc
    in
    List.rev (split [] cond)
  in
  let side e =
    let cols = Bound_expr.columns_of e in
    if cols = [] then `Either
    else if List.for_all (fun i -> i < left_arity) cols then `Left
    else if List.for_all (fun i -> i >= left_arity) cols then `Right
    else `Both
  in
  let keys = ref [] in
  let residual = ref [] in
  List.iter
    (fun conj ->
      match conj with
      | Bound_expr.B_binop (Ast.Eq, a, b) -> (
        match side a, side b with
        | `Left, `Right -> keys := (a, Bound_expr.shift (-left_arity) b) :: !keys
        | `Right, `Left -> keys := (b, Bound_expr.shift (-left_arity) a) :: !keys
        | _ -> residual := conj :: !residual)
      | _ -> residual := conj :: !residual)
    conjuncts;
  (List.rev !keys, List.rev !residual)

let null_row n : Row.t = Array.make n Value.Null

let key_has_null (k : Row.t) = Array.exists Value.is_null k

(** Build the hash table for [hash_join_probe] over the right side.
    Split out of the join so the executor can memoize it: when the
    build side is loop-invariant, the table survives across iterations
    of the loop (see {!Cache}). The result carries no per-probe state —
    outer-join matched-row tracking is allocated by each probe call. *)
let make_join_build ?cache ?guards ~(stats : Stats.t) keys
    (right : Relation.t) : Cache.join_build =
  Stats.timed stats Stats.Op_join @@ fun () ->
  let right_keys =
    Array.of_list (List.map (fun e -> compiled_val ?cache ~stats e) keys)
  in
  let n = Relation.cardinality right in
  let gprobe = Guards.probe () in
  Guards.tick_n guards gprobe ~stats n;
  (* The boxed table is deferred behind an atomic memo: the columnar
     probe answers single-Int-key joins from the unboxed mirror alone,
     so the per-row boxing below is only paid when a boxed lookup is
     actually needed. The builder is pure (guard ticks were applied
     above), so a racy double force from worker domains is benign. *)
  let memo = Atomic.make None in
  let jb_table () =
    match Atomic.get memo with
    | Some t -> t
    | None ->
      let table = Row_tbl.create (max 16 n) in
      Array.iteri
        (fun idx row ->
          let k = Array.map (fun f -> f row) right_keys in
          if not (key_has_null k) then
            Row_tbl.replace table k
              ((idx, row) :: (try Row_tbl.find table k with Not_found -> [])))
        (Relation.rows right);
      Atomic.set memo (Some table);
      table
  in
  { Cache.jb_rel = right; jb_table; jb_int = None }

(** The unboxed mirror of a build table, for single-Int-key builds.
    Eligibility requires every build key to be [[| Value.Int _ |]]:
    {!Value.equal} admits cross-type Int/Float equality and structural
    NULL matching, but against an all-Int build side an int-indexed
    lookup returns exactly the buckets the boxed lookup would (a NULL
    or Float probe key can only match nothing — build keys are
    null-free by construction). Memoized on the build record so a
    cached (loop-invariant) build pays the scan once; must be forced
    on the coordinator before any parallel probe fan-out. *)
(* Multiplicative hash for the open-addressing mirror: sequential key
   spaces (node ids) otherwise cluster badly under linear probing. *)
let mix_int k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let mirror_capacity count =
  let rec up c = if c >= 2 * count + 1 then c else up (2 * c) in
  up 16

(* Preferred mirror construction: evaluate the right key expression as
   a column kernel over the build side's columnar view. A typed
   [D_int] column proves eligibility without boxing a single value;
   masked (NULL) slots are skipped exactly as the boxed build skips
   NULL keys. Ascending-index insertion with per-bucket prepend
   reproduces the boxed table's most-recent-first bucket order. *)
let int_mirror_of_column (ka : int array) (nulls : bool array option) =
  let n = Array.length ka in
  let cap = mirror_capacity n in
  let imask = cap - 1 in
  let ikeys = Array.make cap 0 in
  let ibuckets = Array.make cap [] in
  for idx = 0 to n - 1 do
    let masked = match nulls with Some m -> m.(idx) | None -> false in
    if not masked then begin
      let k = ka.(idx) in
      let s = ref (mix_int k land imask) in
      while ibuckets.(!s) <> [] && ikeys.(!s) <> k do
        s := (!s + 1) land imask
      done;
      ikeys.(!s) <- k;
      ibuckets.(!s) <- idx :: ibuckets.(!s)
    end
  done;
  { Cache.im_mask = imask; im_keys = ikeys; im_buckets = ibuckets }

let int_mirror ?cache ~(stats : Stats.t) keys (build : Cache.join_build) =
  match build.Cache.jb_int with
  | Some m -> m
  | None ->
    let direct =
      match keys with
      | [ (_, rexpr) ] -> (
        let rk = compiled_kernel ?cache ~stats rexpr in
        let c = rk (Relation.columnar build.Cache.jb_rel) in
        match c.Colbatch.data with
        | Colbatch.D_int ka ->
          Some (Some (int_mirror_of_column ka c.Colbatch.nulls))
        | _ -> None (* undecided: scan the boxed table below *))
      | _ -> None
    in
    let m =
      match direct with
      | Some m -> m
      | None ->
        let table = build.Cache.jb_table () in
        let eligible = ref true in
        let count = ref 0 in
        Row_tbl.iter
          (fun k _ ->
            incr count;
            match k with [| Value.Int _ |] -> () | _ -> eligible := false)
          table;
        if not !eligible then None
        else begin
          let cap = mirror_capacity !count in
          let im =
            {
              Cache.im_mask = cap - 1;
              im_keys = Array.make cap 0;
              im_buckets = Array.make cap [];
            }
          in
          Row_tbl.iter
            (fun k bucket ->
              match k with
              | [| Value.Int key |] ->
                let idx = ref (mix_int key land im.Cache.im_mask) in
                while im.Cache.im_buckets.(!idx) <> [] do
                  idx := (!idx + 1) land im.Cache.im_mask
                done;
                im.Cache.im_keys.(!idx) <- key;
                im.Cache.im_buckets.(!idx) <- List.map fst bucket
              | _ -> ())
            table;
          Some im
        end
    in
    build.Cache.jb_int <- Some m;
    m

(* Growable pair-of-index buffer for the columnar probe: candidate
   match lists have unknown fan-out, and boxing each (lidx, ridx) pair
   into a list would dominate the probe loop. *)
type sel_buf = {
  mutable lsel : int array;
  mutable rsel : int array;
  mutable size : int;
}

let sel_buf_create cap =
  { lsel = Array.make (max 16 cap) 0; rsel = Array.make (max 16 cap) 0; size = 0 }

let sel_buf_push b l r =
  if b.size = Array.length b.lsel then begin
    let cap = 2 * b.size in
    let grow a = let a' = Array.make cap 0 in Array.blit a 0 a' 0 b.size; a' in
    b.lsel <- grow b.lsel;
    b.rsel <- grow b.rsel
  end;
  b.lsel.(b.size) <- l;
  b.rsel.(b.size) <- r;
  b.size <- b.size + 1

let sel_buf_contents b =
  (Array.sub b.lsel 0 b.size, Array.sub b.rsel 0 b.size)

(** Columnar probe: evaluate the left key expressions as column
    kernels, probe the (row-built, cache-shared) table per left row in
    index order collecting [(left, right)] index pairs — [-1] marks an
    outer-join pad — and materialize the output as one
    [gather_pad ++ gather_pad] per side. Candidate order, pad
    placement, [join_probes] and [rows_joined] are exactly the row
    probe's. Only called when there is no residual predicate (a
    residual wants the combined row; those joins stay row-based). *)
let hash_join_probe_columnar ?parallel ?cache ?guards ~(stats : Stats.t) kind
    keys (build : Cache.join_build) (left : Relation.t) schema : Relation.t =
  let right = build.Cache.jb_rel in
  let key_kerns =
    Array.of_list
      (List.map (fun (l, _) -> compiled_kernel ?cache ~stats l) keys)
  in
  let right_matched =
    match kind with
    | Logical.Full_outer | Logical.Right_outer ->
      Some (Array.make (Relation.cardinality right) false)
    | _ -> None
  in
  let lbatch = Relation.columnar left in
  let n = Colbatch.length lbatch in
  (* Forced here, on the coordinator, so worker domains never write
     the memo field. *)
  let mirror =
    if Array.length key_kerns = 1 then int_mirror ?cache ~stats keys build
    else None
  in
  let probe (st : Stats.t) lo len =
    let sub = Colbatch.slice lbatch lo len in
    let key_cols = Array.map (fun k -> k sub) key_kerns in
    let buf = sel_buf_create len in
    let gprobe = Guards.probe () in
    (match mirror, key_cols with
    | Some im, [| { Colbatch.data = Colbatch.D_int ka; nulls } |] ->
      (* Unboxed probe: int key column against the open-addressing
         mirror. A masked (NULL) slot matches nothing, same as the
         boxed path's [key_has_null] skip against a null-free build
         table. Guard ticks and the probe counter are applied in bulk
         (both are totals; the row path reaches the same values). *)
      st.Stats.join_probes <- st.Stats.join_probes + len;
      Guards.tick_n guards gprobe ~stats:st len;
      let pad =
        match kind with
        | Logical.Left_outer | Logical.Full_outer -> true
        | Logical.Inner | Logical.Right_outer | Logical.Cross -> false
      in
      let imask = im.Cache.im_mask in
      let ikeys = im.Cache.im_keys in
      let ibuckets = im.Cache.im_buckets in
      let rec lookup k idx =
        match ibuckets.(idx) with
        | [] -> []
        | b -> if ikeys.(idx) = k then b else lookup k ((idx + 1) land imask)
      in
      for j = 0 to len - 1 do
        let isnull = match nulls with Some m -> m.(j) | None -> false in
        let candidates =
          if isnull then []
          else
            let k = ka.(j) in
            lookup k (mix_int k land imask)
        in
        match candidates with
        | [] -> if pad then sel_buf_push buf (lo + j) (-1)
        | _ -> (
          match right_matched with
          | Some arr ->
            List.iter
              (fun ridx ->
                arr.(ridx) <- true;
                sel_buf_push buf (lo + j) ridx)
              candidates
          | None ->
            List.iter
              (fun ridx -> sel_buf_push buf (lo + j) ridx)
              candidates)
      done
    | _ ->
      let table = build.Cache.jb_table () in
      for j = 0 to len - 1 do
        Guards.tick guards gprobe ~stats:st;
        st.Stats.join_probes <- st.Stats.join_probes + 1;
        let k = Array.map (fun c -> Colbatch.get c j) key_cols in
        let matched = ref false in
        if not (key_has_null k) then begin
          match Row_tbl.find_opt table k with
          | None -> ()
          | Some candidates ->
            List.iter
              (fun ((ridx, _rrow) : int * Row.t) ->
                matched := true;
                (match right_matched with
                | Some arr -> arr.(ridx) <- true
                | None -> ());
                sel_buf_push buf (lo + j) ridx)
              candidates
        end;
        if not !matched then
          match kind with
          | Logical.Left_outer | Logical.Full_outer ->
            sel_buf_push buf (lo + j) (-1)
          | Logical.Inner | Logical.Right_outer | Logical.Cross -> ()
      done);
    sel_buf_contents buf
  in
  let chunks = Parallel.chunked parallel ~stats ~n probe in
  let pad =
    match right_matched, kind with
    | Some arr, (Logical.Right_outer | Logical.Full_outer) ->
      let buf = sel_buf_create 16 in
      Array.iteri (fun ridx m -> if not m then sel_buf_push buf (-1) ridx) arr;
      [ sel_buf_contents buf ]
    | _ -> []
  in
  let parts = Array.to_list chunks @ pad in
  let lsel = Array.concat (List.map fst parts) in
  let rsel = Array.concat (List.map snd parts) in
  stats.Stats.rows_joined <- stats.Stats.rows_joined + Array.length lsel;
  let out =
    Colbatch.hstack
      (Colbatch.gather_pad lbatch lsel)
      (Colbatch.gather_pad (Relation.columnar right) rsel)
  in
  Relation.of_batch schema out

(** Probe a {!make_join_build} table with the left rows. Emits
    left++right rows; [kind] controls unmatched-row padding. The probe
    is chunk-parallel over the left rows, with per-chunk outputs
    concatenated in chunk order (probe order == left order, identical
    to sequential). *)
let hash_join_probe ?parallel ?cache ?guards ?(columnar = false)
    ~(stats : Stats.t) kind keys residual (build : Cache.join_build)
    (left : Relation.t) schema : Relation.t =
  Stats.timed stats Stats.Op_join @@ fun () ->
  if columnar && residual = [] then
    hash_join_probe_columnar ?parallel ?cache ?guards ~stats kind keys build
      left schema
  else begin
  let right = build.Cache.jb_rel in
  let table = build.Cache.jb_table () in
  let left_keys =
    Array.of_list
      (List.map (fun (l, _) -> compiled_val ?cache ~stats l) keys)
  in
  let residual =
    List.map (fun p -> compiled_pred ?cache ~stats p) residual
  in
  let passes_residual row = List.for_all (fun p -> p row) residual in
  let right_matched =
    match kind with
    | Logical.Full_outer | Logical.Right_outer ->
      Some (Array.make (Relation.cardinality right) false)
    | _ -> None
  in
  let l_arity = Schema.arity (Relation.schema left) in
  let r_arity = Schema.arity (Relation.schema right) in
  let lrows = Relation.rows left in
  let n = Array.length lrows in
  (* Chunks only ever write [true] into [right_matched]; writes become
     visible at the barrier, before the padding pass reads the array. *)
  let probe (st : Stats.t) lo len =
    let out = ref [] in
    let emit row = out := row :: !out in
    let gprobe = Guards.probe () in
    for j = lo to lo + len - 1 do
      Guards.tick guards gprobe ~stats:st;
      let lrow = lrows.(j) in
      st.Stats.join_probes <- st.Stats.join_probes + 1;
      let k = Array.map (fun f -> f lrow) left_keys in
      let matched = ref false in
      if not (key_has_null k) then begin
        match Row_tbl.find_opt table k with
        | None -> ()
        | Some candidates ->
          List.iter
            (fun (ridx, rrow) ->
              let combined = Row.concat lrow rrow in
              if passes_residual combined then begin
                matched := true;
                Option.iter (fun arr -> arr.(ridx) <- true) right_matched;
                emit combined
              end)
            candidates
      end;
      if not !matched then
        match kind with
        | Logical.Left_outer | Logical.Full_outer ->
          emit (Row.concat lrow (null_row r_arity))
        | Logical.Inner | Logical.Right_outer | Logical.Cross -> ()
    done;
    Array.of_list (List.rev !out)
  in
  let chunks = Parallel.chunked parallel ~stats ~n probe in
  let pad =
    match right_matched, kind with
    | Some arr, (Logical.Right_outer | Logical.Full_outer) ->
      let extra = ref [] in
      let rrows = Relation.rows right in
      for idx = Array.length arr - 1 downto 0 do
        if not arr.(idx) then
          extra := Row.concat (null_row l_arity) rrows.(idx) :: !extra
      done;
      [ Array.of_list !extra ]
    | _ -> []
  in
  let rows = Array.concat (Array.to_list chunks @ pad) in
  stats.Stats.rows_joined <- stats.Stats.rows_joined + Array.length rows;
  Relation.make_trusted schema rows
  end

(** Hash join over extracted keys: build on the right, probe with the
    left. *)
let hash_join ?parallel ?cache ?guards ?columnar ~(stats : Stats.t) kind keys
    residual (left : Relation.t) (right : Relation.t) schema : Relation.t =
  let build = make_join_build ?cache ?guards ~stats (List.map snd keys) right in
  hash_join_probe ?parallel ?cache ?guards ?columnar ~stats kind keys residual
    build left schema

(** Nested-loop fallback when no equi-key exists. *)
let nested_loop_join ?cache ?guards ~(stats : Stats.t) kind cond
    (left : Relation.t) (right : Relation.t) schema : Relation.t =
  Stats.timed stats Stats.Op_join @@ fun () ->
  let l_arity = Schema.arity (Relation.schema left) in
  let r_arity = Schema.arity (Relation.schema right) in
  let right_matched =
    match kind with
    | Logical.Full_outer | Logical.Right_outer ->
      Some (Array.make (Relation.cardinality right) false)
    | _ -> None
  in
  let out = ref [] in
  let emit row = out := row :: !out in
  let passes =
    match cond with
    | None -> fun _ -> true
    | Some c -> compiled_pred ?cache ~stats c
  in
  let gprobe = Guards.probe () in
  Relation.iter
    (fun lrow ->
      stats.Stats.join_probes <- stats.Stats.join_probes + 1;
      let matched = ref false in
      Array.iteri
        (fun ridx rrow ->
          (* tick per candidate pair: a cross join is quadratic in its
             inputs, so probing only per left row would still leave
             arbitrarily long gaps between guard checks *)
          Guards.tick guards gprobe ~stats;
          let combined = Row.concat lrow rrow in
          if passes combined then begin
            matched := true;
            Option.iter (fun arr -> arr.(ridx) <- true) right_matched;
            emit combined
          end)
        (Relation.rows right);
      if not !matched then
        match kind with
        | Logical.Left_outer | Logical.Full_outer ->
          emit (Row.concat lrow (null_row r_arity))
        | Logical.Inner | Logical.Right_outer | Logical.Cross -> ())
    left;
  (match right_matched, kind with
  | Some arr, (Logical.Right_outer | Logical.Full_outer) ->
    Array.iteri
      (fun idx m ->
        if not m then emit (Row.concat (null_row l_arity) (Relation.rows right).(idx)))
      arr
  | _ -> ());
  let rows = Array.of_list (List.rev !out) in
  stats.Stats.rows_joined <- stats.Stats.rows_joined + Array.length rows;
  Relation.make_trusted schema rows

let join ?parallel ?cache ?guards ?columnar ~stats kind cond
    (left : Relation.t) (right : Relation.t) schema : Relation.t =
  match kind, cond with
  | Logical.Cross, _ ->
    nested_loop_join ?cache ?guards ~stats kind None left right schema
  | _, None -> nested_loop_join ?cache ?guards ~stats kind None left right schema
  | _, Some c -> (
    let left_arity = Schema.arity (Relation.schema left) in
    match split_equi_condition ~left_arity c with
    | [], _ ->
      nested_loop_join ?cache ?guards ~stats kind (Some c) left right schema
    | keys, residual ->
      hash_join ?parallel ?cache ?guards ?columnar ~stats kind keys residual
        left right schema)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

type accumulator = {
  mutable count : int;  (** non-null inputs, or rows for COUNT star *)
  mutable sum : Value.t;  (** running sum; Null until first input *)
  mutable min : Value.t;
  mutable max : Value.t;
  seen : unit Row_tbl.t option;  (** per-group distinct set *)
}

let new_accumulator distinct =
  {
    count = 0;
    sum = Value.Null;
    min = Value.Null;
    max = Value.Null;
    seen = (if distinct then Some (Row_tbl.create 8) else None);
  }

let accumulate acc (v : Value.t) =
  let fresh =
    match acc.seen with
    | None -> true
    | Some seen ->
      let key = [| v |] in
      if Row_tbl.mem seen key then false
      else begin
        Row_tbl.replace seen key ();
        true
      end
  in
  if fresh then begin
    if not (Value.is_null v) then begin
      acc.count <- acc.count + 1;
      acc.sum <- (if Value.is_null acc.sum then v else Value.add acc.sum v);
      if Value.is_null acc.min || Value.compare v acc.min < 0 then acc.min <- v;
      if Value.is_null acc.max || Value.compare v acc.max > 0 then acc.max <- v
    end
  end

(* Unboxed accumulator for the typed columnar aggregation loop. Only
   the fields matching the argument column's type are meaningful; the
   invariant "tcount = 0 iff no non-null input seen" mirrors the boxed
   accumulator's Null-sum/min/max state (count, sum, min and max always
   move together for non-COUNT-star aggregates). *)
type tacc = {
  mutable tcount : int;
  mutable isum : int;
  mutable imin : int;
  mutable imax : int;
  mutable fsum : float;
  mutable fmin : float;
  mutable fmax : float;
}

let new_tacc () =
  { tcount = 0; isum = 0; imin = 0; imax = 0; fsum = 0.0; fmin = 0.0; fmax = 0.0 }

let finalize (kind : Ast.agg_kind) acc : Value.t =
  match kind with
  | Ast.Count | Ast.Count_star -> Value.Int acc.count
  | Ast.Sum -> acc.sum
  | Ast.Min -> acc.min
  | Ast.Max -> acc.max
  | Ast.Avg ->
    if acc.count = 0 then Value.Null
    else Value.Float (Value.to_float acc.sum /. float_of_int acc.count)

let aggregate ?cache ?guards ?(columnar = false) ~(stats : Stats.t) ~keys
    ~(aggs : Logical.agg list) (input : Relation.t) schema : Relation.t =
  Stats.timed stats Stats.Op_aggregate @@ fun () ->
  let aggs = Array.of_list aggs in
  stats.Stats.rows_aggregated <-
    stats.Stats.rows_aggregated + Relation.cardinality input;
  let groups : (Row.t * accumulator array) Row_tbl.t =
    Row_tbl.create (max 16 (Relation.cardinality input / 4))
  in
  let order = ref [] in
  (* Set by the typed columnar fast path, which emits a finished
     columnar relation directly and bypasses [groups]/[order]. *)
  let direct : Relation.t option ref = ref None in
  let gprobe = Guards.probe () in
  (* The accumulation step shared by both paths: identical grouping
     (first-appearance order), DISTINCT and NULL handling by
     construction. [key_of row_idx] and [arg_of i row_idx] differ only
     in where the boxed values come from (row array vs evaluated
     columns). *)
  let accumulate_all n key_of arg_of =
    for row_idx = 0 to n - 1 do
      Guards.tick guards gprobe ~stats;
      let key = key_of row_idx in
      let _, accs =
        match Row_tbl.find_opt groups key with
        | Some entry -> entry
        | None ->
          let accs =
            Array.map (fun (a : Logical.agg) -> new_accumulator a.agg_distinct) aggs
          in
          Row_tbl.replace groups key (key, accs);
          order := key :: !order;
          (key, accs)
      in
      Array.iteri
        (fun i (a : Logical.agg) ->
          match a.agg_kind with
          | Ast.Count_star ->
            (* COUNT star counts rows regardless of nulls *)
            accs.(i).count <- accs.(i).count + 1
          | _ -> accumulate accs.(i) (arg_of i row_idx))
        aggs
    done
  in
  (if columnar then begin
     (* Vectorize the key and argument expressions over the whole
        batch, then run the (inherently row-at-a-time) grouping loop
        over the evaluated columns. *)
     let batch = Relation.columnar input in
     let n = Colbatch.length batch in
     let key_cols =
       Array.of_list
         (List.map (fun e -> (compiled_kernel ?cache ~stats e) batch) keys)
     in
     let arg_cols =
       Array.map
         (fun (a : Logical.agg) ->
           match a.agg_kind with
           | Ast.Count_star -> None  (* unused *)
           | _ -> Some ((compiled_kernel ?cache ~stats a.agg_arg) batch))
         aggs
     in
     (* Typed grouping fast path: when every key column is typed and
        null-free (at most two of them) and every aggregate argument is
        an int or float column with no DISTINCT, group by unboxed key
        codes and accumulate into unboxed cells, converting to boxed
        accumulators only once per group at the end. Key-code equality
        is engineered to coincide with {!Value.equal} on these inputs:
        within one typed column no cross-type equality can occur, and
        float codes go through normalized bits (all NaNs one code, both
        zeros one code) so code equality is exactly [Float.compare]
        equality. *)
     let typed_keys_ok =
       Array.length key_cols <= 2
       && Array.for_all
            (fun (c : Colbatch.col) ->
              c.Colbatch.nulls = None
              &&
              match c.Colbatch.data with
              | Colbatch.D_value _ -> false
              | _ -> true)
            key_cols
     in
     let typed_aggs_ok =
       let ok = ref true in
       Array.iteri
         (fun i (a : Logical.agg) ->
           if a.agg_distinct then ok := false
           else
             match a.agg_kind, arg_cols.(i) with
             | Ast.Count_star, _ -> ()
             | _, Some { Colbatch.data = Colbatch.D_int _ | Colbatch.D_float _; _ }
               -> ()
             | _ -> ok := false)
         aggs;
       !ok
     in
     if typed_keys_ok && typed_aggs_ok then begin
       Guards.tick_n guards gprobe ~stats n;
       let nag = Array.length aggs in
       (* Per-aggregate unboxed update, replicating [accumulate]'s
          null-skip, first-value seeding and strict-compare
          replacement exactly. *)
       let updaters =
         Array.mapi
           (fun i (a : Logical.agg) ->
             match a.agg_kind with
             | Ast.Count_star -> fun (t : tacc) _ -> t.tcount <- t.tcount + 1
             | _ -> (
               match arg_cols.(i) with
               | Some { Colbatch.data = Colbatch.D_int arr; nulls } ->
                 let masked =
                   match nulls with
                   | Some m -> fun r -> m.(r)
                   | None -> fun _ -> false
                 in
                 fun (t : tacc) r ->
                   if not (masked r) then begin
                     let v = arr.(r) in
                     if t.tcount = 0 then begin
                       t.isum <- v;
                       t.imin <- v;
                       t.imax <- v
                     end
                     else begin
                       t.isum <- t.isum + v;
                       if v < t.imin then t.imin <- v;
                       if v > t.imax then t.imax <- v
                     end;
                     t.tcount <- t.tcount + 1
                   end
               | Some { Colbatch.data = Colbatch.D_float arr; nulls } ->
                 let masked =
                   match nulls with
                   | Some m -> fun r -> m.(r)
                   | None -> fun _ -> false
                 in
                 fun (t : tacc) r ->
                   if not (masked r) then begin
                     let v = arr.(r) in
                     if t.tcount = 0 then begin
                       t.fsum <- v;
                       t.fmin <- v;
                       t.fmax <- v
                     end
                     else begin
                       t.fsum <- t.fsum +. v;
                       if Float.compare v t.fmin < 0 then t.fmin <- v;
                       if Float.compare v t.fmax > 0 then t.fmax <- v
                     end;
                     t.tcount <- t.tcount + 1
                   end
               | _ -> assert false))
           aggs
       in

       (* Open-addressing group table hashed directly over the typed
          key cells: no per-row boxing, interning or tuple keys.
          Capacity >= 2n keeps the load factor under one half, so the
          table never grows. Cell equality follows {!Value.equal} on
          these inputs (ints natively, floats under [Float.compare]),
          and float hash codes go through normalized bits (all NaNs
          one code, both zeros one code) so hash agreement follows
          equality. *)
       let codes =
         Array.map
           (fun (c : Colbatch.col) : (int -> int) ->
             match c.Colbatch.data with
             | Colbatch.D_int a -> fun r -> a.(r)
             | Colbatch.D_bool a -> fun r -> if a.(r) then 1 else 0
             | Colbatch.D_float a ->
               fun r ->
                 let f = a.(r) in
                 let bits =
                   if f = 0.0 then 0L
                   else if f <> f then 0x7FF8000000000000L
                   else Int64.bits_of_float f
                 in
                 Int64.to_int bits
             | Colbatch.D_str a -> fun r -> Hashtbl.hash a.(r)
             | Colbatch.D_value _ -> assert false)
           key_cols
       in
       let eqs =
         Array.map
           (fun (c : Colbatch.col) : (int -> int -> bool) ->
             match c.Colbatch.data with
             | Colbatch.D_int a -> fun r s -> a.(r) = a.(s)
             | Colbatch.D_bool a -> fun r s -> a.(r) = a.(s)
             | Colbatch.D_float a -> fun r s -> Float.compare a.(r) a.(s) = 0
             | Colbatch.D_str a -> fun r s -> String.equal a.(r) a.(s)
             | Colbatch.D_value _ -> assert false)
           key_cols
       in
       let nkc = Array.length key_cols in
       (* Keys are at most two columns (eligibility check), so unroll
          both the hash and the equality instead of looping over
          closure arrays per row. *)
       let keys_equal, hash_row0 =
         match nkc with
         | 0 -> ((fun _ _ -> true), fun _ -> 0)
         | 1 ->
           let e0 = eqs.(0) and c0 = codes.(0) in
           (e0, fun r -> c0 r * 0x2545F4914F6CDD1D)
         | _ ->
           let e0 = eqs.(0) and e1 = eqs.(1) in
           let c0 = codes.(0) and c1 = codes.(1) in
           ( (fun r s -> e0 r s && e1 r s),
             fun r ->
               ((c0 r * 0x2545F4914F6CDD1D) + c1 r) * 0x2545F4914F6CDD1D )
       in
       let cap =
         let rec up c = if c >= 2 * n then c else up (2 * c) in
         up 16
       in
       let hmask = cap - 1 in
       let hash_row r =
         let h = hash_row0 r in
         (h lxor (h lsr 29)) land hmask
       in
       let slots = Array.make cap (-1) in
       let rep = Array.make (max 1 n) 0 in
       let gtaccs : tacc array array = Array.make (max 1 n) [||] in
       let update =
         if nag = 1 then (
           let u0 = updaters.(0) in
           fun (taccs : tacc array) r -> u0 taccs.(0) r)
         else
           fun taccs r ->
             for i = 0 to nag - 1 do
               updaters.(i) taccs.(i) r
             done
       in
       let ng = ref 0 in
       for r = 0 to n - 1 do
         let taccs =
           if nkc = 0 then begin
             if !ng = 0 then begin
               gtaccs.(0) <- Array.init nag (fun _ -> new_tacc ());
               rep.(0) <- r;
               ng := 1
             end;
             gtaccs.(0)
           end
           else begin
             let idx = ref (hash_row r) in
             let entry = ref (-1) in
             let continue = ref true in
             while !continue do
               let e = slots.(!idx) in
               if e = -1 then continue := false
               else if keys_equal rep.(e) r then begin
                 entry := e;
                 continue := false
               end
               else idx := (!idx + 1) land hmask
             done;
             if !entry >= 0 then gtaccs.(!entry)
             else begin
               let e = !ng in
               slots.(!idx) <- e;
               rep.(e) <- r;
               gtaccs.(e) <- Array.init nag (fun _ -> new_tacc ());
               ng := e + 1;
               gtaccs.(e)
             end
           end
         in
         update taccs r
       done;
       (* Emit the result as a columnar batch straight from the typed
          cells, one slot per group in first-seen order (entry ids are
          assigned in first-appearance order): key columns are a
          gather of the evaluated key columns at each group's
          representative row, aggregate columns are typed arrays with
          a NULL mask exactly where the boxed [finalize] would return
          Null (empty non-COUNT groups). The boxed group table and
          per-row emission are skipped entirely. *)
       let ng = !ng in
       let grp_sel = Array.sub rep 0 ng in
       let kbatch = Colbatch.gather (Colbatch.make ~len:n key_cols) grp_sel in
       let empty_mask i =
         let any = ref false in
         let m =
           Array.init ng (fun e ->
               let z = gtaccs.(e).(i).tcount = 0 in
               if z then any := true;
               z)
         in
         if !any then Some m else None
       in
       let agg_cols =
         Array.mapi
           (fun i (a : Logical.agg) : Colbatch.col ->
             let is_float =
               match arg_cols.(i) with
               | Some { Colbatch.data = Colbatch.D_float _; _ } -> true
               | _ -> false
             in
             let int_of f =
               {
                 Colbatch.data =
                   Colbatch.D_int (Array.init ng (fun e -> f gtaccs.(e).(i)));
                 nulls = empty_mask i;
               }
             in
             let float_of f =
               {
                 Colbatch.data =
                   Colbatch.D_float (Array.init ng (fun e -> f gtaccs.(e).(i)));
                 nulls = empty_mask i;
               }
             in
             match a.agg_kind with
             | Ast.Count | Ast.Count_star ->
               {
                 Colbatch.data =
                   Colbatch.D_int
                     (Array.init ng (fun e -> gtaccs.(e).(i).tcount));
                 nulls = None;
               }
             | Ast.Sum ->
               if is_float then float_of (fun t -> t.fsum)
               else int_of (fun t -> t.isum)
             | Ast.Min ->
               if is_float then float_of (fun t -> t.fmin)
               else int_of (fun t -> t.imin)
             | Ast.Max ->
               if is_float then float_of (fun t -> t.fmax)
               else int_of (fun t -> t.imax)
             | Ast.Avg ->
               if is_float then
                 float_of (fun t -> t.fsum /. float_of_int t.tcount)
               else
                 float_of (fun t ->
                     float_of_int t.isum /. float_of_int t.tcount))
           aggs
       in
       direct :=
         Some
           (Relation.of_batch schema
              (Colbatch.hstack kbatch (Colbatch.make ~len:ng agg_cols)))
     end
     else
       accumulate_all n
         (fun i -> Array.map (fun c -> Colbatch.get c i) key_cols)
         (fun j i ->
           match arg_cols.(j) with
           | Some c -> Colbatch.get c i
           | None -> Value.Null)
   end
   else begin
     let keys =
       Array.of_list (List.map (fun e -> compiled_val ?cache ~stats e) keys)
     in
     let agg_args =
       Array.map
         (fun (a : Logical.agg) ->
           match a.agg_kind with
           | Ast.Count_star -> fun _ -> Value.Null  (* unused *)
           | _ -> compiled_val ?cache ~stats a.agg_arg)
         aggs
     in
     let rows = Relation.rows input in
     accumulate_all (Array.length rows)
       (fun i -> Array.map (fun f -> f rows.(i)) keys)
       (fun j i -> agg_args.(j) rows.(i))
   end);
  let emit key =
    let _, accs = Row_tbl.find groups key in
    let agg_values =
      Array.mapi (fun i (a : Logical.agg) -> finalize a.agg_kind accs.(i)) aggs
    in
    Row.concat key agg_values
  in
  match !direct with
  | Some rel when not (keys = [] && Relation.cardinality rel = 0) -> rel
  | _ ->
  let rows =
    if keys = [] && Row_tbl.length groups = 0 then
      (* Global aggregate over an empty input yields one default row. *)
      [|
        Row.concat [||]
          (Array.map
             (fun (a : Logical.agg) -> finalize a.agg_kind (new_accumulator false))
             aggs);
      |]
    else Array.of_list (List.rev_map emit !order)
  in
  Relation.make_trusted schema rows

(** A fixed-size pool of worker {!Domain}s with a helping barrier.

    Determinism contract: work is split into contiguous index ranges,
    results are merged in index order after the barrier, and counters
    go to per-task private {!Stats.t} instances folded into the
    caller's stats in index order — so parallel execution is
    bit-identical to sequential execution, including stats totals.

    Fault propagation contract: an exception raised inside a worker
    domain is caught there, the barrier still completes, and the
    lowest-index exception is re-raised on the submitting domain —
    checkpoint/retry machinery above the pool observes the same
    exception it would have seen sequentially.

    The submitting domain executes task 0 inline and then helps drain
    the shared queue, so nested batches cannot deadlock. *)

type t

(** The inline pool: size 1, batches run entirely on the caller. *)
val sequential : t

(** Total parallelism of the pool, including the submitting domain. *)
val size : t -> int

(** [create n] spawns [n - 1] worker domains ([sequential] when
    [n <= 1]). Workers are released automatically at process exit. *)
val create : int -> t

(** Memoized pools by size — [get n] returns the same pool for the
    same [n]. *)
val get : int -> t

(** The shared default pool, sized
    [min 8 (Domain.recommended_domain_count ())], created lazily. *)
val default : unit -> t

(** Stop and join the workers. Idempotent; a shut-down pool still
    works, running batches inline. *)
val shutdown : t -> unit

(** Barrier: run every task, task 0 on the caller; re-raises the
    lowest-index exception after all tasks finished. *)
val run : t -> (unit -> unit) array -> unit

(** [run_indexed pool ~stats n f] runs [f private_stats i] for each
    [i < n], returns results in index order, and merges the private
    stats into [stats] in index order after the barrier. *)
val run_indexed : t -> stats:Stats.t -> int -> (Stats.t -> int -> 'a) -> 'a array

(** [submit pool f] runs [f] on a worker domain and blocks the calling
    thread until it completes, returning the result or re-raising the
    task's exception. Designed for OS threads (server sessions)
    offloading CPU work to the Domain pool: the caller parks on a
    condition variable rather than helping. Runs inline when the pool
    is sequential or shut down. A task must not call [submit] on its
    own pool (use {!run}, which helps, for nesting). *)
val submit : t -> (unit -> 'a) -> 'a

(** How a single-node operator may split its input: a pool plus the
    minimum relation cardinality worth chunking. *)
type ctx = {
  pool : t;
  chunk_rows : int;
}

val default_chunk_rows : int

(** [context ~workers ()] is [None] when [workers <= 1]. *)
val context : ?chunk_rows:int -> workers:int -> unit -> ctx option

(** [chunked ctx ~stats ~n f] splits [0, n) into contiguous chunks and
    runs [f chunk_stats lo len] on each, returning per-chunk results
    in chunk order; sequential single-chunk execution when [ctx] is
    [None] or [n] is below the chunk threshold. *)
val chunked :
  ctx option -> stats:Stats.t -> n:int -> (Stats.t -> int -> int -> 'a) -> 'a array

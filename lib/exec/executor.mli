(** The executor: evaluates logical plans against the catalog and runs
    step programs — the runtime half of the paper's §VI, including the
    [loop] operator's Metadata / Data / Delta termination modes and the
    O(1) [rename]. *)

module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program

exception Execution_error of string

(** Evaluate one logical plan. Scans resolve through the catalog with
    temps shadowing base tables. [?parallel] enables chunk-parallel
    filter/project/hash-probe; results and logical stats counters are
    identical to sequential execution. [?guards] threads periodic
    in-operator probes ({!Guards.tick}) through the long row loops so a
    single giant statement honors timeouts and interrupts.
    [?columnar] routes filter/project/hash-probe/aggregate through the
    vectorized batch paths ({!Vec_eval} kernels over
    {!Dbspinner_storage.Colbatch} columns under selection vectors);
    results and logical stats are bit-identical to the row engine.
    @raise Execution_error on missing relations or runtime failures. *)
val run_plan :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  Catalog.t ->
  Logical.t ->
  Relation.t

(** Consecutive large-delta cutoffs after which a delta-eligible loop
    permanently falls back to full re-evaluation and stops diffing.
    Purely data-driven, so the sequential and distributed executors
    always agree. Shared with {!Dbspinner_mpp.Distributed}. *)
val delta_cutoff_streak_limit : int

(** The §II duplicate-row-key check: fails when the named temp has
    duplicate or NULL keys in column [key_idx].
    @raise Execution_error with a message directing the user to resolve
    duplicates via aggregation. *)
val assert_unique_key : Catalog.t -> temp:string -> key_idx:int -> unit

(** Run a step program to completion and return the final relation.
    Temps created by the program are left in the catalog (the engine
    clears them per statement). [guards] are checked at materialize and
    loop boundaries, plus periodic in-operator probes every
    {!Guards.probe_interval} rows inside long operator loops.

    [Delta_materialize] steps run semi-naive (delta-driven) evaluation:
    the CTE version is diffed against the previous iteration's, only
    rows whose key is affected by the change are re-evaluated through
    the restricted plan, and untouched keys reuse the previous work
    output — producing a relation bit-identical to the full plan's.
    The first iteration (no previous version) and iterations where most
    keys changed fall back to the full plan ([Stats.full_reevals]).
    @raise Execution_error on runtime failures, including the
    iteration-guard trip for non-converging loops
    @raise Guards.Resource_exhausted when a deadline or row budget is
    crossed.

    [use_cache] (default true) enables a per-run iteration-aware
    {!Cache}: loop-invariant join builds and subquery digests are
    memoized under source generations, and expressions are closure-
    compiled once per run. Results and logical stats are identical
    either way; only wall time and the cache counters differ.

    [columnar] (default false) routes the hot operators through the
    vectorized batch paths; see {!run_plan}. Results and logical stats
    are identical to the row engine.

    [trace], when given, records one {!Dbspinner_obs.Trace} span per
    executed step, per loop iteration (with CTE cardinality, delta and
    cumulative-update gauges — the convergence timeline), per operator
    family with accrued wall time, and per program. Tracing does no
    work at all when absent, and only pure reads when present, so
    traced and untraced runs are [Stats.logical_equal]. *)
val run_program :
  ?parallel:Parallel.ctx ->
  ?stats:Stats.t ->
  ?guards:Guards.t ->
  ?use_cache:bool ->
  ?columnar:bool ->
  ?trace:Dbspinner_obs.Trace.t ->
  Catalog.t ->
  Program.t ->
  Relation.t

(** Convenience: run with a fresh {!Stats.t} and return it. *)
val run_program_with_stats :
  ?parallel:Parallel.ctx ->
  ?guards:Guards.t ->
  ?use_cache:bool ->
  ?columnar:bool ->
  ?trace:Dbspinner_obs.Trace.t ->
  Catalog.t ->
  Program.t ->
  Relation.t * Stats.t

(** Bound-expression interpreter with SQL three-valued logic.

    NULL handling follows the standard: comparisons against NULL are
    unknown (NULL); AND/OR use Kleene logic; arithmetic propagates
    NULL; COALESCE/LEAST/GREATEST skip NULLs (PostgreSQL behaviour). *)

module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type
module Row = Dbspinner_storage.Row
module Ast = Dbspinner_sql.Ast
module Bound_expr = Dbspinner_plan.Bound_expr

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let compare_values op (a : Value.t) (b : Value.t) : Value.t =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | _ -> assert false
    in
    Value.Bool r

let kleene_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, x | x, Value.Bool true -> x
  | Value.Null, Value.Null -> Value.Null
  | _ -> error "AND requires boolean operands"

let kleene_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, x | x, Value.Bool false -> x
  | Value.Null, Value.Null -> Value.Null
  | _ -> error "OR requires boolean operands"

let as_text = function
  | Value.Str s -> s
  | v -> Value.to_string v

let concat a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else Value.Str (as_text a ^ as_text b)

(* LIKE pattern matching: % = any sequence, _ = any single char.

   [like_matcher pattern] precompiles the pattern into a closure so the
   per-row match allocates nothing (the previous implementation built a
   fresh memo Hashtbl per row per match). The matcher is the classic
   two-pointer greedy scan with single-level backtracking to the last
   '%': on a mismatch past a '%', re-anchor the '%' one character
   further right. Sound because a later '%' subsumes any earlier
   backtrack point. *)
let like_matcher pattern =
  let pn = String.length pattern in
  fun text ->
    let tn = String.length text in
    let ti = ref 0 and pi = ref 0 in
    let star_pi = ref (-1) and star_ti = ref (-1) in
    let result = ref None in
    while !result = None do
      if !ti < tn then begin
        if !pi < pn && pattern.[!pi] = '%' then begin
          star_pi := !pi;
          star_ti := !ti;
          incr pi
        end
        else if !pi < pn && (pattern.[!pi] = '_' || pattern.[!pi] = text.[!ti])
        then begin
          incr pi;
          incr ti
        end
        else if !star_pi >= 0 then begin
          pi := !star_pi + 1;
          incr star_ti;
          ti := !star_ti
        end
        else result := Some false
      end
      else begin
        while !pi < pn && pattern.[!pi] = '%' do
          incr pi
        done;
        result := Some (!pi >= pn)
      end
    done;
    Option.get !result

let like_match text pattern = like_matcher pattern text

let numeric1 name f v =
  match v with
  | Value.Null -> Value.Null
  | _ -> (
    match f (Value.to_float v) with
    | x -> Value.Float x
    | exception Value.Type_error _ -> error "%s requires a numeric argument" name)

let round_to_digits x digits =
  let scale = 10.0 ** float_of_int digits in
  Float.round (x *. scale) /. scale

let apply_func (f : Bound_expr.func) (args : Value.t list) : Value.t =
  match f, args with
  | Bound_expr.F_coalesce, args -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | Bound_expr.F_least, args -> (
    let non_null = List.filter (fun v -> not (Value.is_null v)) args in
    match non_null with
    | [] -> Value.Null
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare x acc < 0 then x else acc) v rest)
  | Bound_expr.F_greatest, args -> (
    let non_null = List.filter (fun v -> not (Value.is_null v)) args in
    match non_null with
    | [] -> Value.Null
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare x acc > 0 then x else acc) v rest)
  | Bound_expr.F_ceiling, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | Value.Int _ -> v
    | _ -> Value.Float (Float.ceil (Value.to_float v)))
  | Bound_expr.F_floor, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | Value.Int _ -> v
    | _ -> Value.Float (Float.floor (Value.to_float v)))
  | Bound_expr.F_round, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | Value.Int _ -> v
    | _ -> Value.Float (Float.round (Value.to_float v)))
  | Bound_expr.F_round, [ v; d ] -> (
    match v, d with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | _ -> Value.Float (round_to_digits (Value.to_float v) (Value.to_int d)))
  | Bound_expr.F_abs, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (abs i)
    | _ -> Value.Float (Float.abs (Value.to_float v)))
  | Bound_expr.F_sqrt, [ v ] -> numeric1 "SQRT" Float.sqrt v
  | Bound_expr.F_exp, [ v ] -> numeric1 "EXP" Float.exp v
  | Bound_expr.F_ln, [ v ] -> numeric1 "LN" Float.log v
  | Bound_expr.F_power, [ a; b ] ->
    if Value.is_null a || Value.is_null b then Value.Null
    else Value.Float (Float.pow (Value.to_float a) (Value.to_float b))
  | Bound_expr.F_sign, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | _ ->
      let f = Value.to_float v in
      Value.Int (if f > 0.0 then 1 else if f < 0.0 then -1 else 0))
  | Bound_expr.F_nullif, [ a; b ] ->
    if (not (Value.is_null a)) && (not (Value.is_null b)) && Value.equal a b
    then Value.Null
    else a
  | Bound_expr.F_upper, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | _ -> Value.Str (String.uppercase_ascii (as_text v)))
  | Bound_expr.F_lower, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | _ -> Value.Str (String.lowercase_ascii (as_text v)))
  | Bound_expr.F_length, [ v ] -> (
    match v with
    | Value.Null -> Value.Null
    | _ -> Value.Int (String.length (as_text v)))
  | Bound_expr.F_substr, (v :: from :: rest) -> (
    match v with
    | Value.Null -> Value.Null
    | _ ->
      let s = as_text v in
      let from = max 1 (Value.to_int from) in
      let len =
        match rest with
        | [ l ] -> Value.to_int l
        | _ -> String.length s - from + 1
      in
      let start = from - 1 in
      if start >= String.length s || len <= 0 then Value.Str ""
      else Value.Str (String.sub s start (min len (String.length s - start))))
  | _, _ -> error "wrong arguments to %s" (Bound_expr.func_name f)

let cast_value (ty : Column_type.t) (v : Value.t) : Value.t =
  match ty, v with
  | _, Value.Null -> Value.Null
  | Column_type.T_int, _ -> Value.Int (Value.to_int v)
  | Column_type.T_float, _ -> Value.Float (Value.to_float v)
  | Column_type.T_string, _ -> Value.Str (as_text v)
  | Column_type.T_bool, Value.Bool _ -> v
  | Column_type.T_bool, Value.Str s -> (
    match String.lowercase_ascii s with
    | "true" | "t" | "1" -> Value.Bool true
    | "false" | "f" | "0" -> Value.Bool false
    | _ -> error "cannot cast %S to BOOLEAN" s)
  | Column_type.T_bool, _ -> error "cannot cast %s to BOOLEAN" (Value.type_name v)
  | Column_type.T_any, _ -> v

let rec eval (row : Row.t) (e : Bound_expr.t) : Value.t =
  match e with
  | Bound_expr.B_lit v -> v
  | Bound_expr.B_col i ->
    if i >= Array.length row then
      error "column index %d out of range (row arity %d)" i (Array.length row)
    else row.(i)
  | Bound_expr.B_binop (op, a, b) -> (
    match op with
    | Ast.And -> kleene_and (eval row a) (eval row b)
    | Ast.Or -> kleene_or (eval row a) (eval row b)
    | Ast.Add -> Value.add (eval row a) (eval row b)
    | Ast.Sub -> Value.sub (eval row a) (eval row b)
    | Ast.Mul -> Value.mul (eval row a) (eval row b)
    | Ast.Div -> Value.div (eval row a) (eval row b)
    | Ast.Mod -> Value.modulo (eval row a) (eval row b)
    | Ast.Concat -> concat (eval row a) (eval row b)
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      compare_values op (eval row a) (eval row b))
  | Bound_expr.B_unop (Ast.Neg, a) -> Value.neg (eval row a)
  | Bound_expr.B_unop (Ast.Not, a) -> (
    match eval row a with
    | Value.Bool b -> Value.Bool (not b)
    | Value.Null -> Value.Null
    | _ -> error "NOT requires a boolean operand")
  | Bound_expr.B_func (f, args) -> apply_func f (List.map (eval row) args)
  | Bound_expr.B_case (branches, else_) -> (
    let rec first = function
      | [] -> ( match else_ with Some e -> eval row e | None -> Value.Null)
      | (cond, v) :: rest -> (
        match eval row cond with
        | Value.Bool true -> eval row v
        | Value.Bool false | Value.Null -> first rest
        | _ -> error "CASE condition must be boolean")
    in
    first branches)
  | Bound_expr.B_cast (ty, a) -> cast_value ty (eval row a)
  | Bound_expr.B_is_null (a, want_null) ->
    Value.Bool (Value.is_null (eval row a) = want_null)
  | Bound_expr.B_in (a, items, negated) -> (
    let v = eval row a in
    if Value.is_null v then Value.Null
    else
      let found = ref false in
      let saw_null = ref false in
      List.iter
        (fun item ->
          let iv = eval row item in
          if Value.is_null iv then saw_null := true
          else if Value.equal v iv then found := true)
        items;
      if !found then Value.Bool (not negated)
      else if !saw_null then Value.Null
      else Value.Bool negated)
  | Bound_expr.B_between (a, lo, hi) ->
    let v = eval row a in
    kleene_and (compare_values Ast.Ge v (eval row lo))
      (compare_values Ast.Le v (eval row hi))
  | Bound_expr.B_like (a, pattern, negated) -> (
    match eval row a with
    | Value.Null -> Value.Null
    | v ->
      let r = like_match (as_text v) pattern in
      Value.Bool (if negated then not r else r))

(** Condition evaluation for WHERE/ON/HAVING: unknown (NULL) rejects
    the row. *)
let eval_pred row e =
  match eval row e with
  | Value.Bool b -> b
  | Value.Null -> false
  | _ -> error "predicate did not evaluate to a boolean"

(** Closure-compile an expression: walk the [Bound_expr] tree once and
    return a [Row.t -> Value.t] that re-walks nothing — literals,
    column indices, operator dispatch and LIKE patterns are all resolved
    at compile time. Semantics (three-valued logic, error messages,
    evaluation strictness) are identical to {!eval} by construction:
    each case applies the same combinator to the compiled children that
    {!eval} applies to the evaluated children. *)
let rec compile (e : Bound_expr.t) : Row.t -> Value.t =
  match e with
  | Bound_expr.B_lit v -> fun _ -> v
  | Bound_expr.B_col i ->
    fun row ->
      if i >= Array.length row then
        error "column index %d out of range (row arity %d)" i (Array.length row)
      else row.(i)
  | Bound_expr.B_binop (op, a, b) -> (
    let ca = compile a and cb = compile b in
    match op with
    | Ast.And -> fun row -> kleene_and (ca row) (cb row)
    | Ast.Or -> fun row -> kleene_or (ca row) (cb row)
    | Ast.Add -> fun row -> Value.add (ca row) (cb row)
    | Ast.Sub -> fun row -> Value.sub (ca row) (cb row)
    | Ast.Mul -> fun row -> Value.mul (ca row) (cb row)
    | Ast.Div -> fun row -> Value.div (ca row) (cb row)
    | Ast.Mod -> fun row -> Value.modulo (ca row) (cb row)
    | Ast.Concat -> fun row -> concat (ca row) (cb row)
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      fun row -> compare_values op (ca row) (cb row))
  | Bound_expr.B_unop (Ast.Neg, a) ->
    let ca = compile a in
    fun row -> Value.neg (ca row)
  | Bound_expr.B_unop (Ast.Not, a) -> (
    let ca = compile a in
    fun row ->
      match ca row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | _ -> error "NOT requires a boolean operand")
  | Bound_expr.B_func (f, args) ->
    let cargs = List.map compile args in
    fun row -> apply_func f (List.map (fun c -> c row) cargs)
  | Bound_expr.B_case (branches, else_) ->
    let cbranches =
      List.map (fun (cond, v) -> (compile cond, compile v)) branches
    in
    let celse = Option.map compile else_ in
    fun row ->
      let rec first = function
        | [] -> ( match celse with Some c -> c row | None -> Value.Null)
        | (ccond, cv) :: rest -> (
          match ccond row with
          | Value.Bool true -> cv row
          | Value.Bool false | Value.Null -> first rest
          | _ -> error "CASE condition must be boolean")
      in
      first cbranches
  | Bound_expr.B_cast (ty, a) ->
    let ca = compile a in
    fun row -> cast_value ty (ca row)
  | Bound_expr.B_is_null (a, want_null) ->
    let ca = compile a in
    fun row -> Value.Bool (Value.is_null (ca row) = want_null)
  | Bound_expr.B_in (a, items, negated) ->
    let ca = compile a in
    let citems = List.map compile items in
    fun row ->
      let v = ca row in
      if Value.is_null v then Value.Null
      else begin
        let found = ref false in
        let saw_null = ref false in
        List.iter
          (fun citem ->
            let iv = citem row in
            if Value.is_null iv then saw_null := true
            else if Value.equal v iv then found := true)
          citems;
        if !found then Value.Bool (not negated)
        else if !saw_null then Value.Null
        else Value.Bool negated
      end
  | Bound_expr.B_between (a, lo, hi) ->
    let ca = compile a and clo = compile lo and chi = compile hi in
    fun row ->
      let v = ca row in
      kleene_and (compare_values Ast.Ge v (clo row))
        (compare_values Ast.Le v (chi row))
  | Bound_expr.B_like (a, pattern, negated) -> (
    let ca = compile a in
    let matcher = like_matcher pattern in
    fun row ->
      match ca row with
      | Value.Null -> Value.Null
      | v ->
        let r = matcher (as_text v) in
        Value.Bool (if negated then not r else r))

(** Compiled counterpart of {!eval_pred}. *)
let compile_pred (e : Bound_expr.t) : Row.t -> bool =
  let c = compile e in
  fun row ->
    match c row with
    | Value.Bool b -> b
    | Value.Null -> false
    | _ -> error "predicate did not evaluate to a boolean"

(** Iteration-aware executor cache, one instance per program run:
    memoizes hash-join build tables, semi/anti-join membership sets and
    IN-subquery sets keyed by [(source generations, plan subtree, key
    expressions)], plus {!Eval.compile} closures keyed by the
    expression. Loop-invariant inputs keep their generation across
    iterations and hit; the iterative temp is rebound with a fresh
    generation each iteration and misses naturally. Hits replay the
    build's logical {!Stats} counters, so cache-on and cache-off runs
    are {!Stats.logical_equal}. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Relation = Dbspinner_storage.Relation
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical

(** One relation a cached plan subtree reads: lowercased name plus the
    {!Catalog.temp_generation} (temps) or {!Table.version} (base
    tables) observed at build time. *)
type source = { src_temp : bool; src_name : string; src_gen : int }

type build_key = {
  bk_sources : source list;  (** sorted, deduplicated *)
  bk_plan : Logical.t;
  bk_keys : Bound_expr.t list;
}

type set_key = {
  sk_sources : source list;
  sk_plan : Logical.t;
  sk_keyed : bool;  (** IN (membership set built) vs EXISTS *)
}

(** Open-addressing (linear probing) int-keyed mirror of a build
    table; an empty bucket marks a free slot (real buckets are never
    empty). Capacity is a power of two at most half full. *)
type int_mirror = {
  im_mask : int;  (** capacity - 1 *)
  im_keys : int array;
  im_buckets : int list array;
      (** build-row indices per key, most recent first (the boxed
          table's bucket order) *)
}

(** A hash-join build table: built relation plus buckets of
    [(row index, row)] keyed by key-expression values. The boxed table
    is behind a memoizing thunk — single-Int-key columnar probes serve
    every lookup from {!int_mirror} and never force it; the thunk is
    safe to force from worker domains. Outer-join matched-row tracking
    is per-probe state and lives with the probe, not here. *)
type join_build = {
  jb_rel : Relation.t;
  jb_table : unit -> (int * Row.t) list Row.Tbl.t;
  mutable jb_int : int_mirror option option;
      (** lazily built unboxed mirror of [jb_table], usable only when
          every build key is a single non-NULL [Value.Int] (so boxed
          and unboxed lookups agree; cross-type Int/Float key equality
          is impossible against an all-Int build side). [None] = not
          yet examined, [Some None] = ineligible, [Some (Some m)] =
          mirror. The coordinator populates it before any parallel
          probe fan-out; worker domains only read it. *)
}

(** Digest of an IN / EXISTS subquery result; [ss_members] is only
    populated for keyed (IN) lookups. *)
type sub_set = {
  ss_empty : bool;
  ss_has_null : bool;
  ss_members : (Value.t, unit) Hashtbl.t;
}

type t

val create : unit -> t

(** [join_build t ~stats key build] returns the cached build table for
    [key], or runs [build] against a private stats instance, accruing
    its counters (and a {!Stats.clone_logical} replay snapshot) before
    caching. Single-threaded (program executor) callers only. *)
val join_build : t -> stats:Stats.t -> build_key -> (Stats.t -> join_build) -> join_build

(** Same contract as {!join_build}, for subquery sets. *)
val sub_set : t -> stats:Stats.t -> set_key -> (Stats.t -> sub_set) -> sub_set

(** Fetch (or compile and insert) the {!Eval.compile} closure for an
    expression; counts a cache hit or miss into [stats]. Safe to call
    from concurrent partition domains. *)
val compiled : t -> stats:Stats.t -> Bound_expr.t -> Row.t -> Value.t

(** Predicate variant ({!Eval.eval_pred} semantics: NULL rejects). *)
val compiled_pred : t -> stats:Stats.t -> Bound_expr.t -> Row.t -> bool

(** Columnar twin of {!compiled}: fetch (or compile and insert) the
    {!Vec_eval.compile} kernel for an expression. Safe to call from
    concurrent partition domains. *)
val compiled_kernel : t -> stats:Stats.t -> Bound_expr.t -> Vec_eval.kernel

(** Drop build/set entries that read the named temp. Pure memory
    hygiene — generations already prevent stale hits — so that
    per-iteration build tables of the iterative temp do not accumulate
    for the lifetime of the run. *)
val invalidate_temp : t -> string -> unit

(** Physical relational operators over materialized relations. Joins
    are hash joins whenever an equi-conjunct can be extracted from the
    condition, with a nested-loop fallback; NULL join keys never
    match.

    [filter], [project] and the hash-join probe accept an optional
    [?parallel] context ({!Parallel.ctx}) and split inputs above the
    context's chunk threshold across the Domain pool; chunk outputs
    and counters merge in chunk order, so results and logical stats
    are identical to the sequential path.

    Long-running operators ([filter], [project], joins, [aggregate])
    accept optional [?guards] and run a periodic {!Guards.tick} probe
    inside their row loops (every {!Guards.probe_interval} rows), so a
    single giant statement honors timeouts, budgets and interrupts
    without waiting for the next materialize boundary.

    [filter], [project], the hash-join probe and [aggregate] also take
    [?columnar]: evaluate {!Vec_eval} kernels over the input's column
    batch under selection vectors instead of materializing row lists.
    The columnar paths are bit-identical to the row paths — same rows,
    same order, same logical stats ({!Stats.logical_equal}) and same
    errors. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical

(** Hashtable keyed by rows (used across the executor and MPP layer). *)
module Row_tbl : Hashtbl.S with type key = Row.t

(** Resolve an expression to a per-row closure: fetched from the cache
    ({!Eval.compile}d once per program run) when one is given, else the
    tree-walking interpreter. Resolution happens once per operator
    call, outside the per-row loop. *)
val compiled_val : ?cache:Cache.t -> stats:Stats.t -> Bound_expr.t -> Row.t -> Value.t

(** Predicate variant ({!Eval.eval_pred} semantics: NULL rejects). *)
val compiled_pred : ?cache:Cache.t -> stats:Stats.t -> Bound_expr.t -> Row.t -> bool

val filter :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  Bound_expr.t ->
  Relation.t ->
  Relation.t

val project :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  (Bound_expr.t * string) list ->
  Relation.t ->
  Relation.t
val distinct : stats:Stats.t -> Relation.t -> Relation.t

(** Stable sort by [(expr, descending)] keys; NULLs sort first
    ascending. *)
val sort :
  ?cache:Cache.t -> stats:Stats.t -> (Bound_expr.t * bool) list -> Relation.t -> Relation.t

val limit : stats:Stats.t -> int -> Relation.t -> Relation.t

(** Drop the first [n] rows. *)
val offset : stats:Stats.t -> int -> Relation.t -> Relation.t
val union_all : stats:Stats.t -> Relation.t -> Relation.t -> Relation.t

(** INTERSECT [ALL]: bag semantics take minimum multiplicities; set
    semantics emit each common row once. *)
val intersect : stats:Stats.t -> all:bool -> Relation.t -> Relation.t -> Relation.t

(** EXCEPT [ALL]: bag semantics subtract multiplicities. *)
val except : stats:Stats.t -> all:bool -> Relation.t -> Relation.t -> Relation.t

(** Digest a subquery result for IN / EXISTS filtering; the membership
    set is only built when [need_members]. Cacheable: depends only on
    the subquery relation. *)
val make_sub_set : stats:Stats.t -> need_members:bool -> Relation.t -> Cache.sub_set

(** IN / EXISTS filtering over a prepared {!make_sub_set} digest, with
    SQL's null-aware NOT IN semantics. [key = None] is the EXISTS
    form. *)
val subquery_filter_with_set :
  ?cache:Cache.t ->
  stats:Stats.t ->
  anti:bool ->
  key:Bound_expr.t option ->
  Relation.t ->
  Cache.sub_set ->
  Relation.t

(** Uncorrelated IN / EXISTS subquery predicates as semi / anti joins:
    {!make_sub_set} composed with {!subquery_filter_with_set}. *)
val subquery_filter :
  ?cache:Cache.t ->
  stats:Stats.t ->
  anti:bool ->
  key:Bound_expr.t option ->
  Relation.t ->
  Relation.t ->
  Relation.t

(** Split a join condition (over the concatenated row) into hashable
    equi-key pairs [(left expr, right expr over the right row)] and a
    residual conjunct list. *)
val split_equi_condition :
  left_arity:int -> Bound_expr.t -> (Bound_expr.t * Bound_expr.t) list * Bound_expr.t list

(** Build the hash table for {!hash_join_probe} over the right side,
    given the right-side key expressions. Split out so the executor can
    memoize loop-invariant builds (see {!Cache}). *)
val make_join_build :
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  stats:Stats.t ->
  Bound_expr.t list ->
  Relation.t ->
  Cache.join_build

(** Probe a {!make_join_build} table with the left rows; [residual]
    filters combined rows. Chunk-parallel over the left rows. *)
val hash_join_probe :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  Logical.join_kind ->
  (Bound_expr.t * Bound_expr.t) list ->
  Bound_expr.t list ->
  Cache.join_build ->
  Relation.t ->
  Schema.t ->
  Relation.t

(** Hash join over extracted keys: {!make_join_build} composed with
    {!hash_join_probe}. *)
val hash_join :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  Logical.join_kind ->
  (Bound_expr.t * Bound_expr.t) list ->
  Bound_expr.t list ->
  Relation.t ->
  Relation.t ->
  Schema.t ->
  Relation.t

(** Nested-loop join for arbitrary (or absent) conditions. *)
val nested_loop_join :
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  stats:Stats.t ->
  Logical.join_kind ->
  Bound_expr.t option ->
  Relation.t ->
  Relation.t ->
  Schema.t ->
  Relation.t

(** Dispatch: hash join when an equi-key exists, else nested loop. *)
val join :
  ?parallel:Parallel.ctx ->
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  Logical.join_kind ->
  Bound_expr.t option ->
  Relation.t ->
  Relation.t ->
  Schema.t ->
  Relation.t

(** Hash aggregation; grouped output is keys then aggregates, in first-
    appearance group order. A global aggregate over an empty input
    yields one default row. *)
val aggregate :
  ?cache:Cache.t ->
  ?guards:Guards.t ->
  ?columnar:bool ->
  stats:Stats.t ->
  keys:Bound_expr.t list ->
  aggs:Logical.agg list ->
  Relation.t ->
  Schema.t ->
  Relation.t

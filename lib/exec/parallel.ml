(** A fixed-size pool of worker {!Domain}s with a helping barrier —
    the multicore substrate for partition-parallel distributed
    execution and chunk-parallel single-node operators.

    Design constraints, in order:

    - {b Determinism.} Results must be bit-identical to sequential
      execution. Work is split into contiguous index ranges, each task
      produces its output into its own slot, and slots are merged in
      index order after the barrier. Counters are accumulated into
      per-task private {!Stats.t} instances and folded into the
      caller's stats in index order once every task has finished.
    - {b Fault propagation.} An exception raised inside a worker
      domain (including {!Dbspinner_exec} execution errors and the MPP
      layer's transient faults) is caught in the domain, the barrier
      still completes, and the {e lowest-index} exception is re-raised
      on the submitting domain — so checkpoint/retry machinery above
      observes the same exception it would have seen sequentially.
    - {b No deadlock under nesting.} The submitting domain does not
      block idly at the barrier: it executes its own first task inline
      and then {e helps} drain the shared queue, so a task that itself
      submits a batch always makes progress even when every worker is
      busy. *)

type t = {
  size : int;  (** total parallelism, including the submitting domain *)
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(** The inline pool: size 1, every batch runs on the caller. *)
let sequential =
  {
    size = 1;
    queue = Queue.create ();
    lock = Mutex.create ();
    work = Condition.create ();
    live = false;
    workers = [];
  }

let size t = t.size

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && pool.live do
      Condition.wait pool.work pool.lock
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.lock
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      (* Tasks trap their own exceptions into result slots; nothing a
         task raises may kill the worker. *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

(** Stop the workers and join them. Idempotent; pending tasks are
    drained first. A shut-down pool still works — batches simply run
    inline on the caller. *)
let shutdown pool =
  if pool.live then begin
    Mutex.lock pool.lock;
    pool.live <- false;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let create size =
  if size <= 1 then sequential
  else begin
    let pool =
      {
        size;
        queue = Queue.create ();
        lock = Mutex.create ();
        work = Condition.create ();
        live = true;
        workers = [];
      }
    in
    pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop pool));
    (* Idle workers block on the condition variable; release them when
       the process exits so domains never outlive the main one. *)
    at_exit (fun () -> shutdown pool);
    pool
  end

(* Pools are cheap (size-1 blocked domains) and callers ask for small
   fixed sizes (1, 2, 4, ...), so memoize by size instead of making
   every caller manage lifetimes. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_lock = Mutex.create ()

let get size =
  if size <= 1 then sequential
  else begin
    Mutex.lock pools_lock;
    let pool =
      match Hashtbl.find_opt pools size with
      | Some pool -> pool
      | None ->
        let pool = create size in
        Hashtbl.replace pools size pool;
        pool
    in
    Mutex.unlock pools_lock;
    pool
  end

let default_pool =
  lazy (get (min 8 (Domain.recommended_domain_count ())))

let default () = Lazy.force default_pool

(* ------------------------------------------------------------------ *)
(* Barrier execution                                                   *)

(** Run every task and return once all have finished. Task 0 runs on
    the submitting domain; the rest are queued for workers, and the
    submitter helps drain the queue while waiting. If tasks raised,
    the lowest-index exception is re-raised after the barrier. *)
let run pool (fns : (unit -> unit) array) : unit =
  let n = Array.length fns in
  if n = 0 then ()
  else if pool.size <= 1 || n = 1 || not pool.live then
    Array.iter (fun f -> f ()) fns
  else begin
    let errors : exn option array = Array.make n None in
    let remaining = Atomic.make n in
    let task i () =
      (try fns.(i) () with e -> errors.(i) <- Some e);
      (* fetch_and_add is an RMW: the decrement chain gives the
         submitting domain a happens-before edge over every task's
         writes once it reads 0. *)
      ignore (Atomic.fetch_and_add remaining (-1))
    in
    Mutex.lock pool.lock;
    for i = 1 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    task 0 ();
    while Atomic.get remaining > 0 do
      let next =
        Mutex.lock pool.lock;
        let t =
          if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
        in
        Mutex.unlock pool.lock;
        t
      in
      match next with
      | Some t -> t ()
      | None -> Domain.cpu_relax ()
    done;
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

(** Run [n] indexed tasks, each against a {e private} [Stats.t];
    results come back in index order and the private stats are merged
    into [stats] in index order after the barrier, so counter totals
    are independent of scheduling. *)
let run_indexed pool ~(stats : Stats.t) n (f : Stats.t -> int -> 'a) : 'a array =
  if n = 0 then [||]
  else if pool.size <= 1 || n = 1 || not pool.live then
    Array.init n (fun i -> f stats i)
  else begin
    let locals = Array.init n (fun _ -> Stats.create ()) in
    let out = Array.make n None in
    run pool (Array.init n (fun i () -> out.(i) <- Some (f locals.(i) i)));
    Array.iter (fun local -> Stats.add ~into:stats local) locals;
    Array.map
      (function Some r -> r | None -> assert false (* run re-raised *))
      out
  end

(* ------------------------------------------------------------------ *)
(* Fire-and-wait single-task submission (server worker offload)        *)

(** Run one closure on a worker domain and block the calling thread
    until it finishes, returning its result (or re-raising its
    exception). Unlike {!run}, the caller does {e not} help drain the
    queue — this is meant for OS threads (server sessions) parking
    while a Domain does the CPU work, so a systhread blocked here
    releases the runtime lock instead of spinning. Inline when the
    pool is sequential or shut down. A submitted task must not itself
    call [submit] on the same pool (nested batches inside the task go
    through {!run}, which helps, so they stay deadlock-free). *)
let submit pool (f : unit -> 'a) : 'a =
  if pool.size <= 1 || not pool.live then f ()
  else begin
    let slot : ('a, exn) result option ref = ref None in
    let slot_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let task () =
      let result = try Ok (f ()) with e -> Error e in
      Mutex.lock slot_lock;
      slot := Some result;
      Condition.signal done_cond;
      Mutex.unlock slot_lock
    in
    Mutex.lock pool.lock;
    Queue.push task pool.queue;
    Condition.signal pool.work;
    Mutex.unlock pool.lock;
    Mutex.lock slot_lock;
    (* Option.is_none, not [= None]: ['a] may contain closures, which
       structural equality would raise on. *)
    while Option.is_none !slot do
      Condition.wait done_cond slot_lock
    done;
    Mutex.unlock slot_lock;
    match !slot with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false
  end

(* ------------------------------------------------------------------ *)
(* Chunk-parallel execution context (single-node operators)            *)

(** How a single-node operator may split its input: a pool plus the
    minimum relation size worth chunking. *)
type ctx = {
  pool : t;
  chunk_rows : int;
}

let default_chunk_rows = 4096

(** [context ~workers ()] is [None] when [workers <= 1] (operators stay
    on their sequential path). *)
let context ?(chunk_rows = default_chunk_rows) ~workers () : ctx option =
  if workers <= 1 then None else Some { pool = get workers; chunk_rows = max 1 chunk_rows }

(** Split [0, n) into contiguous chunks and run [f stats lo len] on
    each, returning per-chunk results in chunk order. Sequential (one
    chunk on the caller's stats) when [ctx] is [None] or [n] is below
    the chunk threshold — so the parallel path degenerates to exactly
    the sequential one. *)
let chunked (ctx : ctx option) ~(stats : Stats.t) ~n
    (f : Stats.t -> int -> int -> 'a) : 'a array =
  match ctx with
  | Some { pool; chunk_rows }
    when n >= chunk_rows && pool.size > 1 && pool.live ->
    let k = min pool.size n in
    run_indexed pool ~stats k (fun st i ->
        let lo = i * n / k and hi = (i + 1) * n / k in
        f st lo (hi - lo))
  | _ -> [| f stats 0 n |]

(** Per-execution counters. Benchmarks and tests use these to verify
    that an optimization really changed the work done (e.g. the
    common-result rewrite reduces join row volume; the rename path
    eliminates merge materializations). The fault/recovery counters are
    filled in by the distributed executor so benchmarks can measure
    recovery overhead (faults survived, checkpoints taken, fallbacks to
    single-node execution). *)

type t = {
  mutable rows_scanned : int;
  mutable rows_joined : int;  (** rows produced by join operators *)
  mutable join_probes : int;  (** probe-side rows processed *)
  mutable rows_aggregated : int;  (** rows consumed by aggregations *)
  mutable rows_materialized : int;
  mutable materializations : int;
  mutable renames : int;
  mutable loop_iterations : int;
  mutable statements : int;  (** statements executed (baselines > 1) *)
  mutable dml_rows_touched : int;  (** rows written by INSERT/UPDATE/DELETE *)
  mutable faults_injected : int;  (** transient faults raised by Fault.plan *)
  mutable retries : int;  (** iteration re-executions after a fault *)
  mutable checkpoints_taken : int;  (** loop checkpoints persisted *)
  mutable recoveries : int;  (** successful restarts from a checkpoint *)
  mutable fallbacks : int;  (** degradations to single-node execution *)
  mutable backoff_steps : int;
      (** cumulative deterministic backoff units accrued across retries
          (simulated, not slept) *)
}

let create () =
  {
    rows_scanned = 0;
    rows_joined = 0;
    join_probes = 0;
    rows_aggregated = 0;
    rows_materialized = 0;
    materializations = 0;
    renames = 0;
    loop_iterations = 0;
    statements = 0;
    dml_rows_touched = 0;
    faults_injected = 0;
    retries = 0;
    checkpoints_taken = 0;
    recoveries = 0;
    fallbacks = 0;
    backoff_steps = 0;
  }

let reset t =
  t.rows_scanned <- 0;
  t.rows_joined <- 0;
  t.join_probes <- 0;
  t.rows_aggregated <- 0;
  t.rows_materialized <- 0;
  t.materializations <- 0;
  t.renames <- 0;
  t.loop_iterations <- 0;
  t.statements <- 0;
  t.dml_rows_touched <- 0;
  t.faults_injected <- 0;
  t.retries <- 0;
  t.checkpoints_taken <- 0;
  t.recoveries <- 0;
  t.fallbacks <- 0;
  t.backoff_steps <- 0

let add ~into (src : t) =
  into.rows_scanned <- into.rows_scanned + src.rows_scanned;
  into.rows_joined <- into.rows_joined + src.rows_joined;
  into.join_probes <- into.join_probes + src.join_probes;
  into.rows_aggregated <- into.rows_aggregated + src.rows_aggregated;
  into.rows_materialized <- into.rows_materialized + src.rows_materialized;
  into.materializations <- into.materializations + src.materializations;
  into.renames <- into.renames + src.renames;
  into.loop_iterations <- into.loop_iterations + src.loop_iterations;
  into.statements <- into.statements + src.statements;
  into.dml_rows_touched <- into.dml_rows_touched + src.dml_rows_touched;
  into.faults_injected <- into.faults_injected + src.faults_injected;
  into.retries <- into.retries + src.retries;
  into.checkpoints_taken <- into.checkpoints_taken + src.checkpoints_taken;
  into.recoveries <- into.recoveries + src.recoveries;
  into.fallbacks <- into.fallbacks + src.fallbacks;
  into.backoff_steps <- into.backoff_steps + src.backoff_steps

let pp fmt t =
  Format.fprintf fmt
    "scanned=%d joined=%d probes=%d aggregated=%d materialized=%d(%d ops) \
     renames=%d iterations=%d statements=%d dml_rows=%d"
    t.rows_scanned t.rows_joined t.join_probes t.rows_aggregated
    t.rows_materialized t.materializations t.renames t.loop_iterations
    t.statements t.dml_rows_touched;
  (* Recovery counters only appear once something faulted, so the
     common no-fault output stays short. *)
  if
    t.faults_injected > 0 || t.retries > 0 || t.checkpoints_taken > 0
    || t.recoveries > 0 || t.fallbacks > 0
  then
    Format.fprintf fmt
      " faults=%d retries=%d checkpoints=%d recoveries=%d fallbacks=%d \
       backoff=%d"
      t.faults_injected t.retries t.checkpoints_taken t.recoveries t.fallbacks
      t.backoff_steps

let to_string t = Format.asprintf "%a" pp t

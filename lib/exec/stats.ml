(** Per-execution counters. Benchmarks and tests use these to verify
    that an optimization really changed the work done (e.g. the
    common-result rewrite reduces join row volume; the rename path
    eliminates merge materializations). The fault/recovery counters are
    filled in by the distributed executor so benchmarks can measure
    recovery overhead (faults survived, checkpoints taken, fallbacks to
    single-node execution).

    Two kinds of fields live here:

    - {e logical} integer counters, deterministic for a given plan and
      input (and, under parallel execution, merged from per-task
      private instances in task order so totals stay deterministic);
    - {e wall-time} buckets ([op_wall]), one per operator family, so
      EXPLAIN ANALYZE can show where time goes. Times are measured,
      not deterministic, and under parallel execution they sum CPU
      seconds across domains. {!logical_equal} ignores them. *)

(** Operator families timed into {!t.op_wall}. *)
type op =
  | Op_scan
  | Op_filter
  | Op_project
  | Op_join
  | Op_aggregate
  | Op_sort
  | Op_distinct
  | Op_setop  (** union / intersect / except / subquery filters *)

let op_count = 8

let op_index = function
  | Op_scan -> 0
  | Op_filter -> 1
  | Op_project -> 2
  | Op_join -> 3
  | Op_aggregate -> 4
  | Op_sort -> 5
  | Op_distinct -> 6
  | Op_setop -> 7

let op_name = function
  | Op_scan -> "scan"
  | Op_filter -> "filter"
  | Op_project -> "project"
  | Op_join -> "join"
  | Op_aggregate -> "aggregate"
  | Op_sort -> "sort"
  | Op_distinct -> "distinct"
  | Op_setop -> "setop"

let all_ops =
  [
    Op_scan; Op_filter; Op_project; Op_join; Op_aggregate; Op_sort; Op_distinct;
    Op_setop;
  ]

type t = {
  mutable rows_scanned : int;
  mutable rows_filtered : int;  (** rows evaluated by filter operators *)
  mutable rows_projected : int;  (** rows produced by projections *)
  mutable rows_joined : int;  (** rows produced by join operators *)
  mutable join_probes : int;  (** probe-side rows processed *)
  mutable rows_aggregated : int;  (** rows consumed by aggregations *)
  mutable rows_materialized : int;
  mutable materializations : int;
  mutable renames : int;
  mutable loop_iterations : int;
  mutable statements : int;  (** statements executed (baselines > 1) *)
  mutable dml_rows_touched : int;  (** rows written by INSERT/UPDATE/DELETE *)
  mutable faults_injected : int;  (** transient faults raised by Fault.plan *)
  mutable retries : int;  (** iteration re-executions after a fault *)
  mutable checkpoints_taken : int;  (** loop checkpoints persisted *)
  mutable recoveries : int;  (** successful restarts from a checkpoint *)
  mutable fallbacks : int;  (** degradations to single-node execution *)
  mutable backoff_steps : int;
      (** cumulative deterministic backoff units accrued across retries
          (simulated, not slept) *)
  mutable delta_rows_evaluated : int;
      (** working-table rows produced by restricted (delta-driven)
          re-evaluation instead of a full pass over the CTE *)
  mutable full_reevals : int;
      (** full loop-body re-evaluations inside delta-eligible loops
          (first iteration, large deltas, post-recovery restarts) *)
  mutable cache_hits : int;  (** executor-cache lookups served from cache *)
  mutable cache_misses : int;  (** executor-cache lookups that built fresh *)
  mutable build_ms_saved : float;
      (** wall milliseconds of build work avoided by cache hits
          (measured at miss time, so not deterministic) *)
  op_wall : float array;
      (** seconds spent per operator family, indexed by {!op_index};
          CPU seconds (summed across domains) under parallel execution *)
}

let create () =
  {
    rows_scanned = 0;
    rows_filtered = 0;
    rows_projected = 0;
    rows_joined = 0;
    join_probes = 0;
    rows_aggregated = 0;
    rows_materialized = 0;
    materializations = 0;
    renames = 0;
    loop_iterations = 0;
    statements = 0;
    dml_rows_touched = 0;
    faults_injected = 0;
    retries = 0;
    checkpoints_taken = 0;
    recoveries = 0;
    fallbacks = 0;
    backoff_steps = 0;
    delta_rows_evaluated = 0;
    full_reevals = 0;
    cache_hits = 0;
    cache_misses = 0;
    build_ms_saved = 0.0;
    op_wall = Array.make op_count 0.0;
  }

let reset t =
  t.rows_scanned <- 0;
  t.rows_filtered <- 0;
  t.rows_projected <- 0;
  t.rows_joined <- 0;
  t.join_probes <- 0;
  t.rows_aggregated <- 0;
  t.rows_materialized <- 0;
  t.materializations <- 0;
  t.renames <- 0;
  t.loop_iterations <- 0;
  t.statements <- 0;
  t.dml_rows_touched <- 0;
  t.faults_injected <- 0;
  t.retries <- 0;
  t.checkpoints_taken <- 0;
  t.recoveries <- 0;
  t.fallbacks <- 0;
  t.backoff_steps <- 0;
  t.delta_rows_evaluated <- 0;
  t.full_reevals <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.build_ms_saved <- 0.0;
  Array.fill t.op_wall 0 op_count 0.0

let add ~into (src : t) =
  into.rows_scanned <- into.rows_scanned + src.rows_scanned;
  into.rows_filtered <- into.rows_filtered + src.rows_filtered;
  into.rows_projected <- into.rows_projected + src.rows_projected;
  into.rows_joined <- into.rows_joined + src.rows_joined;
  into.join_probes <- into.join_probes + src.join_probes;
  into.rows_aggregated <- into.rows_aggregated + src.rows_aggregated;
  into.rows_materialized <- into.rows_materialized + src.rows_materialized;
  into.materializations <- into.materializations + src.materializations;
  into.renames <- into.renames + src.renames;
  into.loop_iterations <- into.loop_iterations + src.loop_iterations;
  into.statements <- into.statements + src.statements;
  into.dml_rows_touched <- into.dml_rows_touched + src.dml_rows_touched;
  into.faults_injected <- into.faults_injected + src.faults_injected;
  into.retries <- into.retries + src.retries;
  into.checkpoints_taken <- into.checkpoints_taken + src.checkpoints_taken;
  into.recoveries <- into.recoveries + src.recoveries;
  into.fallbacks <- into.fallbacks + src.fallbacks;
  into.backoff_steps <- into.backoff_steps + src.backoff_steps;
  into.delta_rows_evaluated <-
    into.delta_rows_evaluated + src.delta_rows_evaluated;
  into.full_reevals <- into.full_reevals + src.full_reevals;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.cache_misses <- into.cache_misses + src.cache_misses;
  into.build_ms_saved <- into.build_ms_saved +. src.build_ms_saved;
  for i = 0 to op_count - 1 do
    into.op_wall.(i) <- into.op_wall.(i) +. src.op_wall.(i)
  done

(** Full snapshot, wall-time buckets included. The tracer records one of
    these before a step/iteration and diffs against the live instance
    afterwards to attribute counter deltas to the span. *)
let copy (src : t) =
  let c = create () in
  add ~into:c src;
  c

(** Counter deltas since [since], packaged for a trace span. Pure reads
    of both instances — attributing work to a span never perturbs the
    stats themselves. *)
let trace_counters ~(since : t) (now : t) : Dbspinner_obs.Trace.counters =
  {
    Dbspinner_obs.Trace.c_rows_scanned = now.rows_scanned - since.rows_scanned;
    c_rows_joined = now.rows_joined - since.rows_joined;
    c_rows_materialized = now.rows_materialized - since.rows_materialized;
    c_cache_hits = now.cache_hits - since.cache_hits;
    c_cache_misses = now.cache_misses - since.cache_misses;
    c_faults = now.faults_injected - since.faults_injected;
    c_retries = now.retries - since.retries;
    c_recoveries = now.recoveries - since.recoveries;
  }

(** Snapshot of the logical counters only: wall-time buckets and the
    cache counters are zeroed. Used by the executor cache to record what
    a build {e logically} did, so a later hit can replay those counters
    without double-counting its own hit/miss bookkeeping. *)
let clone_logical (src : t) =
  let c = create () in
  add ~into:c src;
  Array.fill c.op_wall 0 op_count 0.0;
  c.cache_hits <- 0;
  c.cache_misses <- 0;
  c.build_ms_saved <- 0.0;
  c

(** Equality of the deterministic logical counters; wall-time buckets
    and cache counters are excluded (wall time varies run to run; cache
    counters depend on whether the cache is enabled, and cache-on vs
    cache-off runs must compare logically equal). Used by the
    seq-vs-parallel and cache-on-vs-off equivalence tests. *)
let logical_equal a b =
  a.rows_scanned = b.rows_scanned
  && a.rows_filtered = b.rows_filtered
  && a.rows_projected = b.rows_projected
  && a.rows_joined = b.rows_joined
  && a.join_probes = b.join_probes
  && a.rows_aggregated = b.rows_aggregated
  && a.rows_materialized = b.rows_materialized
  && a.materializations = b.materializations
  && a.renames = b.renames
  && a.loop_iterations = b.loop_iterations
  && a.statements = b.statements
  && a.dml_rows_touched = b.dml_rows_touched
  && a.faults_injected = b.faults_injected
  && a.retries = b.retries
  && a.checkpoints_taken = b.checkpoints_taken
  && a.recoveries = b.recoveries
  && a.fallbacks = b.fallbacks
  && a.backoff_steps = b.backoff_steps
  && a.delta_rows_evaluated = b.delta_rows_evaluated
  && a.full_reevals = b.full_reevals

(** [timed t op f] runs [f ()], accruing its elapsed wall time into
    [t]'s bucket for [op] (also on exception). *)
let timed t op f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let i = op_index op in
      t.op_wall.(i) <- t.op_wall.(i) +. (Unix.gettimeofday () -. t0))
    f

let pp fmt t =
  Format.fprintf fmt
    "scanned=%d filtered=%d projected=%d joined=%d probes=%d aggregated=%d \
     materialized=%d(%d ops) renames=%d iterations=%d statements=%d dml_rows=%d"
    t.rows_scanned t.rows_filtered t.rows_projected t.rows_joined t.join_probes
    t.rows_aggregated t.rows_materialized t.materializations t.renames
    t.loop_iterations t.statements t.dml_rows_touched;
  (* Recovery counters only appear once something faulted, so the
     common no-fault output stays short. *)
  if
    t.faults_injected > 0 || t.retries > 0 || t.checkpoints_taken > 0
    || t.recoveries > 0 || t.fallbacks > 0
  then
    Format.fprintf fmt
      " faults=%d retries=%d checkpoints=%d recoveries=%d fallbacks=%d \
       backoff=%d"
      t.faults_injected t.retries t.checkpoints_taken t.recoveries t.fallbacks
      t.backoff_steps;
  (* Delta counters only appear once a delta-eligible loop ran. *)
  if t.delta_rows_evaluated > 0 || t.full_reevals > 0 then
    Format.fprintf fmt " delta_rows_evaluated=%d full_reevals=%d"
      t.delta_rows_evaluated t.full_reevals;
  (* Cache counters only appear when the executor cache saw traffic. *)
  if t.cache_hits > 0 || t.cache_misses > 0 then
    Format.fprintf fmt " cache_hits=%d cache_misses=%d build_ms_saved=%.1f"
      t.cache_hits t.cache_misses t.build_ms_saved;
  (* Per-operator wall-time buckets, only once something was timed. *)
  if Array.exists (fun s -> s > 0.0) t.op_wall then begin
    Format.fprintf fmt "@\n  op wall time:";
    List.iter
      (fun op ->
        let s = t.op_wall.(op_index op) in
        if s > 0.0 then Format.fprintf fmt " %s=%.4fs" (op_name op) s)
      all_ops
  end

let to_string t = Format.asprintf "%a" pp t

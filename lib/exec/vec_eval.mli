(** Columnar expression evaluation: compiled batch-at-a-time kernels
    over {!Dbspinner_storage.Colbatch} columns, bit-identical with the
    row interpreter ({!Eval}) — same results, same NULL propagation,
    same error messages, and errors raised at the same (first) row.
    [CASE] subtrees fall back to a per-row scalar loop because their
    branches short-circuit per row. *)

module Colbatch = Dbspinner_storage.Colbatch
module Bound_expr = Dbspinner_plan.Bound_expr

(** A compiled kernel: evaluates the expression over every row of the
    batch, returning one column of the batch's length.
    @raise Eval.Runtime_error / Division_by_zero as {!Eval.eval}. *)
type kernel = Colbatch.t -> Colbatch.col

val compile : Bound_expr.t -> kernel

(** [truthy_sel col n] — selection vector of the rows where the
    predicate column is [TRUE] (NULL and [FALSE] reject; ascending).
    @raise Eval.Runtime_error when a kept row is not boolean. *)
val truthy_sel : Colbatch.col -> int -> int array

(** Compiled predicate straight to a selection vector. *)
val compile_sel : Bound_expr.t -> Colbatch.t -> int array

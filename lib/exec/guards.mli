(** Resource guards: wall-clock deadline, per-statement timeout,
    rows-materialized budget and an external interrupt probe, checked
    at materialize and loop boundaries by both executors.
    {!Errors.wrap} maps {!Resource_exhausted} to the [Resource] error
    stage. *)

exception Resource_exhausted of string

type t = {
  deadline : float option;
      (** absolute wall-clock time (Unix epoch seconds) *)
  timeout : float option;
      (** absolute statement timeout; like [deadline] but scoped to one
          script and reported as "statement timeout" so callers can
          tell a per-statement cutoff from the session deadline *)
  row_budget : int option;
      (** maximum total rows the program may materialize *)
  interrupt : (unit -> string option) option;
      (** cancellation probe polled at guard boundaries; returning
          [Some reason] aborts execution with that reason. Must be
          cheap and thread-safe: the server calls it from worker
          domains. *)
}

(** No limits. *)
val none : t

(** True when no limit nor interrupt is set (checks are free to
    skip). *)
val is_none : t -> bool

(** [make ?deadline_seconds ?timeout_seconds ?row_budget ?interrupt ()]
    — the time knobs are relative to now. *)
val make :
  ?deadline_seconds:float ->
  ?timeout_seconds:float ->
  ?row_budget:int ->
  ?interrupt:(unit -> string option) ->
  unit ->
  t

(** @raise Resource_exhausted when a limit has been crossed or the
    interrupt probe fired. *)
val check : t -> stats:Stats.t -> unit

(** Rows between two in-operator guard probes (see {!tick}). *)
val probe_interval : int

(** Row countdown for periodic checks inside an operator loop; allocate
    one per loop (chunk-parallel tasks must not share one). *)
type probe = { mutable until_check : int }

val probe : unit -> probe

(** Count one row against [p]; every {!probe_interval} rows, run
    {!check}. Lets a single giant scan/join honor timeouts and
    interrupts instead of only noticing them at the next materialize
    or loop boundary. No-op when [guards] is [None].
    @raise Resource_exhausted as {!check}. *)
val tick : t option -> probe -> stats:Stats.t -> unit

(** Bulk {!tick}: count [n] rows at once (columnar batch loops).
    @raise Resource_exhausted as {!check}. *)
val tick_n : t option -> probe -> stats:Stats.t -> int -> unit

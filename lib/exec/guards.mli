(** Resource guards: wall-clock deadline and rows-materialized budget,
    checked at materialize and loop boundaries by both executors.
    {!Errors.wrap} maps {!Resource_exhausted} to the [Resource] error
    stage. *)

exception Resource_exhausted of string

type t = {
  deadline : float option;
      (** absolute wall-clock time (Unix epoch seconds) *)
  row_budget : int option;
      (** maximum total rows the program may materialize *)
}

(** No limits. *)
val none : t

(** True when neither limit is set (checks are free to skip). *)
val is_none : t -> bool

(** [make ?deadline_seconds ?row_budget ()] — [deadline_seconds] is
    relative to now. *)
val make : ?deadline_seconds:float -> ?row_budget:int -> unit -> t

(** @raise Resource_exhausted when a limit has been crossed. *)
val check : t -> stats:Stats.t -> unit

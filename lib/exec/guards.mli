(** Resource guards: wall-clock deadline, rows-materialized budget and
    an external interrupt probe, checked at materialize and loop
    boundaries by both executors. {!Errors.wrap} maps
    {!Resource_exhausted} to the [Resource] error stage. *)

exception Resource_exhausted of string

type t = {
  deadline : float option;
      (** absolute wall-clock time (Unix epoch seconds) *)
  row_budget : int option;
      (** maximum total rows the program may materialize *)
  interrupt : (unit -> string option) option;
      (** cancellation probe polled at guard boundaries; returning
          [Some reason] aborts execution with that reason. Must be
          cheap and thread-safe: the server calls it from worker
          domains. *)
}

(** No limits. *)
val none : t

(** True when neither limit nor interrupt is set (checks are free to
    skip). *)
val is_none : t -> bool

(** [make ?deadline_seconds ?row_budget ?interrupt ()] —
    [deadline_seconds] is relative to now. *)
val make :
  ?deadline_seconds:float ->
  ?row_budget:int ->
  ?interrupt:(unit -> string option) ->
  unit ->
  t

(** @raise Resource_exhausted when a limit has been crossed or the
    interrupt probe fired. *)
val check : t -> stats:Stats.t -> unit

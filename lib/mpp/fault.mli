(** Deterministic, seedable fault injection for the simulated
    shared-nothing layer: exchanges and per-partition operators can be
    made to raise {!Transient_fault} with a configured probability or
    at scripted (step, iteration) points. The distributed executor
    recovers via loop checkpoints, bounded retries and single-node
    fallback. *)

type site =
  | Repartition  (** key-hash exchange between workers *)
  | Gather  (** all partitions collapsing onto one worker *)
  | Broadcast  (** one relation replicated to every worker *)
  | Operator  (** per-partition operator execution (worker crash) *)

val site_name : site -> string

exception Transient_fault of string

type spec =
  | No_faults
  | Probabilistic of { seed : int; probability : float; max_faults : int }
      (** each fault site draws from a seeded PRNG and fails with
          [probability], up to [max_faults] total injections *)
  | Scripted of (int * int) list
      (** exact [(step, iteration)] points, firing once per point *)

type plan

val make : spec -> plan

(** A fresh no-fault plan (ticks are free). *)
val none : plan

val probabilistic :
  ?max_faults:int -> seed:int -> probability:float -> unit -> plan

val scripted : (int * int) list -> plan

(** Faults raised by this plan so far. *)
val faults_injected : plan -> int

(** Executors report their position before each step so scripted
    faults can target exact (step, iteration) points. *)
val set_context : plan -> step:int -> iteration:int -> unit

(** Called at every fault site.
    @raise Transient_fault when the plan schedules a failure here. *)
val tick : plan -> site:site -> unit

(** A simulated shared-nothing executor: every relation lives as
    [workers] partitions; equi-joins and grouped aggregations
    repartition their inputs by key and run per-partition; order-
    sensitive operators gather. The number of rows that cross workers
    is recorded — the "data shuffle decisions" of the paper's host
    engine — so plans can be compared for exchange volume.

    The observable contract, checked by tests: for every plan,
    distributed execution returns the same bag of rows as the
    single-node {!Dbspinner_exec.Executor} — including under injected
    transient faults, which {!run_program} survives via
    iteration-granular checkpoints, bounded retries and, as a last
    resort, falling back to single-node execution. *)

module Value = Dbspinner_storage.Value
module Row = Dbspinner_storage.Row
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Logical = Dbspinner_plan.Logical
module Bound_expr = Dbspinner_plan.Bound_expr
module Eval = Dbspinner_exec.Eval
module Operators = Dbspinner_exec.Operators
module Cache = Dbspinner_exec.Cache
module Stats = Dbspinner_exec.Stats
module Guards = Dbspinner_exec.Guards
module Parallel = Dbspinner_exec.Parallel

type shuffle_stats = {
  mutable rows_shuffled : int;  (** rows that moved between workers *)
  mutable exchanges : int;  (** number of exchange operations *)
}

type dist_rel = {
  parts : Relation.t array;
}

let gather (d : dist_rel) = Partition.merge d.parts

(** Repartition by a key function, counting rows whose worker changes. *)
let repartition ~workers ~(shuffles : shuffle_stats) ~fault ~key (d : dist_rel)
    : dist_rel =
  Fault.tick fault ~site:Fault.Repartition;
  shuffles.exchanges <- shuffles.exchanges + 1;
  let buckets = Array.make workers [] in
  Array.iteri
    (fun current part ->
      Relation.iter
        (fun row ->
          let target = Partition.worker_of_key ~workers (key row) in
          if target <> current then
            shuffles.rows_shuffled <- shuffles.rows_shuffled + 1;
          buckets.(target) <- row :: buckets.(target))
        part)
    d.parts;
  let schema = Relation.schema d.parts.(0) in
  {
    parts =
      Array.map
        (fun rows -> Relation.make schema (Array.of_list (List.rev rows)))
        buckets;
  }

let gather_to_one ~workers ~(shuffles : shuffle_stats) ~fault (d : dist_rel) :
    dist_rel =
  Fault.tick fault ~site:Fault.Gather;
  shuffles.exchanges <- shuffles.exchanges + 1;
  Array.iteri
    (fun current part ->
      if current <> 0 then
        shuffles.rows_shuffled <-
          shuffles.rows_shuffled + Relation.cardinality part)
    d.parts;
  let merged = Partition.merge d.parts in
  let empty = Relation.empty (Relation.schema merged) in
  { parts = Array.init workers (fun i -> if i = 0 then merged else empty) }

(** Run [f] on every partition concurrently across the Domain pool.
    [Fault.tick] runs once, coordinator-side, before dispatch (the
    shared seeded RNG is not domain-safe); an exception raised inside a
    domain is re-raised here at the barrier, so checkpoint/retry above
    observes it exactly as in sequential execution. Each partition gets
    a private [Stats.t] merged into [stats] in partition order, keeping
    counters deterministic. *)
let per_partition ~pool ~fault ~(stats : Stats.t)
    (f : Stats.t -> Relation.t -> Relation.t) (d : dist_rel) : dist_rel =
  Fault.tick fault ~site:Fault.Operator;
  {
    parts =
      Parallel.run_indexed pool ~stats (Array.length d.parts) (fun st i ->
          f st d.parts.(i));
  }

(* Precompile the key expressions once per repartition (the closures
   come from the per-run cache when one is given), instead of
   re-interpreting each expression tree per row. *)
let key_fn ?cache ~stats exprs =
  let fs =
    Array.map (fun e -> Operators.compiled_val ?cache ~stats e) exprs
  in
  fun row -> Array.map (fun f -> f row) fs

(* ------------------------------------------------------------------ *)
(* Aggregation with local pre-aggregation                              *)

(** An aggregate list is decomposable when every partial result can be
    combined by another aggregate: COUNT combines by SUM, SUM/MIN/MAX
    by themselves. AVG and DISTINCT aggregates are not (AVG would need
    a sum/count pair; DISTINCT needs the raw values). *)
let decomposable (aggs : Logical.agg list) =
  List.for_all
    (fun (a : Logical.agg) ->
      (not a.agg_distinct)
      &&
      match a.agg_kind with
      | Dbspinner_sql.Ast.Count | Dbspinner_sql.Ast.Count_star
      | Dbspinner_sql.Ast.Sum | Dbspinner_sql.Ast.Min | Dbspinner_sql.Ast.Max ->
        true
      | Dbspinner_sql.Ast.Avg -> false)
    aggs

(** The combiner aggregates applied to partial rows
    [key_0..key_{n-1}, partial_0..]. *)
let combiner_aggs ~nkeys (aggs : Logical.agg list) : Logical.agg list =
  List.mapi
    (fun i (a : Logical.agg) ->
      let kind =
        match a.agg_kind with
        | Dbspinner_sql.Ast.Count | Dbspinner_sql.Ast.Count_star
        | Dbspinner_sql.Ast.Sum ->
          Dbspinner_sql.Ast.Sum
        | Dbspinner_sql.Ast.Min -> Dbspinner_sql.Ast.Min
        | Dbspinner_sql.Ast.Max -> Dbspinner_sql.Ast.Max
        | Dbspinner_sql.Ast.Avg -> assert false
      in
      {
        Logical.agg_kind = kind;
        agg_distinct = false;
        agg_arg = Bound_expr.B_col (nkeys + i);
      })
    aggs

(** Distributed grouped aggregation. Decomposable aggregates are
    pre-aggregated locally so only one partial row per (worker, group)
    crosses the network — the standard MPP shuffle-volume
    optimization. *)
let run_aggregate ?cache ?(columnar = false) ~pool ~workers ~shuffles ~fault
    ~stats ~keys ~aggs ~agg_schema (d : dist_rel) : dist_rel =
  let nkeys = List.length keys in
  if decomposable aggs then begin
    let partial =
      per_partition ~pool ~fault ~stats
        (fun st part ->
          Operators.aggregate ?cache ~columnar ~stats:st ~keys ~aggs part
            agg_schema)
        d
    in
    let final_keys = List.init nkeys (fun i -> Bound_expr.B_col i) in
    let final_aggs = combiner_aggs ~nkeys aggs in
    let combine st part =
      Operators.aggregate ?cache ~columnar ~stats:st ~keys:final_keys
        ~aggs:final_aggs part agg_schema
    in
    if nkeys = 0 then begin
      (* One partial row per worker; combine on worker 0. *)
      let g = gather_to_one ~workers ~shuffles ~fault partial in
      {
        parts =
          Array.init workers (fun i ->
              if i = 0 then combine stats g.parts.(0)
              else Relation.empty agg_schema);
      }
    end
    else begin
      let partial =
        repartition ~workers ~shuffles ~fault
          ~key:(fun (row : Row.t) -> Array.sub row 0 nkeys)
          partial
      in
      per_partition ~pool ~fault ~stats combine partial
    end
  end
  else if nkeys = 0 then begin
    (* Non-decomposable global aggregate: gather raw rows. *)
    let g = gather_to_one ~workers ~shuffles ~fault d in
    {
      parts =
        Array.init workers (fun i ->
            if i = 0 then
              Operators.aggregate ?cache ~columnar ~stats ~keys ~aggs
                g.parts.(0) agg_schema
            else Relation.empty agg_schema);
    }
  end
  else begin
    let key_exprs = Array.of_list keys in
    let d =
      repartition ~workers ~shuffles ~fault
        ~key:(key_fn ?cache ~stats key_exprs)
        d
    in
    per_partition ~pool ~fault ~stats
      (fun st part ->
        Operators.aggregate ?cache ~columnar ~stats:st ~keys ~aggs part
          agg_schema)
      d
  end

let rec run ?temps ?cache ?(columnar = false) ~pool ~workers ~shuffles ~fault
    ~(stats : Stats.t) (catalog : Catalog.t) (plan : Logical.t) : dist_rel =
  let run = run ?temps ?cache ~columnar ~pool ~fault in
  (* Per-partition operator work fans out across the Domain pool;
     exchanges (repartition/gather) and fault ticks stay on the
     coordinator. *)
  let on_partitions n f = Parallel.run_indexed pool ~stats n f in
  let per_partition f d = per_partition ~pool ~fault ~stats f d in
  let repartition ~workers ~shuffles ~key d =
    repartition ~workers ~shuffles ~fault ~key d
  in
  let gather_to_one ~workers ~shuffles d =
    gather_to_one ~workers ~shuffles ~fault d
  in
  match plan with
  | Logical.L_scan { name; _ }
    when Option.is_some
           (Option.bind temps (fun t ->
                Hashtbl.find_opt t (String.lowercase_ascii name))) ->
    (* A temp materialized by this program: reuse its partitions as
       they sit on the workers — no exchange. *)
    Option.get
      (Option.bind temps (fun t ->
           Hashtbl.find_opt t (String.lowercase_ascii name)))
  | Logical.L_scan _ | Logical.L_values _ ->
    let rel =
      Dbspinner_exec.Executor.run_plan ?cache ~columnar ~stats catalog plan
    in
    { parts = Partition.round_robin ~workers rel }
  | Logical.L_filter { pred; input } ->
    per_partition
      (fun st part -> Operators.filter ?cache ~columnar ~stats:st pred part)
      (run ~workers ~shuffles ~stats catalog input)
  | Logical.L_project { exprs; input } ->
    per_partition
      (fun st part -> Operators.project ?cache ~columnar ~stats:st exprs part)
      (run ~workers ~shuffles ~stats catalog input)
  | Logical.L_join { kind; cond; left; right; join_schema } -> (
    let dl = run ~workers ~shuffles ~stats catalog left in
    let dr = run ~workers ~shuffles ~stats catalog right in
    let left_arity = Schema.arity (Logical.schema left) in
    let equi =
      match cond with
      | None -> []
      | Some c -> fst (Operators.split_equi_condition ~left_arity c)
    in
    match equi with
    | [] ->
      (* No hashable key: gather both sides and join on one worker. *)
      let dl = gather_to_one ~workers ~shuffles dl in
      let dr = gather_to_one ~workers ~shuffles dr in
      {
        parts =
          Array.init workers (fun i ->
              if i = 0 then
                Operators.join ?cache ~columnar ~stats kind cond dl.parts.(0)
                  dr.parts.(0) join_schema
              else Relation.empty join_schema);
      }
    | keys ->
      let lkeys = Array.of_list (List.map fst keys) in
      let rkeys = Array.of_list (List.map snd keys) in
      let dl =
        repartition ~workers ~shuffles ~key:(key_fn ?cache ~stats lkeys) dl
      in
      let dr =
        repartition ~workers ~shuffles ~key:(key_fn ?cache ~stats rkeys) dr
      in
      (* NULL-keyed rows of outer sides land on worker 0 on both sides,
         so outer padding stays correct per partition. *)
      {
        parts =
          on_partitions workers (fun st i ->
              Operators.join ?cache ~columnar ~stats:st kind cond dl.parts.(i)
                dr.parts.(i) join_schema);
      })
  | Logical.L_aggregate { keys; aggs; input; agg_schema } ->
    let d = run ~workers ~shuffles ~stats catalog input in
    run_aggregate ?cache ~columnar ~pool ~workers ~shuffles ~fault ~stats
      ~keys ~aggs ~agg_schema d
  | Logical.L_distinct input ->
    let d = run ~workers ~shuffles ~stats catalog input in
    let d = repartition ~workers ~shuffles ~key:(fun row -> row) d in
    per_partition (fun st part -> Operators.distinct ~stats:st part) d
  | Logical.L_sort { keys; input } ->
    let d = run ~workers ~shuffles ~stats catalog input in
    let d = gather_to_one ~workers ~shuffles d in
    per_partition (fun st part -> Operators.sort ?cache ~stats:st keys part) d
  | Logical.L_limit (n, input) ->
    let d = run ~workers ~shuffles ~stats catalog input in
    let d = gather_to_one ~workers ~shuffles d in
    per_partition (fun st part -> Operators.limit ~stats:st n part) d
  | Logical.L_offset (n, input) ->
    let d = run ~workers ~shuffles ~stats catalog input in
    let d = gather_to_one ~workers ~shuffles d in
    per_partition (fun st part -> Operators.offset ~stats:st n part) d
  | Logical.L_intersect { all; left; right } ->
    let dl = run ~workers ~shuffles ~stats catalog left in
    let dr = run ~workers ~shuffles ~stats catalog right in
    let dl = repartition ~workers ~shuffles ~key:(fun row -> row) dl in
    let dr = repartition ~workers ~shuffles ~key:(fun row -> row) dr in
    {
      parts =
        on_partitions workers (fun st i ->
            Operators.intersect ~stats:st ~all dl.parts.(i) dr.parts.(i));
    }
  | Logical.L_except { all; left; right } ->
    let dl = run ~workers ~shuffles ~stats catalog left in
    let dr = run ~workers ~shuffles ~stats catalog right in
    let dl = repartition ~workers ~shuffles ~key:(fun row -> row) dl in
    let dr = repartition ~workers ~shuffles ~key:(fun row -> row) dr in
    {
      parts =
        on_partitions workers (fun st i ->
            Operators.except ~stats:st ~all dl.parts.(i) dr.parts.(i));
    }
  | Logical.L_union { all; left; right } ->
    let dl = run ~workers ~shuffles ~stats catalog left in
    let dr = run ~workers ~shuffles ~stats catalog right in
    let d =
      {
        parts =
          on_partitions workers (fun st i ->
              Operators.union_all ~stats:st dl.parts.(i) dr.parts.(i));
      }
    in
    if all then d
    else begin
      let d = repartition ~workers ~shuffles ~key:(fun row -> row) d in
      per_partition (fun st part -> Operators.distinct ~stats:st part) d
    end
  | Logical.L_subquery_filter { anti; key; input; sub } ->
    (* Broadcast the (gathered) subquery result to every worker. *)
    let di = run ~workers ~shuffles ~stats catalog input in
    let dsub = run ~workers ~shuffles ~stats catalog sub in
    Fault.tick fault ~site:Fault.Broadcast;
    let gathered = gather dsub in
    shuffles.exchanges <- shuffles.exchanges + 1;
    shuffles.rows_shuffled <-
      shuffles.rows_shuffled + (Relation.cardinality gathered * (workers - 1));
    per_partition
      (fun st part ->
        Operators.subquery_filter ?cache ~stats:st ~anti ~key part gathered)
      di

(** Execute [plan] across [workers] simulated workers; returns the
    gathered result and the exchange volume. Per-partition operator
    work runs concurrently on [pool] (default: the shared Domain
    pool). Injected faults propagate (single plans have no checkpoint
    to recover from; use {!run_program} for recovery semantics). *)
let run_plan ?(workers = 4) ?pool ?(fault = Fault.none) ?(use_cache = true)
    ?(columnar = false) (catalog : Catalog.t) (plan : Logical.t) :
    Relation.t * shuffle_stats =
  if workers <= 0 then invalid_arg "Distributed.run_plan: workers <= 0";
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let cache = if use_cache then Some (Cache.create ()) else None in
  let shuffles = { rows_shuffled = 0; exchanges = 0 } in
  let stats = Stats.create () in
  let d = run ?cache ~columnar ~pool ~workers ~shuffles ~fault ~stats catalog plan in
  (gather d, shuffles)

(* ------------------------------------------------------------------ *)
(* Distributed step programs                                           *)

module Program = Dbspinner_plan.Program
module Trace = Dbspinner_obs.Trace

exception Unsupported of string

type loop_state = {
  spec : Program.termination;
  cte : string;
  key_idx : int;
  guard : int;
  mutable iterations : int;
  mutable cumulative_updates : int;
  mutable snapshot : Relation.t option;
  mutable iter_mark : (float * Stats.t) option;
      (** tracing only: wall clock and stats snapshot at the start of
          the current iteration. [None] when tracing is off. *)
  mutable d_prev_cte : Relation.t option;
      (** semi-naive only: gathered CTE version consumed by the previous
          iteration's [Delta_materialize] (see the single-node
          executor's loop state). *)
  mutable d_prev_work : Relation.t option;
      (** semi-naive only: the previous iteration's gathered work
          output, reused for unaffected keys when stitching. *)
  mutable d_cutoff_streak : int;
      (** consecutive large-delta cutoffs; at the single-node
          executor's streak limit the loop stops diffing (see
          {!Dbspinner_exec.Executor}). *)
}

let copy_loop_state (st : loop_state) : loop_state =
  {
    spec = st.spec;
    cte = st.cte;
    key_idx = st.key_idx;
    guard = st.guard;
    iterations = st.iterations;
    cumulative_updates = st.cumulative_updates;
    snapshot = st.snapshot;
    (* The snapshot pair is never mutated after creation, so checkpoint
       copies may share it. After a restore, the restored mark predates
       the fault — the retried iteration's span then absorbs the
       fault/retry counters, which is exactly what the timeline should
       show. *)
    iter_mark = st.iter_mark;
    (* Relations are immutable; the delta baselines are only rebound at
       the end of a successful Delta_materialize, so checkpoint copies
       may share them too. *)
    d_prev_cte = st.d_prev_cte;
    d_prev_work = st.d_prev_work;
    d_cutoff_streak = st.d_cutoff_streak;
  }

(** A restart point: the program counter to resume at plus copies of
    the partitioned temps and loop counters. Relations are immutable,
    so checkpoints are O(temps + loops) pointer copies — the "cheap
    checkpoint" SciDB-style iteration-granular recovery relies on. *)
type checkpoint = {
  ck_pc : int;
  ck_temps : (string, dist_rel) Hashtbl.t;
  ck_loops : (int * loop_state) list;
  ck_in_loop : bool;
      (** true for checkpoints taken at a [Loop_end] (a restore from
          one counts as a recovery, not a from-scratch restart) *)
}

(** Run [program] single-node as the graceful-degradation path after
    [max_retries] consecutive transient faults. The catalog's temp
    namespace is restored afterwards so callers see no leftover temps
    from the fallback execution. *)
let fallback_single_node ~stats ~guards ~columnar ?trace
    (catalog : Catalog.t) (program : Program.t) : Relation.t =
  stats.Stats.fallbacks <- stats.Stats.fallbacks + 1;
  let saved =
    List.map
      (fun n -> (n, Catalog.find_temp catalog n))
      (Catalog.temp_names catalog)
  in
  Fun.protect
    ~finally:(fun () ->
      Catalog.clear_temps catalog;
      List.iter (fun (n, r) -> Catalog.set_temp catalog n r) saved)
    (fun () ->
      Dbspinner_exec.Executor.run_program ~stats ~guards ~columnar ?trace
        catalog program)

(** Execute a whole step program with every plan running distributed.
    Materialized temps stay {e partitioned on the workers} between
    steps (so the loop body's scans of the CTE table cost no exchange),
    and [Rename] is a pointer swap of partition sets. Termination
    checks beyond fixed iteration counts gather the CTE to the
    coordinator; those reads are not counted as shuffles.

    Fault tolerance: when [fault] injects a {!Fault.Transient_fault},
    execution restarts from the last checkpoint — taken at program
    start and after every [Loop_end] — retrying up to [max_retries]
    consecutive times with deterministic exponential backoff accounting
    (recorded in [stats], not slept). Once retries are exhausted the
    program degrades gracefully to single-node execution
    ([stats.fallbacks]) instead of failing the query. [guards] are
    checked at materialize and loop boundaries; {!Guards.Resource_exhausted}
    is not retried (resource exhaustion is not transient).

    @raise Unsupported for programs containing recursive CTEs. *)
let run_program ?(workers = 4) ?pool ?(fault = Fault.none) ?(max_retries = 3)
    ?(guards = Guards.none) ?(stats = Stats.create ()) ?(use_cache = true)
    ?(columnar = false) ?trace (catalog : Catalog.t) (program : Program.t) :
    Relation.t * shuffle_stats =
  if workers <= 0 then invalid_arg "Distributed.run_program: workers <= 0";
  if max_retries < 0 then
    invalid_arg "Distributed.run_program: max_retries < 0";
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  (* Distributed temps are partitioned [dist_rel]s outside the catalog,
     so the generation-keyed build memo never applies here; the cache
     still pays off through compiled expressions, shared (behind its
     lock) across all partition domains. *)
  let cache = if use_cache then Some (Cache.create ()) else None in
  let shuffles = { rows_shuffled = 0; exchanges = 0 } in
  let temps : (string, dist_rel) Hashtbl.t = Hashtbl.create 8 in
  let key n = String.lowercase_ascii n in
  let find_temp name =
    match Hashtbl.find_opt temps (key name) with
    | Some d -> d
    | None -> raise (Unsupported (Printf.sprintf "temp %s not materialized" name))
  in
  let loops : (int, loop_state) Hashtbl.t = Hashtbl.create 4 in
  let steps = Program.steps program in
  let result = ref None in
  let pc = ref 0 in
  let take_checkpoint ~in_loop next_pc =
    {
      ck_pc = next_pc;
      ck_temps = Hashtbl.copy temps;
      ck_loops =
        Hashtbl.fold (fun id st acc -> (id, copy_loop_state st) :: acc) loops [];
      ck_in_loop = in_loop;
    }
  in
  let restore ck =
    Hashtbl.reset temps;
    Hashtbl.iter (fun k v -> Hashtbl.replace temps k v) ck.ck_temps;
    Hashtbl.reset loops;
    List.iter
      (fun (id, st) -> Hashtbl.replace loops id (copy_loop_state st))
      ck.ck_loops;
    pc := ck.ck_pc
  in
  let last_checkpoint = ref (take_checkpoint ~in_loop:false 0) in
  (* Consecutive failed attempts since the last successful checkpoint. *)
  let attempts = ref 0 in
  let prog_mark =
    match trace with
    | None -> None
    | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats)
  in
  let step_label step =
    match step with
    | Program.Materialize { target; _ } -> "materialize:" ^ target
    | Program.Delta_materialize { target; _ } -> "delta_materialize:" ^ target
    | Program.Rename { from_; into } -> "rename:" ^ from_ ^ "->" ^ into
    | Program.Drop_temp name -> "drop:" ^ name
    | Program.Assert_unique_key { temp; _ } -> "assert_unique:" ^ temp
    | Program.Init_loop { cte; _ } -> "init_loop:" ^ cte
    | Program.Snapshot { loop_id } -> Printf.sprintf "snapshot:%d" loop_id
    | Program.Loop_end { loop_id; _ } -> Printf.sprintf "loop_end:%d" loop_id
    | Program.Recursive_cte { name; _ } -> "recursive_cte:" ^ name
    | Program.Return _ -> "return"
  in
  (* Gauges the current step wants attached to its Step span. *)
  let step_rows = ref (-1) in
  let step_delta = ref (-1) in
  let exec_step step =
    let jump = ref None in
    (match step with
    | Program.Materialize { target; plan } ->
      let d =
        run ~temps ?cache ~columnar ~pool ~workers ~shuffles ~fault ~stats
          catalog plan
      in
      stats.Stats.materializations <- stats.Stats.materializations + 1;
      stats.Stats.rows_materialized <-
        stats.Stats.rows_materialized + Partition.total_cardinality d.parts;
      step_rows := Partition.total_cardinality d.parts;
      Guards.check guards ~stats;
      Hashtbl.replace temps (key target) d
    | Program.Delta_materialize
        {
          loop_id;
          target;
          cte;
          key_idx;
          full_plan;
          restricted_plan;
          affected_plans;
          delta_name;
          affected_name;
        } ->
      (* Coordinator-side semi-naive evaluation: gather the CTE, diff
         against the previous version, and restrict the distributed
         re-evaluation to affected keys. The diff and stitch run on the
         coordinator (they are cheap hash passes); the affected and
         restricted plans run distributed, with the delta and
         affected-key temps partitioned onto the workers like any
         materialized temp. Mirrors the single-node executor's
         [Delta_materialize]; the result is bag-identical to running
         the full plan. *)
      let st =
        match Hashtbl.find_opt loops loop_id with
        | Some st -> st
        | None ->
          raise (Unsupported "Delta_materialize for uninitialized loop")
      in
      let cur = gather (find_temp cte) in
      let dist_eval plan =
        gather
          (run ~temps ?cache ~columnar ~pool ~workers ~shuffles ~fault ~stats
             catalog plan)
      in
      let full_eval () =
        stats.Stats.full_reevals <- stats.Stats.full_reevals + 1;
        dist_eval full_plan
      in
      let work =
        match st.d_prev_cte, st.d_prev_work with
        | Some prev, Some prev_work -> (
          (* Bounded diff: once the distinct-changed-key count reaches
             half the CTE (the large-delta cutoff), the probe returns
             [None] without materializing the delta at all — same
             decision as the unbounded diff followed by the cutoff
             check, minus the wasted relation build. *)
          let cutoff = max 1 ((Relation.cardinality cur + 1) / 2) in
          match Relation.changed_rows_bounded ~key_idx ~cutoff prev cur with
          | None ->
            st.d_cutoff_streak <- st.d_cutoff_streak + 1;
            full_eval ()
          | Some delta ->
            if Relation.cardinality delta = 0 then begin
              st.d_cutoff_streak <- 0;
              prev_work
            end
            else begin
              let changed_keys = Hashtbl.create 64 in
              Relation.iter
                (fun r -> Hashtbl.replace changed_keys r.(key_idx) ())
                delta;
              st.d_cutoff_streak <- 0;
              Hashtbl.replace temps (key delta_name)
                { parts = Partition.round_robin ~workers delta };
              let affected = Hashtbl.create 64 in
              Hashtbl.iter
                (fun k () -> Hashtbl.replace affected k ())
                changed_keys;
              List.iter
                (fun p ->
                  Relation.iter
                    (fun r -> Hashtbl.replace affected r.(0) ())
                    (dist_eval p))
                affected_plans;
              let a_rows =
                Hashtbl.fold (fun k () acc -> [| k |] :: acc) affected []
              in
              Hashtbl.replace temps (key affected_name)
                {
                  parts =
                    Partition.round_robin ~workers
                      (Relation.make
                         (Schema.of_names [ "key" ])
                         (Array.of_list a_rows));
                };
              let restricted = dist_eval restricted_plan in
              stats.Stats.delta_rows_evaluated <-
                stats.Stats.delta_rows_evaluated
                + Relation.cardinality restricted;
              let by_key : (Value.t, Row.t list) Hashtbl.t =
                Hashtbl.create 64
              in
              Relation.iter
                (fun r ->
                  let k = r.(key_idx) in
                  let rest = try Hashtbl.find by_key k with Not_found -> [] in
                  Hashtbl.replace by_key k (r :: rest))
                restricted;
              let out = ref [] in
              let cur_rows = Relation.rows cur in
              let prev_rows = Relation.rows prev_work in
              let n_cur = Array.length cur_rows in
              (* Same positional fast path as the single-node stitch:
                 stable, duplicate-free key sequences copy unaffected
                 rows by index. *)
              let aligned =
                Array.length prev_rows = n_cur
                &&
                let ok = ref true in
                let i = ref 0 in
                while !ok && !i < n_cur do
                  if
                    not
                      (Value.equal
                         cur_rows.(!i).(key_idx)
                         prev_rows.(!i).(key_idx))
                  then ok := false;
                  incr i
                done;
                !ok
              in
              if aligned then
                for i = 0 to n_cur - 1 do
                  let k = cur_rows.(i).(key_idx) in
                  if Hashtbl.mem affected k then
                    List.iter
                      (fun row -> out := row :: !out)
                      (List.rev
                         (try Hashtbl.find by_key k with Not_found -> []))
                  else out := prev_rows.(i) :: !out
                done
              else begin
                let prev_by_key = Hashtbl.create 64 in
                Relation.iter
                  (fun r ->
                    if not (Hashtbl.mem prev_by_key r.(key_idx)) then
                      Hashtbl.replace prev_by_key r.(key_idx) r)
                  prev_work;
                let seen_keys = Hashtbl.create (Relation.cardinality cur) in
                Relation.iter
                  (fun r ->
                    let k = r.(key_idx) in
                    if not (Hashtbl.mem seen_keys k) then begin
                      Hashtbl.replace seen_keys k ();
                      if Hashtbl.mem affected k then
                        List.iter
                          (fun row -> out := row :: !out)
                          (List.rev
                             (try Hashtbl.find by_key k with Not_found -> []))
                      else
                        match Hashtbl.find_opt prev_by_key k with
                        | Some row -> out := row :: !out
                        | None -> ()
                    end)
                  cur
              end;
              Relation.make
                (Relation.schema prev_work)
                (Array.of_list (List.rev !out))
            end)
        | _ -> full_eval ()
      in
      (* Rebind the baselines only after every fault-prone evaluation
         has completed: a transient fault above restores the
         checkpoint's loop state, which still holds the pre-iteration
         baselines. *)
      if st.d_cutoff_streak >= Dbspinner_exec.Executor.delta_cutoff_streak_limit
      then begin
        st.d_prev_cte <- None;
        st.d_prev_work <- None
      end
      else begin
        st.d_prev_cte <- Some cur;
        st.d_prev_work <- Some work
      end;
      stats.Stats.materializations <- stats.Stats.materializations + 1;
      stats.Stats.rows_materialized <-
        stats.Stats.rows_materialized + Relation.cardinality work;
      step_rows := Relation.cardinality work;
      Guards.check guards ~stats;
      Hashtbl.replace temps (key target)
        { parts = Partition.round_robin ~workers work }
    | Program.Rename { from_; into } ->
      let d = find_temp from_ in
      Hashtbl.remove temps (key from_);
      Hashtbl.replace temps (key into) d;
      stats.Stats.renames <- stats.Stats.renames + 1
    | Program.Drop_temp name -> Hashtbl.remove temps (key name)
    | Program.Assert_unique_key { temp; key_idx } ->
      (* Coordinator-side key check: only keys travel, not counted. *)
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun part ->
          Relation.iter
            (fun row ->
              let k = row.(key_idx) in
              if Value.is_null k then
                raise
                  (Dbspinner_exec.Executor.Execution_error
                     "iterative CTE produced a NULL row key")
              else if Hashtbl.mem seen k then
                raise
                  (Dbspinner_exec.Executor.Execution_error
                     (Printf.sprintf
                        "iterative CTE produced duplicate rows for key %s"
                        (Value.to_string k)))
              else Hashtbl.replace seen k ())
            part)
        (find_temp temp).parts
    | Program.Init_loop { loop_id; termination; cte; key_idx; guard } ->
      Hashtbl.replace loops loop_id
        {
          spec = termination;
          cte;
          key_idx;
          guard;
          iterations = 0;
          cumulative_updates = 0;
          snapshot = None;
          iter_mark =
            (match trace with
            | None -> None
            | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats));
          d_prev_cte = None;
          d_prev_work = None;
          d_cutoff_streak = 0;
        }
    | Program.Snapshot { loop_id } -> (
      match Hashtbl.find_opt loops loop_id with
      | None -> raise (Unsupported "snapshot for uninitialized loop")
      | Some st -> (
        match st.spec with
        | Program.Max_iterations _ when trace = None ->
          (* Fixed iteration counts never need the previous version —
             skip the gather. With tracing on, gather anyway so the
             timeline reports true deltas; [gather] is a pure
             partition merge (no fault ticks, no shuffle counting), so
             logical stats are unchanged. *)
          ()
        | Program.Max_iterations _ | Program.Max_updates _
        | Program.Delta_at_most _ | Program.Data _ ->
          st.snapshot <-
            Option.map gather (Hashtbl.find_opt temps (key st.cte))))
    | Program.Loop_end { loop_id; body_start } ->
      let st = Hashtbl.find loops loop_id in
      st.iterations <- st.iterations + 1;
      stats.Stats.loop_iterations <- stats.Stats.loop_iterations + 1;
      Guards.check guards ~stats;
      let current () = gather (find_temp st.cte) in
      (* Same first-iteration semantics as Executor.loop_continue:
         without a snapshot, the full CTE cardinality counts as the
         delta. Lazy so forcing it for the trace stays pure. *)
      let updates =
        lazy
          (match st.snapshot with
          | None -> Relation.cardinality (current ())
          | Some prev ->
            Relation.delta_count ~key_idx:st.key_idx prev (current ()))
      in
      let continue_ =
        match st.spec with
        | Program.Max_iterations n -> st.iterations < n
        | Program.Max_updates n ->
          st.cumulative_updates <- st.cumulative_updates + Lazy.force updates;
          st.cumulative_updates < n
        | Program.Delta_at_most bound -> Lazy.force updates > bound
        | Program.Data { any; pred } ->
          let rel = current () in
          let satisfied = ref 0 in
          Relation.iter
            (fun r -> if Dbspinner_exec.Eval.eval_pred r pred then incr satisfied)
            rel;
          (* ALL over an empty relation is vacuously true — same fix
             as the single-node executor. *)
          let stop =
            if any then !satisfied > 0
            else !satisfied = Relation.cardinality rel
          in
          not stop
      in
      (* The guard trips only when another iteration would actually
         run: termination firing exactly on the guard iteration
         returns normally. *)
      if continue_ && st.iterations >= st.guard then
        raise
          (Dbspinner_exec.Executor.Execution_error
             "distributed loop exceeded its iteration guard");
      (match trace, st.iter_mark with
      | Some tr, Some (t0, s0) ->
        let now = Unix.gettimeofday () in
        let rows =
          match Hashtbl.find_opt temps (key st.cte) with
          | Some d -> Partition.total_cardinality d.parts
          | None -> -1
        in
        step_rows := rows;
        step_delta := Lazy.force updates;
        Trace.emit tr ~kind:Trace.Iteration ~label:st.cte ~loop_id
          ~iteration:st.iterations ~rows ~delta:(Lazy.force updates)
          ~cum_updates:
            (match st.spec with
            | Program.Max_updates _ -> st.cumulative_updates
            | _ -> -1)
          ~wall_ms:((now -. t0) *. 1000.)
          ~counters:(Stats.trace_counters ~since:s0 stats)
          ();
        if continue_ then st.iter_mark <- Some (now, Stats.copy stats)
      | _ -> ());
      if continue_ then jump := Some body_start;
      (* Iteration-granular checkpoint: the completed iteration's CTE
         partitions and loop counters become the new restart point.
         Taken after the trace mark refresh so a restore's retried
         iteration diffs against a pre-fault baseline. *)
      let next_pc = match !jump with Some t -> t | None -> !pc + 1 in
      last_checkpoint := take_checkpoint ~in_loop:true next_pc;
      stats.Stats.checkpoints_taken <- stats.Stats.checkpoints_taken + 1;
      attempts := 0
    | Program.Recursive_cte _ ->
      raise (Unsupported "recursive CTEs in distributed programs")
    | Program.Return plan ->
      let rel =
        gather
          (run ~temps ?cache ~columnar ~pool ~workers ~shuffles ~fault ~stats
             catalog plan)
      in
      step_rows := Relation.cardinality rel;
      result := Some rel);
    !jump
  in
  while !pc < Array.length steps do
    let iteration =
      Hashtbl.fold (fun _ st acc -> max acc st.iterations) loops 0
    in
    Fault.set_context fault ~step:!pc ~iteration;
    step_rows := -1;
    step_delta := -1;
    let step_mark =
      match trace with
      | None -> None
      | Some _ -> Some (Unix.gettimeofday (), Stats.copy stats)
    in
    match exec_step steps.(!pc) with
    | jump -> (
      (match trace, step_mark with
      | Some tr, Some (t0, s0) ->
        Trace.emit tr ~kind:Trace.Step
          ~label:(step_label steps.(!pc))
          ~rows:!step_rows ~delta:!step_delta
          ~wall_ms:((Unix.gettimeofday () -. t0) *. 1000.)
          ~counters:(Stats.trace_counters ~since:s0 stats)
          ()
      | _ -> ());
      match jump with
      | Some target -> pc := target
      | None -> incr pc)
    | exception Fault.Transient_fault _ ->
      (* No Step span for a faulted attempt: the retried execution
         emits the span for the work that actually completed. *)
      stats.Stats.faults_injected <- stats.Stats.faults_injected + 1;
      if !attempts >= max_retries then begin
        (* Retry budget exhausted: degrade gracefully to single-node
           execution instead of failing the query. *)
        result :=
          Some
            (fallback_single_node ~stats ~guards ~columnar ?trace catalog
               program);
        pc := Array.length steps
      end
      else begin
        incr attempts;
        stats.Stats.retries <- stats.Stats.retries + 1;
        (* Deterministic exponential backoff, accounted not slept:
           1, 2, 4, ... units per consecutive failure. *)
        stats.Stats.backoff_steps <-
          stats.Stats.backoff_steps + (1 lsl min (!attempts - 1) 16);
        if !last_checkpoint.ck_in_loop then
          stats.Stats.recoveries <- stats.Stats.recoveries + 1;
        restore !last_checkpoint
      end
  done;
  (match trace, prog_mark with
  | Some tr, Some (t0, s0) ->
    List.iter
      (fun op ->
        let i = Stats.op_index op in
        let dt = stats.Stats.op_wall.(i) -. s0.Stats.op_wall.(i) in
        if dt > 0.0 then
          Trace.emit tr ~kind:Trace.Operator ~label:(Stats.op_name op)
            ~wall_ms:(dt *. 1000.) ~counters:Trace.zero_counters ())
      Stats.all_ops;
    Trace.emit tr ~kind:Trace.Program ~label:"program"
      ~rows:
        (match !result with
        | Some rel -> Relation.cardinality rel
        | None -> -1)
      ~wall_ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ~counters:(Stats.trace_counters ~since:s0 stats)
      ()
  | _ -> ());
  match !result with
  | Some rel -> (rel, shuffles)
  | None -> raise (Unsupported "program without Return")

(** Deterministic fault injection for the simulated shared-nothing
    layer. A {!plan} decides, at every exchange (repartition / gather /
    broadcast) and per-partition operator, whether to raise a
    {!Transient_fault} — simulating a worker crash or a dropped
    exchange. Plans are seeded ({!Dbspinner_graph.Rng}) or scripted at
    exact (step, iteration) points, so every failure schedule is
    exactly reproducible: the same seed injects the same faults at the
    same exchanges on every run, which is what lets the recovery
    property tests assert byte-identical results. *)

module Rng = Dbspinner_graph.Rng

type site =
  | Repartition  (** key-hash exchange between workers *)
  | Gather  (** all partitions collapsing onto one worker *)
  | Broadcast  (** one relation replicated to every worker *)
  | Operator  (** per-partition operator execution (worker crash) *)

let site_name = function
  | Repartition -> "repartition"
  | Gather -> "gather"
  | Broadcast -> "broadcast"
  | Operator -> "operator"

exception Transient_fault of string

type spec =
  | No_faults
  | Probabilistic of { seed : int; probability : float; max_faults : int }
      (** each fault site draws from a seeded PRNG and fails with
          [probability], up to [max_faults] total injections *)
  | Scripted of (int * int) list
      (** exact [(step, iteration)] points: the first fault site
          reached while the executor is at program step [step] with
          [iteration] completed loop iterations fails, once per point *)

type plan = {
  spec : spec;
  rng : Rng.t;
  mutable injected : int;
  mutable step : int;  (** current program step, set by the executor *)
  mutable iteration : int;  (** completed iterations of the active loop *)
  pending : (int * int, unit) Hashtbl.t;  (** scripted points not yet fired *)
}

let make spec =
  let seed = match spec with Probabilistic { seed; _ } -> seed | _ -> 0 in
  let pending = Hashtbl.create 4 in
  (match spec with
  | Scripted points -> List.iter (fun p -> Hashtbl.replace pending p ()) points
  | No_faults | Probabilistic _ -> ());
  { spec; rng = Rng.create seed; injected = 0; step = 0; iteration = 0; pending }

let none = make No_faults

let probabilistic ?(max_faults = max_int) ~seed ~probability () =
  make (Probabilistic { seed; probability; max_faults })

let scripted points = make (Scripted points)

let faults_injected t = t.injected

(** Executors report their position before running each step so
    scripted faults can target exact (step, iteration) points. *)
let set_context t ~step ~iteration =
  t.step <- step;
  t.iteration <- iteration

let inject t ~site =
  t.injected <- t.injected + 1;
  raise
    (Transient_fault
       (Printf.sprintf "injected transient fault at %s (step %d, iteration %d)"
          (site_name site) t.step t.iteration))

(** Called at every fault site; raises {!Transient_fault} when the plan
    schedules a failure here. *)
let tick t ~site =
  match t.spec with
  | No_faults -> ()
  | Probabilistic { probability; max_faults; _ } ->
    (* Draw even when saturated so the schedule of later sites does not
       depend on how many faults already fired. *)
    let draw = Rng.float t.rng in
    if t.injected < max_faults && draw < probability then inject t ~site
  | Scripted _ ->
    let point = (t.step, t.iteration) in
    if Hashtbl.mem t.pending point then begin
      Hashtbl.remove t.pending point;
      inject t ~site
    end

(** Simulated shared-nothing execution: relations live as worker
    partitions, equi-joins and grouped aggregations repartition by key,
    order-sensitive operators gather; rows crossing workers are
    counted. Per-partition operator work runs {e concurrently} across a
    {!Dbspinner_exec.Parallel} Domain pool (shuffle/gather barriers are
    preserved; per-partition stats merge in partition order, so
    counters stay deterministic; a fault raised inside a domain is
    re-raised at the barrier). Contract (property-tested): for every
    plan the result bag equals single-node execution — including under
    injected transient faults, which {!run_program} survives via
    iteration-granular checkpoints, bounded retries and single-node
    fallback. *)

module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Logical = Dbspinner_plan.Logical
module Stats = Dbspinner_exec.Stats
module Guards = Dbspinner_exec.Guards
module Parallel = Dbspinner_exec.Parallel

type shuffle_stats = {
  mutable rows_shuffled : int;  (** rows that moved between workers *)
  mutable exchanges : int;  (** exchange operations performed *)
}

(** Execute [plan] across [workers] simulated workers (default 4);
    returns the gathered result and the exchange volume. [fault]
    injects transient faults at exchanges and per-partition operators;
    plan-level execution has no checkpoints, so injected faults
    propagate to the caller as {!Fault.Transient_fault}.
    @raise Invalid_argument when [workers <= 0]. *)
val run_plan :
  ?workers:int ->
  ?pool:Parallel.t ->
  ?fault:Fault.plan ->
  ?use_cache:bool ->
  ?columnar:bool ->
  Catalog.t ->
  Logical.t ->
  Relation.t * shuffle_stats

module Program = Dbspinner_plan.Program

exception Unsupported of string

(** Execute a whole step program distributed: materialized temps stay
    partitioned on the workers between steps, [Rename] swaps partition
    sets, and loop-termination checks beyond fixed iteration counts
    gather the CTE to the coordinator (not counted as shuffles).

    Fault tolerance: on a {!Fault.Transient_fault} from [fault],
    execution restarts from the last checkpoint (program start, then
    after every completed loop iteration), retrying up to [max_retries]
    consecutive times with deterministic backoff accounting before
    degrading gracefully to single-node execution. Recovery activity is
    recorded in [stats] ([faults_injected], [retries],
    [checkpoints_taken], [recoveries], [fallbacks], [backoff_steps]).
    [guards] are checked at materialize and loop boundaries;
    {!Guards.Resource_exhausted} is never retried.

    [use_cache] (default true) shares one compiled-expression cache
    across all partition domains; distributed temps live outside the
    catalog, so the generation-keyed build memo does not apply here.
    Results and logical stats are identical either way.

    [columnar] (default false) runs the per-partition filter, project,
    equi-join probe and aggregate work through the vectorized batch
    engine ({!Dbspinner_exec.Vec_eval}); results and logical stats are
    bit-identical with the row engine, and the single-node fallback
    inherits the same setting.

    [trace], when given, records {!Dbspinner_obs.Trace} spans exactly
    like the single-node executor (steps, iterations with convergence
    gauges, operator families, program), including across recoveries: a
    retried iteration's span absorbs the fault/retry counters, and a
    fallback run emits the single-node spans. Tracing gathers the CTE
    at [Snapshot] even under [Max_iterations] so deltas are true row
    deltas; the gather is a pure partition merge, so logical stats are
    unchanged and traced runs stay [Stats.logical_equal] with untraced
    ones.
    @raise Unsupported for recursive CTEs
    @raise Guards.Resource_exhausted when a deadline or row budget is
    crossed
    @raise Invalid_argument when [workers <= 0] or [max_retries < 0]. *)
val run_program :
  ?workers:int ->
  ?pool:Parallel.t ->
  ?fault:Fault.plan ->
  ?max_retries:int ->
  ?guards:Guards.t ->
  ?stats:Stats.t ->
  ?use_cache:bool ->
  ?columnar:bool ->
  ?trace:Dbspinner_obs.Trace.t ->
  Catalog.t ->
  Program.t ->
  Relation.t * shuffle_stats

(** Server tests: protocol/admission units, concurrent sessions with
    bit-identical results, session-temp isolation, BUSY rejection and
    drain-on-shutdown. *)

module Server = Dbspinner_server.Server
module Client = Dbspinner_server.Client
module Protocol = Dbspinner_server.Protocol
module Admission = Dbspinner_server.Admission
module Metrics = Dbspinner_server.Metrics
module Engine = Dbspinner.Engine
module Catalog = Dbspinner_storage.Catalog
module Options = Dbspinner_rewrite.Options
module Queries = Dbspinner_workload.Queries
module Loader = Dbspinner_workload.Loader
module Graph_gen = Dbspinner_graph.Graph_gen

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbspinner-test-%s-%d.sock" tag (Unix.getpid ()))

let test_graph () = Graph_gen.power_law ~seed:11 ~num_nodes:120 ~edges_per_node:3

(** Shared catalog preloaded with the test graph. *)
let graph_catalog () =
  let engine = Engine.create () in
  Loader.load_graph engine (test_graph ());
  Engine.catalog engine

(* ------------------------------------------------------------------ *)
(* Protocol units                                                      *)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let payloads =
        [ ""; "x"; "line one\nline two\n"; String.make 70_000 'q' ]
      in
      List.iter (fun p -> Protocol.write_frame a p) payloads;
      List.iter
        (fun expected ->
          match Protocol.read_frame b with
          | Some got ->
            Alcotest.(check string) "frame payload survives" expected got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      (* Clean EOF at a frame boundary reads as None. *)
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Alcotest.(check bool) "EOF is None" true (Protocol.read_frame b = None))

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  Alcotest.(check int) "raw bytes written" (Bytes.length b) n

let test_framing_zero_length () =
  with_socketpair (fun a b ->
      Protocol.write_frame a "";
      (match Protocol.read_frame b with
      | Some "" -> ()
      | Some other ->
        Alcotest.fail (Printf.sprintf "expected empty payload, got %S" other)
      | None -> Alcotest.fail "unexpected EOF");
      (* The stream stays usable after an empty frame. *)
      Protocol.write_frame a "next";
      Alcotest.(check bool) "next frame survives" true
        (Protocol.read_frame b = Some "next"))

let test_framing_oversized_header () =
  (* A declared length over the limit must be rejected before any
     allocation of that size. *)
  with_socketpair (fun a b ->
      write_raw a (Printf.sprintf "%d\n" (Protocol.max_frame_bytes + 1));
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "limit error mentions excess (%s)" m)
          true
          (Helpers.contains m "exceeds")
      | _ -> Alcotest.fail "oversized frame header must raise")

let test_framing_header_too_long () =
  with_socketpair (fun a b ->
      write_raw a "12345678901\n";
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error _ -> ()
      | _ -> Alcotest.fail ">10-digit header must raise")

let test_framing_garbage_header () =
  with_socketpair (fun a b ->
      write_raw a "hello\n";
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "names the bad byte (%s)" m)
          true
          (Helpers.contains m "invalid byte")
      | _ -> Alcotest.fail "non-digit header must raise")

let test_framing_peer_death_mid_frame () =
  (* Death inside the header and inside the payload are distinct code
     paths; both must surface as End_of_file, not hang or garbage. *)
  with_socketpair (fun a b ->
      write_raw a "123";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "death mid-header must raise End_of_file");
  with_socketpair (fun a b ->
      write_raw a "100\npartial payload";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "death mid-payload must raise End_of_file")

let test_framing_exactly_max_bytes () =
  (* The limit itself is legal. The payload dwarfs the socketpair
     buffer, so a writer thread keeps the pipe moving while this thread
     reads. *)
  with_socketpair (fun a b ->
      let payload = String.make Protocol.max_frame_bytes 'z' in
      let writer = Thread.create (fun () -> Protocol.write_frame a payload) () in
      (match Protocol.read_frame b with
      | Some got ->
        Alcotest.(check int) "full payload length" Protocol.max_frame_bytes
          (String.length got);
        Alcotest.(check bool) "payload intact" true (got = payload)
      | None -> Alcotest.fail "unexpected EOF");
      Thread.join writer)

let test_request_roundtrip () =
  let roundtrip req =
    match Protocol.parse_request (Protocol.render_request req) with
    | Ok got -> got = req
    | Error _ -> false
  in
  Alcotest.(check bool) "query" true
    (roundtrip (Protocol.Query "SELECT 1;\nSELECT 2"));
  Alcotest.(check bool) "set" true (roundtrip (Protocol.Set ("deadline", "1.5")));
  List.iter
    (fun r -> Alcotest.(check bool) "verb" true (roundtrip r))
    [ Protocol.Stats; Protocol.Trace; Protocol.Ping; Protocol.Quit;
      Protocol.Shutdown ];
  (match Protocol.parse_request "FROBNICATE" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb must not parse");
  match Protocol.parse_request "QUERY\n  " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty QUERY body must not parse"

let test_read_only_classification () =
  List.iter
    (fun sql ->
      Alcotest.(check bool) (sql ^ " is read-only") true (Protocol.read_only sql))
    [
      "SELECT 1";
      "  select * from t;  ";
      "WITH ITERATIVE x (n) AS (SELECT 0 ITERATE SELECT n FROM x UNTIL 2 \
       ITERATIONS) SELECT n FROM x";
      "EXPLAIN SELECT 1";
      "VALUES (1)";
      "SELECT 1; SELECT 2";
    ];
  List.iter
    (fun sql ->
      Alcotest.(check bool) (sql ^ " is a write") false (Protocol.read_only sql))
    [
      "INSERT INTO t VALUES (1)";
      "SELECT 1; DROP TABLE t";
      "CREATE TABLE t (a INT)";
      "garbage";
    ]

let test_admission_unit () =
  let adm = Admission.create ~limit:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 2" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 3 rejected" false (Admission.try_acquire adm);
  Alcotest.(check int) "rejection recorded" 1 (Admission.rejected adm);
  Admission.release adm;
  Alcotest.(check bool) "freed slot reusable" true (Admission.try_acquire adm);
  Alcotest.(check int) "inflight" 2 (Admission.inflight adm)

let test_metrics_render_parse () =
  let m = Metrics.create () in
  Metrics.session_opened m;
  Metrics.query_done m ~ok:true ~seconds:0.010;
  Metrics.query_done m ~ok:true ~seconds:0.020;
  Metrics.query_done m ~ok:false ~seconds:0.500;
  let adm = Admission.create ~limit:4 in
  let kv = Metrics.parse (Metrics.render m ~admission:adm ~draining:false) in
  let get k = List.assoc k kv in
  Alcotest.(check string) "ok count" "2" (get "queries_ok");
  Alcotest.(check string) "err count" "1" (get "queries_err");
  Alcotest.(check string) "active" "1" (get "sessions_active");
  Alcotest.(check string) "draining" "false" (get "draining");
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "p99 >= p50" true
    (s.Metrics.p99_seconds >= s.Metrics.p50_seconds)

(** Percentile totality on tiny reservoirs: n = 0 must yield 0.0 (not
    an out-of-bounds read), n = 1 the lone sample for every p, and the
    rank arithmetic must hold at n = 2; NaN and out-of-range p are
    clamped instead of flowing into [int_of_float]. *)
let test_metrics_percentile_edges () =
  let fl = Alcotest.float 1e-12 in
  let m = Metrics.create () in
  (* n = 0: every percentile is 0. *)
  List.iter
    (fun p -> Alcotest.check fl "empty reservoir" 0.0 (Metrics.percentile m p))
    [ 0.0; 50.0; 100.0; -3.0; 250.0; Float.nan ];
  (* n = 1: every percentile is the lone sample. *)
  Metrics.query_done m ~ok:true ~seconds:0.042;
  List.iter
    (fun p -> Alcotest.check fl "lone sample" 0.042 (Metrics.percentile m p))
    [ 0.0; 50.0; 99.0; 100.0; -3.0; 250.0; Float.nan ];
  (* n = 2: nearest-rank picks the lower sample up to p50, the upper
     one above; clamping maps out-of-range p onto the extremes. *)
  Metrics.query_done m ~ok:true ~seconds:0.010;
  Alcotest.check fl "p0 = min" 0.010 (Metrics.percentile m 0.0);
  Alcotest.check fl "p50 = lower" 0.010 (Metrics.percentile m 50.0);
  Alcotest.check fl "p51 = upper" 0.042 (Metrics.percentile m 51.0);
  Alcotest.check fl "p100 = max" 0.042 (Metrics.percentile m 100.0);
  Alcotest.check fl "negative p clamps to min" 0.010 (Metrics.percentile m (-7.0));
  Alcotest.check fl "p > 100 clamps to max" 0.042 (Metrics.percentile m 1000.0);
  Alcotest.check fl "NaN treated as p0" 0.010 (Metrics.percentile m Float.nan)

(* ------------------------------------------------------------------ *)
(* End-to-end over the socket                                          *)

let pr_sql = Queries.pr ~iterations:5 ()

(** The reference answer, computed sequentially on a private engine
    over the same graph. *)
let sequential_reference () =
  let engine = Loader.engine_for (test_graph ()) in
  Dbspinner_storage.Relation.to_table_string (Engine.query engine pr_sql)

let test_concurrent_sessions_bit_identical () =
  let expected = sequential_reference () in
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "concurrent";
      max_inflight = 16;
      workers = 4;
    }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun _srv ->
      let n = 8 in
      let results = Array.make n (Error ("unset", "never ran")) in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.with_client ~socket_path:config.Server.socket_path
                    (fun c ->
                      match Client.query c pr_sql with
                      | Ok body -> Ok body
                      | Error (s, m) -> Error (s, m)))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i result ->
          match result with
          | Ok body ->
            Alcotest.(check string)
              (Printf.sprintf "session %d bit-identical to sequential" i)
              expected body
          | Error (status, msg) ->
            Alcotest.fail (Printf.sprintf "session %d: %s %s" i status msg))
        results)

let test_session_temp_isolation () =
  (* Two sessions interleave statements that materialize CTE temps of
     the same name over the shared catalog; a shared temp namespace
     would make one session's result leak into the other. *)
  let config =
    { Server.default_config with Server.socket_path = socket_path "isolation" }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c1 ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c2 ->
              let q tag n =
                Printf.sprintf
                  "WITH ITERATIVE PageRank (who, n) AS (SELECT '%s', 0 ITERATE \
                   SELECT who, n + 1 FROM PageRank UNTIL %d ITERATIONS) SELECT \
                   who, n FROM PageRank"
                  tag n
              in
              let r1 = Client.query c1 (q "one" 3) in
              let r2 = Client.query c2 (q "two" 7) in
              (match r1 with
              | Ok body ->
                Alcotest.(check bool) "session 1 sees its own tag" true
                  (Helpers.contains body "one")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              (match r2 with
              | Ok body ->
                Alcotest.(check bool) "session 2 sees its own tag" true
                  (Helpers.contains body "two");
                Alcotest.(check bool) "session 2 not polluted" false
                  (Helpers.contains body "one")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              (* Temps never became shared base tables. *)
              Alcotest.(check bool) "no temp leaked into base" false
                (Catalog.mem_table (Server.catalog srv) "PageRank"))))

let test_shared_base_ddl_visible () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "ddl" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c1 ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c2 ->
              (match
                 Client.query c1
                   "CREATE TABLE shared (a INT); INSERT INTO shared VALUES \
                    (42)"
               with
              | Ok _ -> ()
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              match Client.query c2 "SELECT a FROM shared" with
              | Ok body ->
                Alcotest.(check bool) "other session reads the row" true
                  (Helpers.contains body "42")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m))))

(** A query that loops long enough to still be running when we probe /
    drain: a counting loop with a generous iteration bound. *)
let slow_sql =
  "WITH ITERATIVE spin (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM spin UNTIL \
   2000000 ITERATIONS) SELECT n FROM spin"

let spin_options = { Options.default with Options.max_iterations_guard = 3_000_000 }

(** Poll STATS through [client] until [pred kv] or timeout. *)
let wait_for_stats client pred =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec loop () =
    let kv = Client.stats client in
    if pred kv then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let inflight_at_least n kv =
  match List.assoc_opt "inflight" kv with
  | Some v -> (match int_of_string_opt v with Some i -> i >= n | None -> false)
  | None -> false

let test_admission_rejects_overload () =
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "busy";
      max_inflight = 1;
      workers = 2;
      options = spin_options;
    }
  in
  Server.with_server ~config (fun _srv ->
      let slow_result = ref (Error ("unset", "")) in
      let slow_thread =
        Thread.create
          (fun () ->
            slow_result :=
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c -> Client.query c slow_sql))
          ()
      in
      Client.with_client ~socket_path:config.Server.socket_path (fun probe ->
          Alcotest.(check bool) "slow query became in-flight" true
            (wait_for_stats probe (inflight_at_least 1));
          (* STATS and PING stay responsive at capacity... *)
          Alcotest.(check bool) "ping at capacity" true (Client.ping probe);
          (* ...but a query beyond max_inflight is rejected immediately. *)
          match Client.query probe "SELECT 1" with
          | Error ("BUSY", _) -> ()
          | Ok _ -> Alcotest.fail "overload query must be rejected"
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "expected BUSY, got %s %s" s m));
      Thread.join slow_thread;
      (* The slow query itself completed fine. *)
      match !slow_result with
      | Ok _ -> ()
      | Error (s, m) ->
        Alcotest.fail (Printf.sprintf "slow query failed: %s %s" s m))

let test_busy_retry_eventually_succeeds () =
  (* With retries enabled, a client squeezed out by admission control
     backs off and lands once the slot frees — the bench harness uses
     this for goodput under overload. *)
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "retry";
      max_inflight = 1;
      workers = 2;
      options = spin_options;
    }
  in
  let spin_short =
    "WITH ITERATIVE spin (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM spin \
     UNTIL 150000 ITERATIONS) SELECT n FROM spin"
  in
  Server.with_server ~config (fun _srv ->
      let slow_result = ref (Error ("unset", "")) in
      let slow_thread =
        Thread.create
          (fun () ->
            slow_result :=
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c -> Client.query c spin_short))
          ()
      in
      Client.with_client ~socket_path:config.Server.socket_path (fun probe ->
          Alcotest.(check bool) "spin in flight" true
            (wait_for_stats probe (inflight_at_least 1));
          (* Without retries: immediate BUSY. *)
          (match Client.query probe "SELECT 1" with
          | Error ("BUSY", _) -> ()
          | Ok _ -> Alcotest.fail "no-retry query must be rejected"
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "expected BUSY, got %s %s" s m));
          (* With retries: backs off until the slot frees. *)
          match Client.query ~retries:200 ~backoff_ms:2.0 probe "SELECT 1" with
          | Ok _ -> ()
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "retrying query failed: %s %s" s m));
      Thread.join slow_thread;
      match !slow_result with
      | Ok _ -> ()
      | Error (s, m) ->
        Alcotest.fail (Printf.sprintf "slow query failed: %s %s" s m))

let test_statement_timeout_guard () =
  (* A server-wide statement timeout aborts a wedged query with a
     distinct error, and sessions may only tighten the ceiling. *)
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "stmt-timeout";
      options =
        {
          spin_options with
          Options.statement_timeout_seconds = Some 0.2;
        };
    }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.query c slow_sql with
          | Error (status, msg) ->
            Alcotest.(check bool)
              (Printf.sprintf "statement timeout error (got %s: %s)" status msg)
              true
              (Helpers.contains status "resource"
              && Helpers.contains msg "statement timeout")
          | Ok _ -> Alcotest.fail "wedged query must time out");
          (* Loosening beyond the server ceiling is refused... *)
          (match Client.set c "statement_timeout" "30" with
          | Error m ->
            Alcotest.(check bool) "refusal names the ceiling" true
              (Helpers.contains m "ceiling")
          | Ok _ -> Alcotest.fail "loosening past the ceiling must fail");
          (match Client.set c "statement_timeout" "off" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "disabling past the ceiling must fail");
          (* ...tightening is allowed. *)
          match Client.set c "statement_timeout" "0.05" with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m))

let test_drain_aborts_inflight_at_boundary () =
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "drain";
      max_inflight = 4;
      workers = 2;
      options = spin_options;
    }
  in
  let srv = Server.start ~config () in
  let slow_result = ref (Error ("unset", "")) in
  let slow_thread =
    Thread.create
      (fun () ->
        slow_result :=
          Client.with_client ~socket_path:config.Server.socket_path (fun c ->
              Client.query c slow_sql))
      ()
  in
  Client.with_client ~socket_path:config.Server.socket_path (fun probe ->
      Alcotest.(check bool) "spin query in flight" true
        (wait_for_stats probe (inflight_at_least 1)));
  (* Graceful shutdown: the in-flight loop must abort at an iteration
     boundary with a Resource error mentioning the drain — not hang,
     not die silently. *)
  Server.shutdown srv;
  Thread.join slow_thread;
  (match !slow_result with
  | Error (status, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "resource-stage drain error (got %s: %s)" status msg)
      true
      (Helpers.contains status "resource" && Helpers.contains msg "shutting down")
  | Ok _ -> Alcotest.fail "in-flight query must be aborted by drain");
  (* Fully shut down: socket gone, fresh connections refused. *)
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists config.Server.socket_path);
  match Client.connect ~socket_path:config.Server.socket_path with
  | exception Unix.Unix_error _ -> ()
  | c ->
    Client.close c;
    Alcotest.fail "connect after shutdown must fail"

let test_closing_after_drain_starts () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "closing" }
  in
  let srv = Server.start ~config () in
  Client.with_client ~socket_path:config.Server.socket_path (fun c ->
      (match Client.query c "SELECT 1" with
      | Ok _ -> ()
      | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
      (* Trigger the drain from another thread while this session is
         still connected; its next query must get CLOSING. *)
      Server.request_shutdown srv;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_closing () =
        match Client.query c "SELECT 1" with
        | Error ("CLOSING", _) -> ()
        | Ok _ when Unix.gettimeofday () < deadline ->
          Thread.delay 0.02;
          await_closing ()
        | Ok _ -> Alcotest.fail "draining server kept accepting queries"
        | Error (s, m) ->
          (* The server may already have closed this session's socket:
             that is a valid drain outcome too. *)
          ignore (s, m)
      in
      (try await_closing () with End_of_file -> ()));
  Server.wait srv

let test_session_set_and_stats () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "set" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.set c "budget" "10" with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          (* The per-session row budget now aborts a too-large query on
             this session... *)
          (match Client.query c slow_sql with
          | Error (status, _) ->
            Alcotest.(check bool) "budget trips as resource error" true
              (Helpers.contains status "resource")
          | Ok _ -> Alcotest.fail "row budget must trip");
          match Client.set c "nonsense" "on" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "unknown option must be rejected"))

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing-roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "framing-zero-length" `Quick
            test_framing_zero_length;
          Alcotest.test_case "framing-oversized-header" `Quick
            test_framing_oversized_header;
          Alcotest.test_case "framing-header-too-long" `Quick
            test_framing_header_too_long;
          Alcotest.test_case "framing-garbage-header" `Quick
            test_framing_garbage_header;
          Alcotest.test_case "framing-peer-death-mid-frame" `Quick
            test_framing_peer_death_mid_frame;
          Alcotest.test_case "framing-exactly-max-bytes" `Quick
            test_framing_exactly_max_bytes;
          Alcotest.test_case "request-roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "read-only-classification" `Quick
            test_read_only_classification;
        ] );
      ( "admission",
        [
          Alcotest.test_case "unit" `Quick test_admission_unit;
          Alcotest.test_case "metrics" `Quick test_metrics_render_parse;
          Alcotest.test_case "metrics-percentile-edges" `Quick
            test_metrics_percentile_edges;
          Alcotest.test_case "rejects-overload" `Quick
            test_admission_rejects_overload;
          Alcotest.test_case "busy-retry" `Quick
            test_busy_retry_eventually_succeeds;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "concurrent-bit-identical" `Quick
            test_concurrent_sessions_bit_identical;
          Alcotest.test_case "temp-isolation" `Quick test_session_temp_isolation;
          Alcotest.test_case "shared-ddl" `Quick test_shared_base_ddl_visible;
          Alcotest.test_case "set-options" `Quick test_session_set_and_stats;
          Alcotest.test_case "statement-timeout" `Quick
            test_statement_timeout_guard;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "drain-aborts-at-boundary" `Quick
            test_drain_aborts_inflight_at_boundary;
          Alcotest.test_case "closing-after-drain" `Quick
            test_closing_after_drain_starts;
        ] );
    ]

(** Server tests: protocol/admission units, concurrent sessions with
    bit-identical results, session-temp isolation, BUSY rejection and
    drain-on-shutdown. *)

module Server = Dbspinner_server.Server
module Client = Dbspinner_server.Client
module Protocol = Dbspinner_server.Protocol
module Admission = Dbspinner_server.Admission
module Metrics = Dbspinner_server.Metrics
module Engine = Dbspinner.Engine
module Catalog = Dbspinner_storage.Catalog
module Options = Dbspinner_rewrite.Options
module Queries = Dbspinner_workload.Queries
module Loader = Dbspinner_workload.Loader
module Graph_gen = Dbspinner_graph.Graph_gen

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbspinner-test-%s-%d.sock" tag (Unix.getpid ()))

let test_graph () = Graph_gen.power_law ~seed:11 ~num_nodes:120 ~edges_per_node:3

(** Shared catalog preloaded with the test graph. *)
let graph_catalog () =
  let engine = Engine.create () in
  Loader.load_graph engine (test_graph ());
  Engine.catalog engine

(* ------------------------------------------------------------------ *)
(* Protocol units                                                      *)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let payloads =
        [ ""; "x"; "line one\nline two\n"; String.make 70_000 'q' ]
      in
      List.iter (fun p -> Protocol.write_frame a p) payloads;
      List.iter
        (fun expected ->
          match Protocol.read_frame b with
          | Some got ->
            Alcotest.(check string) "frame payload survives" expected got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      (* Clean EOF at a frame boundary reads as None. *)
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Alcotest.(check bool) "EOF is None" true (Protocol.read_frame b = None))

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  Alcotest.(check int) "raw bytes written" (Bytes.length b) n

let test_framing_zero_length () =
  with_socketpair (fun a b ->
      Protocol.write_frame a "";
      (match Protocol.read_frame b with
      | Some "" -> ()
      | Some other ->
        Alcotest.fail (Printf.sprintf "expected empty payload, got %S" other)
      | None -> Alcotest.fail "unexpected EOF");
      (* The stream stays usable after an empty frame. *)
      Protocol.write_frame a "next";
      Alcotest.(check bool) "next frame survives" true
        (Protocol.read_frame b = Some "next"))

let test_framing_oversized_header () =
  (* A declared length over the limit must be rejected before any
     allocation of that size. *)
  with_socketpair (fun a b ->
      write_raw a (Printf.sprintf "%d\n" (Protocol.max_frame_bytes + 1));
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "limit error mentions excess (%s)" m)
          true
          (Helpers.contains m "exceeds")
      | _ -> Alcotest.fail "oversized frame header must raise")

let test_framing_header_too_long () =
  with_socketpair (fun a b ->
      write_raw a "12345678901\n";
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error _ -> ()
      | _ -> Alcotest.fail ">10-digit header must raise")

let test_framing_garbage_header () =
  with_socketpair (fun a b ->
      write_raw a "hello\n";
      match Protocol.read_frame b with
      | exception Protocol.Protocol_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "names the bad byte (%s)" m)
          true
          (Helpers.contains m "invalid byte")
      | _ -> Alcotest.fail "non-digit header must raise")

let test_framing_peer_death_mid_frame () =
  (* Death inside the header and inside the payload are distinct code
     paths; both must surface as End_of_file, not hang or garbage. *)
  with_socketpair (fun a b ->
      write_raw a "123";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "death mid-header must raise End_of_file");
  with_socketpair (fun a b ->
      write_raw a "100\npartial payload";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_frame b with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "death mid-payload must raise End_of_file")

let test_framing_exactly_max_bytes () =
  (* The limit itself is legal. The payload dwarfs the socketpair
     buffer, so a writer thread keeps the pipe moving while this thread
     reads. *)
  with_socketpair (fun a b ->
      let payload = String.make Protocol.max_frame_bytes 'z' in
      let writer = Thread.create (fun () -> Protocol.write_frame a payload) () in
      (match Protocol.read_frame b with
      | Some got ->
        Alcotest.(check int) "full payload length" Protocol.max_frame_bytes
          (String.length got);
        Alcotest.(check bool) "payload intact" true (got = payload)
      | None -> Alcotest.fail "unexpected EOF");
      Thread.join writer)

let test_request_roundtrip () =
  let roundtrip req =
    match Protocol.parse_request (Protocol.render_request req) with
    | Ok got -> got = req
    | Error _ -> false
  in
  Alcotest.(check bool) "query" true
    (roundtrip (Protocol.Query "SELECT 1;\nSELECT 2"));
  Alcotest.(check bool) "set" true (roundtrip (Protocol.Set ("deadline", "1.5")));
  List.iter
    (fun r -> Alcotest.(check bool) "verb" true (roundtrip r))
    [ Protocol.Stats; Protocol.Trace; Protocol.Ping; Protocol.Quit;
      Protocol.Shutdown ];
  (match Protocol.parse_request "FROBNICATE" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb must not parse");
  match Protocol.parse_request "QUERY\n  " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty QUERY body must not parse"

let test_read_only_classification () =
  List.iter
    (fun sql ->
      Alcotest.(check bool) (sql ^ " is read-only") true (Protocol.read_only sql))
    [
      "SELECT 1";
      "  select * from t;  ";
      "WITH ITERATIVE x (n) AS (SELECT 0 ITERATE SELECT n FROM x UNTIL 2 \
       ITERATIONS) SELECT n FROM x";
      "EXPLAIN SELECT 1";
      "VALUES (1)";
      "SELECT 1; SELECT 2";
      (* Leading comments must not hide the read-only verb (the lexer
         already accepts them; the classifier used to misfile these as
         writes and serialize them). *)
      "-- a comment\nSELECT 1";
      "/* block\ncomment */ SELECT 1";
      "/* c1 */ -- c2\nSELECT 1; /* c3 */ SELECT 2";
      (* Semicolons and DML keywords inside string literals are data,
         not statement boundaries. *)
      "SELECT ';DROP TABLE t;' FROM s";
      "SELECT 'it''s; fine'";
      "SELECT \"a;b\" FROM s";
    ];
  List.iter
    (fun sql ->
      Alcotest.(check bool) (sql ^ " is a write") false (Protocol.read_only sql))
    [
      "INSERT INTO t VALUES (1)";
      "SELECT 1; DROP TABLE t";
      "CREATE TABLE t (a INT)";
      "garbage";
      (* A comment prefix on a genuine write must not launder it. *)
      "/* just reading, promise */ DROP TABLE t";
      "-- harmless\nDELETE FROM t";
    ]

let test_split_statements () =
  let check_split label sql expected =
    Alcotest.(check (list string)) label expected
      (List.filter
         (fun s -> String.trim s <> "")
         (List.map String.trim (Protocol.split_statements sql)))
  in
  check_split "plain split" "SELECT 1; SELECT 2" [ "SELECT 1"; "SELECT 2" ];
  check_split "semicolon in string" "SELECT 'a;b'; SELECT 2"
    [ "SELECT 'a;b'"; "SELECT 2" ];
  check_split "doubled-quote escape" "SELECT 'it''s; x'" [ "SELECT 'it''s; x'" ];
  check_split "quoted identifier" "SELECT \"a;b\" FROM t"
    [ "SELECT \"a;b\" FROM t" ];
  check_split "line comment dropped" "-- c; DROP TABLE t\nSELECT 1"
    [ "SELECT 1" ];
  check_split "block comment dropped" "/* x; y */ SELECT 1" [ "SELECT 1" ];
  check_split "comment between statements" "SELECT 1; /* gap */ SELECT 2"
    [ "SELECT 1"; "SELECT 2" ]

let test_request_id_tags () =
  let payload = "QUERY\nSELECT 1" in
  Alcotest.(check (pair (option int) string))
    "tag roundtrip" (Some 7, payload)
    (Protocol.strip_id (Protocol.with_id 7 payload));
  Alcotest.(check (pair (option int) string))
    "untagged passthrough" (None, payload)
    (Protocol.strip_id payload);
  (* A '#' that is not a well-formed tag is payload, not a tag. *)
  Alcotest.(check (pair (option int) string))
    "malformed tag is payload" (None, "#abc\nx")
    (Protocol.strip_id "#abc\nx");
  match Protocol.with_id (-1) payload with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id must be rejected"

(* ------------------------------------------------------------------ *)
(* Rwlock wakeup order                                                 *)

let test_rwlock_writer_handoff () =
  (* With a writer holding the lock, a second writer queued and a
     crowd of readers queued behind it, unlock_write must hand the
     lock to the queued writer — waking the readers would at best be a
     thundering herd and at worst let one slip in ahead. *)
  let module Rwlock = Server.Rwlock in
  let lock = Rwlock.create () in
  let order = ref [] in
  let order_lock = Mutex.create () in
  let record who =
    Mutex.lock order_lock;
    order := who :: !order;
    Mutex.unlock order_lock
  in
  Rwlock.lock_write lock;
  let writer =
    Thread.create
      (fun () ->
        Rwlock.lock_write lock;
        record "writer";
        (* Dawdle so racing readers would be caught red-handed. *)
        Thread.delay 0.05;
        Rwlock.unlock_write lock)
      ()
  in
  Thread.delay 0.05 (* let the writer queue up *);
  let readers =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            Rwlock.lock_read lock;
            record (Printf.sprintf "reader%d" i);
            Rwlock.unlock_read lock)
          ())
  in
  Thread.delay 0.05 (* let the readers queue behind the writer *);
  Rwlock.unlock_write lock;
  Thread.join writer;
  List.iter Thread.join readers;
  match List.rev !order with
  | "writer" :: rest ->
    Alcotest.(check int) "all readers ran after the writer" 4
      (List.length rest)
  | first :: _ ->
    Alcotest.fail (Printf.sprintf "%s acquired before the queued writer" first)
  | [] -> Alcotest.fail "nobody acquired the lock"

let test_admission_unit () =
  let adm = Admission.create ~limit:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 2" true (Admission.try_acquire adm);
  Alcotest.(check bool) "slot 3 rejected" false (Admission.try_acquire adm);
  Alcotest.(check int) "rejection recorded" 1 (Admission.rejected adm);
  Admission.release adm;
  Alcotest.(check bool) "freed slot reusable" true (Admission.try_acquire adm);
  Alcotest.(check int) "inflight" 2 (Admission.inflight adm)

let test_metrics_render_parse () =
  let m = Metrics.create () in
  Metrics.session_opened m;
  Metrics.query_done m ~ok:true ~seconds:0.010;
  Metrics.query_done m ~ok:true ~seconds:0.020;
  Metrics.query_done m ~ok:false ~seconds:0.500;
  let adm = Admission.create ~limit:4 in
  let kv = Metrics.parse (Metrics.render m ~admission:adm ~draining:false) in
  let get k = List.assoc k kv in
  Alcotest.(check string) "ok count" "2" (get "queries_ok");
  Alcotest.(check string) "err count" "1" (get "queries_err");
  Alcotest.(check string) "active" "1" (get "sessions_active");
  Alcotest.(check string) "draining" "false" (get "draining");
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "p99 >= p50" true
    (s.Metrics.p99_seconds >= s.Metrics.p50_seconds)

(** Percentile totality on tiny reservoirs: n = 0 must yield 0.0 (not
    an out-of-bounds read), n = 1 the lone sample for every p, and the
    rank arithmetic must hold at n = 2; NaN and out-of-range p are
    clamped instead of flowing into [int_of_float]. *)
let test_metrics_percentile_edges () =
  let fl = Alcotest.float 1e-12 in
  let m = Metrics.create () in
  (* n = 0: every percentile is 0. *)
  List.iter
    (fun p -> Alcotest.check fl "empty reservoir" 0.0 (Metrics.percentile m p))
    [ 0.0; 50.0; 100.0; -3.0; 250.0; Float.nan ];
  (* n = 1: every percentile is the lone sample. *)
  Metrics.query_done m ~ok:true ~seconds:0.042;
  List.iter
    (fun p -> Alcotest.check fl "lone sample" 0.042 (Metrics.percentile m p))
    [ 0.0; 50.0; 99.0; 100.0; -3.0; 250.0; Float.nan ];
  (* n = 2: nearest-rank picks the lower sample up to p50, the upper
     one above; clamping maps out-of-range p onto the extremes. *)
  Metrics.query_done m ~ok:true ~seconds:0.010;
  Alcotest.check fl "p0 = min" 0.010 (Metrics.percentile m 0.0);
  Alcotest.check fl "p50 = lower" 0.010 (Metrics.percentile m 50.0);
  Alcotest.check fl "p51 = upper" 0.042 (Metrics.percentile m 51.0);
  Alcotest.check fl "p100 = max" 0.042 (Metrics.percentile m 100.0);
  Alcotest.check fl "negative p clamps to min" 0.010 (Metrics.percentile m (-7.0));
  Alcotest.check fl "p > 100 clamps to max" 0.042 (Metrics.percentile m 1000.0);
  Alcotest.check fl "NaN treated as p0" 0.010 (Metrics.percentile m Float.nan)

(* ------------------------------------------------------------------ *)
(* End-to-end over the socket                                          *)

let pr_sql = Queries.pr ~iterations:5 ()

(** The reference answer, computed sequentially on a private engine
    over the same graph. *)
let sequential_reference () =
  let engine = Loader.engine_for (test_graph ()) in
  Dbspinner_storage.Relation.to_table_string (Engine.query engine pr_sql)

let test_concurrent_sessions_bit_identical () =
  let expected = sequential_reference () in
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "concurrent";
      max_inflight = 16;
      workers = 4;
    }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun _srv ->
      let n = 8 in
      let results = Array.make n (Error ("unset", "never ran")) in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.with_client ~socket_path:config.Server.socket_path
                    (fun c ->
                      match Client.query c pr_sql with
                      | Ok body -> Ok body
                      | Error (s, m) -> Error (s, m)))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i result ->
          match result with
          | Ok body ->
            Alcotest.(check string)
              (Printf.sprintf "session %d bit-identical to sequential" i)
              expected body
          | Error (status, msg) ->
            Alcotest.fail (Printf.sprintf "session %d: %s %s" i status msg))
        results)

let test_session_temp_isolation () =
  (* Two sessions interleave statements that materialize CTE temps of
     the same name over the shared catalog; a shared temp namespace
     would make one session's result leak into the other. *)
  let config =
    { Server.default_config with Server.socket_path = socket_path "isolation" }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c1 ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c2 ->
              let q tag n =
                Printf.sprintf
                  "WITH ITERATIVE PageRank (who, n) AS (SELECT '%s', 0 ITERATE \
                   SELECT who, n + 1 FROM PageRank UNTIL %d ITERATIONS) SELECT \
                   who, n FROM PageRank"
                  tag n
              in
              let r1 = Client.query c1 (q "one" 3) in
              let r2 = Client.query c2 (q "two" 7) in
              (match r1 with
              | Ok body ->
                Alcotest.(check bool) "session 1 sees its own tag" true
                  (Helpers.contains body "one")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              (match r2 with
              | Ok body ->
                Alcotest.(check bool) "session 2 sees its own tag" true
                  (Helpers.contains body "two");
                Alcotest.(check bool) "session 2 not polluted" false
                  (Helpers.contains body "one")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              (* Temps never became shared base tables. *)
              Alcotest.(check bool) "no temp leaked into base" false
                (Catalog.mem_table (Server.catalog srv) "PageRank"))))

let test_shared_base_ddl_visible () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "ddl" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c1 ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c2 ->
              (match
                 Client.query c1
                   "CREATE TABLE shared (a INT); INSERT INTO shared VALUES \
                    (42)"
               with
              | Ok _ -> ()
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              match Client.query c2 "SELECT a FROM shared" with
              | Ok body ->
                Alcotest.(check bool) "other session reads the row" true
                  (Helpers.contains body "42")
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m))))

(** Poll STATS through [client] until [pred kv] or timeout. *)
let wait_for_stats client pred =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec loop () =
    let kv = Client.stats client in
    if pred kv then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let inflight_at_least n kv =
  match List.assoc_opt "inflight" kv with
  | Some v -> (match int_of_string_opt v with Some i -> i >= n | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* MVCC snapshot isolation                                             *)

let pr_slow_sql = Queries.pr ~iterations:30 ()

let sequential_slow_reference () =
  let engine = Loader.engine_for (test_graph ()) in
  Dbspinner_storage.Relation.to_table_string (Engine.query engine pr_slow_sql)

let test_snapshot_isolation_under_ddl () =
  (* A pinned reader must return a result bit-identical to the
     sequential pre-DML answer even while a concurrent session drops
     and recreates the very table it is iterating over. *)
  let expected = sequential_slow_reference () in
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "mvcc-iso";
      max_inflight = 8;
      workers = 2;
    }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun _srv ->
      let reader_result = ref (Error ("unset", "never ran")) in
      let reader =
        Thread.create
          (fun () ->
            reader_result :=
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c -> Client.query c pr_slow_sql))
          ()
      in
      Client.with_client ~socket_path:config.Server.socket_path (fun vandal ->
          Alcotest.(check bool) "reader in flight" true
            (wait_for_stats vandal (inflight_at_least 1));
          (* The reader pinned its snapshot at admission; now wreck the
             live table underneath it. *)
          match
            Client.query vandal
              "DROP TABLE edges; CREATE TABLE edges (src INT, dst INT, \
               weight FLOAT); INSERT INTO edges VALUES (0, 0, 1.0)"
          with
          | Ok _ -> ()
          | Error (s, m) -> Alcotest.fail (Printf.sprintf "vandal: %s %s" s m));
      Thread.join reader;
      (match !reader_result with
      | Ok body ->
        Alcotest.(check string) "pinned reader bit-identical to pre-DML run"
          expected body
      | Error (s, m) -> Alcotest.fail (Printf.sprintf "reader: %s %s" s m));
      (* A fresh read pins the *new* snapshot and sees the wreckage —
         versions move forward, they do not freeze the world. *)
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          match Client.query c "SELECT COUNT(*) AS n FROM edges" with
          | Ok body ->
            Alcotest.(check bool) "later reader sees the new table" true
              (Helpers.contains body "1")
          | Error (s, m) -> Alcotest.fail (s ^ " " ^ m)))

let test_read_your_writes () =
  (* The publish happens before the write's OK, so the same session's
     immediate next read (a fresh snapshot pin) must see the write. *)
  let config =
    { Server.default_config with Server.socket_path = socket_path "ryw" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.query c "CREATE TABLE t (a INT)" with
          | Ok _ -> ()
          | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
          for i = 1 to 20 do
            (match
               Client.query c (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
             with
            | Ok _ -> ()
            | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
            match Client.query c "SELECT COUNT(*) AS n FROM t" with
            | Ok body ->
              Alcotest.(check bool)
                (Printf.sprintf "write %d visible to its own session" i)
                true
                (Helpers.contains body (string_of_int i))
            | Error (s, m) -> Alcotest.fail (s ^ " " ^ m)
          done))

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)

let stat_int kv key =
  match List.assoc_opt key kv with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> -1)
  | None -> -1

let test_plan_cache_hit_and_staleness () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "plan" }
  in
  (* The scalar subquery is pre-evaluated at compile time, so its value
     is baked into the cached plan — reusing a stale plan after the
     INSERT would resurrect the old count. *)
  let probe_sql = "SELECT (SELECT COUNT(*) FROM t) AS n" in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c1 ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c2 ->
              (match
                 Client.query c1 "CREATE TABLE t (a INT); INSERT INTO t \
                                  VALUES (1)"
               with
              | Ok _ -> ()
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              let expect_n client label n =
                match Client.query client probe_sql with
                | Ok body ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s returns %d" label n)
                    true
                    (Helpers.contains body (string_of_int n))
                | Error (s, m) -> Alcotest.fail (s ^ " " ^ m)
              in
              expect_n c1 "cold run" 1;
              let kv = Client.stats c1 in
              let misses0 = stat_int kv "plan_misses" in
              Alcotest.(check bool) "cold run was a miss" true (misses0 >= 1);
              expect_n c1 "warm run" 1;
              (* The warm run and the cross-session run hit the cache. *)
              expect_n c2 "other session, same SQL" 1;
              let kv = Client.stats c1 in
              Alcotest.(check bool) "warm runs hit" true
                (stat_int kv "plan_hits" >= 2);
              Alcotest.(check bool) "no extra misses" true
                (stat_int kv "plan_misses" = misses0);
              (* DML bumps the snapshot version: the cached plan (with
                 the stale prevaluated count) must NOT be reused. *)
              (match Client.query c1 "INSERT INTO t VALUES (2)" with
              | Ok _ -> ()
              | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
              expect_n c1 "post-DML run recompiles" 2;
              expect_n c2 "post-DML other session too" 2)))

let test_plan_cache_opt_out () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "plan-off" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.set c "plan_cache" "off" with
          | Ok confirmation ->
            Alcotest.(check bool) "confirmation echoes state" true
              (Helpers.contains confirmation "false")
          | Error m -> Alcotest.fail m);
          let kv0 = Client.stats c in
          (match Client.query c "SELECT 1" with
          | Ok _ -> ()
          | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
          (match Client.query c "SELECT 1" with
          | Ok _ -> ()
          | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
          let kv = Client.stats c in
          (* An opted-out session never touches the cache: neither hits
             nor misses move. *)
          Alcotest.(check int) "hits unchanged" (stat_int kv0 "plan_hits")
            (stat_int kv "plan_hits");
          Alcotest.(check int) "misses unchanged" (stat_int kv0 "plan_misses")
            (stat_int kv "plan_misses");
          (* Opting back in works. *)
          match Client.set c "plan_cache" "on" with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m))

(* ------------------------------------------------------------------ *)
(* Pipelining                                                          *)

let test_pipeline_ordered_responses () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "pipeline" }
  in
  Server.with_server ~config ~catalog:(graph_catalog ()) (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (* Distinct per-request payloads prove responses came back in
             request order with the right tags. *)
          let sqls =
            List.init 10 (fun i -> Printf.sprintf "SELECT %d AS tag" (i + 100))
          in
          let results = Client.pipeline_queries c sqls in
          Alcotest.(check int) "one response per request" 10
            (List.length results);
          List.iteri
            (fun i result ->
              match result with
              | Ok body ->
                Alcotest.(check bool)
                  (Printf.sprintf "response %d carries its own tag" i)
                  true
                  (Helpers.contains body (string_of_int (i + 100)))
              | Error (s, m) ->
                Alcotest.fail (Printf.sprintf "request %d: %s %s" i s m))
            results;
          (* Mixed batches work too, and errors stay position-aligned. *)
          match
            Client.pipeline c
              [
                Protocol.Query "SELECT 1 AS a";
                Protocol.Ping;
                Protocol.Query "SELECT nope FROM nowhere";
                Protocol.Query "SELECT 2 AS b";
              ]
          with
          | [ Protocol.Ok_result _; Protocol.Pong; Protocol.Err _;
              Protocol.Ok_result _ ] ->
            ()
          | _ -> Alcotest.fail "mixed pipeline lost its shape"))

let test_pipeline_untagged_interop () =
  (* An old-style untagged client must keep working against the same
     server (backward compatibility of the wire format). *)
  let config =
    { Server.default_config with Server.socket_path = socket_path "untagged" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.query c "SELECT 41 + 1 AS n" with
          | Ok body ->
            Alcotest.(check bool) "untagged query answered untagged" true
              (Helpers.contains body "42")
          | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
          Alcotest.(check bool) "ping still works" true (Client.ping c)))

(** A query that loops long enough to still be running when we probe /
    drain: a counting loop with a generous iteration bound. *)
let slow_sql =
  "WITH ITERATIVE spin (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM spin UNTIL \
   2000000 ITERATIONS) SELECT n FROM spin"

let spin_options = { Options.default with Options.max_iterations_guard = 3_000_000 }

let test_admission_rejects_overload () =
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "busy";
      max_inflight = 1;
      workers = 2;
      options = spin_options;
    }
  in
  Server.with_server ~config (fun _srv ->
      let slow_result = ref (Error ("unset", "")) in
      let slow_thread =
        Thread.create
          (fun () ->
            slow_result :=
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c -> Client.query c slow_sql))
          ()
      in
      Client.with_client ~socket_path:config.Server.socket_path (fun probe ->
          Alcotest.(check bool) "slow query became in-flight" true
            (wait_for_stats probe (inflight_at_least 1));
          (* STATS and PING stay responsive at capacity... *)
          Alcotest.(check bool) "ping at capacity" true (Client.ping probe);
          (* ...but a query beyond max_inflight is rejected immediately. *)
          match Client.query probe "SELECT 1" with
          | Error ("BUSY", _) -> ()
          | Ok _ -> Alcotest.fail "overload query must be rejected"
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "expected BUSY, got %s %s" s m));
      Thread.join slow_thread;
      (* The slow query itself completed fine. *)
      match !slow_result with
      | Ok _ -> ()
      | Error (s, m) ->
        Alcotest.fail (Printf.sprintf "slow query failed: %s %s" s m))

let test_busy_retry_eventually_succeeds () =
  (* With retries enabled, a client squeezed out by admission control
     backs off and lands once the slot frees — the bench harness uses
     this for goodput under overload. *)
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "retry";
      max_inflight = 1;
      workers = 2;
      options = spin_options;
    }
  in
  let spin_short =
    "WITH ITERATIVE spin (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM spin \
     UNTIL 150000 ITERATIONS) SELECT n FROM spin"
  in
  Server.with_server ~config (fun _srv ->
      let slow_result = ref (Error ("unset", "")) in
      let slow_thread =
        Thread.create
          (fun () ->
            slow_result :=
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c -> Client.query c spin_short))
          ()
      in
      (* A fixed seed pins the backoff jitter so the retry cadence is
         reproducible run-to-run. *)
      Client.with_client ~seed:7 ~socket_path:config.Server.socket_path
        (fun probe ->
          Alcotest.(check bool) "spin in flight" true
            (wait_for_stats probe (inflight_at_least 1));
          (* Without retries: immediate BUSY. *)
          (match Client.query probe "SELECT 1" with
          | Error ("BUSY", _) -> ()
          | Ok _ -> Alcotest.fail "no-retry query must be rejected"
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "expected BUSY, got %s %s" s m));
          (* With retries: backs off until the slot frees. *)
          match Client.query ~retries:200 ~backoff_ms:2.0 probe "SELECT 1" with
          | Ok _ -> ()
          | Error (s, m) ->
            Alcotest.fail (Printf.sprintf "retrying query failed: %s %s" s m));
      Thread.join slow_thread;
      match !slow_result with
      | Ok _ -> ()
      | Error (s, m) ->
        Alcotest.fail (Printf.sprintf "slow query failed: %s %s" s m))

let test_statement_timeout_guard () =
  (* A server-wide statement timeout aborts a wedged query with a
     distinct error, and sessions may only tighten the ceiling. *)
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "stmt-timeout";
      options =
        {
          spin_options with
          Options.statement_timeout_seconds = Some 0.2;
        };
    }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.query c slow_sql with
          | Error (status, msg) ->
            Alcotest.(check bool)
              (Printf.sprintf "statement timeout error (got %s: %s)" status msg)
              true
              (Helpers.contains status "resource"
              && Helpers.contains msg "statement timeout")
          | Ok _ -> Alcotest.fail "wedged query must time out");
          (* Loosening beyond the server ceiling is refused... *)
          (match Client.set c "statement_timeout" "30" with
          | Error m ->
            Alcotest.(check bool) "refusal names the ceiling" true
              (Helpers.contains m "ceiling")
          | Ok _ -> Alcotest.fail "loosening past the ceiling must fail");
          (match Client.set c "statement_timeout" "off" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "disabling past the ceiling must fail");
          (* ...tightening is allowed. *)
          match Client.set c "statement_timeout" "0.05" with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m))

let test_drain_aborts_inflight_at_boundary () =
  let config =
    {
      Server.default_config with
      Server.socket_path = socket_path "drain";
      max_inflight = 4;
      workers = 2;
      options = spin_options;
    }
  in
  let srv = Server.start ~config () in
  let slow_result = ref (Error ("unset", "")) in
  let slow_thread =
    Thread.create
      (fun () ->
        slow_result :=
          Client.with_client ~socket_path:config.Server.socket_path (fun c ->
              Client.query c slow_sql))
      ()
  in
  Client.with_client ~socket_path:config.Server.socket_path (fun probe ->
      Alcotest.(check bool) "spin query in flight" true
        (wait_for_stats probe (inflight_at_least 1)));
  (* Graceful shutdown: the in-flight loop must abort at an iteration
     boundary with a Resource error mentioning the drain — not hang,
     not die silently. *)
  Server.shutdown srv;
  Thread.join slow_thread;
  (match !slow_result with
  | Error (status, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "resource-stage drain error (got %s: %s)" status msg)
      true
      (Helpers.contains status "resource" && Helpers.contains msg "shutting down")
  | Ok _ -> Alcotest.fail "in-flight query must be aborted by drain");
  (* Fully shut down: socket gone, fresh connections refused. *)
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists config.Server.socket_path);
  match Client.connect ~socket_path:config.Server.socket_path () with
  | exception Unix.Unix_error _ -> ()
  | c ->
    Client.close c;
    Alcotest.fail "connect after shutdown must fail"

let test_closing_after_drain_starts () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "closing" }
  in
  let srv = Server.start ~config () in
  Client.with_client ~socket_path:config.Server.socket_path (fun c ->
      (match Client.query c "SELECT 1" with
      | Ok _ -> ()
      | Error (s, m) -> Alcotest.fail (s ^ " " ^ m));
      (* Trigger the drain from another thread while this session is
         still connected; its next query must get CLOSING. *)
      Server.request_shutdown srv;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_closing () =
        match Client.query c "SELECT 1" with
        | Error ("CLOSING", _) -> ()
        | Ok _ when Unix.gettimeofday () < deadline ->
          Thread.delay 0.02;
          await_closing ()
        | Ok _ -> Alcotest.fail "draining server kept accepting queries"
        | Error (s, m) ->
          (* The server may already have closed this session's socket:
             that is a valid drain outcome too. *)
          ignore (s, m)
      in
      (* A closed session socket surfaces as End_of_file on read or
         EPIPE/ECONNRESET on write, depending on which side of the
         request the close lands. *)
      (try await_closing () with
      | End_of_file
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        ()));
  Server.wait srv

let test_session_set_and_stats () =
  let config =
    { Server.default_config with Server.socket_path = socket_path "set" }
  in
  Server.with_server ~config (fun _srv ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (match Client.set c "budget" "10" with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          (* The per-session row budget now aborts a too-large query on
             this session... *)
          (match Client.query c slow_sql with
          | Error (status, _) ->
            Alcotest.(check bool) "budget trips as resource error" true
              (Helpers.contains status "resource")
          | Ok _ -> Alcotest.fail "row budget must trip");
          match Client.set c "nonsense" "on" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "unknown option must be rejected"))

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing-roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "framing-zero-length" `Quick
            test_framing_zero_length;
          Alcotest.test_case "framing-oversized-header" `Quick
            test_framing_oversized_header;
          Alcotest.test_case "framing-header-too-long" `Quick
            test_framing_header_too_long;
          Alcotest.test_case "framing-garbage-header" `Quick
            test_framing_garbage_header;
          Alcotest.test_case "framing-peer-death-mid-frame" `Quick
            test_framing_peer_death_mid_frame;
          Alcotest.test_case "framing-exactly-max-bytes" `Quick
            test_framing_exactly_max_bytes;
          Alcotest.test_case "request-roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "read-only-classification" `Quick
            test_read_only_classification;
          Alcotest.test_case "split-statements" `Quick test_split_statements;
          Alcotest.test_case "request-id-tags" `Quick test_request_id_tags;
        ] );
      ( "admission",
        [
          Alcotest.test_case "rwlock-writer-handoff" `Quick
            test_rwlock_writer_handoff;
          Alcotest.test_case "unit" `Quick test_admission_unit;
          Alcotest.test_case "metrics" `Quick test_metrics_render_parse;
          Alcotest.test_case "metrics-percentile-edges" `Quick
            test_metrics_percentile_edges;
          Alcotest.test_case "rejects-overload" `Quick
            test_admission_rejects_overload;
          Alcotest.test_case "busy-retry" `Quick
            test_busy_retry_eventually_succeeds;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "concurrent-bit-identical" `Quick
            test_concurrent_sessions_bit_identical;
          Alcotest.test_case "temp-isolation" `Quick test_session_temp_isolation;
          Alcotest.test_case "shared-ddl" `Quick test_shared_base_ddl_visible;
          Alcotest.test_case "set-options" `Quick test_session_set_and_stats;
          Alcotest.test_case "statement-timeout" `Quick
            test_statement_timeout_guard;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "snapshot-isolation-under-ddl" `Quick
            test_snapshot_isolation_under_ddl;
          Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
          Alcotest.test_case "plan-cache-hit-and-staleness" `Quick
            test_plan_cache_hit_and_staleness;
          Alcotest.test_case "plan-cache-opt-out" `Quick
            test_plan_cache_opt_out;
          Alcotest.test_case "pipeline-ordered" `Quick
            test_pipeline_ordered_responses;
          Alcotest.test_case "pipeline-untagged-interop" `Quick
            test_pipeline_untagged_interop;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "drain-aborts-at-boundary" `Quick
            test_drain_aborts_inflight_at_boundary;
          Alcotest.test_case "closing-after-drain" `Quick
            test_closing_after_drain_starts;
        ] );
    ]

(** Tests for the observability layer: the trace ring buffer, the
    minimal JSON parser, NDJSON event validation, engine-level
    convergence timelines, and agreement of the per-iteration delta
    timeline across the sequential, parallel, and distributed
    executors (including under injected faults). *)

module Trace = Dbspinner_obs.Trace
module Json = Dbspinner_obs.Json
module Value = Dbspinner_storage.Value
module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Parser = Dbspinner_sql.Parser
module Options = Dbspinner_rewrite.Options
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Stats = Dbspinner_exec.Stats
module Executor = Dbspinner_exec.Executor
module Parallel = Dbspinner_exec.Parallel
module Distributed = Dbspinner_mpp.Distributed
module Fault = Dbspinner_mpp.Fault
module Engine = Dbspinner.Engine
open Helpers

let emit_n tr n =
  for i = 1 to n do
    Trace.emit tr ~kind:Trace.Step
      ~label:(Printf.sprintf "s%d" i)
      ~wall_ms:0.0 ~counters:Trace.zero_counters ()
  done

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_ring_buffer () =
  let tr = Trace.create ~capacity:4 () in
  Alcotest.(check int) "empty" 0 (List.length (Trace.spans tr));
  Alcotest.(check int) "first seq" 0 (Trace.next_seq tr);
  emit_n tr 6;
  let spans = Trace.spans tr in
  Alcotest.(check int) "capacity bounds retention" 4 (List.length spans);
  Alcotest.(check int) "two evicted" 2 (Trace.dropped tr);
  Alcotest.(check (list int))
    "oldest-first, seqs contiguous" [ 2; 3; 4; 5 ]
    (List.map (fun (s : Trace.span) -> s.Trace.seq) spans);
  Alcotest.(check (list string))
    "labels survive wraparound" [ "s3"; "s4"; "s5"; "s6" ]
    (List.map (fun (s : Trace.span) -> s.Trace.label) spans);
  Alcotest.(check int) "min_seq slices" 2
    (List.length (Trace.spans ~min_seq:4 tr));
  Alcotest.(check int) "next_seq advanced" 6 (Trace.next_seq tr)

let test_iteration_spans_filter () =
  let tr = Trace.create () in
  emit_n tr 2;
  Trace.emit tr ~kind:Trace.Iteration ~label:"c" ~loop_id:3 ~iteration:1
    ~rows:10 ~delta:4 ~wall_ms:0.5 ~counters:Trace.zero_counters ();
  emit_n tr 1;
  let iters = Trace.iteration_spans tr in
  Alcotest.(check int) "only iteration spans" 1 (List.length iters);
  let s = List.hd iters in
  Alcotest.(check int) "loop id" 3 s.Trace.loop_id;
  Alcotest.(check int) "delta" 4 s.Trace.delta;
  Alcotest.(check int) "cum_updates defaults to n/a" (-1) s.Trace.cum_updates

(* ------------------------------------------------------------------ *)
(* JSON parser                                                         *)

let test_json_parser () =
  let ok s =
    match Json.parse s with
    | Ok v -> v
    | Error m -> Alcotest.failf "parse %s failed: %s" s m
  in
  (match ok {|{"a": [1, -2.5, true, null], "b": "x\"y"}|} with
  | Json.Obj fields ->
    (match List.assoc "a" fields with
    | Json.Arr [ Json.Num 1.0; Json.Num -2.5; Json.Bool true; Json.Null ] -> ()
    | _ -> Alcotest.fail "array contents");
    (match List.assoc "b" fields with
    | Json.Str "x\"y" -> ()
    | _ -> Alcotest.fail "escaped string")
  | _ -> Alcotest.fail "expected object");
  (match Json.member "a" (ok {|{"a": 1}|}) with
  | Some (Json.Num 1.0) -> ()
  | _ -> Alcotest.fail "member");
  Alcotest.(check bool) "missing member" true
    (Json.member "b" (ok {|{"a": 1}|}) = None);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for: %s" bad)
    [ "{"; "[1,]"; "{\"a\" 1}"; "1 2"; ""; "{\"a\": 1} trailing" ]

(* The bench harness emits per-iteration timings as real JSON arrays
   (e.g. "per_iteration_on_ms"); a record round-trips through the
   parser with the array structure and element order intact. *)
let test_bench_record_arrays () =
  let line =
    {|{"section": "ext-trace", "workload": "PR", |}
    ^ {|"per_iteration_off_ms": [1.5, 0.25, 0.125], |}
    ^ {|"per_iteration_on_ms": [], "iterations": 3}|}
  in
  match Json.parse line with
  | Error m -> Alcotest.failf "bench record failed to parse: %s" m
  | Ok v -> (
    (match Json.member "per_iteration_off_ms" v with
    | Some (Json.Arr [ Json.Num 1.5; Json.Num 0.25; Json.Num 0.125 ]) -> ()
    | _ -> Alcotest.fail "per-iteration array contents");
    match Json.member "per_iteration_on_ms" v with
    | Some (Json.Arr []) -> ()
    | _ -> Alcotest.fail "empty per-iteration array")

(* ------------------------------------------------------------------ *)
(* NDJSON event validation                                             *)

let test_validate_event () =
  let tr = Trace.create () in
  Trace.emit tr ~kind:Trace.Iteration ~label:"c" ~loop_id:1 ~iteration:2
    ~rows:5 ~delta:1 ~wall_ms:0.25 ~counters:Trace.zero_counters ();
  let line = Trace.span_to_json (List.hd (Trace.spans tr)) in
  (match Trace.validate_event line with
  | Ok () -> ()
  | Error m -> Alcotest.failf "emitted span must validate: %s" m);
  List.iter
    (fun bad ->
      match Trace.validate_event bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "expected invalid: %s" bad)
    [
      "not json";
      "{\"seq\": 1}";
      (* unknown kind *)
      {|{"seq": 0, "kind": "nope", "label": "x", "loop": -1, "iter": 0, "rows": -1, "delta": -1, "cum_updates": -1, "wall_ms": 0.1, "scanned": 0, "joined": 0, "materialized": 0, "cache_hits": 0, "cache_misses": 0, "faults": 0, "retries": 0, "recoveries": 0}|};
      (* non-integer counter *)
      {|{"seq": 0, "kind": "step", "label": "x", "loop": -1, "iter": 0, "rows": 1.5, "delta": -1, "cum_updates": -1, "wall_ms": 0.1, "scanned": 0, "joined": 0, "materialized": 0, "cache_hits": 0, "cache_misses": 0, "faults": 0, "retries": 0, "recoveries": 0}|};
      (* OCaml [%S]-style decimal escape: legal OCaml, invalid JSON.
         The exporter once produced these; the validator must reject
         them so a regression cannot slip through. *)
      {|{"seq": 0, "kind": "step", "label": "x\027y", "loop": -1, "iter": 0, "rows": -1, "delta": -1, "cum_updates": -1, "wall_ms": 0.1, "scanned": 0, "joined": 0, "materialized": 0, "cache_hits": 0, "cache_misses": 0, "faults": 0, "retries": 0, "recoveries": 0}|};
    ]

(** Labels with control bytes, quotes and backslashes must export as
    valid JSON — every string field goes through the JSON escaper, not
    OCaml's [%S] (which emits decimal escapes like [\027]). *)
let test_export_escapes_weird_labels () =
  let tr = Trace.create () in
  List.iter
    (fun label ->
      Trace.emit tr ~kind:Trace.Operator ~label ~wall_ms:0.1
        ~counters:Trace.zero_counters ())
    [ "quote\"backslash\\"; "ctrl\001\027byte"; "tab\tnl\ncr\r"; "" ];
  List.iter
    (fun s ->
      let line = Trace.span_to_json s in
      match Trace.validate_event line with
      | Ok () -> ()
      | Error m -> Alcotest.failf "span %S exports invalid JSON (%s): %s"
          s.Trace.label m line)
    (Trace.spans tr)

(* ------------------------------------------------------------------ *)
(* Engine-level timeline                                               *)

(** Converges to n = 3: deltas 1, 1, 1, then a confirming 0. *)
let converging_sql =
  "WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, LEAST(n + 1, 3) \
   FROM c UNTIL DELTA = 0) SELECT n FROM c"

let iteration_deltas ?min_seq tr =
  List.map (fun (s : Trace.span) -> s.Trace.delta)
    (Trace.iteration_spans ?min_seq tr)

let test_engine_timeline () =
  let e = Engine.create () in
  let tr = Engine.enable_trace e in
  let min_seq = Trace.next_seq tr in
  let out = Engine.query e converging_sql in
  Alcotest.check relation_testable "converged result"
    (rel [ "n" ] [ [ vi 3 ] ])
    out;
  Alcotest.(check (list int))
    "per-iteration deltas" [ 1; 1; 1; 0 ]
    (iteration_deltas ~min_seq tr);
  List.iteri
    (fun i (s : Trace.span) ->
      Alcotest.(check int) "iterations are 1-based" (i + 1) s.Trace.iteration;
      Alcotest.(check int) "cardinality gauge" 1 s.Trace.rows;
      Alcotest.(check bool) "loop id recorded" true (s.Trace.loop_id >= 0))
    (Trace.iteration_spans ~min_seq tr);
  let timeline = Trace.render_timeline ~min_seq tr in
  Alcotest.(check bool) "timeline header" true
    (contains timeline "Convergence timeline");
  (* Every emitted NDJSON line passes schema validation. *)
  String.split_on_char '\n' (Trace.to_ndjson ~min_seq tr)
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Trace.validate_event line with
           | Ok () -> ()
           | Error m -> Alcotest.failf "invalid event %s: %s" line m);
  (* Uninstalling the collector stops emission. *)
  Engine.set_trace e None;
  let seq_before = Trace.next_seq tr in
  ignore (Engine.query e converging_sql);
  Alcotest.(check int) "no spans once disabled" seq_before (Trace.next_seq tr)

let test_explain_analyze_timeline () =
  let e = Engine.create () in
  match Engine.execute e ("EXPLAIN ANALYZE " ^ converging_sql) with
  | Engine.Explained text ->
    Alcotest.(check bool) "timeline rendered inline" true
      (contains text "Convergence timeline")
  | _ -> Alcotest.fail "expected Explained"

(* ------------------------------------------------------------------ *)
(* Cross-executor agreement                                            *)

let compile_standalone sql =
  Iterative_rewrite.compile ~options:Options.default
    ~lookup:(fun _ -> None)
    (Parser.parse_query sql)

let test_delta_agreement_across_executors () =
  let program = compile_standalone converging_sql in
  let run_seq ?trace () =
    let catalog = Catalog.create () in
    let stats = Stats.create () in
    let rel = Executor.run_program ~stats ?trace catalog program in
    (rel, stats)
  in
  let off_rel, off_stats = run_seq () in
  let tr_seq = Trace.create () in
  let on_rel, on_stats = run_seq ~trace:tr_seq () in
  Alcotest.(check bool) "traced result identical" true
    (Relation.equal_bag off_rel on_rel);
  Alcotest.(check bool) "tracing is non-perturbing" true
    (Stats.logical_equal off_stats on_stats);
  let tr_par = Trace.create () in
  let par_rel =
    let parallel = Parallel.context ~workers:2 () in
    Executor.run_program ?parallel ~trace:tr_par (Catalog.create ()) program
  in
  let tr_dist = Trace.create () in
  let dist_rel, _ =
    Distributed.run_program ~workers:3 ~trace:tr_dist (Catalog.create ())
      program
  in
  Alcotest.(check bool) "parallel result identical" true
    (Relation.equal_bag off_rel par_rel);
  Alcotest.(check bool) "distributed result identical" true
    (Relation.equal_bag off_rel dist_rel);
  Alcotest.(check (list int))
    "sequential deltas" [ 1; 1; 1; 0 ] (iteration_deltas tr_seq);
  Alcotest.(check (list int))
    "parallel timeline agrees" (iteration_deltas tr_seq)
    (iteration_deltas tr_par);
  Alcotest.(check (list int))
    "distributed timeline agrees" (iteration_deltas tr_seq)
    (iteration_deltas tr_dist);
  Alcotest.(check int) "span count matches executor iterations"
    on_stats.Stats.loop_iterations
    (List.length (Trace.iteration_spans tr_seq))

let test_trace_under_faults () =
  (* Tracing a faulty distributed run must not change recovery
     semantics, and the program span accounts for every injected
     fault. *)
  let program = compile_standalone converging_sql in
  let expected = Executor.run_program (Catalog.create ()) program in
  let tr = Trace.create () in
  let stats = Stats.create () in
  let actual, _ =
    Distributed.run_program ~workers:2
      ~fault:(Fault.probabilistic ~max_faults:2 ~seed:5 ~probability:0.4 ())
      ~trace:tr ~stats (Catalog.create ()) program
  in
  Alcotest.(check bool) "recovered result = fault-free" true
    (Relation.equal_bag expected actual);
  Alcotest.(check bool) "faults were injected" true
    (stats.Stats.faults_injected > 0);
  let program_spans =
    List.filter
      (fun (s : Trace.span) -> s.Trace.kind = Trace.Program)
      (Trace.spans tr)
  in
  (match program_spans with
  | [ s ] ->
    Alcotest.(check int) "program span accounts for all faults"
      stats.Stats.faults_injected s.Trace.counters.Trace.c_faults;
    Alcotest.(check int) "and all retries" stats.Stats.retries
      s.Trace.counters.Trace.c_retries
  | l -> Alcotest.failf "expected one program span, got %d" (List.length l));
  let fault_sum =
    List.fold_left
      (fun acc (s : Trace.span) -> acc + s.Trace.counters.Trace.c_faults)
      0
      (Trace.iteration_spans tr)
  in
  Alcotest.(check bool) "iteration spans absorb loop-time faults" true
    (fault_sum <= stats.Stats.faults_injected);
  String.split_on_char '\n' (Trace.to_ndjson tr)
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Trace.validate_event line with
           | Ok () -> ()
           | Error m -> Alcotest.failf "invalid event %s: %s" line m)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring-buffer" `Quick test_ring_buffer;
          Alcotest.test_case "iteration-filter" `Quick
            test_iteration_spans_filter;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parser;
          Alcotest.test_case "bench-record-arrays" `Quick
            test_bench_record_arrays;
        ] );
      ( "ndjson",
        [
          Alcotest.test_case "validate" `Quick test_validate_event;
          Alcotest.test_case "weird-labels" `Quick
            test_export_escapes_weird_labels;
        ] );
      ( "engine",
        [
          Alcotest.test_case "timeline" `Quick test_engine_timeline;
          Alcotest.test_case "explain-analyze" `Quick
            test_explain_analyze_timeline;
        ] );
      ( "executors",
        [
          Alcotest.test_case "delta-agreement" `Quick
            test_delta_agreement_across_executors;
          Alcotest.test_case "faults" `Quick test_trace_under_faults;
        ] );
    ]

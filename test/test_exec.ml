(** Unit tests for the execution layer: the expression interpreter's
    three-valued logic and scalar functions, the physical operators,
    and the step-program executor (loop, rename, snapshots,
    terminations, recursive CTEs). *)

module Value = Dbspinner_storage.Value
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Ast = Dbspinner_sql.Ast
module Bound_expr = Dbspinner_plan.Bound_expr
module Logical = Dbspinner_plan.Logical
module Program = Dbspinner_plan.Program
module Binder = Dbspinner_plan.Binder
module Parser = Dbspinner_sql.Parser
module Eval = Dbspinner_exec.Eval
module Operators = Dbspinner_exec.Operators
module Executor = Dbspinner_exec.Executor
module Stats = Dbspinner_exec.Stats
open Helpers

(** Evaluate a standalone SQL expression over an empty row. *)
let eval_sql sql =
  Eval.eval [||] (Binder.bind_scalar [||] (Parser.parse_expression sql))

let check_eval msg expected sql =
  Alcotest.check value_testable msg expected (eval_sql sql)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let test_three_valued_logic () =
  check_eval "null = null is unknown" vnull "NULL = NULL";
  check_eval "null <> 1 is unknown" vnull "NULL <> 1";
  check_eval "false and null" (vb false) "FALSE AND NULL";
  check_eval "true and null" vnull "TRUE AND NULL";
  check_eval "true or null" (vb true) "TRUE OR NULL";
  check_eval "false or null" vnull "FALSE OR NULL";
  check_eval "not null" vnull "NOT NULL";
  check_eval "null is null" (vb true) "NULL IS NULL";
  check_eval "1 is not null" (vb true) "1 IS NOT NULL"

let test_in_semantics () =
  check_eval "match" (vb true) "2 IN (1, 2)";
  check_eval "no match" (vb false) "3 IN (1, 2)";
  check_eval "no match with null member" vnull "3 IN (1, NULL)";
  check_eval "match despite null member" (vb true) "1 IN (1, NULL)";
  check_eval "null subject" vnull "NULL IN (1, 2)";
  check_eval "not in with null member" vnull "3 NOT IN (1, NULL)"

let test_between_and_like () =
  check_eval "between inclusive" (vb true) "2 BETWEEN 2 AND 3";
  check_eval "between null bound" vnull "2 BETWEEN NULL AND 3";
  check_eval "like percent" (vb true) "'hello' LIKE 'he%'";
  check_eval "like underscore" (vb true) "'cat' LIKE 'c_t'";
  check_eval "like no match" (vb false) "'cat' LIKE 'c_'";
  check_eval "not like" (vb true) "'cat' NOT LIKE 'dog%'";
  check_eval "like on null" vnull "NULL LIKE 'x%'"

let test_scalar_functions () =
  check_eval "coalesce picks first non-null" (vi 2) "COALESCE(NULL, 2, 3)";
  check_eval "coalesce all null" vnull "COALESCE(NULL, NULL)";
  check_eval "least skips nulls" (vi 1) "LEAST(3, NULL, 1)";
  check_eval "greatest" (vi 3) "GREATEST(3, NULL, 1)";
  check_eval "ceiling of float" (vf 3.0) "CEILING(2.1)";
  check_eval "ceiling of int is identity" (vi 7) "CEILING(7)";
  check_eval "floor" (vf 2.0) "FLOOR(2.9)";
  check_eval "round to digits" (vf 2.35) "ROUND(2.345678, 2)";
  check_eval "abs int" (vi 4) "ABS(-4)";
  check_eval "sqrt" (vf 3.0) "SQRT(9)";
  check_eval "power" (vf 8.0) "POWER(2, 3)";
  check_eval "sign" (vi (-1)) "SIGN(-0.5)";
  check_eval "nullif equal" vnull "NULLIF(5, 5)";
  check_eval "nullif different" (vi 5) "NULLIF(5, 6)";
  check_eval "upper" (vs "ABC") "UPPER('abc')";
  check_eval "length" (vi 3) "LENGTH('abc')";
  check_eval "substr" (vs "ell") "SUBSTR('hello', 2, 3)";
  check_eval "substr to end" (vs "llo") "SUBSTR('hello', 3)"

let test_cast_and_case () =
  check_eval "cast truncates" (vi 2) "CAST(2.9 AS INT)";
  check_eval "cast widens" (vf 2.0) "CAST(2 AS FLOAT)";
  check_eval "cast to string" (vs "2") "CAST(2 AS VARCHAR)";
  check_eval "cast null" vnull "CAST(NULL AS INT)";
  check_eval "case first match" (vs "one") "CASE WHEN 1 = 1 THEN 'one' WHEN 1 = 1 THEN 'dup' END";
  check_eval "case no match no else" vnull "CASE WHEN 1 = 2 THEN 'x' END";
  check_eval "case null condition skipped" (vs "e")
    "CASE WHEN NULL THEN 'x' ELSE 'e' END"

let test_arithmetic_null_propagation () =
  check_eval "add null" vnull "1 + NULL";
  check_eval "mixed promotes" (vf 3.5) "1 + 2.5";
  check_eval "concat" (vs "ab") "'a' || 'b'";
  check_eval "concat null" vnull "'a' || NULL";
  check_eval "unary minus" (vi (-3)) "-(1 + 2)"

let test_eval_pred () =
  let p sql = Eval.eval_pred [||] (Binder.bind_scalar [||] (Parser.parse_expression sql)) in
  Alcotest.(check bool) "true keeps" true (p "1 = 1");
  Alcotest.(check bool) "false drops" false (p "1 = 2");
  Alcotest.(check bool) "unknown drops" false (p "NULL = 1")

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)

let stats () = Stats.create ()

let test_joins_all_kinds () =
  let left = rel [ "id"; "v" ] [ [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 3; vs "c" ] ] in
  let right = rel [ "id"; "w" ] [ [ vi 2; vs "x" ]; [ vi 3; vs "y" ]; [ vi 4; vs "z" ] ] in
  let schema = Schema.append (Relation.schema left) (Relation.schema right) in
  let cond = Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col 0, Bound_expr.B_col 2) in
  let join kind = Operators.join ~stats:(stats ()) kind (Some cond) left right schema in
  Alcotest.check relation_testable "inner"
    (rel [ "id"; "v"; "id"; "w" ]
       [ [ vi 2; vs "b"; vi 2; vs "x" ]; [ vi 3; vs "c"; vi 3; vs "y" ] ])
    (join Logical.Inner);
  Alcotest.check relation_testable "left outer"
    (rel [ "id"; "v"; "id"; "w" ]
       [
         [ vi 1; vs "a"; vnull; vnull ];
         [ vi 2; vs "b"; vi 2; vs "x" ];
         [ vi 3; vs "c"; vi 3; vs "y" ];
       ])
    (join Logical.Left_outer);
  Alcotest.check relation_testable "right outer"
    (rel [ "id"; "v"; "id"; "w" ]
       [
         [ vi 2; vs "b"; vi 2; vs "x" ];
         [ vi 3; vs "c"; vi 3; vs "y" ];
         [ vnull; vnull; vi 4; vs "z" ];
       ])
    (join Logical.Right_outer);
  Alcotest.check relation_testable "full outer"
    (rel [ "id"; "v"; "id"; "w" ]
       [
         [ vi 1; vs "a"; vnull; vnull ];
         [ vi 2; vs "b"; vi 2; vs "x" ];
         [ vi 3; vs "c"; vi 3; vs "y" ];
         [ vnull; vnull; vi 4; vs "z" ];
       ])
    (join Logical.Full_outer);
  Alcotest.(check int) "cross product size" 9
    (Relation.cardinality
       (Operators.join ~stats:(stats ()) Logical.Cross None left right schema))

let test_join_null_keys_never_match () =
  let left = rel [ "k" ] [ [ vnull ]; [ vi 1 ] ] in
  let right = rel [ "k" ] [ [ vnull ]; [ vi 1 ] ] in
  let schema = Schema.of_names [ "k"; "k" ] in
  let cond = Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col 0, Bound_expr.B_col 1) in
  Alcotest.check relation_testable "only non-null matches"
    (rel [ "k"; "k" ] [ [ vi 1; vi 1 ] ])
    (Operators.join ~stats:(stats ()) Logical.Inner (Some cond) left right schema);
  Alcotest.check relation_testable "left outer pads null keys"
    (rel [ "k"; "k" ] [ [ vnull; vnull ]; [ vi 1; vi 1 ] ])
    (Operators.join ~stats:(stats ()) Logical.Left_outer (Some cond) left right
       schema)

let test_join_residual_condition () =
  (* Equi key plus non-equi residual: hash path with filtering. *)
  let left = rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 1; vi 30 ] ] in
  let right = rel [ "k"; "lim" ] [ [ vi 1; vi 20 ] ] in
  let schema = Schema.of_names [ "k"; "v"; "k"; "lim" ] in
  let cond =
    Bound_expr.B_binop
      ( Ast.And,
        Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col 0, Bound_expr.B_col 2),
        Bound_expr.B_binop (Ast.Lt, Bound_expr.B_col 1, Bound_expr.B_col 3) )
  in
  Alcotest.check relation_testable "residual filters"
    (rel [ "k"; "v"; "k"; "lim" ] [ [ vi 1; vi 10; vi 1; vi 20 ] ])
    (Operators.join ~stats:(stats ()) Logical.Inner (Some cond) left right schema)

let test_nested_loop_non_equi () =
  let left = rel [ "a" ] [ [ vi 1 ]; [ vi 5 ] ] in
  let right = rel [ "b" ] [ [ vi 3 ] ] in
  let schema = Schema.of_names [ "a"; "b" ] in
  let cond = Bound_expr.B_binop (Ast.Lt, Bound_expr.B_col 0, Bound_expr.B_col 1) in
  Alcotest.check relation_testable "non-equi inner"
    (rel [ "a"; "b" ] [ [ vi 1; vi 3 ] ])
    (Operators.join ~stats:(stats ()) Logical.Inner (Some cond) left right schema);
  Alcotest.check relation_testable "non-equi left outer"
    (rel [ "a"; "b" ] [ [ vi 1; vi 3 ]; [ vi 5; vnull ] ])
    (Operators.join ~stats:(stats ()) Logical.Left_outer (Some cond) left right
       schema)

let test_aggregate_kinds () =
  let input =
    rel [ "g"; "v" ]
      [
        [ vi 1; vi 10 ];
        [ vi 1; vi 20 ];
        [ vi 1; vnull ];
        [ vi 2; vi 5 ];
      ]
  in
  let keys = [ Bound_expr.B_col 0 ] in
  let agg kind arg =
    { Logical.agg_kind = kind; agg_distinct = false; agg_arg = arg }
  in
  let schema = Schema.of_names [ "g"; "cnt"; "cnt_star"; "sum"; "avg"; "mn"; "mx" ] in
  let out =
    Operators.aggregate ~stats:(stats ()) ~keys
      ~aggs:
        [
          agg Ast.Count (Bound_expr.B_col 1);
          agg Ast.Count_star (Bound_expr.B_lit vnull);
          agg Ast.Sum (Bound_expr.B_col 1);
          agg Ast.Avg (Bound_expr.B_col 1);
          agg Ast.Min (Bound_expr.B_col 1);
          agg Ast.Max (Bound_expr.B_col 1);
        ]
      input schema
  in
  Alcotest.check relation_testable "grouped aggregates"
    (rel
       [ "g"; "cnt"; "cnt_star"; "sum"; "avg"; "mn"; "mx" ]
       [
         [ vi 1; vi 2; vi 3; vi 30; vf 15.0; vi 10; vi 20 ];
         [ vi 2; vi 1; vi 1; vi 5; vf 5.0; vi 5; vi 5 ];
       ])
    out

let test_aggregate_empty_input () =
  let empty = rel [ "v" ] [] in
  let agg kind =
    { Logical.agg_kind = kind; agg_distinct = false; agg_arg = Bound_expr.B_col 0 }
  in
  let out =
    Operators.aggregate ~stats:(stats ()) ~keys:[]
      ~aggs:[ agg Ast.Count; agg Ast.Sum; agg Ast.Min ]
      empty
      (Schema.of_names [ "cnt"; "sum"; "mn" ])
  in
  Alcotest.check relation_testable "global aggregate defaults"
    (rel [ "cnt"; "sum"; "mn" ] [ [ vi 0; vnull; vnull ] ])
    out;
  (* Grouped aggregate over empty input: no groups, no rows. *)
  let grouped =
    Operators.aggregate ~stats:(stats ()) ~keys:[ Bound_expr.B_col 0 ]
      ~aggs:[ agg Ast.Count ] empty
      (Schema.of_names [ "g"; "cnt" ])
  in
  Alcotest.(check int) "no groups" 0 (Relation.cardinality grouped)

let test_aggregate_distinct () =
  let input = rel [ "v" ] [ [ vi 1 ]; [ vi 1 ]; [ vi 2 ]; [ vnull ] ] in
  let out =
    Operators.aggregate ~stats:(stats ()) ~keys:[]
      ~aggs:
        [
          {
            Logical.agg_kind = Ast.Count;
            agg_distinct = true;
            agg_arg = Bound_expr.B_col 0;
          };
          {
            Logical.agg_kind = Ast.Sum;
            agg_distinct = true;
            agg_arg = Bound_expr.B_col 0;
          };
        ]
      input
      (Schema.of_names [ "cnt"; "sum" ])
  in
  Alcotest.check relation_testable "distinct aggregates"
    (rel [ "cnt"; "sum" ] [ [ vi 2; vi 3 ] ])
    out

let test_sort_limit_distinct () =
  let input = rel [ "v" ] [ [ vi 3 ]; [ vi 1 ]; [ vnull ]; [ vi 2 ]; [ vi 1 ] ] in
  let sorted =
    Operators.sort ~stats:(stats ()) [ (Bound_expr.B_col 0, false) ] input
  in
  Alcotest.(check (list (list value_testable)))
    "nulls first ascending"
    [ [ vnull ]; [ vi 1 ]; [ vi 1 ]; [ vi 2 ]; [ vi 3 ] ]
    (List.map Array.to_list (Array.to_list (Relation.rows sorted)));
  let top2 = Operators.limit ~stats:(stats ()) 2 sorted in
  Alcotest.(check int) "limit" 2 (Relation.cardinality top2);
  let distinct = Operators.distinct ~stats:(stats ()) input in
  Alcotest.(check int) "distinct" 4 (Relation.cardinality distinct)

(* ------------------------------------------------------------------ *)
(* Programs: loop, rename, terminations                                *)

(** Build a program that iterates [counter <- counter + 1] starting at
    0 with the given termination, returning the final value. *)
let counter_program termination =
  let schema = Schema.of_names [ "k"; "n" ] in
  let base =
    Logical.values (rel [ "k"; "n" ] [ [ vi 1; vi 0 ] ])
  in
  let step =
    Logical.project
      [ (Bound_expr.B_col 0, "k");
        (Bound_expr.B_binop (Ast.Add, Bound_expr.B_col 1, Bound_expr.B_lit (vi 1)), "n");
      ]
      (Logical.scan ~name:"c" ~schema)
  in
  Program.make
    [
      Program.Materialize { target = "c"; plan = base };
      Program.Init_loop { loop_id = 0; termination; cte = "c"; key_idx = 0; guard = 1000 };
      Program.Snapshot { loop_id = 0 };
      Program.Materialize { target = "c#work"; plan = step };
      Program.Rename { from_ = "c#work"; into = "c" };
      Program.Loop_end { loop_id = 0; body_start = 2 };
      Program.Return (Logical.scan ~name:"c" ~schema);
    ]
    ~result_schema:schema

let run_counter termination =
  let catalog = Catalog.create () in
  let rel, stats = Executor.run_program_with_stats catalog (counter_program termination) in
  match (Relation.rows rel).(0) with
  | [| _; Value.Int n |] -> (n, stats)
  | _ -> Alcotest.fail "unexpected row"

let test_loop_metadata_iterations () =
  let n, stats = run_counter (Program.Max_iterations 7) in
  Alcotest.(check int) "seven increments" 7 n;
  Alcotest.(check int) "seven loop iterations" 7 stats.Stats.loop_iterations;
  Alcotest.(check int) "one rename per iteration" 7 stats.Stats.renames

let test_loop_metadata_updates () =
  (* Each iteration updates exactly one row, so 3 UPDATES = 3 rounds. *)
  let n, _ = run_counter (Program.Max_updates 3) in
  Alcotest.(check int) "three updates" 3 n

let test_loop_data_any () =
  let pred = Bound_expr.B_binop (Ast.Ge, Bound_expr.B_col 1, Bound_expr.B_lit (vi 5)) in
  let n, _ = run_counter (Program.Data { any = true; pred }) in
  Alcotest.(check int) "stops when any n >= 5" 5 n

let test_loop_data_all () =
  let pred = Bound_expr.B_binop (Ast.Ge, Bound_expr.B_col 1, Bound_expr.B_lit (vi 4)) in
  let n, _ = run_counter (Program.Data { any = false; pred }) in
  Alcotest.(check int) "stops when all n >= 4" 4 n

let test_loop_delta_termination () =
  (* A step that stops changing after n reaches 3: delta drops to 0. *)
  let schema = Schema.of_names [ "k"; "n" ] in
  let base = Logical.values (rel [ "k"; "n" ] [ [ vi 1; vi 0 ] ]) in
  let step =
    Logical.project
      [
        (Bound_expr.B_col 0, "k");
        ( Bound_expr.B_func
            ( Bound_expr.F_least,
              [
                Bound_expr.B_binop (Ast.Add, Bound_expr.B_col 1, Bound_expr.B_lit (vi 1));
                Bound_expr.B_lit (vi 3);
              ] ),
          "n" );
      ]
      (Logical.scan ~name:"c" ~schema)
  in
  let program =
    Program.make
      [
        Program.Materialize { target = "c"; plan = base };
        Program.Init_loop
          { loop_id = 0; termination = Program.Delta_at_most 0; cte = "c"; key_idx = 0; guard = 1000 };
        Program.Snapshot { loop_id = 0 };
        Program.Materialize { target = "c#work"; plan = step };
        Program.Rename { from_ = "c#work"; into = "c" };
        Program.Loop_end { loop_id = 0; body_start = 2 };
        Program.Return (Logical.scan ~name:"c" ~schema);
      ]
      ~result_schema:schema
  in
  let catalog = Catalog.create () in
  let rel, stats = Executor.run_program_with_stats catalog program in
  (match (Relation.rows rel).(0) with
  | [| _; Value.Int n |] -> Alcotest.(check int) "converged to 3" 3 n
  | _ -> Alcotest.fail "unexpected row");
  (* 3 changing iterations + 1 confirming iteration. *)
  Alcotest.(check int) "four iterations" 4 stats.Stats.loop_iterations

(* First-iteration semantics: when a loop body runs without a
   [Snapshot] step, [loop_continue] has no previous version to diff
   against and counts the full CTE cardinality as that iteration's
   delta / update count. These tests pin that contract for the
   update-counting terminations (see the comment on
   [Executor.loop_continue]). *)

(** A 3-row CTE iterated by an identity step, with no [Snapshot] in
    the loop body. *)
let no_snapshot_program ?(guard = 10) termination =
  let schema = Schema.of_names [ "k"; "v" ] in
  let base =
    Logical.values
      (rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 2; vi 20 ]; [ vi 3; vi 30 ] ])
  in
  let step =
    Logical.project
      [ (Bound_expr.B_col 0, "k"); (Bound_expr.B_col 1, "v") ]
      (Logical.scan ~name:"c" ~schema)
  in
  Program.make
    [
      Program.Materialize { target = "c"; plan = base };
      Program.Init_loop { loop_id = 0; termination; cte = "c"; key_idx = 0; guard };
      Program.Materialize { target = "c#work"; plan = step };
      Program.Rename { from_ = "c#work"; into = "c" };
      Program.Loop_end { loop_id = 0; body_start = 2 };
      Program.Return (Logical.scan ~name:"c" ~schema);
    ]
    ~result_schema:schema

let test_first_iteration_max_updates () =
  (* Every iteration contributes the full cardinality (3): UPDATES 3
     is reached after one pass, UPDATES 7 after ceil(7/3) = 3. *)
  let _, stats =
    Executor.run_program_with_stats (Catalog.create ())
      (no_snapshot_program (Program.Max_updates 3))
  in
  Alcotest.(check int) "3 updates in one pass" 1 stats.Stats.loop_iterations;
  let _, stats =
    Executor.run_program_with_stats (Catalog.create ())
      (no_snapshot_program (Program.Max_updates 7))
  in
  Alcotest.(check int) "7 updates need three passes" 3
    stats.Stats.loop_iterations

let test_first_iteration_delta_at_most () =
  (* DELTA <= 3 holds immediately (first delta = cardinality = 3)... *)
  let _, stats =
    Executor.run_program_with_stats (Catalog.create ())
      (no_snapshot_program (Program.Delta_at_most 3))
  in
  Alcotest.(check int) "delta <= card stops at once" 1
    stats.Stats.loop_iterations;
  (* ...but DELTA = 0 can never hold without a snapshot on a nonempty
     CTE, so the guard must trip rather than terminating spuriously. *)
  match
    Executor.run_program (Catalog.create ())
      (no_snapshot_program ~guard:5 (Program.Delta_at_most 0))
  with
  | exception Executor.Execution_error m ->
    Alcotest.(check bool) "guard trips" true (contains m "guard")
  | _ -> Alcotest.fail "expected guard error"

let test_first_iteration_with_snapshot_converged () =
  (* Contrast: with a [Snapshot] the identity step yields delta 0 and
     DELTA = 0 terminates after the first, confirming iteration. *)
  let schema = Schema.of_names [ "k"; "v" ] in
  let base = Logical.values (rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 2; vi 20 ] ]) in
  let step =
    Logical.project
      [ (Bound_expr.B_col 0, "k"); (Bound_expr.B_col 1, "v") ]
      (Logical.scan ~name:"c" ~schema)
  in
  let program =
    Program.make
      [
        Program.Materialize { target = "c"; plan = base };
        Program.Init_loop
          { loop_id = 0; termination = Program.Delta_at_most 0; cte = "c"; key_idx = 0; guard = 10 };
        Program.Snapshot { loop_id = 0 };
        Program.Materialize { target = "c#work"; plan = step };
        Program.Rename { from_ = "c#work"; into = "c" };
        Program.Loop_end { loop_id = 0; body_start = 2 };
        Program.Return (Logical.scan ~name:"c" ~schema);
      ]
      ~result_schema:schema
  in
  let _, stats = Executor.run_program_with_stats (Catalog.create ()) program in
  Alcotest.(check int) "one confirming iteration" 1 stats.Stats.loop_iterations

let test_loop_guard () =
  (* A Data condition that never holds trips the guard. *)
  let pred = Bound_expr.B_binop (Ast.Lt, Bound_expr.B_col 1, Bound_expr.B_lit (vi 0)) in
  let schema = Schema.of_names [ "k"; "n" ] in
  let program =
    Program.make
      [
        Program.Materialize
          { target = "c"; plan = Logical.values (rel [ "k"; "n" ] [ [ vi 1; vi 0 ] ]) };
        Program.Init_loop
          {
            loop_id = 0;
            termination = Program.Data { any = true; pred };
            cte = "c";
            key_idx = 0;
            guard = 10;
          };
        Program.Snapshot { loop_id = 0 };
        Program.Materialize
          {
            target = "c#work";
            plan =
              Logical.project
                [ (Bound_expr.B_col 0, "k"); (Bound_expr.B_col 1, "n") ]
                (Logical.scan ~name:"c" ~schema);
          };
        Program.Rename { from_ = "c#work"; into = "c" };
        Program.Loop_end { loop_id = 0; body_start = 2 };
        Program.Return (Logical.scan ~name:"c" ~schema);
      ]
      ~result_schema:schema
  in
  match Executor.run_program (Catalog.create ()) program with
  | exception Executor.Execution_error m ->
    Alcotest.(check bool) "mentions guard" true (contains m "guard")
  | _ -> Alcotest.fail "expected guard error"

let test_assert_unique_key () =
  let catalog = Catalog.create () in
  Catalog.set_temp catalog "w" (rel [ "k" ] [ [ vi 1 ]; [ vi 1 ] ]);
  (match Executor.assert_unique_key catalog ~temp:"w" ~key_idx:0 with
  | exception Executor.Execution_error m ->
    Alcotest.(check bool) "duplicate detected" true (contains m "duplicate")
  | () -> Alcotest.fail "expected duplicate-key error");
  Catalog.set_temp catalog "w2" (rel [ "k" ] [ [ vnull ] ]);
  (match Executor.assert_unique_key catalog ~temp:"w2" ~key_idx:0 with
  | exception Executor.Execution_error m ->
    Alcotest.(check bool) "null key detected" true (contains m "null")
  | () -> Alcotest.fail "expected null-key error");
  Catalog.set_temp catalog "w3" (rel [ "k" ] [ [ vi 1 ]; [ vi 2 ] ]);
  Executor.assert_unique_key catalog ~temp:"w3" ~key_idx:0

let test_recursive_cte_program () =
  (* Transitive closure of 1 -> 2 -> 3 -> 4 from node 1. *)
  let catalog = Catalog.create () in
  let edges_schema = Schema.of_names [ "src"; "dst" ] in
  let tbl = Dbspinner_storage.Table.create ~name:"e" edges_schema in
  Dbspinner_storage.Table.insert_all tbl
    [ [| vi 1; vi 2 |]; [| vi 2; vi 3 |]; [| vi 3; vi 4 |] ];
  let catalog_tbl = Catalog.create_table catalog ~name:"unused" (Schema.of_names [ "x" ]) in
  ignore catalog_tbl;
  Catalog.set_temp catalog "e" (Dbspinner_storage.Table.to_relation tbl);
  let schema = Schema.of_names [ "n" ] in
  let base = Logical.values (rel [ "n" ] [ [ vi 1 ] ]) in
  (* step: SELECT e.dst FROM work JOIN e ON work.n = e.src *)
  let step =
    Logical.project
      [ (Bound_expr.B_col 2, "n") ]
      (Logical.join Logical.Inner
         ~cond:(Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col 0, Bound_expr.B_col 1))
         (Logical.scan ~name:"reach#w" ~schema)
         (Logical.scan ~name:"e" ~schema:edges_schema))
  in
  let program =
    Program.make
      [
        Program.Recursive_cte
          {
            name = "reach";
            work_name = "reach#w";
            base;
            step_plan = step;
            union_all = false;
            max_recursion = 100;
          };
        Program.Return (Logical.scan ~name:"reach" ~schema);
      ]
      ~result_schema:schema
  in
  let result = Executor.run_program catalog program in
  Alcotest.check relation_testable "closure"
    (rel [ "n" ] [ [ vi 1 ]; [ vi 2 ]; [ vi 3 ]; [ vi 4 ] ])
    result

let test_recursive_cycle_terminates () =
  (* UNION-distinct semantics reach a fixed point even on a cycle. *)
  let catalog = Catalog.create () in
  let edges_schema = Schema.of_names [ "src"; "dst" ] in
  Catalog.set_temp catalog "e"
    (rel [ "src"; "dst" ] [ [ vi 1; vi 2 ]; [ vi 2; vi 1 ] ]);
  let schema = Schema.of_names [ "n" ] in
  let step =
    Logical.project
      [ (Bound_expr.B_col 2, "n") ]
      (Logical.join Logical.Inner
         ~cond:(Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col 0, Bound_expr.B_col 1))
         (Logical.scan ~name:"r#w" ~schema)
         (Logical.scan ~name:"e" ~schema:edges_schema))
  in
  let program =
    Program.make
      [
        Program.Recursive_cte
          {
            name = "r";
            work_name = "r#w";
            base = Logical.values (rel [ "n" ] [ [ vi 1 ] ]);
            step_plan = step;
            union_all = false;
            max_recursion = 100;
          };
        Program.Return (Logical.scan ~name:"r" ~schema);
      ]
      ~result_schema:schema
  in
  Alcotest.check relation_testable "cycle closure"
    (rel [ "n" ] [ [ vi 1 ]; [ vi 2 ] ])
    (Executor.run_program catalog program)

let test_missing_return () =
  let program = Program.make [] ~result_schema:(Schema.of_names []) in
  match Executor.run_program (Catalog.create ()) program with
  | exception Executor.Execution_error _ -> ()
  | _ -> Alcotest.fail "expected error for program without Return"

let () =
  Alcotest.run "exec"
    [
      ( "eval",
        [
          Alcotest.test_case "three-valued-logic" `Quick test_three_valued_logic;
          Alcotest.test_case "in-semantics" `Quick test_in_semantics;
          Alcotest.test_case "between-like" `Quick test_between_and_like;
          Alcotest.test_case "scalar-functions" `Quick test_scalar_functions;
          Alcotest.test_case "cast-case" `Quick test_cast_and_case;
          Alcotest.test_case "null-propagation" `Quick
            test_arithmetic_null_propagation;
          Alcotest.test_case "predicates" `Quick test_eval_pred;
        ] );
      ( "operators",
        [
          Alcotest.test_case "join-kinds" `Quick test_joins_all_kinds;
          Alcotest.test_case "join-null-keys" `Quick test_join_null_keys_never_match;
          Alcotest.test_case "join-residual" `Quick test_join_residual_condition;
          Alcotest.test_case "non-equi-join" `Quick test_nested_loop_non_equi;
          Alcotest.test_case "aggregate-kinds" `Quick test_aggregate_kinds;
          Alcotest.test_case "aggregate-empty" `Quick test_aggregate_empty_input;
          Alcotest.test_case "aggregate-distinct" `Quick test_aggregate_distinct;
          Alcotest.test_case "sort-limit-distinct" `Quick test_sort_limit_distinct;
        ] );
      ( "programs",
        [
          Alcotest.test_case "metadata-iterations" `Quick
            test_loop_metadata_iterations;
          Alcotest.test_case "metadata-updates" `Quick test_loop_metadata_updates;
          Alcotest.test_case "data-any" `Quick test_loop_data_any;
          Alcotest.test_case "data-all" `Quick test_loop_data_all;
          Alcotest.test_case "delta" `Quick test_loop_delta_termination;
          Alcotest.test_case "first-iteration-max-updates" `Quick
            test_first_iteration_max_updates;
          Alcotest.test_case "first-iteration-delta" `Quick
            test_first_iteration_delta_at_most;
          Alcotest.test_case "first-iteration-snapshot-converged" `Quick
            test_first_iteration_with_snapshot_converged;
          Alcotest.test_case "guard" `Quick test_loop_guard;
          Alcotest.test_case "unique-key-check" `Quick test_assert_unique_key;
          Alcotest.test_case "recursive-cte" `Quick test_recursive_cte_program;
          Alcotest.test_case "recursive-cycle" `Quick test_recursive_cycle_terminates;
          Alcotest.test_case "missing-return" `Quick test_missing_return;
        ] );
    ]

(** Cross-module integration tests: multi-CTE queries, recursive +
    iterative mixes, the Table-I plan snapshot, CSV-loaded workloads,
    distributed execution of real query plans, and failure injection
    (errors mid-script leave the engine usable). *)

module Value = Dbspinner_storage.Value
module Schema = Dbspinner_storage.Schema
module Relation = Dbspinner_storage.Relation
module Catalog = Dbspinner_storage.Catalog
module Csv = Dbspinner_storage.Csv
module Column_type = Dbspinner_storage.Column_type
module Parser = Dbspinner_sql.Parser
module Options = Dbspinner_rewrite.Options
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Explain = Dbspinner_plan.Explain
module Graph_gen = Dbspinner_graph.Graph_gen
module Queries = Dbspinner_workload.Queries
module Loader = Dbspinner_workload.Loader
module Distributed = Dbspinner_mpp.Distributed
module Engine = Dbspinner.Engine
open Helpers

(* ------------------------------------------------------------------ *)
(* Multi-CTE and mixed queries                                         *)

let test_multiple_ctes_chain () =
  let e = tiny_graph_engine () in
  (* A plain CTE feeding an iterative CTE feeding the final query. *)
  check_query e
    {|WITH sources AS (SELECT DISTINCT src AS node FROM edges),
          ITERATIVE grow (node, gen) AS (
            SELECT node, 0 FROM sources
            ITERATE SELECT node, gen + 1 FROM grow
            UNTIL 3 ITERATIONS)
      SELECT COUNT(*) AS n, MAX(gen) AS g FROM grow|}
    [ "n"; "g" ]
    [ [ vi 4; vi 3 ] ]

let test_two_iterative_ctes () =
  let e = Engine.create () in
  check_query e
    {|WITH ITERATIVE a (k, x) AS (SELECT 1, 0 ITERATE SELECT k, x + 1 FROM a UNTIL 3 ITERATIONS),
          ITERATIVE b (k, y) AS (SELECT 1, 100 ITERATE SELECT k, y - 1 FROM b UNTIL 5 ITERATIONS)
      SELECT a.x, b.y FROM a JOIN b ON a.k = b.k|}
    [ "x"; "y" ]
    [ [ vi 3; vi 95 ] ]

let test_iterative_cte_reads_plain_cte () =
  (* The iterative body joins against an earlier CTE every round. *)
  let e = tiny_graph_engine () in
  check_query e
    {|WITH step_size AS (SELECT COUNT(*) AS n FROM edges),
          ITERATIVE c (k, total) AS (
            SELECT 1, 0
            ITERATE SELECT c.k, c.total + step_size.n FROM c JOIN step_size ON 1 = 1
            UNTIL 4 ITERATIONS)
      SELECT total FROM c|}
    [ "total" ]
    [ [ vi 20 ] ]

let test_recursive_then_iterative () =
  let e = tiny_graph_engine () in
  (* Recursive reachability from node 4 feeds an iterative counter. *)
  check_query e
    {|WITH RECURSIVE reach (n) AS (SELECT 4 UNION SELECT e.dst FROM reach JOIN edges AS e ON reach.n = e.src),
          ITERATIVE sized (k, c) AS (
            SELECT 1, 0
            ITERATE SELECT sized.k, r.cnt FROM sized JOIN (SELECT COUNT(*) AS cnt FROM reach) AS r ON 1 = 1
            UNTIL 1 ITERATIONS)
      SELECT c FROM sized|}
    [ "c" ]
    [ [ vi 4 ] ]

let test_recursive_union_all_paths () =
  (* UNION ALL recursive CTE counts paths, not just reachable nodes:
     1->3 directly and via 2, bounded by depth. *)
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE g (src INT, dst INT)");
  ignore (Engine.execute e "INSERT INTO g VALUES (1, 2), (2, 3), (1, 3)");
  check_query e
    {|WITH RECURSIVE p (node, depth) AS (
        SELECT 1, 0
        UNION ALL
        SELECT g.dst, p.depth + 1 FROM p JOIN g ON p.node = g.src WHERE p.depth < 3)
      SELECT node, COUNT(*) AS paths FROM p GROUP BY node ORDER BY node|}
    [ "node"; "paths" ]
    [ [ vi 1; vi 1 ]; [ vi 2; vi 1 ]; [ vi 3; vi 2 ] ]

(* ------------------------------------------------------------------ *)
(* Table I snapshot                                                    *)

let test_table1_snapshot () =
  (* The compiled PR program rendered as EXPLAIN must follow the exact
     step skeleton of the paper's Table I. *)
  let e = tiny_graph_engine () in
  let text = Engine.explain e (Queries.pr ~iterations:10 ()) in
  let expected_order =
    [
      "Materialize PageRank";  (* step 1: materialize R0 *)
      "InitLoop";              (* step 2: initialize counter *)
      "Snapshot";
      "Materialize PageRank#work";  (* step 3: iterate *)
      "AssertUniqueKey";
      "Rename PageRank#work -> PageRank";  (* step 4: rename *)
      "LoopEnd";               (* steps 5-6: counter, conditional jump *)
      "Return";
    ]
  in
  let rec check_order pos = function
    | [] -> ()
    | needle :: rest -> (
      match find_substring (String.sub text pos (String.length text - pos)) needle with
      | Some i -> check_order (pos + i + String.length needle) rest
      | None -> Alcotest.failf "EXPLAIN missing %S after position %d" needle pos)
  in
  check_order 0 expected_order

(* ------------------------------------------------------------------ *)
(* CSV-loaded end-to-end                                               *)

let test_csv_to_query_pipeline () =
  (* Save a generated graph to CSV, load it into a fresh engine via
     Csv.load, and run PR — results must match the directly-loaded
     engine. *)
  let g = Graph_gen.uniform ~seed:21 ~num_nodes:40 ~num_edges:120 in
  let direct = Loader.engine_for ~with_vertex_status:false g in
  let q = Queries.pr ~iterations:5 ~final:"SELECT Node, Rank FROM PageRank" () in
  let expected = Engine.query direct q in
  let path = Filename.temp_file "dbspinner_edges" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save (Graph_gen.edges_relation g) path;
      let loaded = Csv.load ~schema:Graph_gen.edges_schema path in
      let e2 = Engine.create () in
      Engine.load_table e2 ~name:"edges" loaded;
      Alcotest.check relation_testable "CSV round-trip preserves PR" expected
        (Engine.query e2 q))

(* ------------------------------------------------------------------ *)
(* Distributed execution of real plans                                 *)

let test_distributed_pr_iteration_body () =
  (* Run the PR iterative-part plan both single-node and distributed;
     results must agree and shuffles must be reported. *)
  let g = Graph_gen.power_law ~seed:31 ~num_nodes:80 ~edges_per_node:3 in
  let e = Loader.engine_for g in
  let q = Parser.parse_query (Queries.pr ~iterations:2 ()) in
  let program =
    Iterative_rewrite.compile ~options:Options.default
      ~lookup:(fun name ->
        match Catalog.find_table_opt (Engine.catalog e) name with
        | Some t -> Some (Dbspinner_storage.Table.schema t)
        | None -> None)
      q
  in
  (* Fish the working-table plan out of the compiled program. *)
  let step_plan =
    Array.find_map
      (function
        | Dbspinner_plan.Program.Materialize { target; plan }
          when contains target "#work" ->
          Some plan
        | Dbspinner_plan.Program.Delta_materialize { target; full_plan; _ }
          when contains target "#work" ->
          Some full_plan
        | _ -> None)
      (Dbspinner_plan.Program.steps program)
    |> Option.get
  in
  (* Materialize the base CTE table first so the step plan can scan it. *)
  let base_plan =
    match (Dbspinner_plan.Program.steps program).(0) with
    | Dbspinner_plan.Program.Materialize { plan; _ } -> plan
    | _ -> Alcotest.fail "first step should materialize the base"
  in
  let stats = Dbspinner_exec.Stats.create () in
  let catalog = Engine.catalog e in
  Catalog.set_temp catalog "PageRank"
    (Dbspinner_exec.Executor.run_plan ~stats catalog base_plan);
  let single = Dbspinner_exec.Executor.run_plan ~stats catalog step_plan in
  let dist, shuffles = Distributed.run_plan ~workers:4 catalog step_plan in
  Catalog.clear_temps catalog;
  (* Distributed SUMs add floats in a different order, so compare with
     a numeric tolerance rather than exact bag equality. *)
  let close a b =
    Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)
  in
  let approx_equal a b =
    Relation.cardinality a = Relation.cardinality b
    &&
    let sa = Relation.sorted a and sb = Relation.sorted b in
    Array.for_all2
      (fun (ra : Dbspinner_storage.Row.t) rb ->
        Array.for_all2
          (fun va vb ->
            match (va : Value.t), (vb : Value.t) with
            | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
              close (Value.to_float va) (Value.to_float vb)
            | _ -> Value.equal va vb)
          ra rb)
      (Relation.rows sa) (Relation.rows sb)
  in
  Alcotest.(check bool) "distributed = single node (approx)" true
    (approx_equal single dist);
  Alcotest.(check bool) "join repartitioning happened" true
    (shuffles.Distributed.exchanges > 0)

let test_distributed_program_matches_single_node () =
  (* The whole PR step program executed distributed: gathered result
     must match single-node execution (approximately: float summation
     order differs), and the common-result rewrite must reduce the
     exchange volume — the MPP version of the paper's §V-A argument. *)
  let g = Graph_gen.power_law ~seed:41 ~num_nodes:70 ~edges_per_node:3 in
  let e = Loader.engine_for g in
  let compile options =
    Iterative_rewrite.compile ~options
      ~lookup:(fun name ->
        Option.map Dbspinner_storage.Table.schema
          (Catalog.find_table_opt (Engine.catalog e) name))
      (Parser.parse_query (Queries.pr_vs ~iterations:4 ()))
  in
  let single =
    Dbspinner_exec.Executor.run_program (Engine.catalog e)
      (compile Options.default)
  in
  Catalog.clear_temps (Engine.catalog e);
  let dist, with_common =
    Distributed.run_program ~workers:4 (Engine.catalog e)
      (compile Options.default)
  in
  let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b) in
  let approx_equal a b =
    Relation.cardinality a = Relation.cardinality b
    &&
    let sa = Relation.sorted a and sb = Relation.sorted b in
    Array.for_all2
      (fun (ra : Dbspinner_storage.Row.t) rb ->
        Array.for_all2
          (fun va vb ->
            match (va : Value.t), (vb : Value.t) with
            | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
              close (Value.to_float va) (Value.to_float vb)
            | _ -> Value.equal va vb)
          ra rb)
      (Relation.rows sa) (Relation.rows sb)
  in
  Alcotest.(check bool) "distributed program = single node" true
    (approx_equal single dist);
  let _, without_common =
    Distributed.run_program ~workers:4 (Engine.catalog e)
      (compile { Options.default with use_common_result = false })
  in
  Alcotest.(check bool)
    (Printf.sprintf "common result cuts shuffles (%d vs %d rows)"
       with_common.Distributed.rows_shuffled
       without_common.Distributed.rows_shuffled)
    true
    (with_common.Distributed.rows_shuffled
    < without_common.Distributed.rows_shuffled)

let test_preaggregation_cuts_shuffle_volume () =
  (* 4000 rows in 10 groups: local pre-aggregation means at most
     workers * groups partial rows cross the network instead of the
     raw rows. *)
  let rows =
    Array.init 4000 (fun i ->
        [| Value.Int (i mod 10); Value.Int i |])
  in
  let catalog = Catalog.create () in
  Catalog.set_temp catalog "big"
    (Relation.make (Schema.of_names [ "g"; "v" ]) rows);
  let plan =
    Dbspinner_plan.Logical.aggregate
      ~keys:[ Dbspinner_plan.Bound_expr.B_col 0 ]
      ~key_names:[ "g" ]
      ~aggs:
        [
          {
            Dbspinner_plan.Logical.agg_kind = Dbspinner_sql.Ast.Sum;
            agg_distinct = false;
            agg_arg = Dbspinner_plan.Bound_expr.B_col 1;
          };
        ]
      ~agg_names:[ "s" ]
      (Dbspinner_plan.Logical.scan ~name:"big" ~schema:(Schema.of_names [ "g"; "v" ]))
  in
  let stats = Dbspinner_exec.Stats.create () in
  let single = Dbspinner_exec.Executor.run_plan ~stats catalog plan in
  let dist, shuffles = Distributed.run_plan ~workers:4 catalog plan in
  Alcotest.check relation_testable "pre-aggregated result correct" single dist;
  Alcotest.(check bool)
    (Printf.sprintf "shuffled %d rows, expected at most 40"
       shuffles.Distributed.rows_shuffled)
    true
    (shuffles.Distributed.rows_shuffled <= 4 * 10)

let test_distinct_aggregate_not_preaggregated () =
  (* COUNT(DISTINCT v) must not be combined from partials; results must
     still be correct (the executor falls back to raw repartition). *)
  let rows = Array.init 100 (fun i -> [| Value.Int (i mod 5); Value.Int (i mod 7) |]) in
  let catalog = Catalog.create () in
  Catalog.set_temp catalog "d" (Relation.make (Schema.of_names [ "g"; "v" ]) rows);
  let plan =
    Dbspinner_plan.Logical.aggregate
      ~keys:[ Dbspinner_plan.Bound_expr.B_col 0 ]
      ~key_names:[ "g" ]
      ~aggs:
        [
          {
            Dbspinner_plan.Logical.agg_kind = Dbspinner_sql.Ast.Count;
            agg_distinct = true;
            agg_arg = Dbspinner_plan.Bound_expr.B_col 1;
          };
        ]
      ~agg_names:[ "c" ]
      (Dbspinner_plan.Logical.scan ~name:"d" ~schema:(Schema.of_names [ "g"; "v" ]))
  in
  let stats = Dbspinner_exec.Stats.create () in
  let single = Dbspinner_exec.Executor.run_plan ~stats catalog plan in
  let dist, _ = Distributed.run_plan ~workers:3 catalog plan in
  Alcotest.check relation_testable "distinct aggregate correct" single dist

(* ------------------------------------------------------------------ *)
(* Paper fidelity: Figure 1 vs Figure 2                                *)

let test_figure1_script_equals_figure2_cte () =
  (* The paper's Figure 1 expresses PageRank as a hand-written
     multi-statement script (CREATE/INSERT/DELETE/UPDATE per
     iteration); Figure 2 is the same computation as one iterative
     CTE. Run both on the same graph and compare. *)
  let g = Graph_gen.power_law ~seed:51 ~num_nodes:50 ~edges_per_node:3 in
  let e = Loader.engine_for ~with_vertex_status:false g in
  let iterations = 3 in
  (* Figure 1, verbatim structure (the COALESCE mirrors the workload
     query so nodes without in-edges keep defined deltas). *)
  let setup =
    {|CREATE TABLE IntermediateTable (node INT, rank FLOAT, delta FLOAT);
      CREATE TABLE PageRankT (node INT, rank FLOAT, delta FLOAT);
      INSERT INTO PageRankT
        SELECT src, 0, 0.15
        FROM (SELECT src FROM edges UNION SELECT dst FROM edges)|}
  in
  let iteration =
    {|DELETE FROM IntermediateTable;
      INSERT INTO IntermediateTable
        SELECT PageRankT.node,
               PageRankT.rank + PageRankT.delta,
               COALESCE(0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight), 0)
        FROM PageRankT
          LEFT JOIN edges AS IncomingEdges
            ON PageRankT.node = IncomingEdges.dst
          LEFT JOIN PageRankT AS IncomingRank
            ON IncomingRank.node = IncomingEdges.src
        GROUP BY PageRankT.node, PageRankT.rank + PageRankT.delta;
      UPDATE PageRankT
         SET rank = IntermediateTable.rank,
             delta = IntermediateTable.delta
        FROM IntermediateTable
       WHERE PageRankT.node = IntermediateTable.node|}
  in
  ignore (Engine.execute_script e setup);
  for _ = 1 to iterations do
    ignore (Engine.execute_script e iteration)
  done;
  let figure1 =
    Engine.query e "SELECT node, rank FROM PageRankT ORDER BY node"
  in
  let figure2 =
    Engine.query e
      (Queries.pr ~iterations
         ~final:"SELECT Node, Rank FROM PageRank ORDER BY Node" ())
  in
  Alcotest.check relation_testable "Figure 1 script = Figure 2 CTE" figure2
    figure1

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)

let test_engine_survives_errors () =
  let e = tiny_graph_engine () in
  (* A failing query (division by zero at runtime) must not leave stale
     temps or corrupt the session. *)
  (match Engine.query e
           "WITH ITERATIVE r (k, v) AS (SELECT 1, 4 ITERATE SELECT k, v / (v \
            - v) FROM r UNTIL 3 ITERATIONS) SELECT * FROM r"
   with
  | exception Dbspinner.Errors.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected division by zero");
  Alcotest.(check (list string)) "no leaked temps" []
    (Catalog.temp_names (Engine.catalog e));
  (* The engine still answers queries. *)
  check_query e "SELECT COUNT(*) FROM edges" [ "count" ] [ [ vi 5 ] ]

let test_duplicate_key_error_message_guides_user () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE pairs (k INT, v INT)");
  ignore (Engine.execute e "INSERT INTO pairs VALUES (1, 10), (1, 20)");
  match
    Engine.query e
      "WITH ITERATIVE r (k, v) AS (SELECT 0, 0 ITERATE SELECT k, v FROM \
       pairs UNTIL 2 ITERATIONS) SELECT * FROM r"
  with
  | exception Dbspinner.Errors.Error (_, msg) ->
    Alcotest.(check bool) "suggests aggregation" true
      (contains msg "aggregation" || contains msg "GROUP BY")
  | _ -> Alcotest.fail "expected duplicate-key error"

(* ------------------------------------------------------------------ *)
(* Update-count termination across the merge path                      *)

let updates_expected () =
  rel [ "k"; "v" ] [ [ vi 1; vi 0 ]; [ vi 2; vi 2 ]; [ vi 3; vi 2 ] ]

let test_updates_termination_counts_changed_rows () =
  (* Working set shrinks: keys <= iteration stop changing. UNTIL n
     UPDATES terminates once the cumulative changed-row count hits n. *)
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE seed (k INT, v INT)");
  ignore (Engine.execute e "INSERT INTO seed VALUES (1, 0), (2, 0), (3, 0)");
  let rel =
    Engine.query e
      "WITH ITERATIVE r (k, v) AS (SELECT k, v FROM seed ITERATE SELECT k, v \
       + 1 FROM r WHERE k > 1 UNTIL 4 UPDATES) SELECT k, v FROM r"
  in
  (* Each iteration updates rows 2 and 3 (2 updates); cumulative counts
     2 then 4 -> exactly two iterations run. *)
  Alcotest.check relation_testable "two iterations of partial updates"
    (updates_expected ())
    rel

(* ------------------------------------------------------------------ *)
(* Ordering and limits after iteration                                 *)

let test_final_order_limit_over_iterative () =
  let e = tiny_graph_engine () in
  let rel =
    Engine.query e
      (Queries.pr ~iterations:5
         ~final:"SELECT Node, Rank FROM PageRank ORDER BY Rank DESC LIMIT 2" ())
  in
  Alcotest.(check int) "limited" 2 (Relation.cardinality rel);
  let rows = Relation.rows rel in
  Alcotest.(check bool) "descending" true
    (Value.compare rows.(0).(1) rows.(1).(1) >= 0)

let () =
  Alcotest.run "integration"
    [
      ( "multi-cte",
        [
          Alcotest.test_case "plain-feeds-iterative" `Quick test_multiple_ctes_chain;
          Alcotest.test_case "two-iterative" `Quick test_two_iterative_ctes;
          Alcotest.test_case "iterative-reads-plain" `Quick
            test_iterative_cte_reads_plain_cte;
          Alcotest.test_case "recursive-then-iterative" `Quick
            test_recursive_then_iterative;
          Alcotest.test_case "recursive-union-all" `Quick
            test_recursive_union_all_paths;
        ] );
      ("table1", [ Alcotest.test_case "snapshot" `Quick test_table1_snapshot ]);
      ( "paper-fidelity",
        [
          Alcotest.test_case "figure1-equals-figure2" `Quick
            test_figure1_script_equals_figure2_cte;
        ] );
      ("csv", [ Alcotest.test_case "pipeline" `Quick test_csv_to_query_pipeline ]);
      ( "distributed",
        [
          Alcotest.test_case "pr-iteration-body" `Quick
            test_distributed_pr_iteration_body;
          Alcotest.test_case "program-distributed" `Quick
            test_distributed_program_matches_single_node;
          Alcotest.test_case "pre-aggregation" `Quick
            test_preaggregation_cuts_shuffle_volume;
          Alcotest.test_case "distinct-no-preagg" `Quick
            test_distinct_aggregate_not_preaggregated;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "survives-errors" `Quick test_engine_survives_errors;
          Alcotest.test_case "duplicate-key-guidance" `Quick
            test_duplicate_key_error_message_guides_user;
        ] );
      ( "termination",
        [
          Alcotest.test_case "updates-counting" `Quick
            test_updates_termination_counts_changed_rows;
        ] );
      ( "final-part",
        [
          Alcotest.test_case "order-limit" `Quick
            test_final_order_limit_over_iterative;
        ] );
    ]

(** Engine-level tests: full SQL statements through parse → rewrite →
    plan → execute, DDL/DML, error surfacing, EXPLAIN, session
    statistics, and the baseline drivers (middleware, procedures). *)

module Relation = Dbspinner_storage.Relation
module Stats = Dbspinner_exec.Stats
module Options = Dbspinner_rewrite.Options
module Engine = Dbspinner.Engine
module Errors = Dbspinner.Errors
open Helpers

(* ------------------------------------------------------------------ *)
(* Basic SELECT features                                               *)

let test_select_basics () =
  let e = shop_engine () in
  check_query e "SELECT name FROM people WHERE age > 30 ORDER BY name"
    [ "name" ]
    [ [ vs "ada" ]; [ vs "cy" ] ];
  check_query e "SELECT COUNT(*) AS n, AVG(age) AS a FROM people"
    [ "n"; "a" ]
    [ [ vi 4; vf 34.5 ] ];
  check_query e "SELECT age, COUNT(*) FROM people GROUP BY age HAVING COUNT(*) > 1"
    [ "age"; "count" ]
    [ [ vi 25; vi 2 ] ];
  check_query e "SELECT DISTINCT age FROM people WHERE age = 25"
    [ "age" ]
    [ [ vi 25 ] ]

let test_select_joins () =
  let e = shop_engine () in
  check_query e
    "SELECT p.name, SUM(o.total) AS spent FROM people AS p JOIN orders AS o \
     ON p.id = o.person_id GROUP BY p.name ORDER BY spent DESC"
    [ "name"; "spent" ]
    [ [ vs "ada"; vf 12.5 ]; [ vs "bob"; vf 3.0 ] ];
  (* Left join keeps customers without orders. *)
  check_query e
    "SELECT p.name, COUNT(o.id) AS n FROM people AS p LEFT JOIN orders AS o \
     ON p.id = o.person_id GROUP BY p.name"
    [ "name"; "n" ]
    [
      [ vs "ada"; vi 2 ];
      [ vs "bob"; vi 1 ];
      [ vs "cy"; vi 0 ];
      [ vs "dee"; vi 0 ];
    ]

let test_subquery_and_union () =
  let e = shop_engine () in
  check_query e
    "SELECT big.name FROM (SELECT name, age FROM people WHERE age > 30) AS \
     big ORDER BY big.name"
    [ "name" ]
    [ [ vs "ada" ]; [ vs "cy" ] ];
  check_query e
    "SELECT age FROM people WHERE age < 30 UNION SELECT age FROM people \
     WHERE age > 50"
    [ "age" ]
    [ [ vi 25 ]; [ vi 52 ] ]

let test_set_operations () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE a (x INT)");
  ignore (Engine.execute e "INSERT INTO a VALUES (1), (1), (2), (3)");
  ignore (Engine.execute e "CREATE TABLE b (x INT)");
  ignore (Engine.execute e "INSERT INTO b VALUES (1), (3), (3), (4)");
  check_query e "SELECT x FROM a INTERSECT SELECT x FROM b"
    [ "x" ]
    [ [ vi 1 ]; [ vi 3 ] ];
  (* INTERSECT ALL takes minimum multiplicities: 1 appears min(2,1)=1
     time, 3 appears min(1,2)=1 time. *)
  check_query e "SELECT x FROM a INTERSECT ALL SELECT x FROM b"
    [ "x" ]
    [ [ vi 1 ]; [ vi 3 ] ];
  check_query e "SELECT x FROM a EXCEPT SELECT x FROM b" [ "x" ] [ [ vi 2 ] ];
  (* EXCEPT ALL subtracts multiplicities: one 1 survives (2-1). *)
  check_query e "SELECT x FROM a EXCEPT ALL SELECT x FROM b"
    [ "x" ]
    [ [ vi 1 ]; [ vi 2 ] ];
  (* INTERSECT binds tighter than EXCEPT (standard precedence):
     a EXCEPT (b INTERSECT b) = a EXCEPT b. *)
  check_query e "SELECT x FROM a EXCEPT SELECT x FROM b INTERSECT SELECT x FROM b"
    [ "x" ]
    [ [ vi 2 ] ];
  check_error ~substring:"columns" e
    "SELECT x FROM a INTERSECT SELECT x, x FROM b"

let test_subquery_predicates () =
  let e = shop_engine () in
  (* IN (subquery): customers with at least one order. *)
  check_query e
    "SELECT name FROM people WHERE id IN (SELECT person_id FROM orders) \
     ORDER BY name"
    [ "name" ]
    [ [ vs "ada" ]; [ vs "bob" ] ];
  (* NOT IN: customers with none. *)
  check_query e
    "SELECT name FROM people WHERE id NOT IN (SELECT person_id FROM orders) \
     ORDER BY name"
    [ "name" ]
    [ [ vs "cy" ]; [ vs "dee" ] ];
  (* EXISTS / NOT EXISTS (uncorrelated). *)
  check_query e
    "SELECT COUNT(*) FROM people WHERE EXISTS (SELECT id FROM orders WHERE \
     total > 100)"
    [ "count" ]
    [ [ vi 0 ] ];
  check_query e
    "SELECT COUNT(*) FROM people WHERE NOT EXISTS (SELECT id FROM orders \
     WHERE total > 100)"
    [ "count" ]
    [ [ vi 4 ] ];
  (* Null-aware NOT IN: a NULL in the subquery rejects every row. *)
  ignore (Engine.execute e "INSERT INTO orders VALUES (14, NULL, 2.0)");
  check_query e
    "SELECT COUNT(*) FROM people WHERE id NOT IN (SELECT person_id FROM orders)"
    [ "count" ]
    [ [ vi 0 ] ];
  (* ... while IN is unaffected by the NULL member. *)
  check_query e
    "SELECT COUNT(*) FROM people WHERE id IN (SELECT person_id FROM orders)"
    [ "count" ]
    [ [ vi 2 ] ];
  (* NOT IN over an empty subquery keeps everything. *)
  check_query e
    "SELECT COUNT(*) FROM people WHERE id NOT IN (SELECT person_id FROM \
     orders WHERE total > 100)"
    [ "count" ]
    [ [ vi 4 ] ];
  (* Subquery combined with ordinary conjuncts. *)
  check_query e
    "SELECT name FROM people WHERE age > 30 AND id IN (SELECT person_id \
     FROM orders)"
    [ "name" ]
    [ [ vs "ada" ] ];
  (* Errors: arity and non-top-level positions. *)
  check_error ~substring:"one column" e
    "SELECT name FROM people WHERE id IN (SELECT id, person_id FROM orders)";
  check_error ~substring:"top-level" e
    "SELECT name FROM people WHERE age > 30 OR id IN (SELECT person_id FROM \
     orders)"

let test_scalar_subqueries () =
  let e = shop_engine () in
  (* In SELECT items and in predicates. *)
  check_query e "SELECT (SELECT MAX(age) FROM people) AS oldest"
    [ "oldest" ]
    [ [ vi 52 ] ];
  check_query e
    "SELECT name FROM people WHERE age = (SELECT MAX(age) FROM people)"
    [ "name" ]
    [ [ vs "cy" ] ];
  (* Arithmetic around the subquery; empty subquery is NULL. *)
  check_query e
    "SELECT (SELECT MIN(age) FROM people) + 1 AS v, (SELECT age FROM people \
     WHERE age > 100) AS missing"
    [ "v"; "missing" ]
    [ [ vi 26; vnull ] ];
  (* Inside an iterative CTE: evaluated once, before the loop. *)
  check_query e
    "WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, n + (SELECT \
     COUNT(*) FROM orders) FROM c UNTIL 3 ITERATIONS) SELECT n FROM c"
    [ "n" ]
    [ [ vi 12 ] ];
  (* Errors: multiple rows, multiple columns, CTE references. *)
  check_error ~substring:"returned" e
    "SELECT (SELECT age FROM people) FROM people";
  check_error ~substring:"one column" e
    "SELECT (SELECT id, age FROM people WHERE age = 52)";
  check_error ~substring:"unknown table" e
    "WITH c AS (SELECT 1 AS x) SELECT (SELECT MAX(x) FROM c)";
  (* DML paths evaluate scalar subqueries too. *)
  ignore
    (Engine.execute e
       "UPDATE people SET age = (SELECT MAX(age) FROM people) WHERE name = 'bob'");
  check_query e "SELECT age FROM people WHERE name = 'bob'" [ "age" ]
    [ [ vi 52 ] ];
  (match
     Engine.execute e
       "DELETE FROM orders WHERE total < (SELECT AVG(total) FROM orders)"
   with
  | Engine.Affected n -> Alcotest.(check int) "deleted below average" 2 n
  | _ -> Alcotest.fail "expected Affected")

let test_limit_and_order () =
  let e = shop_engine () in
  check_query e "SELECT name FROM people ORDER BY age DESC, name LIMIT 2"
    [ "name" ]
    [ [ vs "cy" ]; [ vs "ada" ] ];
  (* OFFSET skips rows after ordering; with and without LIMIT. *)
  check_query e "SELECT name FROM people ORDER BY age DESC, name LIMIT 2 OFFSET 1"
    [ "name" ]
    [ [ vs "ada" ]; [ vs "bob" ] ];
  check_query e "SELECT name FROM people ORDER BY age DESC, name OFFSET 3"
    [ "name" ]
    [ [ vs "dee" ] ];
  (* An offset past the end yields nothing. *)
  check_query e "SELECT name FROM people ORDER BY name OFFSET 10" [ "name" ] []

(* ------------------------------------------------------------------ *)
(* DDL / DML                                                           *)

let test_ddl_lifecycle () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (a INT)");
  check_error ~substring:"already exists" e "CREATE TABLE t (a INT)";
  ignore (Engine.execute e "CREATE TABLE IF NOT EXISTS t (a INT)");
  ignore (Engine.execute e "DROP TABLE t");
  check_error ~substring:"does not exist" e "DROP TABLE t";
  ignore (Engine.execute e "DROP TABLE IF EXISTS t")

let test_insert_variants () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (a INT, b VARCHAR)");
  (match Engine.execute e "INSERT INTO t VALUES (1, 'x'), (2, 'y')" with
  | Engine.Affected 2 -> ()
  | _ -> Alcotest.fail "two rows inserted");
  (* Column-list insert fills missing columns with NULL. *)
  ignore (Engine.execute e "INSERT INTO t (a) VALUES (3)");
  check_query e "SELECT a, b FROM t" [ "a"; "b" ]
    [ [ vi 1; vs "x" ]; [ vi 2; vs "y" ]; [ vi 3; vnull ] ];
  (* INSERT ... SELECT *)
  ignore (Engine.execute e "CREATE TABLE u (a INT, b VARCHAR)");
  (match Engine.execute e "INSERT INTO u SELECT a + 10, b FROM t" with
  | Engine.Affected 3 -> ()
  | _ -> Alcotest.fail "insert-select count");
  check_query e "SELECT COUNT(*) FROM u WHERE a > 10" [ "count" ] [ [ vi 3 ] ];
  check_error ~substring:"arity" e "INSERT INTO u SELECT a FROM t"

let test_update_forms () =
  let e = shop_engine () in
  (match Engine.execute e "UPDATE people SET age = age + 1 WHERE age = 25" with
  | Engine.Affected 2 -> ()
  | _ -> Alcotest.fail "two updated");
  check_query e "SELECT COUNT(*) FROM people WHERE age = 26" [ "count" ]
    [ [ vi 2 ] ];
  (* UPDATE ... FROM with an equi key (the middleware's merge). *)
  (match
     Engine.execute e
       "UPDATE people SET age = 0 FROM orders AS o WHERE people.id = \
        o.person_id AND o.total > 4"
   with
  | Engine.Affected 1 -> ()
  | _ -> Alcotest.fail "keyed update");
  check_query e "SELECT age FROM people WHERE id = 1" [ "age" ] [ [ vi 0 ] ]

let test_delete_and_truncate () =
  let e = shop_engine () in
  (match Engine.execute e "DELETE FROM orders WHERE total < 4" with
  | Engine.Affected 2 -> ()
  | _ -> Alcotest.fail "two deleted");
  check_query e "SELECT COUNT(*) FROM orders" [ "count" ] [ [ vi 2 ] ];
  ignore (Engine.execute e "TRUNCATE TABLE orders");
  check_query e "SELECT COUNT(*) FROM orders" [ "count" ] [ [ vi 0 ] ]

let test_views () =
  let e = shop_engine () in
  (* Basic view: expanded per the paper's section III functional
     rewrite (view reference expansion). *)
  ignore
    (Engine.execute e
       "CREATE VIEW adults AS SELECT id, name, age FROM people WHERE age >= 30");
  check_query e "SELECT name FROM adults ORDER BY name"
    [ "name" ]
    [ [ vs "ada" ]; [ vs "cy" ] ];
  (* Views compose: a view over a view, joined with a base table. *)
  ignore
    (Engine.execute e
       "CREATE VIEW adult_spend AS SELECT a.name, o.total FROM adults AS a \
        JOIN orders AS o ON a.id = o.person_id");
  check_query e "SELECT name, SUM(total) AS s FROM adult_spend GROUP BY name"
    [ "name"; "s" ]
    [ [ vs "ada"; vf 12.5 ] ];
  (* Declared column lists rename the view's outputs. *)
  ignore
    (Engine.execute e
       "CREATE VIEW person_ages (who, years) AS SELECT name, age FROM people");
  check_query e "SELECT who FROM person_ages WHERE years = 52"
    [ "who" ]
    [ [ vs "cy" ] ];
  (* Views see base-table updates (no materialization). *)
  ignore (Engine.execute e "UPDATE people SET age = 29 WHERE name = 'ada'");
  check_query e "SELECT COUNT(*) FROM adults" [ "count" ] [ [ vi 1 ] ];
  (* A CTE with the same name shadows the view. *)
  check_query e
    "WITH adults AS (SELECT 99 AS answer) SELECT answer FROM adults"
    [ "answer" ]
    [ [ vi 99 ] ];
  (* Views work inside iterative CTEs. *)
  ignore (Engine.execute e "CREATE VIEW order_count AS SELECT COUNT(*) AS n FROM orders");
  check_query e
    "WITH ITERATIVE c (k, total) AS (SELECT 1, 0 ITERATE SELECT c.k, c.total \
     + v.n FROM c JOIN order_count AS v ON 1 = 1 UNTIL 3 ITERATIONS) SELECT \
     total FROM c"
    [ "total" ]
    [ [ vi 12 ] ];
  (* Errors: duplicates, unknown drops, invalid bodies, column lists. *)
  check_error ~substring:"already exists" e
    "CREATE VIEW adults AS SELECT 1";
  check_error ~substring:"already exists" e
    "CREATE VIEW people AS SELECT 1";
  check_error ~substring:"does not exist" e "DROP VIEW nope";
  ignore (Engine.execute e "DROP VIEW IF EXISTS nope");
  check_error ~substring:"unknown" e "CREATE VIEW broken AS SELECT zap FROM people";
  check_error ~substring:"columns" e
    "CREATE VIEW wrong (a, b) AS SELECT id FROM people";
  (* Dropping restores the name. *)
  ignore (Engine.execute e "DROP VIEW adults");
  check_error ~substring:"unknown table" e "SELECT * FROM adults"

let test_transactions () =
  let e = shop_engine () in
  (* Rollback undoes DML. *)
  ignore (Engine.execute e "BEGIN");
  Alcotest.(check bool) "in transaction" true (Engine.in_transaction e);
  ignore (Engine.execute e "DELETE FROM people");
  ignore (Engine.execute e "UPDATE orders SET total = 0");
  check_query e "SELECT COUNT(*) FROM people" [ "count" ] [ [ vi 0 ] ];
  ignore (Engine.execute e "ROLLBACK");
  check_query e "SELECT COUNT(*) FROM people" [ "count" ] [ [ vi 4 ] ];
  check_query e "SELECT SUM(total) FROM orders" [ "sum" ] [ [ vf 16.5 ] ];
  (* Rollback undoes DDL too: created tables vanish, dropped return. *)
  ignore (Engine.execute e "BEGIN TRANSACTION");
  ignore (Engine.execute e "CREATE TABLE scratch (x INT)");
  ignore (Engine.execute e "DROP TABLE orders");
  ignore (Engine.execute e "ROLLBACK TRANSACTION");
  check_error ~substring:"unknown table" e "SELECT * FROM scratch";
  check_query e "SELECT COUNT(*) FROM orders" [ "count" ] [ [ vi 4 ] ];
  (* Commit persists. *)
  ignore (Engine.execute e "BEGIN");
  ignore (Engine.execute e "DELETE FROM orders WHERE total < 4");
  ignore (Engine.execute e "COMMIT");
  Alcotest.(check bool) "transaction closed" false (Engine.in_transaction e);
  check_query e "SELECT COUNT(*) FROM orders" [ "count" ] [ [ vi 2 ] ];
  (* Protocol errors. *)
  check_error ~substring:"no transaction" e "COMMIT";
  check_error ~substring:"no transaction" e "ROLLBACK";
  ignore (Engine.execute e "BEGIN");
  check_error ~substring:"already open" e "BEGIN";
  ignore (Engine.execute e "ROLLBACK")

let test_transaction_around_iterative_query () =
  (* The paper's ACID argument: the whole iterative computation is one
     statement, so a surrounding transaction wraps it atomically. *)
  let e = tiny_graph_engine () in
  ignore (Engine.execute e "BEGIN");
  ignore (Engine.execute e "DELETE FROM edges WHERE src = 4");
  let result =
    Engine.query e
      (Dbspinner_workload.Queries.pr ~iterations:3
         ~final:"SELECT COUNT(*) FROM PageRank" ())
  in
  Alcotest.check relation_testable "sees transaction-local state"
    (rel [ "count" ] [ [ vi 3 ] ])
    result;
  ignore (Engine.execute e "ROLLBACK");
  let result =
    Engine.query e
      (Dbspinner_workload.Queries.pr ~iterations:3
         ~final:"SELECT COUNT(*) FROM PageRank" ())
  in
  Alcotest.check relation_testable "restored after rollback"
    (rel [ "count" ] [ [ vi 4 ] ])
    result

let test_primary_key_enforced () =
  let e = shop_engine () in
  check_error ~substring:"duplicate" e "INSERT INTO people VALUES (1, 'dup', 1)"

(* ------------------------------------------------------------------ *)
(* Iterative CTEs end to end via the engine                            *)

let test_simple_iterative () =
  let e = Engine.create () in
  check_query e
    "WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, n + 1 FROM c \
     UNTIL 5 ITERATIONS) SELECT n FROM c"
    [ "n" ]
    [ [ vi 5 ] ]

let test_iterative_multi_row_partial_update () =
  (* Only even keys are updated each round; odd keys must keep their
     initial values through the merge path. *)
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE seed (k INT, v INT)");
  ignore (Engine.execute e "INSERT INTO seed VALUES (1, 100), (2, 200), (3, 300), (4, 400)");
  check_query e
    "WITH ITERATIVE r (k, v) AS (SELECT k, v FROM seed ITERATE SELECT k, v + \
     1 FROM r WHERE MOD(k, 2) = 0 UNTIL 3 ITERATIONS) SELECT k, v FROM r"
    [ "k"; "v" ]
    [
      [ vi 1; vi 100 ];
      [ vi 2; vi 203 ];
      [ vi 3; vi 300 ];
      [ vi 4; vi 403 ];
    ]

let test_iterative_duplicate_key_runtime_error () =
  (* The §II requirement: duplicate row keys in the working table are a
     run-time error telling the user to aggregate. *)
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE d (k INT)");
  ignore (Engine.execute e "INSERT INTO d VALUES (1), (1)");
  check_error ~substring:"duplicate" e
    "WITH ITERATIVE r (k) AS (SELECT 7 ITERATE SELECT k FROM d UNTIL 2 \
     ITERATIONS) SELECT * FROM r"

let test_iterative_data_termination_sql () =
  let e = Engine.create () in
  check_query e
    "WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, n + 2 FROM c \
     UNTIL ANY n >= 10) SELECT n FROM c"
    [ "n" ]
    [ [ vi 10 ] ]

let test_iterative_delta_termination_sql () =
  let e = Engine.create () in
  check_query e
    "WITH ITERATIVE c (k, n) AS (SELECT 1, 0 ITERATE SELECT k, LEAST(n + 1, \
     4) FROM c UNTIL DELTA = 0) SELECT n FROM c"
    [ "n" ]
    [ [ vi 4 ] ]

let test_recursive_cte_sql () =
  let e = tiny_graph_engine () in
  (* Reachability from node 4 over 4 -> 1 -> {2, 3} -> ... *)
  check_query e
    "WITH RECURSIVE reach (n) AS (SELECT 4 UNION SELECT e.dst FROM reach \
     JOIN edges AS e ON reach.n = e.src) SELECT n FROM reach ORDER BY n"
    [ "n" ]
    [ [ vi 1 ]; [ vi 2 ]; [ vi 3 ]; [ vi 4 ] ]

let test_plain_cte_and_mixed () =
  let e = tiny_graph_engine () in
  check_query e
    "WITH deg AS (SELECT src AS node, COUNT(*) AS d FROM edges GROUP BY src) \
     SELECT node FROM deg WHERE d > 1"
    [ "node" ]
    [ [ vi 1 ] ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN, options, stats                                             *)

let test_explain_matches_table1 () =
  let e = tiny_graph_engine () in
  let text = Engine.explain e (Dbspinner_workload.Queries.pr ~iterations:10 ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in plan") true (contains text needle))
    [
      "Materialize PageRank";
      "InitLoop";
      "Metadata(iterations=10)";
      "Rename PageRank#work -> PageRank";
      "LoopEnd";
      "Return";
    ]

let test_explain_analyze () =
  let e = tiny_graph_engine () in
  match
    Engine.execute e
      ("EXPLAIN ANALYZE " ^ Dbspinner_workload.Queries.pr ~iterations:3 ())
  with
  | Engine.Explained text ->
    Alcotest.(check bool) "estimate present" true (contains text "Cost estimate");
    Alcotest.(check bool) "actuals present" true (contains text "Actual:");
    Alcotest.(check bool) "actual iterations reported" true
      (contains text "iterations=3");
    (* The analyzed run must not leak temps. *)
    Alcotest.(check (list string)) "no leaked temps" []
      (Dbspinner_storage.Catalog.temp_names (Engine.catalog e))
  | _ -> Alcotest.fail "expected Explained"

let test_option_sets_agree () =
  let e = tiny_graph_engine () in
  let q = Dbspinner_workload.Queries.pr ~iterations:6 ~final:"SELECT Node, Rank FROM PageRank" () in
  let reference = Engine.query e q in
  List.iter
    (fun (label, options) ->
      let got = Engine.with_options e options (fun () -> Engine.query e q) in
      Alcotest.check relation_testable label reference got)
    [
      ("unoptimized", Options.unoptimized);
      ("rename only", { Options.unoptimized with use_rename = true });
      ("pushdown only", { Options.unoptimized with use_pushdown = true });
      ("common only", { Options.unoptimized with use_common_result = true });
    ]

let test_session_stats_accumulate () =
  let e = tiny_graph_engine () in
  let before = (Engine.session_stats e).Stats.statements in
  ignore (Engine.query e "SELECT COUNT(*) FROM edges");
  ignore (Engine.query e "SELECT COUNT(*) FROM edges");
  Alcotest.(check int) "two statements recorded" (before + 2)
    (Engine.session_stats e).Stats.statements

let test_temps_cleared_between_queries () =
  let e = tiny_graph_engine () in
  ignore
    (Engine.query e "WITH c AS (SELECT 1 AS one) SELECT one FROM c");
  (* The CTE name must not leak into the next statement. *)
  check_error ~substring:"unknown table" e "SELECT * FROM c"

let test_error_stages () =
  let e = Engine.create () in
  (match Engine.execute e "SELEC 1" with
  | exception Errors.Error (Errors.Parse, _) -> ()
  | _ -> Alcotest.fail "parse error expected");
  (match Engine.execute e "SELECT nope FROM nowhere" with
  | exception Errors.Error (Errors.Bind, _) -> ()
  | _ -> Alcotest.fail "bind error expected");
  match Engine.execute e "SELECT 1 / 0" with
  | exception Errors.Error (Errors.Execute, _) -> ()
  | _ -> Alcotest.fail "runtime error expected"

(** A statement whose whole cost sits inside ONE operator — a
    nested-loop double self-join, hundreds of millions of candidate
    pairs with no intermediate materialization boundary — must still
    honor the statement timeout. Guards used to be checked only at
    materialize and loop boundaries, so such a statement ran to
    completion regardless of the timeout; the in-operator probes
    (Guards.tick) abort it mid-join. The elapsed-time bound is the
    actual regression check: without probes this join runs for far
    longer than the allowance before the boundary check fires. *)
let test_statement_timeout_inside_operator () =
  let e =
    Engine.create
      ~options:
        { Options.default with Options.statement_timeout_seconds = Some 0.05 }
      ()
  in
  Engine.load_table e ~name:"big"
    (rel [ "x" ] (List.init 700 (fun i -> [ vi i ])));
  let t0 = Unix.gettimeofday () in
  (match
     Engine.execute e
       "SELECT COUNT(*) FROM big AS a JOIN big AS b ON a.x < b.x JOIN big AS \
        c ON b.x < c.x"
   with
  | exception Errors.Error (Errors.Resource, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "reported as statement timeout: %s" msg)
      true (contains msg "timeout")
  | _ -> Alcotest.fail "expected the statement timeout to trip");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "aborted mid-operator (%.2fs)" elapsed)
    true (elapsed < 2.0)

let test_execute_script () =
  let e = Engine.create () in
  let results =
    Engine.execute_script e
      "CREATE TABLE s (x INT); INSERT INTO s VALUES (1), (2); SELECT SUM(x) \
       FROM s"
  in
  match results with
  | [ Engine.Executed; Engine.Affected 2; Engine.Rows result ] ->
    Alcotest.check relation_testable "script result"
      (rel [ "sum" ] [ [ vi 3 ] ])
      result
  | _ -> Alcotest.fail "unexpected script results"

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)

let test_middleware_pagerank_matches_native () =
  let e = tiny_graph_engine () in
  let native =
    Engine.query e
      (Dbspinner_workload.Queries.pr ~iterations:5
         ~final:"SELECT Node, Rank FROM PageRank" ())
  in
  let outcome =
    Dbspinner.Middleware.run e (Dbspinner.Middleware.pagerank_script ~iterations:5)
  in
  Alcotest.check relation_testable "middleware matches native" native
    outcome.Dbspinner.Middleware.rows;
  Alcotest.(check bool) "many statements issued" true
    (outcome.Dbspinner.Middleware.statements_issued > 3 * 5)

let test_procedure_counts () =
  let proc = Dbspinner_workload.Queries.ff_procedure ~modulus:10 ~iterations:4 () in
  (* 2 creates + 1 insert + 4 * 3 loop stmts + 1 drop + 1 return *)
  Alcotest.(check int) "static statement count" 17
    (Dbspinner.Procedure.static_statement_count proc)

let () =
  Alcotest.run "engine"
    [
      ( "select",
        [
          Alcotest.test_case "basics" `Quick test_select_basics;
          Alcotest.test_case "joins" `Quick test_select_joins;
          Alcotest.test_case "subquery-union" `Quick test_subquery_and_union;
          Alcotest.test_case "set-operations" `Quick test_set_operations;
          Alcotest.test_case "subquery-predicates" `Quick test_subquery_predicates;
          Alcotest.test_case "scalar-subqueries" `Quick test_scalar_subqueries;
          Alcotest.test_case "limit-order" `Quick test_limit_and_order;
        ] );
      ( "ddl-dml",
        [
          Alcotest.test_case "ddl-lifecycle" `Quick test_ddl_lifecycle;
          Alcotest.test_case "insert" `Quick test_insert_variants;
          Alcotest.test_case "update" `Quick test_update_forms;
          Alcotest.test_case "delete-truncate" `Quick test_delete_and_truncate;
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "transactions" `Quick test_transactions;
          Alcotest.test_case "transaction-iterative" `Quick
            test_transaction_around_iterative_query;
          Alcotest.test_case "primary-key" `Quick test_primary_key_enforced;
        ] );
      ( "iterative",
        [
          Alcotest.test_case "counter" `Quick test_simple_iterative;
          Alcotest.test_case "partial-update" `Quick
            test_iterative_multi_row_partial_update;
          Alcotest.test_case "duplicate-key" `Quick
            test_iterative_duplicate_key_runtime_error;
          Alcotest.test_case "data-termination" `Quick
            test_iterative_data_termination_sql;
          Alcotest.test_case "delta-termination" `Quick
            test_iterative_delta_termination_sql;
          Alcotest.test_case "recursive" `Quick test_recursive_cte_sql;
          Alcotest.test_case "plain-cte" `Quick test_plain_cte_and_mixed;
        ] );
      ( "session",
        [
          Alcotest.test_case "explain-table1" `Quick test_explain_matches_table1;
          Alcotest.test_case "explain-analyze" `Quick test_explain_analyze;
          Alcotest.test_case "option-sets-agree" `Quick test_option_sets_agree;
          Alcotest.test_case "stats" `Quick test_session_stats_accumulate;
          Alcotest.test_case "temps-cleared" `Quick
            test_temps_cleared_between_queries;
          Alcotest.test_case "error-stages" `Quick test_error_stages;
          Alcotest.test_case "timeout-inside-operator" `Quick
            test_statement_timeout_inside_operator;
          Alcotest.test_case "script" `Quick test_execute_script;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "middleware-pagerank" `Quick
            test_middleware_pagerank_matches_native;
          Alcotest.test_case "procedure-counts" `Quick test_procedure_counts;
        ] );
    ]

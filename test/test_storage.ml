(** Unit tests for the storage layer: values, schemas, relations,
    tables, the catalog lookup table (rename!) and CSV I/O. *)

module Value = Dbspinner_storage.Value
module Column_type = Dbspinner_storage.Column_type
module Schema = Dbspinner_storage.Schema
module Row = Dbspinner_storage.Row
module Relation = Dbspinner_storage.Relation
module Table = Dbspinner_storage.Table
module Catalog = Dbspinner_storage.Catalog
module Csv = Dbspinner_storage.Csv
open Helpers

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_compare () =
  Alcotest.(check int) "int order" (-1) (compare (Value.compare (vi 1) (vi 2)) 0);
  Alcotest.(check bool) "int = float" true (Value.equal (vi 3) (vf 3.0));
  Alcotest.(check bool) "null equals null (grouping)" true
    (Value.equal vnull vnull);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare vnull (vi (-100)) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (vs "a") (vs "b") < 0)

let test_value_compare_int_float_boundary () =
  (* Int/Float comparison is exact: going through [float_of_int] would
     collapse distinct ints above 2^53 into one float image. *)
  let two53 = 9007199254740992 (* 2^53 *) in
  Alcotest.(check int) "2^53 = 2^53.0" 0
    (Value.compare (vi two53) (vf 9007199254740992.0));
  Alcotest.(check int) "2^53+1 > 2^53.0 (would be 0 via float_of_int)" 1
    (Value.compare (vi (two53 + 1)) (vf 9007199254740992.0));
  Alcotest.(check int) "2^53.0 < 2^53+1 (symmetric)" (-1)
    (Value.compare (vf 9007199254740992.0) (vi (two53 + 1)));
  (* max_int = 2^62 - 1 rounds up to 2^62 as a float; they must not
     compare equal. *)
  Alcotest.(check int) "max_int < float 2^62" (-1)
    (Value.compare (vi max_int) (vf 0x1p62));
  Alcotest.(check int) "float 2^62 > max_int" 1
    (Value.compare (vf 0x1p62) (vi max_int));
  Alcotest.(check int) "min_int = float -2^62" 0
    (Value.compare (vi min_int) (vf (-0x1p62)));
  (* Fractional parts break ties on the truncated comparison. *)
  Alcotest.(check int) "5 < 5.5" (-1) (Value.compare (vi 5) (vf 5.5));
  Alcotest.(check int) "-5 > -5.5" 1 (Value.compare (vi (-5)) (vf (-5.5)));
  (* Non-finite floats order by sign; NaN stays the smallest numeric,
     as in [Float.compare]'s total order. *)
  Alcotest.(check int) "max_int < inf" (-1)
    (Value.compare (vi max_int) (vf Float.infinity));
  Alcotest.(check int) "min_int > -inf" 1
    (Value.compare (vi min_int) (vf Float.neg_infinity));
  Alcotest.(check int) "int > nan" 1 (Value.compare (vi 0) (vf Float.nan));
  Alcotest.(check int) "nan < int" (-1) (Value.compare (vf Float.nan) (vi 0))

let test_value_hash_consistent () =
  Alcotest.(check int) "hash int = hash float" (Value.hash (vi 5))
    (Value.hash (vf 5.0))

let test_value_arith () =
  Alcotest.check value_testable "add ints" (vi 5) (Value.add (vi 2) (vi 3));
  Alcotest.check value_testable "add mixed" (vf 5.5) (Value.add (vi 2) (vf 3.5));
  Alcotest.check value_testable "null propagates" vnull (Value.add vnull (vi 1));
  Alcotest.check value_testable "exact int division" (vi 3)
    (Value.div (vi 6) (vi 2));
  Alcotest.check value_testable "inexact division promotes" (vf 2.5)
    (Value.div (vi 5) (vi 2));
  Alcotest.check value_testable "modulo" (vi 1) (Value.modulo (vi 7) (vi 3));
  Alcotest.check value_testable "negate" (vf (-2.5)) (Value.neg (vf 2.5));
  Alcotest.(check_raises) "div by zero" Division_by_zero (fun () ->
      ignore (Value.div (vi 1) (vi 0)))

(* Every zero divisor raises, whatever the operand types: the int and
   float paths must agree instead of IEEE inf/nan leaking out of the
   float side. *)
let test_value_division_by_zero () =
  let zeros = [ vi 0; vf 0.0; vf (-0.0) ] in
  let numerators = [ vi 1; vi (-7); vf 1.0; vf (-2.5) ] in
  List.iter
    (fun n ->
      List.iter
        (fun z ->
          let label op =
            Printf.sprintf "%s %s %s raises"
              (Value.to_string n) op (Value.to_string z)
          in
          Alcotest.(check_raises) (label "/") Division_by_zero (fun () ->
              ignore (Value.div n z));
          Alcotest.(check_raises) (label "%") Division_by_zero (fun () ->
              ignore (Value.modulo n z)))
        zeros)
    numerators;
  (* NULL still wins over the zero check (SQL NULL propagation). *)
  Alcotest.check value_testable "null / 0 is null" vnull
    (Value.div vnull (vi 0));
  Alcotest.check value_testable "1 / null is null" vnull
    (Value.div (vi 1) vnull);
  Alcotest.check value_testable "null % 0.0 is null" vnull
    (Value.modulo vnull (vf 0.0));
  (* Non-numeric operands keep reporting a type error, not div-by-zero. *)
  match Value.div (vs "x") (vi 0) with
  | exception Value.Type_error _ -> ()
  | _ | (exception _) -> Alcotest.fail "string / 0 must be a type error"

(* min_int / -1 and min_int mod -1 overflow the hardware divide in
   native code; the special cases must fire before the [x mod y = 0]
   guard ever evaluates. *)
let test_value_min_int_overflow () =
  (* OCaml native ints are 63-bit, so -min_int is exactly 2^62. *)
  Alcotest.check value_testable "min_int / -1 promotes to float" (vf 0x1p62)
    (Value.div (vi min_int) (vi (-1)));
  Alcotest.check value_testable "min_int mod -1 is 0" (vi 0)
    (Value.modulo (vi min_int) (vi (-1)));
  (* Neighbouring cases stay on the exact integer path. *)
  Alcotest.check value_testable "(min_int + 1) / -1" (vi max_int)
    (Value.div (vi (min_int + 1)) (vi (-1)));
  Alcotest.check value_testable "min_int / 1" (vi min_int)
    (Value.div (vi min_int) (vi 1));
  Alcotest.check value_testable "min_int / -2 exact" (vi (min_int / -2))
    (Value.div (vi min_int) (vi (-2)));
  Alcotest.check value_testable "max_int mod -1" (vi 0)
    (Value.modulo (vi max_int) (vi (-1)))

let test_value_type_errors () =
  (match Value.add (vs "x") (vi 1) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error");
  match Value.to_bool (vi 1) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string vnull);
  Alcotest.(check string) "string quoting" "'o''brien'"
    (Value.to_string (vs "o'brien"));
  Alcotest.(check string) "integral float keeps point" "2.0"
    (Value.to_string (vf 2.0))

(* ------------------------------------------------------------------ *)
(* Column types                                                        *)

let test_column_type () =
  Alcotest.(check bool) "int admits int" true
    (Column_type.admits Column_type.T_int (vi 1));
  Alcotest.(check bool) "float admits int" true
    (Column_type.admits Column_type.T_float (vi 1));
  Alcotest.(check bool) "int rejects float" false
    (Column_type.admits Column_type.T_int (vf 1.5));
  Alcotest.(check bool) "null admitted everywhere" true
    (Column_type.admits Column_type.T_bool vnull);
  Alcotest.check value_testable "coerce widens int" (vf 2.0)
    (Column_type.coerce Column_type.T_float (vi 2));
  Alcotest.(check (option string))
    "of_string integer" (Some "INT")
    (Option.map Column_type.to_string (Column_type.of_string "integer"));
  Alcotest.check value_testable "parse empty is null" vnull
    (Column_type.parse Column_type.T_int "")

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let test_schema_lookup () =
  let s = Schema.of_names [ "Node"; "Rank"; "Delta" ] in
  Alcotest.(check (option int)) "case-insensitive" (Some 1)
    (Schema.index_of s "rank");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s "weight");
  Alcotest.(check int) "find_exn" 2 (Schema.find_exn s "DELTA")

let test_schema_rename () =
  let s = Schema.of_names [ "a"; "b" ] in
  let s' = Schema.rename_columns s [ "x"; "y" ] in
  Alcotest.(check (list string)) "renamed" [ "x"; "y" ] (Schema.column_names s');
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Schema.rename_columns: arity mismatch") (fun () ->
      ignore (Schema.rename_columns s [ "only_one" ]))

(* ------------------------------------------------------------------ *)
(* Row / Relation                                                      *)

let test_row_ops () =
  let r = Row.of_list [ vi 1; vs "x"; vnull ] in
  Alcotest.(check int) "arity" 3 (Row.arity r);
  Alcotest.check row_testable "project"
    (Row.of_list [ vnull; vi 1 ])
    (Row.project r [| 2; 0 |]);
  Alcotest.(check bool) "equal to itself" true (Row.equal r r);
  Alcotest.(check bool) "numeric row equality" true
    (Row.equal (Row.of_list [ vi 2 ]) (Row.of_list [ vf 2.0 ]))

let test_relation_bag_equality () =
  let a = rel [ "x" ] [ [ vi 1 ]; [ vi 2 ]; [ vi 2 ] ] in
  let b = rel [ "x" ] [ [ vi 2 ]; [ vi 1 ]; [ vi 2 ] ] in
  let c = rel [ "x" ] [ [ vi 1 ]; [ vi 2 ] ] in
  Alcotest.(check bool) "order-insensitive" true (Relation.equal_bag a b);
  Alcotest.(check bool) "multiplicity matters" false (Relation.equal_bag a c)

let test_relation_arity_check () =
  Alcotest.(check_raises)
    "row arity mismatch"
    (Invalid_argument "Relation.make: row arity 1 <> schema arity 2")
    (fun () ->
      ignore
        (Relation.make (Schema.of_names [ "a"; "b" ]) [| [| vi 1 |] |]))

let test_delta_count () =
  let prev = rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 2; vi 20 ]; [ vi 3; vi 30 ] ] in
  let next = rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 2; vi 99 ]; [ vi 3; vi 30 ] ] in
  Alcotest.(check int) "one changed" 1 (Relation.delta_count ~key_idx:0 prev next);
  Alcotest.(check int) "identical" 0 (Relation.delta_count ~key_idx:0 prev prev);
  let grew = rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 2; vi 20 ]; [ vi 3; vi 30 ]; [ vi 4; vi 40 ] ] in
  Alcotest.(check int) "insert counts" 1 (Relation.delta_count ~key_idx:0 prev grew);
  let shrank = rel [ "k"; "v" ] [ [ vi 1; vi 10 ] ] in
  Alcotest.(check int) "deletes count" 2
    (Relation.delta_count ~key_idx:0 prev shrank)

let test_relation_column () =
  let r = rel [ "a"; "b" ] [ [ vi 1; vs "x" ]; [ vi 2; vs "y" ] ] in
  Alcotest.(check (array value_testable))
    "column b" [| vs "x"; vs "y" |] (Relation.column r "b")

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_insert_and_types () =
  let t =
    Table.create ~primary_key:"id" ~name:"t"
      (Schema.make
         [
           Schema.column ~ty:Column_type.T_int "id";
           Schema.column ~ty:Column_type.T_float "v";
         ])
  in
  Table.insert t [| vi 1; vi 10 |];
  (* Int coerced into the float column. *)
  Alcotest.check relation_testable "coerced"
    (rel [ "id"; "v" ] [ [ vi 1; vf 10.0 ] ])
    (Table.to_relation t);
  Alcotest.(check bool) "duplicate pk rejected" true
    (match Table.insert t [| vi 1; vf 2.0 |] with
    | exception Table.Constraint_violation _ -> true
    | () -> false);
  Alcotest.(check bool) "null pk rejected" true
    (match Table.insert t [| vnull; vf 2.0 |] with
    | exception Table.Constraint_violation _ -> true
    | () -> false);
  Alcotest.(check bool) "wrong type rejected" true
    (match Table.insert t [| vs "x"; vf 2.0 |] with
    | exception Table.Constraint_violation _ -> true
    | () -> false)

let test_table_update_delete () =
  let t = Table.create ~name:"t" (Schema.of_names [ "k"; "v" ]) in
  Table.insert_all t [ [| vi 1; vi 10 |]; [| vi 2; vi 20 |]; [| vi 3; vi 30 |] ];
  let updated =
    Table.update t
      ~pred:(fun r -> Value.compare r.(0) (vi 1) > 0)
      ~set:(fun r -> [| r.(0); Value.add r.(1) (vi 1) |])
  in
  Alcotest.(check int) "two updated" 2 updated;
  let deleted = Table.delete t ~pred:(fun r -> Value.equal r.(0) (vi 2)) in
  Alcotest.(check int) "one deleted" 1 deleted;
  Alcotest.(check int) "cardinality tracked" 2 (Table.cardinality t);
  Alcotest.check relation_testable "final contents"
    (rel [ "k"; "v" ] [ [ vi 1; vi 10 ]; [ vi 3; vi 31 ] ])
    (Table.to_relation t);
  Table.truncate t;
  Alcotest.(check int) "truncate empties" 0 (Table.cardinality t)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog_base_tables () =
  let c = Catalog.create () in
  let _ = Catalog.create_table c ~name:"Edges" (Schema.of_names [ "src" ]) in
  Alcotest.(check bool) "case-insensitive lookup" true
    (Catalog.mem_table c "EDGES");
  Alcotest.(check bool) "duplicate rejected" true
    (match Catalog.create_table c ~name:"edges" (Schema.of_names [ "x" ]) with
    | exception Catalog.Duplicate_table _ -> true
    | _ -> false);
  Catalog.drop_table c "edges";
  Alcotest.(check bool) "dropped" false (Catalog.mem_table c "edges");
  Alcotest.(check int) "ddl ops counted" 2 (Catalog.ddl_ops c)

let test_catalog_rename_semantics () =
  let c = Catalog.create () in
  let r1 = rel [ "x" ] [ [ vi 1 ] ] in
  let r2 = rel [ "x" ] [ [ vi 2 ] ] in
  Catalog.set_temp c "main" r1;
  Catalog.set_temp c "work" r2;
  (* Rename over an existing entry drops the displaced relation. *)
  Catalog.rename_temp c ~from_:"work" ~into:"main";
  Alcotest.check relation_testable "work became main" r2
    (Catalog.find_temp c "main");
  Alcotest.(check bool) "work is gone" false (Catalog.mem_temp c "work");
  Alcotest.(check int) "rename counted" 1 (Catalog.renames c);
  Alcotest.(check bool) "renaming a missing temp fails" true
    (match Catalog.rename_temp c ~from_:"nope" ~into:"main" with
    | exception Catalog.Unknown_table _ -> true
    | () -> false)

let test_catalog_shadowing () =
  let c = Catalog.create () in
  let t = Catalog.create_table c ~name:"r" (Schema.of_names [ "x" ]) in
  Table.insert t [| vi 1 |];
  Alcotest.check relation_testable "resolves base"
    (rel [ "x" ] [ [ vi 1 ] ])
    (Catalog.resolve c "r");
  Catalog.set_temp c "r" (rel [ "x" ] [ [ vi 99 ] ]);
  Alcotest.check relation_testable "temp shadows base"
    (rel [ "x" ] [ [ vi 99 ] ])
    (Catalog.resolve c "r");
  Catalog.clear_temps c;
  Alcotest.check relation_testable "base visible again"
    (rel [ "x" ] [ [ vi 1 ] ])
    (Catalog.resolve c "r")

let test_catalog_snapshot_isolation () =
  let shared = Catalog.create () in
  let t = Catalog.create_table shared ~name:"r" (Schema.of_names [ "x" ]) in
  Table.insert t [| vi 1 |];
  let snap1 = Catalog.publish shared in
  (* A reader view pins the snapshot; the live table then mutates and
     is even dropped and recreated underneath it. *)
  let reader = Catalog.with_shared_base shared in
  Catalog.pin_snapshot reader snap1;
  Alcotest.(check (option int)) "pinned version" (Some 1)
    (Catalog.pinned_version reader);
  Table.insert t [| vi 2 |];
  Catalog.drop_table shared "r";
  let t2 = Catalog.create_table shared ~name:"r" (Schema.of_names [ "x" ]) in
  Table.insert t2 [| vi 99 |];
  let snap2 = Catalog.publish shared in
  Alcotest.check relation_testable "pinned reader sees the old rows"
    (rel [ "x" ] [ [ vi 1 ] ])
    (Catalog.resolve reader "r");
  (* DDL through a pinned view is refused — a snapshot is read-only. *)
  Alcotest.(check bool) "drop through a pinned view is refused" true
    (match Catalog.drop_table reader "r" with
    | exception Invalid_argument _ -> true
    | () -> false);
  Catalog.unpin_snapshot reader;
  Alcotest.check relation_testable "unpinned view sees the new table"
    (rel [ "x" ] [ [ vi 99 ] ])
    (Catalog.resolve reader "r");
  (* Re-pinning the newer snapshot shows the new content... *)
  Catalog.pin_snapshot reader snap2;
  Alcotest.check relation_testable "newer snapshot has new rows"
    (rel [ "x" ] [ [ vi 99 ] ])
    (Catalog.resolve reader "r");
  Catalog.unpin_snapshot reader;
  (* ...and publishing without changes reuses the frozen entries (the
     version still advances; the point is publish stays cheap). *)
  let snap3 = Catalog.publish shared in
  Alcotest.(check int) "versions are monotone" 3
    (Catalog.snapshot_version snap3)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let test_csv_roundtrip () =
  let schema =
    Schema.make
      [
        Schema.column ~ty:Column_type.T_int "id";
        Schema.column ~ty:Column_type.T_string "name";
        Schema.column ~ty:Column_type.T_float "score";
      ]
  in
  let original =
    Relation.of_lists schema
      [
        [ vi 1; vs "plain"; vf 1.5 ];
        [ vi 2; vs "with,comma"; vf 2.5 ];
        [ vi 3; vs "with\"quote"; vf 3.5 ];
        [ vi 4; vnull; vnull ];
      ]
  in
  let path = Filename.temp_file "dbspinner_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save original path;
      let loaded = Csv.load ~schema path in
      Alcotest.check relation_testable "roundtrip" original loaded)

let test_csv_separator_and_comments () =
  let path = Filename.temp_file "dbspinner_test" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# SNAP-style comment\n1\t2\n3\t4\n";
      close_out oc;
      let schema =
        Schema.make
          [
            Schema.column ~ty:Column_type.T_int "src";
            Schema.column ~ty:Column_type.T_int "dst";
          ]
      in
      let loaded = Csv.load ~schema ~separator:'\t' path in
      Alcotest.check relation_testable "tsv with comments"
        (rel [ "src"; "dst" ] [ [ vi 1; vi 2 ]; [ vi 3; vi 4 ] ])
        loaded)

let test_csv_quoting_non_comma_separator () =
  (* Quoting is honored for every separator, not only comma: a
     semicolon-separated file with quoted fields containing the
     separator, quotes, and commas must round-trip. *)
  let schema =
    Schema.make
      [
        Schema.column ~ty:Column_type.T_int "id";
        Schema.column ~ty:Column_type.T_string "name";
      ]
  in
  let original =
    Relation.of_lists schema
      [
        [ vi 1; vs "plain" ];
        [ vi 2; vs "with;semicolon" ];
        [ vi 3; vs "with\"quote" ];
        [ vi 4; vs "a,comma stays literal" ];
      ]
  in
  let path = Filename.temp_file "dbspinner_test" ".ssv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save ~separator:';' original path;
      let loaded = Csv.load ~schema ~separator:';' path in
      Alcotest.check relation_testable "semicolon roundtrip" original loaded);
  (* split_line splits on the given separator only. *)
  Alcotest.(check (list string))
    "quoted separator is literal"
    [ "a"; "b;c"; "d" ]
    (Csv.split_line ~separator:';' "a;\"b;c\";d");
  Alcotest.(check (list string))
    "comma is an ordinary char under ';'" [ "a,b"; "c" ]
    (Csv.split_line ~separator:';' "a,b;c");
  Alcotest.(check (list string))
    "tab separator with quotes" [ "x\ty"; "z" ]
    (Csv.split_line ~separator:'\t' "\"x\ty\"\tz")

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "compare-int-float-boundary" `Quick
            test_value_compare_int_float_boundary;
          Alcotest.test_case "hash-consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "division-by-zero" `Quick
            test_value_division_by_zero;
          Alcotest.test_case "min-int-overflow" `Quick
            test_value_min_int_overflow;
          Alcotest.test_case "type-errors" `Quick test_value_type_errors;
          Alcotest.test_case "to-string" `Quick test_value_to_string;
        ] );
      ( "column-type",
        [ Alcotest.test_case "admits-coerce-parse" `Quick test_column_type ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "rename" `Quick test_schema_rename;
        ] );
      ( "relation",
        [
          Alcotest.test_case "row-ops" `Quick test_row_ops;
          Alcotest.test_case "bag-equality" `Quick test_relation_bag_equality;
          Alcotest.test_case "arity-check" `Quick test_relation_arity_check;
          Alcotest.test_case "delta-count" `Quick test_delta_count;
          Alcotest.test_case "column-extract" `Quick test_relation_column;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert-and-types" `Quick test_table_insert_and_types;
          Alcotest.test_case "update-delete" `Quick test_table_update_delete;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "base-tables" `Quick test_catalog_base_tables;
          Alcotest.test_case "rename-operator" `Quick test_catalog_rename_semantics;
          Alcotest.test_case "temp-shadowing" `Quick test_catalog_shadowing;
          Alcotest.test_case "snapshot-isolation" `Quick
            test_catalog_snapshot_isolation;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "separator-comments" `Quick
            test_csv_separator_and_comments;
          Alcotest.test_case "quoting-non-comma-separator" `Quick
            test_csv_quoting_non_comma_separator;
        ] );
    ]

(** Vectorized columnar execution: the columnar engine must be
    bit-identical to the row engine — same relations, same
    [Stats.logical_equal] counters — across the sequential,
    chunk-parallel, cached, delta and distributed executors, including
    the NULL-heavy corners the column bitmaps encode (all-NULL
    columns, NULL join keys, NULLs inside aggregates). *)

module Engine = Dbspinner.Engine
module Options = Dbspinner_rewrite.Options
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Parser = Dbspinner_sql.Parser
module Catalog = Dbspinner_storage.Catalog
module Relation = Dbspinner_storage.Relation
module Table = Dbspinner_storage.Table
module Value = Dbspinner_storage.Value
module Colbatch = Dbspinner_storage.Colbatch
module Stats = Dbspinner_exec.Stats
module Executor = Dbspinner_exec.Executor
module Parallel = Dbspinner_exec.Parallel
module Distributed = Dbspinner_mpp.Distributed
module Graph_gen = Dbspinner_graph.Graph_gen
module Loader = Dbspinner_workload.Loader
module Queries = Dbspinner_workload.Queries
open Helpers

let delta_off = { Options.default with Options.use_delta = false }

let lookup e name =
  Option.map Table.schema (Catalog.find_table_opt (Engine.catalog e) name)

let compile ?(options = Options.default) e sql =
  Iterative_rewrite.compile ~options ~lookup:(lookup e)
    (Parser.parse_query sql)

(** Run on a clean temp namespace with fresh stats. *)
let run ?parallel ?use_cache ~columnar e program =
  Catalog.clear_temps (Engine.catalog e);
  Executor.run_program_with_stats ?parallel ?use_cache ~columnar
    (Engine.catalog e) program

(** The core contract, asserted everywhere below: same rows, same
    logical counters, with the columnar toggle the only difference. *)
let check_modes ?options ~msg e sql =
  let p = compile ?options e sql in
  let r_row, s_row = run ~columnar:false e p in
  let r_col, s_col = run ~columnar:true e p in
  Alcotest.check relation_testable (msg ^ ": rows") r_row r_col;
  Alcotest.(check bool)
    (msg ^ ": logical_equal") true
    (Stats.logical_equal s_row s_col);
  r_col

(* ------------------------------------------------------------------ *)
(* Colbatch unit tests: the bitmap corners, independent of SQL         *)

let test_colbatch_all_null () =
  let c = Colbatch.of_values [| Value.Null; Value.Null; Value.Null |] in
  for i = 0 to 2 do
    Alcotest.(check bool) "is_null_at" true (Colbatch.is_null_at c i);
    Alcotest.check value_testable "get" Value.Null (Colbatch.get c i)
  done;
  Alcotest.(check int) "roundtrip width" 3
    (Array.length (Colbatch.to_values c))

let test_colbatch_masked_roundtrip () =
  (* Int-with-NULLs classifies to a typed column with a bitmap; the
     boxed view must reproduce the original values exactly. *)
  let vals = [| Value.Int 4; Value.Null; Value.Int (-7); Value.Null |] in
  let c = Colbatch.of_values vals in
  Array.iteri
    (fun i v -> Alcotest.check value_testable "cell" v (Colbatch.get c i))
    vals;
  Alcotest.(check bool) "masked" true (Colbatch.is_null_at c 1);
  Alcotest.(check bool) "unmasked" false (Colbatch.is_null_at c 2)

let test_colbatch_gather_pad () =
  let b =
    Colbatch.make ~len:3
      [| Colbatch.of_values [| Value.Int 1; Value.Int 2; Value.Int 3 |];
         Colbatch.of_values [| Value.Str "a"; Value.Null; Value.Str "c" |]
      |]
  in
  (* -1 is the outer-join pad: an all-NULL row. *)
  let g = Colbatch.gather_pad b [| 2; -1; 1; -1 |] in
  Alcotest.(check int) "length" 4 (Colbatch.length g);
  Alcotest.check value_testable "picked int" (Value.Int 3)
    (Colbatch.value_at g 0 0);
  Alcotest.check value_testable "pad int" Value.Null (Colbatch.value_at g 0 1);
  Alcotest.check value_testable "pad str" Value.Null (Colbatch.value_at g 1 3);
  Alcotest.check value_testable "carried null" Value.Null
    (Colbatch.value_at g 1 2);
  Alcotest.check value_testable "picked str" (Value.Str "c")
    (Colbatch.value_at g 1 0)

let test_colbatch_gather_of_gather () =
  (* A gather of an unforced gather composes selection vectors; the
     values must match gathering twice eagerly. *)
  let base =
    Colbatch.make ~len:5
      [| Colbatch.of_values
           [| Value.Int 10; Value.Int 11; Value.Int 12; Value.Int 13;
              Value.Int 14
           |]
      |]
  in
  let g1 = Colbatch.gather base [| 4; 2; 0; 2 |] in
  let g2 = Colbatch.gather_pad g1 [| 3; -1; 0 |] in
  Alcotest.check value_testable "composed pick" (Value.Int 12)
    (Colbatch.value_at g2 0 0);
  Alcotest.check value_testable "composed pad" Value.Null
    (Colbatch.value_at g2 0 1);
  Alcotest.check value_testable "composed head" (Value.Int 14)
    (Colbatch.value_at g2 0 2)

(* ------------------------------------------------------------------ *)
(* NULL semantics through SQL, row vs columnar                         *)

let null_engine () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (k INT, v INT)");
  ignore
    (Engine.execute e
       "INSERT INTO t VALUES (1, 10), (1, NULL), (2, NULL), (NULL, 5), (2, \
        20), (NULL, NULL), (3, NULL)");
  ignore (Engine.execute e "CREATE TABLE u (k INT, w INT)");
  ignore
    (Engine.execute e
       "INSERT INTO u VALUES (1, 100), (NULL, 200), (2, 300), (2, NULL)");
  e

let test_all_null_column () =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE a (x INT, y INT)");
  ignore
    (Engine.execute e "INSERT INTO a VALUES (1, NULL), (2, NULL), (3, NULL)");
  let r =
    check_modes ~msg:"all-null projection" e
      "SELECT y, x + 1 FROM a WHERE y IS NULL"
  in
  Alcotest.(check int) "all rows kept" 3 (Relation.cardinality r);
  let r =
    check_modes ~msg:"all-null aggregate" e
      "SELECT COUNT(y), SUM(y), MIN(y) FROM a"
  in
  Alcotest.check row_testable "count 0, sums NULL"
    [| Value.Int 0; Value.Null; Value.Null |]
    (Relation.rows r).(0)

let test_null_join_keys () =
  let e = null_engine () in
  (* NULL keys match nothing on either side. *)
  let r =
    check_modes ~msg:"inner join" e
      "SELECT t.k, t.v, u.w FROM t JOIN u ON t.k = u.k"
  in
  Array.iter
    (fun (row : Dbspinner_storage.Row.t) ->
      Alcotest.(check bool) "no NULL key survives an inner join" false
        (Value.is_null row.(0)))
    (Relation.rows r);
  ignore
    (check_modes ~msg:"left join pads NULL keys" e
       "SELECT t.k, u.w FROM t LEFT JOIN u ON t.k = u.k");
  ignore
    (check_modes ~msg:"right join" e
       "SELECT t.k, u.k, u.w FROM t RIGHT JOIN u ON t.k = u.k");
  ignore
    (check_modes ~msg:"full join" e
       "SELECT t.k, u.k FROM t FULL OUTER JOIN u ON t.k = u.k")

let test_null_aggregates () =
  let e = null_engine () in
  let r =
    check_modes ~msg:"grouped aggregates over NULLs" e
      "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t \
       GROUP BY k"
  in
  (* Group k=3 has only NULL v: COUNT(v)=0 and every fold is NULL. *)
  let found = ref false in
  Array.iter
    (fun (row : Dbspinner_storage.Row.t) ->
      if Value.equal row.(0) (Value.Int 3) then begin
        found := true;
        Alcotest.check row_testable "k=3 group"
          [| Value.Int 3; Value.Int 1; Value.Int 0; Value.Null; Value.Null;
             Value.Null; Value.Null
          |]
          row
      end)
    (Relation.rows r);
  Alcotest.(check bool) "k=3 group present" true !found

(* ------------------------------------------------------------------ *)
(* Cross-executor equivalence on a paper workload                      *)

let test_executors_agree () =
  let g =
    Graph_gen.chain_with_shortcuts ~seed:7 ~num_nodes:120 ~shortcut_every:10
  in
  let e = Loader.engine_for g in
  let sql = Queries.sssp ~source:0 ~iterations:10 () in
  let p = compile ~options:delta_off e sql in
  let p_delta = compile e sql in
  let r_row, s_row = run ~columnar:false e p in
  let check ~msg (r, s) =
    Alcotest.check relation_testable (msg ^ ": rows") r_row r;
    Alcotest.(check bool)
      (msg ^ ": logical_equal") true
      (Stats.logical_equal s_row s)
  in
  check ~msg:"sequential columnar" (run ~columnar:true e p);
  let parallel = Parallel.context ~chunk_rows:16 ~workers:4 () in
  check ~msg:"chunk-parallel columnar" (run ?parallel ~columnar:true e p);
  check ~msg:"uncached columnar" (run ~use_cache:false ~columnar:true e p);
  (* Delta mode changes the delta counters by design; rows must agree
     and the two columnar toggles must stay logical_equal. *)
  let rd_row, sd_row = run ~columnar:false e p_delta in
  let rd_col, sd_col = run ~columnar:true e p_delta in
  Alcotest.check relation_testable "delta rows (row vs columnar)" rd_row rd_col;
  Alcotest.check relation_testable "delta rows (vs delta-off)" r_row rd_col;
  Alcotest.(check bool) "delta logical_equal" true
    (Stats.logical_equal sd_row sd_col);
  let dist ~columnar =
    Catalog.clear_temps (Engine.catalog e);
    let stats = Stats.create () in
    let rel, _ =
      Distributed.run_program ~workers:4 ~stats ~columnar (Engine.catalog e) p
    in
    (rel, stats)
  in
  let rx_row, sx_row = dist ~columnar:false in
  let rx_col, sx_col = dist ~columnar:true in
  Alcotest.(check bool) "distributed rows (row vs columnar)" true
    (approx_equal_bag rx_row rx_col);
  Alcotest.(check bool) "distributed rows (vs sequential)" true
    (approx_equal_bag r_row rx_col);
  Alcotest.(check bool) "distributed logical_equal" true
    (Stats.logical_equal sx_row sx_col)

(* ------------------------------------------------------------------ *)
(* Property: random iterative programs agree, NULLs included           *)

let kv_engine rows =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (a INT, b INT)");
  if rows <> [] then
    ignore
      (Engine.execute e
         (Printf.sprintf "INSERT INTO t VALUES %s"
            (String.concat ", "
               (List.map
                  (fun (a, b) ->
                    Printf.sprintf "(%d, %s)" a
                      (match b with
                      | None -> "NULL"
                      | Some b -> string_of_int b))
                  rows))));
  e

let kv_sql ?(where = "") ~step_expr ~until () =
  Printf.sprintf
    {|WITH ITERATIVE r (k, v) AS (
  SELECT a, MIN(b) FROM t WHERE a IS NOT NULL GROUP BY a
ITERATE SELECT k, %s FROM r%s
UNTIL %s )
SELECT k, v FROM r|}
    step_expr
    (if where = "" then "" else " WHERE " ^ where)
    until

let prop_columnar_on_off =
  let open QCheck2 in
  let rows_gen =
    Gen.(
      list_size (int_range 0 15)
        (pair (int_range 0 6) (option (int_range (-8) 8))))
  in
  let query_gen =
    Gen.(
      let* step_expr =
        oneofl
          [ "v + 1"; "v + k"; "LEAST(v, k)"; "v"; "v * 2";
            "COALESCE(v, 0) + 1"; "GREATEST(v, 0 - k)"
          ]
      in
      let* where = oneofl [ ""; "v < 5"; "k > 2"; "v > k"; "v IS NOT NULL" ] in
      let* rounds = int_range 1 5 in
      return (step_expr, where, rounds))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120
       ~name:"columnar on = columnar off on random iterative programs"
       ~print:(fun (rows, (step_expr, where, rounds)) ->
         Printf.sprintf "%s over %d rows"
           (kv_sql ~where ~step_expr
              ~until:(Printf.sprintf "%d ITERATIONS" rounds)
              ())
           (List.length rows))
       (Gen.pair rows_gen query_gen)
       (fun (rows, (step_expr, where, rounds)) ->
         let e = kv_engine rows in
         let sql =
           kv_sql ~where ~step_expr
             ~until:(Printf.sprintf "%d ITERATIONS" rounds)
             ()
         in
         let p = compile e sql in
         let r_row, s_row = run ~columnar:false e p in
         let r_col, s_col = run ~columnar:true e p in
         if not (Relation.equal_bag r_row r_col) then
           QCheck2.Test.fail_reportf "rows differ:\nrow:\n%s\ncolumnar:\n%s"
             (Relation.to_table_string r_row)
             (Relation.to_table_string r_col)
         else if not (Stats.logical_equal s_row s_col) then
           QCheck2.Test.fail_reportf "logical stats differ:\n%s\nvs\n%s"
             (Stats.to_string s_row) (Stats.to_string s_col)
         else true))

let () =
  Alcotest.run "columnar"
    [
      ( "colbatch",
        [
          Alcotest.test_case "all-null-column" `Quick test_colbatch_all_null;
          Alcotest.test_case "masked-roundtrip" `Quick
            test_colbatch_masked_roundtrip;
          Alcotest.test_case "gather-pad" `Quick test_colbatch_gather_pad;
          Alcotest.test_case "gather-of-gather" `Quick
            test_colbatch_gather_of_gather;
        ] );
      ( "nulls",
        [
          Alcotest.test_case "all-null-column-sql" `Quick test_all_null_column;
          Alcotest.test_case "null-join-keys" `Quick test_null_join_keys;
          Alcotest.test_case "null-aggregates" `Quick test_null_aggregates;
        ] );
      ( "executors",
        [ Alcotest.test_case "five-executors-agree" `Quick test_executors_agree ] );
      ("properties", [ prop_columnar_on_off ]);
    ]

(** The rule-combinator rewrite engine and the repaired cost model:

    - the {!Rule} combinators ([>>>], [alt], [fixpoint], [bottom_up],
      [cost_guard]) and the per-rule log they populate;
    - golden rule-log checks for every migrated pass (constant-fold,
      outer-to-inner, common-result, predicate-pushdown,
      semi-naive-delta, plan-filter-pushdown);
    - engine-on vs engine-off bit-identity: same program text on the
      paper workloads, and a property running random iterative queries
      through all five executors;
    - the cost model's per-loop accounting, compound-predicate
      selectivity, and cardinality clamping;
    - cost-based rewrite arbitration, including the decision flip: the
      common-result hoist is kept for a long loop and dropped when the
      termination condition prices the loop at one iteration. *)

module Engine = Dbspinner.Engine
module Options = Dbspinner_rewrite.Options
module Rule = Dbspinner_rewrite.Rule
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Parser = Dbspinner_sql.Parser
module Ast = Dbspinner_sql.Ast
module Program = Dbspinner_plan.Program
module Logical = Dbspinner_plan.Logical
module Bound_expr = Dbspinner_plan.Bound_expr
module Cost = Dbspinner_plan.Cost
module Explain = Dbspinner_plan.Explain
module Schema = Dbspinner_storage.Schema
module Catalog = Dbspinner_storage.Catalog
module Relation = Dbspinner_storage.Relation
module Value = Dbspinner_storage.Value
module Stats = Dbspinner_exec.Stats
module Executor = Dbspinner_exec.Executor
module Parallel = Dbspinner_exec.Parallel
module Distributed = Dbspinner_mpp.Distributed
module Trace = Dbspinner_obs.Trace
module Graph_gen = Dbspinner_graph.Graph_gen
module Loader = Dbspinner_workload.Loader
module Queries = Dbspinner_workload.Queries
open Helpers

let engine_off = { Options.default with Options.use_rule_engine = false }

let lookup name =
  match String.lowercase_ascii name with
  | "edges" -> Some (Schema.of_names [ "src"; "dst"; "weight" ])
  | "vertexstatus" -> Some (Schema.of_names [ "node"; "status" ])
  | _ -> None

let compile ?(options = Options.default) ?statistics sql =
  Iterative_rewrite.compile ~options ?statistics ~lookup (Parser.parse_query sql)

let compile_report ?(options = Options.default) ?statistics sql =
  Iterative_rewrite.compile_with_report ~options ?statistics ~lookup
    (Parser.parse_query sql)

let fired report name =
  Rule.fired_count report.Iterative_rewrite.rewrite_log name

let notes_of report name =
  match
    List.find_opt
      (fun e -> e.Rule.rule = name)
      (Rule.entries report.Iterative_rewrite.rewrite_log)
  with
  | Some e -> String.concat "\n" e.Rule.notes
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

let incr_below n =
  Rule.make ~name:"incr" (fun x -> if x < n then Some (x + 1) else None)

let test_make_records_firings () =
  let log = Rule.create_log () in
  Alcotest.(check int) "fires below bound" 1 (Rule.run (incr_below 5) log 0);
  Alcotest.(check int) "declines at bound" 5 (Rule.run (incr_below 5) log 5);
  Alcotest.(check int) "only the match counted" 1 (Rule.fired_count log "incr");
  Alcotest.(check int) "total" 1 (Rule.total_fired log)

let test_seq_runs_both () =
  let log = Rule.create_log () in
  let double = Rule.make ~name:"double" (fun x -> Some (x * 2)) in
  let r = Rule.(incr_below 10 >>> double) in
  Alcotest.(check int) "incr then double" 8 (Rule.run r log 3);
  (* seq matches when either side matched: a declined first leg still
     lets the second fire. *)
  Alcotest.(check int) "first declines, second fires" 24 (Rule.run r log 12);
  Alcotest.(check int) "double fired twice" 2 (Rule.fired_count log "double")

let test_alt_first_match_wins () =
  let log = Rule.create_log () in
  let negate = Rule.make ~name:"negate" (fun x -> Some (-x)) in
  let r = Rule.alt (incr_below 5) negate in
  Alcotest.(check int) "first matches" 3 (Rule.run r log 2);
  Alcotest.(check int) "falls through to second" (-7) (Rule.run r log 7);
  Alcotest.(check int) "negate fired once" 1 (Rule.fired_count log "negate")

let test_fixpoint_iterates_to_decline () =
  let log = Rule.create_log () in
  Alcotest.(check int) "climbs to the bound" 5
    (Rule.run (Rule.fixpoint (incr_below 5)) log 0);
  Alcotest.(check int) "one firing per step" 5 (Rule.fired_count log "incr");
  (* A rule that always matches must stop at max_passes. *)
  let log = Rule.create_log () in
  let always = Rule.make ~name:"always" (fun x -> Some (x + 1)) in
  Alcotest.(check int) "bounded by max_passes" 3
    (Rule.run (Rule.fixpoint ~max_passes:3 always) log 0)

let test_bottom_up_over_logical () =
  (* distinct(distinct(x)) -> distinct(x), applied through enclosing
     nodes by the generic one-layer traversal. *)
  let dedup =
    Rule.make ~name:"dedup-distinct" (function
      | Logical.L_distinct (Logical.L_distinct _ as inner) -> Some inner
      | _ -> None)
  in
  let plan =
    Logical.limit 5
      (Logical.distinct
         (Logical.distinct
            (Logical.distinct (Logical.values (rel [ "a" ] [ [ vi 1 ] ])))))
  in
  let log = Rule.create_log () in
  let r = Rule.bottom_up ~map_children:Logical.map_children dedup in
  (match Rule.run r log plan with
  | Logical.L_limit (5, Logical.L_distinct (Logical.L_values _)) -> ()
  | _ -> Alcotest.fail "nested distinct not collapsed");
  Alcotest.(check int) "collapsed twice" 2
    (Rule.fired_count log "dedup-distinct");
  (* No match anywhere -> the traversal declines as a whole. *)
  let log = Rule.create_log () in
  Alcotest.(check bool) "no match -> None" true
    (Rule.apply r log (Logical.values (rel [ "a" ] [])) = None)

let test_cost_guard_keeps_and_reverts () =
  let cost x = float_of_int x in
  let log = Rule.create_log () in
  let double = Rule.make ~name:"double" (fun x -> Some (x * 2)) in
  let halve = Rule.make ~name:"halve" (fun x -> Some (x / 2)) in
  (* Doubling raises the estimate: reverted, and the trial firing must
     not surface in the log. *)
  Alcotest.(check int) "rejected rewrite reverts" 3
    (Rule.run (Rule.cost_guard ~cost double) log 3);
  Alcotest.(check int) "rejected firing not counted" 0
    (Rule.fired_count log "double");
  (* Halving lowers it: kept and counted. *)
  Alcotest.(check int) "kept rewrite applies" 3
    (Rule.run (Rule.cost_guard ~cost halve) log 6);
  Alcotest.(check int) "kept firing counted" 1 (Rule.fired_count log "halve");
  let text = String.concat "\n" (Rule.to_lines log) in
  Alcotest.(check bool) "rejection noted" true
    (contains text "rejected by cost guard");
  Alcotest.(check bool) "keep noted with both estimates" true
    (contains text "kept by cost guard (6 -> 3)")

let test_log_rendering () =
  let log = Rule.create_log () in
  Rule.record log "a";
  Rule.record ~detail:"second firing" log "a";
  Rule.note log "b" "just a note (%d)" 7;
  ignore (Rule.run (Rule.make ~name:"silent" (fun _ -> None)) log 0);
  Alcotest.(check (list string))
    "fired lines, indented notes, silent rules omitted"
    [ "rule a: fired 2"; "  second firing"; "rule b: fired 0"; "  just a note (7)" ]
    (Rule.to_lines log)

(* ------------------------------------------------------------------ *)
(* Golden rule logs for the migrated passes                            *)

let pr_vs_query = Queries.pr_vs ~iterations:10 ()
let ff_query = Queries.ff ~modulus:10 ~iterations:5 ()

let test_log_constant_fold () =
  let _, r = compile_report "SELECT 1 + 2 AS x" in
  Alcotest.(check int) "fold fired" 1 (fired r "constant-fold")

let test_log_outer_to_inner () =
  let _, r =
    compile_report
      "SELECT e.src FROM edges AS e LEFT JOIN vertexStatus AS v ON v.node = \
       e.dst WHERE v.status = 1"
  in
  Alcotest.(check int) "outer-to-inner fired" 1 (fired r "outer-to-inner")

let test_log_common_result () =
  let _, r = compile_report pr_vs_query in
  Alcotest.(check int) "common-result fired once" 1 (fired r "common-result");
  Alcotest.(check int) "counter derived from the log" 1
    r.Iterative_rewrite.common_results_extracted;
  Alcotest.(check bool) "note names the materialized CTE" true
    (contains (notes_of r "common-result") "__common");
  Alcotest.(check bool) "rendered log has the fired line" true
    (List.mem "rule common-result: fired 1"
       (Rule.to_lines r.Iterative_rewrite.rewrite_log))

let test_log_predicate_pushdown () =
  let _, r = compile_report ff_query in
  Alcotest.(check int) "predicate-pushdown fired once" 1
    (fired r "predicate-pushdown");
  Alcotest.(check int) "counter derived from the log" 1
    r.Iterative_rewrite.predicates_pushed;
  Alcotest.(check bool) "note prints the pushed predicate" true
    (contains (notes_of r "predicate-pushdown") "% 10")

let test_log_semi_naive_delta () =
  let _, r = compile_report ff_query in
  Alcotest.(check int) "semi-naive-delta fired once" 1
    (fired r "semi-naive-delta");
  Alcotest.(check int) "counter derived from the log" 1
    r.Iterative_rewrite.delta_paths

let test_log_plan_filter_pushdown () =
  let _, r =
    compile_report
      "SELECT * FROM (SELECT src, dst FROM edges) AS s WHERE s.src = 1"
  in
  Alcotest.(check bool) "plan-filter-pushdown fired" true
    (fired r "plan-filter-pushdown" > 0)

let test_log_empty_with_engine_off () =
  let _, r = compile_report ~options:engine_off ff_query in
  Alcotest.(check (list string)) "no log entries" []
    (Rule.to_lines r.Iterative_rewrite.rewrite_log);
  (* The legacy counters still work without the engine. *)
  Alcotest.(check int) "legacy pushdown counter" 1
    r.Iterative_rewrite.predicates_pushed;
  Alcotest.(check int) "legacy delta counter" 1 r.Iterative_rewrite.delta_paths

(* ------------------------------------------------------------------ *)
(* Engine on/off bit-identity                                          *)

let test_same_program_text_on_workloads () =
  List.iter
    (fun (name, sql) ->
      let on = compile sql in
      let off = compile ~options:engine_off sql in
      Alcotest.(check string)
        (name ^ ": engine on and off compile the same program")
        (Explain.program_to_string off)
        (Explain.program_to_string on))
    [
      ("pr", Queries.pr ~iterations:10 ());
      ("pr-vs", pr_vs_query);
      ("sssp", Queries.sssp ~source:1 ~iterations:10 ());
      ("ff", ff_query);
    ]

let kv_engine rows =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (a INT, b INT)");
  if rows <> [] then
    ignore
      (Engine.execute e
         (Printf.sprintf "INSERT INTO t VALUES %s"
            (String.concat ", "
               (List.map (fun (a, b) -> Printf.sprintf "(%d, %d)" a b) rows))));
  e

let kv_sql ?(key_expr = "k") ?(where = "") ~step_expr ~until () =
  Printf.sprintf
    {|WITH ITERATIVE r (k, v) AS (
  SELECT a, MIN(b) FROM t WHERE a IS NOT NULL GROUP BY a
ITERATE SELECT %s, %s FROM r%s
UNTIL %s )
SELECT k, v FROM r|}
    key_expr step_expr
    (if where = "" then "" else " WHERE " ^ where)
    until

let engine_lookup e name =
  Option.map Dbspinner_storage.Table.schema
    (Catalog.find_table_opt (Engine.catalog e) name)

let compile_on_engine ?(options = Options.default) e sql =
  Iterative_rewrite.compile ~options ~lookup:(engine_lookup e)
    (Parser.parse_query sql)

(** Run on a clean temp namespace with fresh stats. *)
let run ?parallel ?use_cache ?trace e program =
  Catalog.clear_temps (Engine.catalog e);
  Executor.run_program_with_stats ?parallel ?use_cache ?trace
    (Engine.catalog e) program

(** All five executors: (name, relation, stats) per executor. *)
let run_all_executors e program =
  let seq, s_seq = run e program in
  let parallel =
    match Parallel.context ~chunk_rows:16 ~workers:4 () with
    | None -> []
    | Some parallel ->
      let r, s = run ~parallel e program in
      [ ("parallel", r, s) ]
  in
  let uncached, s_unc = run ~use_cache:false e program in
  let tr = Trace.create () in
  let traced, s_tr = run ~trace:tr e program in
  Catalog.clear_temps (Engine.catalog e);
  let s_dist = Stats.create () in
  let dist, _ =
    Distributed.run_program ~workers:3 ~stats:s_dist (Engine.catalog e)
      program
  in
  ("sequential", seq, s_seq)
  :: (parallel
     @ [
         ("cached-off", uncached, s_unc);
         ("traced", traced, s_tr);
         ("distributed", dist, s_dist);
       ])

let prop_engine_on_off =
  let open QCheck2 in
  let rows_gen =
    Gen.(list_size (int_range 0 12) (pair (int_range 0 6) (int_range (-8) 8)))
  in
  let query_gen =
    Gen.(
      let* key_expr = oneofl [ "k"; "k"; "k + 0" ] in
      let* step_expr =
        oneofl [ "v + 1"; "v + k"; "LEAST(v, k)"; "v * 2"; "LEAST(v, 0)" ]
      in
      let* where = oneofl [ ""; "v < 5"; "k > 2" ] in
      let* rounds = int_range 1 4 in
      return (key_expr, step_expr, where, rounds))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50
       ~name:"rule engine on = off across all executors"
       ~print:(fun (rows, (key_expr, step_expr, where, rounds)) ->
         Printf.sprintf "%s over %d rows"
           (kv_sql ~key_expr ~where ~step_expr
              ~until:(Printf.sprintf "%d ITERATIONS" rounds)
              ())
           (List.length rows))
       (Gen.pair rows_gen query_gen)
       (fun (rows, (key_expr, step_expr, where, rounds)) ->
         let e = kv_engine rows in
         let sql =
           kv_sql ~key_expr ~where ~step_expr
             ~until:(Printf.sprintf "%d ITERATIONS" rounds)
             ()
         in
         let p_on = compile_on_engine e sql in
         let p_off = compile_on_engine ~options:engine_off e sql in
         if
           Explain.program_to_string p_on <> Explain.program_to_string p_off
         then
           QCheck2.Test.fail_reportf "programs differ:\n%s\nvs\n%s"
             (Explain.program_to_string p_on)
             (Explain.program_to_string p_off)
         else begin
           let on_runs = run_all_executors e p_on in
           let off_runs = run_all_executors e p_off in
           List.iter2
             (fun (name, r_on, s_on) (_, r_off, s_off) ->
               if not (Relation.equal_bag r_on r_off) then
                 QCheck2.Test.fail_reportf "%s: rows differ:\non:\n%s\noff:\n%s"
                   name
                   (Relation.to_table_string r_on)
                   (Relation.to_table_string r_off)
               else if not (Stats.logical_equal s_on s_off) then
                 QCheck2.Test.fail_reportf "%s: stats differ:\n%s\nvs\n%s" name
                   (Stats.to_string s_on) (Stats.to_string s_off))
             on_runs off_runs;
           true
         end))

(* ------------------------------------------------------------------ *)
(* Cost model: per-loop accounting, selectivity, clamping              *)

let no_stats = { Cost.cardinality_of = (fun _ -> None) }

let test_per_loop_iteration_accounting () =
  (* Two iterative CTEs with different bounds: each loop body must be
     charged at its own iteration count, not the first loop's. *)
  let p =
    compile
      {|WITH ITERATIVE a (k, x) AS (SELECT 1, 0 ITERATE SELECT k, x + 1 FROM a UNTIL 3 ITERATIONS),
       ITERATIVE b (k, y) AS (SELECT 1, 100 ITERATE SELECT k, y - 1 FROM b UNTIL 7 ITERATIONS)
SELECT a.k, x, y FROM a JOIN b ON a.k = b.k|}
  in
  let est = Cost.program no_stats p in
  Alcotest.(check int) "two loops costed" 2 (List.length est.Cost.loops);
  let iters =
    List.map (fun l -> l.Cost.loop_iterations) est.Cost.loops
  in
  Alcotest.(check (list (float 1e-9))) "each at its own bound" [ 3.0; 7.0 ]
    iters;
  let expected_total =
    List.fold_left
      (fun acc l -> acc +. (l.Cost.body_cost *. l.Cost.loop_iterations))
      est.Cost.setup_cost est.Cost.loops
  in
  Alcotest.(check (float 1e-6)) "total = setup + sum of body x iters"
    expected_total est.Cost.total_cost;
  (* The first loop still backs the flat summary fields. *)
  Alcotest.(check (float 1e-9)) "summary iterations are loop 1's" 3.0
    est.Cost.iterations;
  Alcotest.(check (float 1e-9)) "summary body is loop 1's"
    (List.hd est.Cost.loops).Cost.body_cost est.Cost.per_iteration_cost

let eq_pred col n =
  Bound_expr.B_binop (Ast.Eq, Bound_expr.B_col col, Bound_expr.B_lit (Value.Int n))

let lt_pred col n =
  Bound_expr.B_binop (Ast.Lt, Bound_expr.B_col col, Bound_expr.B_lit (Value.Int n))

let test_compound_predicate_selectivity () =
  let check_sel msg expected pred =
    Alcotest.(check (float 1e-9)) msg expected (Cost.pred_selectivity pred)
  in
  check_sel "equality" 0.1 (eq_pred 0 1);
  check_sel "non-equality" 0.33 (lt_pred 0 1);
  check_sel "two equalities compound" 0.01
    (Bound_expr.conjoin [ eq_pred 0 1; eq_pred 1 2 ]);
  check_sel "mixed conjunction compounds" (0.1 *. 0.33)
    (Bound_expr.conjoin [ eq_pred 0 1; lt_pred 1 9 ]);
  (* The compound estimate must feed the filter's row count. *)
  let stats = { Cost.cardinality_of = (fun _ -> Some 1000) } in
  let filtered =
    Logical.filter
      (Bound_expr.conjoin [ eq_pred 0 1; eq_pred 1 2 ])
      (Logical.scan ~name:"edges" ~schema:(Schema.of_names [ "src"; "dst" ]))
  in
  Alcotest.(check (float 1e-6)) "1000 rows x 0.01" 10.0
    (Cost.plan stats filtered).Cost.rows

let test_cardinality_clamping () =
  Alcotest.(check int) "nan -> 0" 0 (Cost.cardinality_of_rows Float.nan);
  Alcotest.(check int) "negative -> 0" 0 (Cost.cardinality_of_rows (-5.0));
  Alcotest.(check int) "zero -> 0" 0 (Cost.cardinality_of_rows 0.0);
  Alcotest.(check int) "infinity saturates" max_int
    (Cost.cardinality_of_rows Float.infinity);
  Alcotest.(check int) "overflow saturates" max_int
    (Cost.cardinality_of_rows 1e30);
  Alcotest.(check int) "ordinary estimate truncates" 42
    (Cost.cardinality_of_rows 42.9)

(* ------------------------------------------------------------------ *)
(* Cost-based arbitration and the decision flip                        *)

let graph_stats =
  {
    Cost.cardinality_of =
      (fun name ->
        match String.lowercase_ascii name with
        | "edges" -> Some 200
        | "vertexstatus" -> Some 50
        | _ -> None);
  }

(** PR-VS with a parametric termination condition: the invariant
    [edges JOIN vertexStatus] subtree is the common-result candidate. *)
let pr_vs_until until =
  Printf.sprintf
    {|WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
   SELECT PageRank.node,
     PageRank.rank + PageRank.delta,
     COALESCE(0.85 * SUM(IncomingRank.delta * IncomingEdges.weight), 0)
   FROM PageRank
     LEFT JOIN (edges AS IncomingEdges
                JOIN vertexStatus AS avail_pr
                  ON avail_pr.node = IncomingEdges.dst)
       ON PageRank.node = IncomingEdges.dst
     LEFT JOIN PageRank AS IncomingRank
       ON IncomingRank.node = IncomingEdges.src
   WHERE avail_pr.status <> 0
   GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL %s )
SELECT Node, Rank FROM PageRank|}
    until

let test_flip_hoist_kept_for_long_loop () =
  let _, r = compile_report ~statistics:graph_stats (pr_vs_until "10 ITERATIONS") in
  Alcotest.(check int) "hoist kept" 1
    r.Iterative_rewrite.common_results_extracted;
  Alcotest.(check int) "drop rule reverted" 0 (fired r "cost:no-common-result");
  Alcotest.(check bool) "rejection priced in the log" true
    (contains (notes_of r "cost:no-common-result") "rejected by cost guard")

let test_flip_hoist_dropped_for_single_iteration () =
  (* UNTIL 1 UPDATES prices the loop at one iteration: materializing
     the invariant join before the loop is pure overhead, so the cost
     guard keeps the drop. *)
  let _, r = compile_report ~statistics:graph_stats (pr_vs_until "1 UPDATES") in
  Alcotest.(check int) "hoist dropped" 0
    r.Iterative_rewrite.common_results_extracted;
  Alcotest.(check int) "drop rule fired" 1 (fired r "cost:no-common-result");
  Alcotest.(check bool) "keep priced in the log" true
    (contains (notes_of r "cost:no-common-result") "kept by cost guard")

let test_flip_requires_stats_and_knob () =
  (* No statistics: arbitration cannot price anything — always-on. *)
  let _, r = compile_report (pr_vs_until "1 UPDATES") in
  Alcotest.(check int) "no stats -> hoist stays" 1
    r.Iterative_rewrite.common_results_extracted;
  (* Knob off: statistics ignored. *)
  let _, r =
    compile_report
      ~options:{ Options.default with Options.cost_based_rewrites = false }
      ~statistics:graph_stats (pr_vs_until "1 UPDATES")
  in
  Alcotest.(check int) "knob off -> hoist stays" 1
    r.Iterative_rewrite.common_results_extracted;
  Alcotest.(check int) "no guard decision logged" 0
    (fired r "cost:no-common-result")

let test_push_survives_arbitration () =
  (* The §V-B push shrinks the base and every iteration: the cost
     guard must price dropping it as a regression. *)
  let _, r = compile_report ~statistics:graph_stats ff_query in
  Alcotest.(check int) "push kept" 1 r.Iterative_rewrite.predicates_pushed;
  Alcotest.(check int) "drop rule reverted" 0
    (fired r "cost:no-predicate-pushdown");
  Alcotest.(check bool) "rejection priced in the log" true
    (contains (notes_of r "cost:no-predicate-pushdown") "rejected by cost guard")

let test_flip_preserves_semantics () =
  (* The dropped-hoist program must return exactly what the always-on
     program returns. *)
  let g = Graph_gen.power_law ~seed:3 ~num_nodes:40 ~edges_per_node:3 in
  let e = Loader.engine_for g in
  let sql = pr_vs_until "1 UPDATES" in
  let stats_of name =
    Option.map Dbspinner_storage.Table.cardinality
      (Catalog.find_table_opt (Engine.catalog e) name)
  in
  let statistics = { Cost.cardinality_of = stats_of } in
  let arbitrated =
    Iterative_rewrite.compile ~statistics ~lookup:(engine_lookup e)
      (Parser.parse_query sql)
  in
  let always_on = compile_on_engine e sql in
  let r_arb, _ = run e arbitrated in
  let r_on, _ = run e always_on in
  Alcotest.(check bool) "same rows either way" true
    (approx_equal_bag r_arb r_on)

(* ------------------------------------------------------------------ *)
(* EXPLAIN surfaces the log                                            *)

let test_explain_shows_rewrite_log () =
  let e = tiny_graph_engine () in
  match Engine.execute e ("EXPLAIN " ^ Queries.ff ~modulus:2 ~iterations:3 ()) with
  | Engine.Explained text ->
    Alcotest.(check bool) "has the log header" true
      (contains text "Rewrite log:");
    Alcotest.(check bool) "names the pushdown rule" true
      (contains text "rule predicate-pushdown: fired 1");
    Alcotest.(check bool) "names the delta rule" true
      (contains text "rule semi-naive-delta: fired 1")
  | _ -> Alcotest.fail "expected EXPLAIN output"

let test_explain_log_silent_with_engine_off () =
  let e = tiny_graph_engine () in
  let explain_ff () =
    match
      Engine.execute e ("EXPLAIN " ^ Queries.ff ~modulus:2 ~iterations:3 ())
    with
    | Engine.Explained text -> text
    | _ -> Alcotest.fail "expected EXPLAIN output"
  in
  (* Engine off: the pass rules stop logging, but cost arbitration is
     an independent knob and still prices its decisions. *)
  Engine.set_options e
    { (Engine.options e) with Options.use_rule_engine = false };
  let text = explain_ff () in
  Alcotest.(check bool) "no pass-rule lines" false
    (contains text "rule predicate-pushdown:");
  Alcotest.(check bool) "cost decisions still surface" true
    (contains text "cost:no-predicate-pushdown");
  (* Both off: nothing left to log. *)
  Engine.set_options e
    {
      (Engine.options e) with
      Options.use_rule_engine = false;
      Options.cost_based_rewrites = false;
    };
  Alcotest.(check bool) "no log section at all" false
    (contains (explain_ff ()) "Rewrite log:")

let () =
  Alcotest.run "rules"
    [
      ( "combinators",
        [
          Alcotest.test_case "make-records" `Quick test_make_records_firings;
          Alcotest.test_case "seq" `Quick test_seq_runs_both;
          Alcotest.test_case "alt" `Quick test_alt_first_match_wins;
          Alcotest.test_case "fixpoint" `Quick test_fixpoint_iterates_to_decline;
          Alcotest.test_case "bottom-up" `Quick test_bottom_up_over_logical;
          Alcotest.test_case "cost-guard" `Quick
            test_cost_guard_keeps_and_reverts;
          Alcotest.test_case "log-rendering" `Quick test_log_rendering;
        ] );
      ( "rule-logs",
        [
          Alcotest.test_case "constant-fold" `Quick test_log_constant_fold;
          Alcotest.test_case "outer-to-inner" `Quick test_log_outer_to_inner;
          Alcotest.test_case "common-result" `Quick test_log_common_result;
          Alcotest.test_case "predicate-pushdown" `Quick
            test_log_predicate_pushdown;
          Alcotest.test_case "semi-naive-delta" `Quick test_log_semi_naive_delta;
          Alcotest.test_case "plan-filter-pushdown" `Quick
            test_log_plan_filter_pushdown;
          Alcotest.test_case "engine-off-empty" `Quick
            test_log_empty_with_engine_off;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "workload-program-text" `Quick
            test_same_program_text_on_workloads;
          prop_engine_on_off;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "per-loop-accounting" `Quick
            test_per_loop_iteration_accounting;
          Alcotest.test_case "compound-selectivity" `Quick
            test_compound_predicate_selectivity;
          Alcotest.test_case "cardinality-clamp" `Quick
            test_cardinality_clamping;
        ] );
      ( "cost-arbitration",
        [
          Alcotest.test_case "hoist-kept-long-loop" `Quick
            test_flip_hoist_kept_for_long_loop;
          Alcotest.test_case "hoist-dropped-one-iteration" `Quick
            test_flip_hoist_dropped_for_single_iteration;
          Alcotest.test_case "needs-stats-and-knob" `Quick
            test_flip_requires_stats_and_knob;
          Alcotest.test_case "push-survives" `Quick
            test_push_survives_arbitration;
          Alcotest.test_case "flip-preserves-semantics" `Quick
            test_flip_preserves_semantics;
        ] );
      ( "explain",
        [
          Alcotest.test_case "shows-rewrite-log" `Quick
            test_explain_shows_rewrite_log;
          Alcotest.test_case "silent-when-off" `Quick
            test_explain_log_silent_with_engine_off;
        ] );
    ]

(** Durability tests: CRC/frame/codec units, snapshot and WAL
    round-trips, recovery invariants (torn tails discarded, corruption
    refused, digests validated), and a kill-the-server chaos harness
    that SIGKILLs the real binary at seeded points and proves recovery
    is bit-identical to a never-crashed oracle. *)

module Crc32 = Dbspinner_durable.Crc32
module Frame = Dbspinner_durable.Frame
module Codec = Dbspinner_durable.Codec
module Snapshot = Dbspinner_durable.Snapshot
module Wal = Dbspinner_durable.Wal
module Durable = Dbspinner_durable.Durable
module Catalog = Dbspinner_storage.Catalog
module Table = Dbspinner_storage.Table
module Relation = Dbspinner_storage.Relation
module Value = Dbspinner_storage.Value
module Engine = Dbspinner.Engine
module Client = Dbspinner_server.Client
module Rng = Dbspinner_graph.Rng

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(** A fresh (pre-cleaned) scratch directory for one test. *)
let tmp_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-durable-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf dir;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(** The single durable file with the given extension in [dir]. *)
let the_file dir suffix =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun e -> Filename.check_suffix e suffix)
  with
  | [ e ] -> Filename.concat dir e
  | files ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one %s in %s, found %d" suffix dir
         (List.length files))

(* ------------------------------------------------------------------ *)
(* CRC32                                                               *)

let test_crc32_vectors () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  (* Incremental update over a split buffer equals one-shot. *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let b = Bytes.of_string s in
  let split = Crc32.update (Crc32.update 0 b 0 9) b 9 (Bytes.length b - 9) in
  Alcotest.(check int) "incremental" (Crc32.string s) split;
  Alcotest.(check bool) "sensitive to a flipped bit" true
    (Crc32.string "abd" <> Crc32.string "abc")

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 10_000 '\x00'; "line\nbreaks\n" ] in
  let blob = String.concat "" (List.map Frame.encode payloads) in
  let scan = Frame.scan_string blob in
  Alcotest.(check bool) "clean tail" true (scan.Frame.tail = Frame.Clean);
  Alcotest.(check (list string)) "payloads" payloads scan.Frame.payloads;
  Alcotest.(check int) "valid covers all" (String.length blob)
    scan.Frame.valid_bytes

let test_frame_torn_tail () =
  let complete = Frame.encode "first" ^ Frame.encode "second" in
  let torn = Frame.encode "third" in
  (* Every possible truncation point inside the final record: the two
     complete records always survive, the tail is always Torn. *)
  for keep = 1 to String.length torn - 1 do
    let blob = complete ^ String.sub torn 0 keep in
    let scan = Frame.scan_string blob in
    Alcotest.(check (list string))
      (Printf.sprintf "prefix intact at cut %d" keep)
      [ "first"; "second" ] scan.Frame.payloads;
    match scan.Frame.tail with
    | Frame.Torn _ -> ()
    | Frame.Clean -> Alcotest.fail "truncated record scanned as clean"
    | Frame.Corrupt m -> Alcotest.fail ("truncation misread as corruption: " ^ m)
  done

let test_frame_corruption () =
  let blob = Frame.encode "payload one" ^ Frame.encode "payload two" in
  (* Flip one byte inside the second record's payload: CRC mismatch. *)
  let corrupted = Bytes.of_string blob in
  let off = String.length (Frame.encode "payload one") + Frame.header_bytes + 3 in
  Bytes.set corrupted off (Char.chr (Char.code (Bytes.get corrupted off) lxor 1));
  let scan = Frame.scan_string (Bytes.to_string corrupted) in
  Alcotest.(check (list string)) "first record survives" [ "payload one" ]
    scan.Frame.payloads;
  (match scan.Frame.tail with
  | Frame.Corrupt m ->
    Alcotest.(check bool)
      (Printf.sprintf "names the checksum (%s)" m)
      true
      (Helpers.contains m "crc")
  | _ -> Alcotest.fail "bit flip must scan as corrupt");
  (* Garbage that is not even a header: bad magic. *)
  match (Frame.scan_string "GARBAGEGARBAGEGARBAGE").Frame.tail with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic must scan as corrupt"

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_codec_value_roundtrip () =
  let values =
    [
      Value.Null;
      Value.Int 0;
      Value.Int max_int;
      Value.Int min_int;
      Value.Bool true;
      Value.Bool false;
      Value.Float 0.0;
      Value.Float (-0.0);
      Value.Float Float.nan;
      Value.Float Float.infinity;
      Value.Float Float.neg_infinity;
      Value.Float 0.1;
      Value.Float 1e-308;
      Value.Float Float.max_float;
      Value.Str "";
      Value.Str "plain";
      Value.Str "with \n newline, 'quotes' and \x00 NUL \xff bytes";
    ]
  in
  let buf = Buffer.create 256 in
  List.iter (Codec.add_value buf) values;
  let cur = Codec.cursor (Buffer.contents buf) in
  List.iter
    (fun expected ->
      let got = Codec.read_value cur in
      let same =
        match (expected, got) with
        | Value.Float a, Value.Float b ->
          (* Bit-exact: NaN round-trips, -0.0 keeps its sign. *)
          Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
        | a, b -> a = b
      in
      Alcotest.(check bool)
        (Printf.sprintf "value %s round-trips" (Value.to_string expected))
        true same)
    values;
  Alcotest.(check int) "cursor drained" 0 (Codec.remaining cur)

let test_codec_rejects_malformed () =
  let expect_fail name s =
    match Codec.read_value (Codec.cursor s) with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.fail (name ^ " must raise Decode_error")
  in
  expect_fail "empty" "";
  expect_fail "unknown tag" "Z ";
  expect_fail "unterminated int" "I42";
  expect_fail "bad string length" "VSxx:abc ";
  expect_fail "truncated string" "VS10:abc "

(* ------------------------------------------------------------------ *)
(* Snapshot round-trip                                                 *)

(** Run a script against a catalog the way a server session would,
    swallowing statement errors (their partial effects remain). *)
let exec_catalog catalog sql =
  let eng = Engine.create ~catalog:(Catalog.with_shared_base catalog) () in
  try ignore (Engine.execute_script eng sql) with _ -> ()

(** Render every base table (schema, version and rows in storage
    order): the bit-identity witness used across these tests. *)
let dump_catalog catalog =
  Catalog.table_names catalog
  |> List.map (fun n ->
         let t = Catalog.find_table catalog n in
         Printf.sprintf "== %s (v%d) ==\n%s" n (Table.version t)
           (Relation.to_table_string (Table.to_relation t)))
  |> String.concat "\n"

let populated_catalog () =
  let c = Catalog.create () in
  exec_catalog c
    "CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT);\n\
     INSERT INTO kv VALUES (1, 0.5);\n\
     INSERT INTO kv VALUES (2, 1.25);\n\
     INSERT INTO kv VALUES (3, -0.0);\n\
     UPDATE kv SET v = v * 3.0 WHERE k = 2;\n\
     CREATE TABLE tags (name STRING, ok BOOL);\n\
     INSERT INTO tags VALUES ('line\nbreak', TRUE);\n\
     INSERT INTO tags VALUES ('', FALSE);\n\
     CREATE TABLE empty (a INT, b STRING)";
  c

let test_snapshot_roundtrip () =
  let dir = tmp_dir "snap" in
  Unix.mkdir dir 0o755;
  let c = populated_catalog () in
  let path = Filename.concat dir "snapshot-000007.snap" in
  Snapshot.write ~path ~seq:7 c;
  (match Snapshot.load ~path with
  | Error m -> Alcotest.fail m
  | Ok (seq, tables) ->
    Alcotest.(check int) "seq survives" 7 seq;
    Alcotest.(check int) "all tables" 3 (List.length tables);
    let restored = Catalog.create () in
    Snapshot.restore restored tables;
    Alcotest.(check string) "bit-identical restore" (dump_catalog c)
      (dump_catalog restored);
    Alcotest.(check bool) "digests agree" true
      (Catalog.base_digest c = Catalog.base_digest restored));
  (* Any single-byte corruption must reject the whole snapshot. *)
  let blob = read_file path in
  let rng = Rng.create 42 in
  for _ = 1 to 20 do
    let off = Rng.int rng (String.length blob) in
    let corrupted = Bytes.of_string blob in
    Bytes.set corrupted off
      (Char.chr (Char.code (Bytes.get corrupted off) lxor 0x20));
    write_file path (Bytes.to_string corrupted);
    match Snapshot.load ~path with
    | Error _ -> ()
    | Ok _ ->
      Alcotest.fail
        (Printf.sprintf "snapshot with byte %d corrupted must not load" off)
  done;
  (* A truncated snapshot (missing footer) is invalid too — snapshots
     are atomic, so a short one is damage, not a crash artifact. *)
  write_file path (String.sub blob 0 (String.length blob - 5));
  (match Snapshot.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot must not load");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)

let test_wal_roundtrip_and_torn_tail () =
  let dir = tmp_dir "wal" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal-000001.wal" in
  let records =
    [
      { Wal.seq = 1; digest = 123; sql = "CREATE TABLE t (a INT)" };
      { Wal.seq = 2; digest = -456; sql = "INSERT INTO t VALUES (1);\nmore" };
      { Wal.seq = 3; digest = max_int; sql = String.make 5000 's' };
    ]
  in
  let w = Wal.create ~path ~policy:Wal.Always in
  List.iter (Wal.append w) records;
  Alcotest.(check bool) "always fsyncs per record" true (Wal.fsyncs w >= 3);
  Wal.close w;
  let scan = Wal.scan ~path in
  Alcotest.(check bool) "clean" true (scan.Wal.tail = Frame.Clean);
  Alcotest.(check bool) "records round-trip" true (scan.Wal.records = records);
  (* Truncation at every byte inside the final record: earlier records
     always survive, the tail is Torn, never Clean, never Corrupt. *)
  let blob = read_file path in
  let second_end =
    (* Recompute where record 3's frame begins by re-encoding 1-2. *)
    let enc r =
      let buf = Buffer.create 64 in
      Codec.add_string buf "STMT";
      Codec.add_int buf r.Wal.seq;
      Codec.add_int buf r.Wal.digest;
      Codec.add_string buf r.Wal.sql;
      Frame.encode (Buffer.contents buf)
    in
    String.length (enc (List.nth records 0)) + String.length (enc (List.nth records 1))
  in
  for keep = second_end + 1 to String.length blob - 1 do
    write_file path (String.sub blob 0 keep);
    let scan = Wal.scan ~path in
    Alcotest.(check int)
      (Printf.sprintf "two records at cut %d" keep)
      2
      (List.length scan.Wal.records);
    match scan.Wal.tail with
    | Frame.Torn _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "cut %d must scan as torn" keep)
  done;
  (* A checksum-valid frame that is not a decodable record poisons the
     scan as corrupt (it can never be silently replayed). *)
  write_file path (Frame.encode "NOT A WAL RECORD");
  (match (Wal.scan ~path).Wal.tail with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "undecodable record must scan as corrupt");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Durable manager: recovery invariants (in-process)                   *)

let attach ~dir catalog =
  Durable.attach ~dir ~policy:Durable.Batch ~catalog
    ~replay:(fun sql -> exec_catalog catalog sql)

(** Execute + log the way the server does: run, digest, log if the
    base state changed. *)
let apply d catalog sql =
  let before = Catalog.base_digest catalog in
  exec_catalog catalog sql;
  let digest = Catalog.base_digest catalog in
  if digest <> before then Durable.log_script d ~digest ~sql

let scripts =
  [
    "CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT)";
    "INSERT INTO kv VALUES (1, 1.5); INSERT INTO kv VALUES (2, 0.25)";
    "UPDATE kv SET v = v * 2.0 WHERE k = 1";
    (* Errors mid-script leave partial effects; they log too. *)
    "INSERT INTO kv VALUES (3, 9.0); INSERT INTO kv VALUES (1, 0.0)";
    "DELETE FROM kv WHERE k = 2";
    (* Pure failure: no state change, nothing to log. *)
    "INSERT INTO kv VALUES (1, 7.7)";
    "CREATE TABLE other (s STRING); INSERT INTO other VALUES ('x')";
  ]

let test_durable_recovery_replays_wal () =
  let dir = tmp_dir "recover" in
  let live = Catalog.create () in
  let d = attach ~dir live in
  List.iter (apply d live) scripts;
  Alcotest.(check int) "6 of 7 scripts logged" 6 (Durable.pending_records d);
  (* Close WITHOUT a checkpoint: recovery must come from snapshot-0 +
     full WAL replay. *)
  Durable.close d;
  let recovered = Catalog.create () in
  let d2 = attach ~dir recovered in
  let r = Durable.recovery d2 in
  Alcotest.(check int) "replayed all logged scripts" 6
    r.Durable.wal_records_applied;
  Alcotest.(check bool) "no tail damage" true (r.Durable.torn_tail = None);
  Alcotest.(check string) "bit-identical catalog" (dump_catalog live)
    (dump_catalog recovered);
  Alcotest.(check bool) "digests agree" true
    (Catalog.base_digest live = Catalog.base_digest recovered);
  (* The boot rotated: a third attach replays nothing. *)
  Durable.close d2;
  let again = Catalog.create () in
  let d3 = attach ~dir again in
  Alcotest.(check int) "post-rotation boot replays nothing" 0
    (Durable.recovery d3).Durable.wal_records_applied;
  Alcotest.(check string) "still bit-identical" (dump_catalog live)
    (dump_catalog again);
  Durable.close d3;
  rm_rf dir

let test_durable_checkpoint_collapses_wal () =
  let dir = tmp_dir "ckpt" in
  let live = Catalog.create () in
  let d = attach ~dir live in
  List.iter (apply d live) scripts;
  Durable.checkpoint d;
  Alcotest.(check int) "wal empty after checkpoint" 0 (Durable.pending_records d);
  apply d live "INSERT INTO kv VALUES (10, 0.125)";
  Durable.close d;
  let recovered = Catalog.create () in
  let d2 = attach ~dir recovered in
  Alcotest.(check int) "only the post-checkpoint record replays" 1
    (Durable.recovery d2).Durable.wal_records_applied;
  Alcotest.(check string) "bit-identical" (dump_catalog live)
    (dump_catalog recovered);
  Durable.close d2;
  rm_rf dir

let test_durable_discards_torn_tail () =
  let dir = tmp_dir "torn" in
  let live = Catalog.create () in
  let d = attach ~dir live in
  List.iter (apply d live) scripts;
  Durable.close d;
  (* Simulate a crash mid-append: only part of one more record made it
     to disk. *)
  let wal = the_file dir ".wal" in
  let partial = Frame.encode "half a record" in
  write_file wal (read_file wal ^ String.sub partial 0 (String.length partial - 4));
  let recovered = Catalog.create () in
  let d2 = attach ~dir recovered in
  let r = Durable.recovery d2 in
  Alcotest.(check int) "valid prefix replayed" 6 r.Durable.wal_records_applied;
  (match r.Durable.torn_tail with
  | Some _ -> ()
  | None -> Alcotest.fail "torn tail must be reported");
  Alcotest.(check bool) "discard counted" true (r.Durable.wal_bytes_discarded > 0);
  Alcotest.(check string) "prefix state recovered exactly" (dump_catalog live)
    (dump_catalog recovered);
  Durable.close d2;
  rm_rf dir

let expect_durability_error name f =
  match f () with
  | exception Durable.Durability_error _ -> ()
  | _ -> Alcotest.fail (name ^ " must raise Durability_error")

let test_durable_refuses_corruption () =
  (* Mid-WAL corruption: hard error, never a silent partial replay. *)
  let dir = tmp_dir "corrupt-wal" in
  let live = Catalog.create () in
  let d = attach ~dir live in
  List.iter (apply d live) scripts;
  Durable.close d;
  let wal = the_file dir ".wal" in
  let blob = read_file wal in
  let corrupted = Bytes.of_string blob in
  let off = String.length blob / 2 in
  Bytes.set corrupted off (Char.chr (Char.code (Bytes.get corrupted off) lxor 1));
  write_file wal (Bytes.to_string corrupted);
  expect_durability_error "corrupt wal" (fun () ->
      attach ~dir (Catalog.create ()));
  rm_rf dir;
  (* Corrupt snapshot: hard error even though a WAL exists — recovery
     must never guess a base state. *)
  let dir = tmp_dir "corrupt-snap" in
  let live = Catalog.create () in
  let d = attach ~dir live in
  List.iter (apply d live) scripts;
  Durable.close d;
  let snap = the_file dir ".snap" in
  let blob = read_file snap in
  let corrupted = Bytes.of_string blob in
  Bytes.set corrupted 20 (Char.chr (Char.code (Bytes.get corrupted 20) lxor 1));
  write_file snap (Bytes.to_string corrupted);
  expect_durability_error "corrupt snapshot" (fun () ->
      attach ~dir (Catalog.create ()));
  rm_rf dir;
  (* A WAL newer than the newest snapshot cannot arise from a crash:
     refuse it rather than replay against the wrong base. *)
  let dir = tmp_dir "newer-wal" in
  let d = attach ~dir (Catalog.create ()) in
  Durable.close d;
  write_file (Filename.concat dir "wal-999999.wal") "";
  expect_durability_error "wal newer than snapshot" (fun () ->
      attach ~dir (Catalog.create ()));
  rm_rf dir

let test_durable_validates_replay_digest () =
  (* A WAL record whose digest does not match what replay produced
     (here: hand-forged) must fail recovery loudly. *)
  let dir = tmp_dir "digest" in
  let d = attach ~dir (Catalog.create ()) in
  Durable.close d;
  let wal = the_file dir ".wal" in
  let buf = Buffer.create 64 in
  Codec.add_string buf "STMT";
  Codec.add_int buf 1;
  Codec.add_int buf 424242 (* not what replaying this script yields *);
  Codec.add_string buf "CREATE TABLE forged (a INT)";
  write_file wal (Frame.encode (Buffer.contents buf));
  expect_durability_error "digest mismatch" (fun () ->
      attach ~dir (Catalog.create ()));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Chaos harness: SIGKILL the real server binary                       *)

let server_exe = Filename.concat Filename.parent_dir_name "bin/server_main.exe"

type run = {
  pid : int;
  log : string;  (** combined stdout+stderr *)
}

let start_server ~dir ~socket ~fsync ~checkpoint_every ~tag =
  let log =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-chaos-%d-%s.log" (Unix.getpid ()) tag)
  in
  let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process server_exe
      [|
        server_exe;
        "--socket"; socket;
        "--data-dir"; dir;
        "--fsync"; fsync;
        "--checkpoint-every"; string_of_float checkpoint_every;
        "--statement-timeout"; "10";
        "--max-iterations"; "3000000";
      |]
      Unix.stdin out out
  in
  Unix.close out;
  { pid; log }

(** Wait until the server accepts a connection (or fail fast if the
    process already exited). Returns a connected client. *)
let await_server run ~socket =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec loop () =
    match Unix.waitpid [ Unix.WNOHANG ] run.pid with
    | p, status when p = run.pid ->
      let log = try read_file run.log with _ -> "" in
      Alcotest.fail
        (Printf.sprintf "server died before accepting (%s): %s"
           (match status with
           | Unix.WEXITED c -> Printf.sprintf "exit %d" c
           | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
           | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)
           log)
    | _ -> (
      match Client.connect ~socket_path:socket () with
      | c -> c
      | exception _ ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "server did not come up in 15s"
        else begin
          Thread.delay 0.01;
          loop ()
        end)
  in
  loop ()

let kill_and_reap run =
  (try Unix.kill run.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] run.pid)

(** The workload: deterministic per variant. Mostly single-statement
    DML, some multi-statement scripts (partial-failure coverage), some
    iterative read queries (mid-iterative-kill coverage). Keys are
    unique per statement so replay determinism is easy to reason
    about. *)
let chaos_statements variant =
  let rng = Rng.create (7000 + variant) in
  let spin n =
    Printf.sprintf
      "WITH ITERATIVE spin (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM spin \
       UNTIL %d ITERATIONS) SELECT n FROM spin"
      n
  in
  "CREATE TABLE kv (k INT PRIMARY KEY, v INT)"
  :: List.init 40 (fun i ->
         let k = (variant * 1000) + i in
         match Rng.int rng 10 with
         | 0 | 1 | 2 | 3 ->
           Printf.sprintf "INSERT INTO kv VALUES (%d, %d)" k (Rng.int rng 1000)
         | 4 | 5 ->
           Printf.sprintf "UPDATE kv SET v = v + %d WHERE k < %d"
             (1 + Rng.int rng 9)
             ((variant * 1000) + Rng.int rng 40)
         | 6 -> Printf.sprintf "DELETE FROM kv WHERE v < %d" (Rng.int rng 200)
         | 7 ->
           (* Multi-statement script; second half may or may not fail
              depending on earlier deletes — both are deterministic. *)
           Printf.sprintf
             "INSERT INTO kv VALUES (%d, %d); INSERT INTO kv VALUES (%d, %d)" k
             (Rng.int rng 1000) (100000 + k) (Rng.int rng 1000)
         | 8 -> spin (20_000 + Rng.int rng 60_000)
         | _ ->
           Printf.sprintf "INSERT INTO kv VALUES (%d, %d)" k (Rng.int rng 1000))

(** What the database must contain after the first [j] statements: run
    them on a pristine in-process engine and render the table. *)
let oracle_dump stmts j =
  let eng = Engine.create () in
  List.iteri
    (fun i sql -> if i < j then try ignore (Engine.execute_script eng sql) with _ -> ())
    stmts;
  match Engine.query eng "SELECT * FROM kv" with
  | rel -> Relation.to_table_string rel
  | exception _ -> "ERR no-table"

(** Dump the recovered server's state through the wire. *)
let server_dump client =
  match Client.query client "SELECT * FROM kv" with
  | Ok body -> body
  | Error (_, _) -> "ERR no-table"

(** One chaos round: run the workload against a durable server, SIGKILL
    it at a seeded point mid-stream, restart, and check the recovered
    state against the oracle. Returns how many statements were acked
    before the kill (for reporting). *)
let chaos_round ~seed ~fsync =
  let tag = Printf.sprintf "%s-%d" fsync seed in
  let dir = tmp_dir ("chaos-" ^ tag) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-chaos-%d-%s.sock" (Unix.getpid ()) tag)
  in
  let rng = Rng.create seed in
  let stmts = chaos_statements (seed mod 5) in
  let run = start_server ~dir ~socket ~fsync ~checkpoint_every:0.05 ~tag in
  let client = await_server run ~socket in
  (* The assassin: SIGKILL after a seeded delay while statements are
     streaming (0-120ms covers mid-DML, mid-iterative-query and — with
     50ms checkpoints — mid-checkpoint). *)
  let delay_ms = Rng.int rng 120 in
  let killer =
    Thread.create
      (fun () ->
        Thread.delay (float_of_int delay_ms /. 1000.0);
        try Unix.kill run.pid Sys.sigkill with Unix.Unix_error _ -> ())
      ()
  in
  let acked = ref 0 in
  (try
     List.iter
       (fun sql ->
         match Client.query client sql with
         | Ok _ | Error _ -> incr acked)
       stmts
   with _ -> ());
  Thread.join killer;
  (try Client.close client with _ -> ());
  (* Reap; if every statement was acked before the kill landed, the
     kill still hits the (idle) server — fine, recovery must be exact
     at k. *)
  ignore (Unix.waitpid [] run.pid);
  (* Restart on the same directory and compare with the oracle. *)
  let run2 = start_server ~dir ~socket ~fsync ~checkpoint_every:1000.0 ~tag in
  let client2 = await_server run2 ~socket in
  let got = server_dump client2 in
  let k = !acked in
  let candidates =
    (* The in-flight statement may or may not have reached the log
       before the kill: both prefixes are legal. With fsync=off,
       acknowledged statements may be lost too, so any prefix <= k+1
       is acceptable. *)
    if fsync = "off" then List.init (k + 2) (fun j -> j)
    else [ k; k + 1 ]
  in
  let matched =
    List.exists (fun j -> got = oracle_dump stmts j) candidates
  in
  if not matched then begin
    let log = try read_file run2.log with _ -> "" in
    Alcotest.fail
      (Printf.sprintf
         "seed %d (%s): recovered state matches no legal prefix (acked %d of \
          %d)\nrecovery log:\n%s\ngot:\n%s\nexpected (at %d):\n%s"
         seed fsync k (List.length stmts) log got k (oracle_dump stmts k))
  end;
  (* The boot printed a recovery report. *)
  let log2 = try read_file run2.log with _ -> "" in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: recovery report printed" seed)
    true
    (Helpers.contains log2 "recovery:");
  Client.shutdown_server client2;
  ignore (Unix.waitpid [] run2.pid);
  rm_rf dir;
  (try Sys.remove run.log with Sys_error _ -> ());
  k

let test_chaos_sigkill_matrix () =
  (* >= 20 seeded kill points across fsync policies. Seeds vary both
     the kill delay and the workload variant; several land mid-DML,
     several mid-iterative-query, and the 50ms checkpoint interval
     makes mid-checkpoint kills routine. *)
  let kill_counts = ref [] in
  for seed = 1 to 14 do
    kill_counts := chaos_round ~seed ~fsync:"batch" :: !kill_counts
  done;
  for seed = 15 to 20 do
    kill_counts := chaos_round ~seed ~fsync:"always" :: !kill_counts
  done;
  for seed = 21 to 24 do
    kill_counts := chaos_round ~seed ~fsync:"off" :: !kill_counts
  done;
  (* Sanity: the kills actually interrupted work somewhere mid-stream
     (not all before the first statement, not all after the last). *)
  let total = List.length (chaos_statements 0) in
  Alcotest.(check bool) "some kills landed mid-stream" true
    (List.exists (fun k -> k > 0 && k < total) !kill_counts)

let test_chaos_corrupt_tail_refused () =
  (* Crash the server, then vandalize the WAL tail (bit flip, not
     truncation): the restarted server must refuse to start, with a
     clear durability error. *)
  let tag = "vandal" in
  let dir = tmp_dir ("chaos-" ^ tag) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-chaos-%d-%s.sock" (Unix.getpid ()) tag)
  in
  (* Long checkpoint interval: the records stay in the WAL. *)
  let run = start_server ~dir ~socket ~fsync:"batch" ~checkpoint_every:1000.0 ~tag in
  let client = await_server run ~socket in
  List.iter
    (fun sql -> ignore (Client.query client sql))
    [
      "CREATE TABLE kv (k INT PRIMARY KEY, v INT)";
      "INSERT INTO kv VALUES (1, 10)";
      "INSERT INTO kv VALUES (2, 20)";
    ];
  kill_and_reap run;
  (try Client.close client with _ -> ());
  let wal = the_file dir ".wal" in
  let blob = read_file wal in
  Alcotest.(check bool) "wal has content to vandalize" true
    (String.length blob > Frame.header_bytes);
  let corrupted = Bytes.of_string blob in
  let off = String.length blob - 3 in
  Bytes.set corrupted off (Char.chr (Char.code (Bytes.get corrupted off) lxor 1));
  write_file wal (Bytes.to_string corrupted);
  let run2 = start_server ~dir ~socket ~fsync:"batch" ~checkpoint_every:1000.0 ~tag in
  let _, status = Unix.waitpid [] run2.pid in
  (match status with
  | Unix.WEXITED 0 -> Alcotest.fail "server must refuse a corrupt WAL"
  | Unix.WEXITED _ -> ()
  | _ -> Alcotest.fail "server must exit cleanly with an error");
  let log = try read_file run2.log with _ -> "" in
  Alcotest.(check bool)
    (Printf.sprintf "error names durability (%s)" log)
    true
    (Helpers.contains log "durability error");
  rm_rf dir;
  (try Sys.remove run2.log with Sys_error _ -> ())

let test_chaos_preload_survives () =
  (* --gen preload is captured by the boot checkpoint; after a kill the
     restarted server must still have the graph, and must NOT re-run
     the preload. *)
  let tag = "preload" in
  let dir = tmp_dir ("chaos-" ^ tag) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-chaos-%d-%s.sock" (Unix.getpid ()) tag)
  in
  let log =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbspinner-chaos-%d-%s.log" (Unix.getpid ()) tag)
  in
  let spawn () =
    let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let pid =
      Unix.create_process server_exe
        [|
          server_exe;
          "--socket"; socket;
          "--data-dir"; dir;
          "--gen"; "dblp-like";
          "--scale"; "0.02";
        |]
        Unix.stdin out out
    in
    Unix.close out;
    { pid; log }
  in
  let run = spawn () in
  let client = await_server run ~socket in
  let count () =
    match Client.query client "SELECT COUNT(*) FROM edges" with
    | Ok body -> body
    | Error (s, m) -> Alcotest.fail (s ^ " " ^ m)
  in
  let before = count () in
  kill_and_reap run;
  (try Client.close client with _ -> ());
  let run2 = spawn () in
  let client2 = await_server run2 ~socket in
  let after =
    match Client.query client2 "SELECT COUNT(*) FROM edges" with
    | Ok body -> body
    | Error (s, m) -> Alcotest.fail (s ^ " " ^ m)
  in
  Alcotest.(check string) "graph survives the crash" before after;
  let log2 = try read_file run2.log with _ -> "" in
  Alcotest.(check bool)
    (Printf.sprintf "second boot skips the preload (%s)" log2)
    true
    (Helpers.contains log2 "skipping --gen preload");
  Client.shutdown_server client2;
  ignore (Unix.waitpid [] run2.pid);
  rm_rf dir;
  (try Sys.remove log with Sys_error _ -> ())

let () =
  (* The chaos tests write into sockets the server side of which was
     just SIGKILLed; without this the resulting SIGPIPE would kill the
     test process instead of surfacing as EPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "durable"
    [
      ( "units",
        [
          Alcotest.test_case "crc32-vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "frame-roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame-torn-tail" `Quick test_frame_torn_tail;
          Alcotest.test_case "frame-corruption" `Quick test_frame_corruption;
          Alcotest.test_case "codec-values" `Quick test_codec_value_roundtrip;
          Alcotest.test_case "codec-malformed" `Quick
            test_codec_rejects_malformed;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip-torn" `Quick
            test_wal_roundtrip_and_torn_tail;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replays-wal" `Quick
            test_durable_recovery_replays_wal;
          Alcotest.test_case "checkpoint-collapses" `Quick
            test_durable_checkpoint_collapses_wal;
          Alcotest.test_case "discards-torn-tail" `Quick
            test_durable_discards_torn_tail;
          Alcotest.test_case "refuses-corruption" `Quick
            test_durable_refuses_corruption;
          Alcotest.test_case "validates-replay-digest" `Quick
            test_durable_validates_replay_digest;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "sigkill-matrix" `Slow test_chaos_sigkill_matrix;
          Alcotest.test_case "corrupt-tail-refused" `Slow
            test_chaos_corrupt_tail_refused;
          Alcotest.test_case "preload-survives" `Slow test_chaos_preload_survives;
        ] );
    ]

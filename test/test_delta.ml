(** Semi-naive (delta-driven) iteration: delta-on and delta-off runs
    must produce identical relations in every executor, while the delta
    path demonstrably restricts work. Pins the eligibility decisions
    (SSSP and FF qualify, a non-copied key falls back), the
    first-iteration full evaluation, the empty-delta reuse, and the
    documented stats contract: within one mode all executors stay
    [Stats.logical_equal]; across modes only ineligible programs do
    (the delta counters themselves differ by design). *)

module Engine = Dbspinner.Engine
module Options = Dbspinner_rewrite.Options
module Iterative_rewrite = Dbspinner_rewrite.Iterative_rewrite
module Parser = Dbspinner_sql.Parser
module Program = Dbspinner_plan.Program
module Catalog = Dbspinner_storage.Catalog
module Relation = Dbspinner_storage.Relation
module Table = Dbspinner_storage.Table
module Stats = Dbspinner_exec.Stats
module Executor = Dbspinner_exec.Executor
module Parallel = Dbspinner_exec.Parallel
module Distributed = Dbspinner_mpp.Distributed
module Trace = Dbspinner_obs.Trace
module Graph_gen = Dbspinner_graph.Graph_gen
module Loader = Dbspinner_workload.Loader
module Queries = Dbspinner_workload.Queries
open Helpers

let delta_off = { Options.default with Options.use_delta = false }

let lookup e name =
  Option.map Table.schema (Catalog.find_table_opt (Engine.catalog e) name)

let compile ?(options = Options.default) e sql =
  Iterative_rewrite.compile ~options ~lookup:(lookup e)
    (Parser.parse_query sql)

let compile_report ?(options = Options.default) e sql =
  Iterative_rewrite.compile_with_report ~options ~lookup:(lookup e)
    (Parser.parse_query sql)

(** Run on a clean temp namespace with fresh stats. *)
let run ?parallel ?use_cache ?trace e program =
  Catalog.clear_temps (Engine.catalog e);
  Executor.run_program_with_stats ?parallel ?use_cache ?trace
    (Engine.catalog e) program

let has_delta_step program =
  Array.exists
    (function Program.Delta_materialize _ -> true | _ -> false)
    (Program.steps program)

let check_same_logical_work msg (a : Stats.t) (b : Stats.t) =
  (* The parts of the contract that hold even across modes: same
     number of iterations, same materialization accounting. *)
  Alcotest.(check int) (msg ^ ": loop_iterations") a.Stats.loop_iterations
    b.Stats.loop_iterations;
  Alcotest.(check int) (msg ^ ": materializations") a.Stats.materializations
    b.Stats.materializations;
  Alcotest.(check int) (msg ^ ": rows_materialized") a.Stats.rows_materialized
    b.Stats.rows_materialized;
  Alcotest.(check int) (msg ^ ": renames") a.Stats.renames b.Stats.renames

(* ------------------------------------------------------------------ *)
(* SSSP: the paper's monotone-MIN loop, merge path                      *)

let sssp_fixture () =
  let g = Graph_gen.chain_with_shortcuts ~seed:7 ~num_nodes:150 ~shortcut_every:10 in
  let e = Loader.engine_for g in
  (e, Queries.sssp ~source:0 ~iterations:12 ())

let test_sssp_on_off () =
  let e, sql = sssp_fixture () in
  let p_on, report = compile_report e sql in
  Alcotest.(check bool) "sssp compiles a delta path" true
    (report.Iterative_rewrite.delta_paths > 0);
  Alcotest.(check bool) "program holds a Delta_materialize" true
    (has_delta_step p_on);
  let p_off = compile ~options:delta_off e sql in
  Alcotest.(check bool) "off program has no Delta_materialize" false
    (has_delta_step p_off);
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.check relation_testable "delta on = delta off" r_off r_on;
  check_same_logical_work "on vs off" s_off s_on;
  Alcotest.(check bool) "restricted evaluation actually ran" true
    (s_on.Stats.delta_rows_evaluated > 0);
  Alcotest.(check int) "off never evaluates delta rows" 0
    s_off.Stats.delta_rows_evaluated;
  Alcotest.(check int) "off never counts full re-evals" 0
    s_off.Stats.full_reevals;
  (* The point of the exercise: the restricted passes touch far fewer
     working-table rows than the full passes would have. *)
  Alcotest.(check bool)
    (Printf.sprintf "restricted rows (%d) < full rows (%d)"
       s_on.Stats.delta_rows_evaluated s_off.Stats.rows_materialized)
    true
    (s_on.Stats.delta_rows_evaluated < s_off.Stats.rows_materialized)

(* ------------------------------------------------------------------ *)
(* FF: pointwise rename path, no join legs -> no affected plans        *)

let test_ff_on_off () =
  let g = Graph_gen.power_law ~seed:11 ~num_nodes:80 ~edges_per_node:3 in
  let e = Loader.engine_for g in
  let sql = Queries.ff_full ~modulus:3 ~iterations:8 () in
  let p_on, report = compile_report e sql in
  Alcotest.(check bool) "ff compiles a delta path" true
    (report.Iterative_rewrite.delta_paths > 0);
  let p_off = compile ~options:delta_off e sql in
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.check relation_testable "delta on = delta off" r_off r_on;
  check_same_logical_work "on vs off" s_off s_on

(* ------------------------------------------------------------------ *)
(* First-iteration semantics: no previous version -> one full pass     *)

let test_first_iteration_is_full () =
  let e, _ = sssp_fixture () in
  let sql = Queries.sssp ~source:0 ~iterations:1 () in
  let p_on = compile e sql in
  Alcotest.(check bool) "still a delta program" true (has_delta_step p_on);
  let _, s = run e p_on in
  Alcotest.(check int) "single iteration" 1 s.Stats.loop_iterations;
  Alcotest.(check int) "it was a full evaluation" 1 s.Stats.full_reevals;
  Alcotest.(check int) "no restricted rows" 0 s.Stats.delta_rows_evaluated

(* ------------------------------------------------------------------ *)
(* Small deterministic fixtures over t (a, b)                          *)

let kv_engine rows =
  let e = Engine.create () in
  ignore (Engine.execute e "CREATE TABLE t (a INT, b INT)");
  if rows <> [] then
    ignore
      (Engine.execute e
         (Printf.sprintf "INSERT INTO t VALUES %s"
            (String.concat ", "
               (List.map (fun (a, b) -> Printf.sprintf "(%d, %d)" a b) rows))));
  e

let kv_sql ?(key_expr = "k") ?(where = "") ~step_expr ~until () =
  Printf.sprintf
    {|WITH ITERATIVE r (k, v) AS (
  SELECT a, MIN(b) FROM t WHERE a IS NOT NULL GROUP BY a
ITERATE SELECT %s, %s FROM r%s
UNTIL %s )
SELECT k, v FROM r|}
    key_expr step_expr
    (if where = "" then "" else " WHERE " ^ where)
    until

(* An initial query that yields no rows: UNTIL ALL is vacuously true
   over an empty CTE, so the loop must stop immediately in both modes
   (the delta step never runs past its first full evaluation). *)
let test_empty_cte_until_all () =
  let e = kv_engine [] in
  let sql = kv_sql ~step_expr:"v + 1" ~until:"ALL v > 10" () in
  let p_on = compile e sql in
  let p_off = compile ~options:delta_off e sql in
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.(check int) "empty result" 0 (Relation.cardinality r_on);
  Alcotest.check relation_testable "delta on = delta off" r_off r_on;
  Alcotest.(check int) "one iteration on" 1 s_on.Stats.loop_iterations;
  Alcotest.(check int) "one iteration off" 1 s_off.Stats.loop_iterations

(* A step whose first column is not a bare copy of the key: the
   analyzer must refuse (it cannot track keys through arithmetic), the
   program compiles exactly as before, and the full contract holds —
   including [Stats.logical_equal], since no delta counter moves. *)
let test_ineligible_key_fallback () =
  let e = kv_engine [ (1, 5); (2, 3); (3, 9); (4, 0) ] in
  let sql =
    kv_sql ~key_expr:"k + 0" ~step_expr:"v + 1" ~until:"4 ITERATIONS" ()
  in
  let p_on, report = compile_report e sql in
  Alcotest.(check int) "no delta path" 0 report.Iterative_rewrite.delta_paths;
  Alcotest.(check bool) "no Delta_materialize emitted" false
    (has_delta_step p_on);
  let p_off = compile ~options:delta_off e sql in
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.check relation_testable "same rows" r_off r_on;
  Alcotest.(check bool) "ineligible programs stay logical_equal" true
    (Stats.logical_equal s_on s_off)

(* A loop that converges before its iteration bound: once the CTE stops
   changing, the diff is empty and the previous work output is reused
   verbatim — no further full passes, no restricted evaluation. *)
let test_empty_delta_reuses_previous () =
  let e = kv_engine [ (1, 5); (2, -3); (3, 9); (4, 0); (5, -1) ] in
  let sql = kv_sql ~step_expr:"LEAST(v, 0)" ~until:"6 ITERATIONS" () in
  let p_on, report = compile_report e sql in
  Alcotest.(check bool) "eligible" true
    (report.Iterative_rewrite.delta_paths > 0);
  let p_off = compile ~options:delta_off e sql in
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.check relation_testable "same rows" r_off r_on;
  Alcotest.(check int) "all iterations still run" 6 s_on.Stats.loop_iterations;
  check_same_logical_work "on vs off" s_off s_on;
  (* Iteration 1 has no previous version; iteration 2's diff touches
     most keys (the cutoff takes the full path); from then on the CTE
     is a fixpoint, so the step reuses the previous output. *)
  Alcotest.(check bool)
    (Printf.sprintf "full passes stop after convergence (%d <= 2)"
       s_on.Stats.full_reevals)
    true
    (s_on.Stats.full_reevals <= 2)

(* A step WHERE exercises the merge path: unselected keys keep their
   previous row, selected ones are updated — with deltas restricted to
   keys whose value changed. *)
let test_merge_path_on_off () =
  let e = kv_engine [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5); (6, 6) ] in
  let sql =
    kv_sql ~step_expr:"v + k" ~where:"v < 10" ~until:"5 ITERATIONS" ()
  in
  let p_on = compile e sql in
  let p_off = compile ~options:delta_off e sql in
  let r_on, s_on = run e p_on in
  let r_off, s_off = run e p_off in
  Alcotest.check relation_testable "same rows" r_off r_on;
  check_same_logical_work "on vs off" s_off s_on

(* ------------------------------------------------------------------ *)
(* Cross-executor equivalence with deltas on                           *)

let test_cross_executor_delta_on () =
  let e, sql = sssp_fixture () in
  let p_on = compile e sql in
  let seq, s_seq = run e p_on in
  (* Chunk-parallel. *)
  (match Parallel.context ~chunk_rows:16 ~workers:4 () with
  | None -> ()
  | Some parallel ->
    let par, s_par = run ~parallel e p_on in
    Alcotest.check relation_testable "parallel = sequential" seq par;
    Alcotest.(check bool) "parallel logical_equal" true
      (Stats.logical_equal s_seq s_par));
  (* Cached off. *)
  let uncached, s_unc = run ~use_cache:false e p_on in
  Alcotest.check relation_testable "uncached = cached" seq uncached;
  Alcotest.(check bool) "uncached logical_equal" true
    (Stats.logical_equal s_seq s_unc);
  (* Traced. *)
  let tr = Trace.create () in
  let traced, s_tr = run ~trace:tr e p_on in
  Alcotest.check relation_testable "traced = untraced" seq traced;
  Alcotest.(check bool) "traced logical_equal" true
    (Stats.logical_equal s_seq s_tr);
  Alcotest.(check bool) "trace recorded iterations" true
    (List.length (Trace.iteration_spans tr) > 0);
  (* Distributed: coordinator-side delta protocol over partitioned
     temps must gather to the same relation. *)
  Catalog.clear_temps (Engine.catalog e);
  let dist, _ = Distributed.run_program ~workers:4 (Engine.catalog e) p_on in
  Alcotest.check relation_testable "distributed = sequential" seq dist

let test_distributed_on_off () =
  let e, sql = sssp_fixture () in
  let p_on = compile e sql in
  let p_off = compile ~options:delta_off e sql in
  Catalog.clear_temps (Engine.catalog e);
  let s_on = Stats.create () in
  let on, _ =
    Distributed.run_program ~workers:3 ~stats:s_on (Engine.catalog e) p_on
  in
  Catalog.clear_temps (Engine.catalog e);
  let s_off = Stats.create () in
  let off, _ =
    Distributed.run_program ~workers:3 ~stats:s_off (Engine.catalog e) p_off
  in
  Alcotest.check relation_testable "distributed delta on = off" off on;
  Alcotest.(check int) "same iterations" s_off.Stats.loop_iterations
    s_on.Stats.loop_iterations;
  Alcotest.(check bool) "distributed restricted evaluation ran" true
    (s_on.Stats.delta_rows_evaluated > 0)

(* ------------------------------------------------------------------ *)
(* Property: random pointwise loops agree across modes                 *)

let prop_delta_on_off =
  let open QCheck2 in
  let rows_gen =
    Gen.(
      list_size (int_range 0 15)
        (pair (int_range 0 6) (int_range (-8) 8)))
  in
  let query_gen =
    Gen.(
      let* key_expr = oneofl [ "k"; "k"; "k"; "k + 0" ] in
      let* step_expr =
        oneofl [ "v + 1"; "v + k"; "LEAST(v, k)"; "v"; "v * 2"; "LEAST(v, 0)" ]
      in
      let* where = oneofl [ ""; "v < 5"; "k > 2"; "v > k" ] in
      let* rounds = int_range 1 5 in
      return (key_expr, step_expr, where, rounds))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120
       ~name:"delta on = delta off on random iterative programs"
       ~print:(fun (rows, (key_expr, step_expr, where, rounds)) ->
         Printf.sprintf "%s over %d rows"
           (kv_sql ~key_expr ~where ~step_expr
              ~until:(Printf.sprintf "%d ITERATIONS" rounds)
              ())
           (List.length rows))
       (Gen.pair rows_gen query_gen)
       (fun (rows, (key_expr, step_expr, where, rounds)) ->
         let e = kv_engine rows in
         let sql =
           kv_sql ~key_expr ~where ~step_expr
             ~until:(Printf.sprintf "%d ITERATIONS" rounds)
             ()
         in
         let p_on, report = compile_report e sql in
         let p_off = compile ~options:delta_off e sql in
         let r_on, s_on = run e p_on in
         let r_off, s_off = run e p_off in
         if not (Relation.equal_bag r_on r_off) then
           QCheck2.Test.fail_reportf "rows differ:\non:\n%s\noff:\n%s"
             (Relation.to_table_string r_on)
             (Relation.to_table_string r_off)
         else if s_on.Stats.loop_iterations <> s_off.Stats.loop_iterations then
           QCheck2.Test.fail_reportf "iterations differ: %d vs %d"
             s_on.Stats.loop_iterations s_off.Stats.loop_iterations
         else if
           (* Ineligible programs must not diverge at all. *)
           report.Iterative_rewrite.delta_paths = 0
           && not (Stats.logical_equal s_on s_off)
         then
           QCheck2.Test.fail_reportf
             "ineligible program broke logical_equal:\n%s\nvs\n%s"
             (Stats.to_string s_on) (Stats.to_string s_off)
         else true))

let () =
  Alcotest.run "delta"
    [
      ( "workloads",
        [
          Alcotest.test_case "sssp-on-off" `Quick test_sssp_on_off;
          Alcotest.test_case "ff-on-off" `Quick test_ff_on_off;
          Alcotest.test_case "first-iteration-full" `Quick
            test_first_iteration_is_full;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty-cte-until-all" `Quick
            test_empty_cte_until_all;
          Alcotest.test_case "ineligible-key-fallback" `Quick
            test_ineligible_key_fallback;
          Alcotest.test_case "empty-delta-reuse" `Quick
            test_empty_delta_reuses_previous;
          Alcotest.test_case "merge-path" `Quick test_merge_path_on_off;
        ] );
      ( "executors",
        [
          Alcotest.test_case "cross-executor" `Quick
            test_cross_executor_delta_on;
          Alcotest.test_case "distributed-on-off" `Quick
            test_distributed_on_off;
        ] );
      ("properties", [ prop_delta_on_off ]);
    ]
